// Extension bench: dynamic mid-run machine loss with and without online
// alpha adaptation (the paper's §VIII future work: the T100 multiplier
// "requires adjustment whenever the system environment changes").
//
// Sweeps the loss time of a fast machine across the scheduling window and
// compares the frozen-weights run against the adapted run.

#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/adaptive.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  if (const auto exit_code = ahg::bench::handle_bench_flags(argc, argv)) return *exit_code;
  using namespace ahg;
  const auto ctx = bench::make_context("Extension: mid-run machine loss + adaptation");
  const workload::ScenarioSuite suite(ctx.suite_params);
  const auto scenario = suite.make(sim::GridCase::A, 0, 0);
  const core::Weights weights = core::Weights::make(0.6, 0.3);

  TextTable table({"loss at (frac of tau)", "discarded", "T100 frozen",
                   "T100 adapted", "complete frozen", "complete adapted"});
  for (const double frac : {0.125, 0.25, 0.5, 0.75}) {
    core::MachineLossEvent event;
    event.machine = 1;  // a fast machine
    event.time = static_cast<Cycles>(static_cast<double>(scenario.tau) * frac);
    const auto frozen =
        core::run_slrh_with_loss(scenario, weights, event, core::SlrhClockParams{},
                                 /*adapt=*/false);
    const auto adapted =
        core::run_slrh_with_loss(scenario, weights, event, core::SlrhClockParams{},
                                 /*adapt=*/true);
    table.begin_row();
    table.cell(frac, 3);
    table.cell(static_cast<long long>(adapted.discarded));
    table.cell(static_cast<long long>(frozen.result.t100));
    table.cell(static_cast<long long>(adapted.result.t100));
    table.cell(std::string(frozen.result.feasible() ? "yes" : "NO"));
    table.cell(std::string(adapted.result.feasible() ? "yes" : "NO"));
  }
  table.render(std::cout);
  std::cout << "\nexpected: adaptation trades T100 for completion robustness "
               "after the loss (lower alpha -> more secondaries -> the "
               "degraded grid still finishes within tau)\n";
  return 0;
}
