// Ablation: how conservative is the worst-case communication-energy rule?
//
// The paper's feasibility check reserves energy as if every child landed on
// the lowest-bandwidth link, and reports that "the communications energy
// proved to be a negligible factor" so the conservatism did not distort the
// mapping. This bench quantifies both claims on our instances: the share of
// TEC spent on communication, and the ratio of worst-case reservations to
// the energy actually charged for transfers.

#include <iostream>

#include "bench/bench_common.hpp"
#include "core/slrh.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  if (const auto exit_code = ahg::bench::handle_bench_flags(argc, argv)) return *exit_code;
  using namespace ahg;
  const auto ctx = bench::make_context("Ablation: communication-energy share");
  const workload::ScenarioSuite suite(ctx.suite_params);

  TextTable table({"Case", "mean comm/TEC [%]", "max comm/TEC [%]",
                   "transfers per run"});
  for (const auto grid_case : {sim::GridCase::A, sim::GridCase::B, sim::GridCase::C}) {
    Accumulator share;
    Accumulator transfers;
    for (std::size_t etc = 0; etc < suite.num_etc(); ++etc) {
      for (std::size_t dag = 0; dag < suite.num_dag(); ++dag) {
        const auto scenario = suite.make(grid_case, etc, dag);
        core::SlrhParams params;
        params.weights = core::Weights::make(0.6, 0.3);
        const auto result = core::run_slrh(scenario, params);
        double comm_energy = 0.0;
        for (const auto& ev : result.schedule->comm_events()) {
          comm_energy += ev.energy;
        }
        if (result.tec > 0.0) share.add(100.0 * comm_energy / result.tec);
        transfers.add(static_cast<double>(result.schedule->comm_events().size()));
      }
    }
    table.begin_row();
    table.cell(to_string(grid_case));
    table.cell(share.mean(), 2);
    table.cell(share.max(), 2);
    table.cell(transfers.mean(), 0);
  }
  table.render(std::cout);
  std::cout << "\npaper claim: communication energy is a negligible factor, so "
               "the worst-case feasibility rule does not significantly affect "
               "the mapping\n";
  return 0;
}
