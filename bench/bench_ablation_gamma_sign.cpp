// Ablation: the sign of the AET term (paper §IV).
//
// The paper reports that a NEGATIVE sign on the AET term "caused the
// heuristic to produce very short AET solutions, but with correspondingly
// lower T100 values", and deliberately chose the positive sign. This bench
// reproduces that trade-off: same scenarios, same tuned-style weights, both
// signs, comparing AET and T100.

#include <iostream>

#include "bench/bench_common.hpp"
#include "core/slrh.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  if (const auto exit_code = ahg::bench::handle_bench_flags(argc, argv)) return *exit_code;
  using namespace ahg;
  const auto ctx = bench::make_context("Ablation: AET-term sign (reward vs penalize)");
  const workload::ScenarioSuite suite(ctx.suite_params);

  TextTable table({"sign", "mean T100", "mean AET [s]", "mean AET/tau", "complete"});
  for (const auto sign : {core::AetSign::Reward, core::AetSign::Penalize}) {
    Accumulator t100;
    Accumulator aet;
    Accumulator ratio;
    std::size_t complete = 0;
    std::size_t total = 0;
    for (std::size_t etc = 0; etc < suite.num_etc(); ++etc) {
      for (std::size_t dag = 0; dag < suite.num_dag(); ++dag) {
        const auto scenario = suite.make(sim::GridCase::A, etc, dag);
        core::SlrhParams params;
        params.weights = core::Weights::make(0.6, 0.3);  // gamma = 0.1 active
        params.aet_sign = sign;
        const auto result = core::run_slrh(scenario, params);
        ++total;
        if (result.complete) ++complete;
        t100.add(static_cast<double>(result.t100));
        aet.add(seconds_from_cycles(result.aet));
        ratio.add(static_cast<double>(result.aet) / static_cast<double>(scenario.tau));
      }
    }
    table.begin_row();
    table.cell(std::string(sign == core::AetSign::Reward ? "+gamma (paper)"
                                                         : "-gamma (ablation)"));
    table.cell(t100.mean(), 1);
    table.cell(aet.mean(), 1);
    table.cell(ratio.mean(), 3);
    table.cell(std::to_string(complete) + "/" + std::to_string(total));
  }
  table.render(std::cout);
  std::cout << "\npaper claim: the negative sign yields much shorter AET and "
               "lower T100 — an undesirable trade-off for this objective\n";
  return 0;
}
