// Ablation: the receding-horizon length H (paper §VII).
//
// The paper swept H and found its impact on both T100 and execution time
// "negligible", settling on H = 100 cycles. This bench reproduces the sweep
// for SLRH-1 and SLRH-3 (whose within-timestep stacking is gated by H).

#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/slrh.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  if (const auto exit_code = ahg::bench::handle_bench_flags(argc, argv)) return *exit_code;
  using namespace ahg;
  const auto ctx = bench::make_context("Ablation: receding horizon H");
  const workload::ScenarioSuite suite(ctx.suite_params);

  const std::vector<Cycles> horizons = {0, 10, 50, 100, 500, 1000, 5000};
  TextTable table({"H (cycles)", "SLRH-1 T100", "SLRH-1 ms", "SLRH-3 T100",
                   "SLRH-3 ms"});
  for (const Cycles h : horizons) {
    table.begin_row();
    table.cell(static_cast<long long>(h));
    for (const auto variant : {core::SlrhVariant::V1, core::SlrhVariant::V3}) {
      Accumulator t100;
      Accumulator wall;
      for (std::size_t etc = 0; etc < suite.num_etc(); ++etc) {
        const auto scenario = suite.make(sim::GridCase::A, etc, 0);
        core::SlrhParams params;
        params.variant = variant;
        params.weights = core::Weights::make(0.6, 0.3);
        params.horizon = h;
        const auto result = core::run_slrh(scenario, params);
        t100.add(static_cast<double>(result.t100));
        wall.add(result.wall_seconds * 1e3);
      }
      table.cell(t100.mean(), 1);
      table.cell(wall.mean(), 2);
    }
  }
  table.render(std::cout);
  std::cout << "\npaper claim: impact of H on both T100 and execution time is "
               "negligible (H = 100 selected)\n";
  return 0;
}
