// Ablation: deadline awareness in the Max-Max baseline (DESIGN.md §4).
//
// Our Max-Max admits a candidate only if its finish plus the cheapest
// possible execution of its longest descendant chain fits within tau. This
// bench demonstrates why: with the check disabled (a literal reading of the
// paper's energy-only pool feasibility), the positive-gamma objective walks
// the mapping straight past the deadline at every non-degenerate weight
// choice, so the offline tuner can only certify all-secondary mappings —
// inconsistent with the paper's reported Max-Max performance.

#include <iostream>

#include "bench/bench_common.hpp"
#include "core/maxmax.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  if (const auto exit_code = ahg::bench::handle_bench_flags(argc, argv)) return *exit_code;
  using namespace ahg;
  const auto ctx = bench::make_context("Ablation: Max-Max deadline awareness");
  const workload::ScenarioSuite suite(ctx.suite_params);
  const auto scenario = suite.make(sim::GridCase::A, 0, 0);

  const double step = ctx.params.tune_coarse_step;
  TextTable table({"pool feasibility", "weight points", "feasible points",
                   "best feasible T100"});
  for (const bool enforce : {true, false}) {
    std::size_t points = 0;
    std::size_t feasible = 0;
    std::size_t best = 0;
    for (double a = 0.0; a <= 1.0 + 1e-9; a += step) {
      for (double b = 0.0; a + b <= 1.0 + 1e-9; b += step) {
        ++points;
        core::MaxMaxParams params;
        params.weights = core::Weights::make(std::min(a, 1.0), std::min(b, 1.0 - a));
        params.enforce_tau = enforce;
        const auto result = core::run_maxmax(scenario, params);
        if (result.feasible()) {
          ++feasible;
          best = std::max(best, result.t100);
        }
      }
    }
    table.begin_row();
    table.cell(std::string(enforce ? "energy + deadline (ours)"
                                   : "energy only (literal paper)"));
    table.cell(static_cast<long long>(points));
    table.cell(static_cast<long long>(feasible));
    table.cell(static_cast<long long>(best));
  }
  table.render(std::cout);
  std::cout << "\nexpected: the energy-only variant certifies almost no "
               "feasible points (and only degenerate all-secondary ones)\n";
  return 0;
}
