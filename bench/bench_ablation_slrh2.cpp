// Ablation: why the paper dropped SLRH-2 (§VII).
//
// "The SLRH-2 variant was found to rarely produce a successful mapping of
// all 1024 subtasks within the time and energy constraints regardless of the
// choice of alpha and beta." SLRH-2 keeps assigning pairs from one pool to
// one machine before any other machine sees candidates, so it overloads
// machines and blows the deadline. This bench sweeps the weight grid for all
// three variants and counts complete, tau-feasible mappings.

#include <iostream>

#include "bench/bench_common.hpp"
#include "core/slrh.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  if (const auto exit_code = ahg::bench::handle_bench_flags(argc, argv)) return *exit_code;
  using namespace ahg;
  const auto ctx = bench::make_context("Ablation: SLRH-2 feasibility failure");
  const workload::ScenarioSuite suite(ctx.suite_params);

  const double step = ctx.params.tune_coarse_step;
  TextTable table({"variant", "weight points", "feasible points", "best T100"});
  for (const auto variant :
       {core::SlrhVariant::V1, core::SlrhVariant::V2, core::SlrhVariant::V3}) {
    std::size_t points = 0;
    std::size_t feasible = 0;
    std::size_t best = 0;
    const auto scenario = suite.make(sim::GridCase::A, 0, 0);
    for (double a = 0.0; a <= 1.0 + 1e-9; a += step) {
      for (double b = 0.0; a + b <= 1.0 + 1e-9; b += step) {
        ++points;
        core::SlrhParams params;
        params.variant = variant;
        params.weights = core::Weights::make(std::min(a, 1.0), std::min(b, 1.0 - a));
        const auto result = core::run_slrh(scenario, params);
        if (result.feasible()) {
          ++feasible;
          best = std::max(best, result.t100);
        }
      }
    }
    table.begin_row();
    table.cell(to_string(variant));
    table.cell(static_cast<long long>(points));
    table.cell(static_cast<long long>(feasible));
    table.cell(static_cast<long long>(best));
  }
  table.render(std::cout);
  std::cout << "\npaper claim: SLRH-2 rarely achieves a complete feasible "
               "mapping at any (alpha, beta); SLRH-1/3 have broad feasible "
               "regions\n";
  return 0;
}
