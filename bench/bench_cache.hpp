#pragma once
// Content-addressed on-disk cache for evaluation-matrix cells.
//
// The figure benches all tune the same (grid case x heuristic x scenario)
// grid; at REPRO_SCALE=paper one cell costs minutes. This cache keys each
// finished CaseHeuristicSummary by an FNV-1a hash over EVERYTHING that
// determines its content — scenario-suite parameters (including the
// generator knobs), tuner parameters, SLRH clock, grid case, heuristic, and
// the code-schema version (ahg::kBenchCacheSchema) — so a re-run of any
// bench skips already-solved cells and the combined bench_eval_all pass is
// incremental. Changing any input (REPRO_SCALE, REPRO_SEED, tuner steps)
// changes the key; changing solver behaviour must bump kBenchCacheSchema.
//
// What survives a round trip: per-scenario tuned outcomes (alpha, beta,
// T100, AET, TEC, wall time, feasibility, upper bound), the summary
// accumulators (replayed through core::accumulate_scenario in stored order,
// so they are bit-identical to the freshly computed ones), and the phase
// metrics snapshot. What does not: schedules and the tuner's per-point
// probe list — no figure reads those from a matrix cell. Loads never trust
// the file: any parse error or schema/identity mismatch is a miss and the
// cell is recomputed.
//
// Writes are atomic (temp file + rename), so concurrent bench processes
// sharing one cache directory can only ever observe complete entries.

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

#include "core/runner.hpp"
#include "support/jsonl.hpp"
#include "support/metrics.hpp"
#include "support/version.hpp"
#include "workload/scenario.hpp"

namespace ahg::bench {

inline constexpr const char* kDefaultCacheDir = ".bench_cache";

/// FNV-1a 64-bit over a canonical key string. Stable across platforms and
/// runs — the content address of a cell.
inline std::uint64_t fnv1a_64(std::string_view text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

/// Everything outside the (case, heuristic) coordinates that a cell's
/// content depends on.
struct CellKeyParams {
  workload::SuiteParams suite;
  core::TunerParams tuner;
  core::SlrhClock clock;
};

/// The canonical (human-readable) key text; hashed by cell_key(). Doubles
/// are printed with shortest-round-trip precision so distinct parameters
/// never collide by formatting.
inline std::string cell_key_text(const CellKeyParams& p, sim::GridCase grid_case,
                                 core::HeuristicKind heuristic) {
  std::ostringstream oss;
  oss.precision(17);
  const auto& s = p.suite;
  const auto& e = s.etc_params;
  const auto& d = s.data_params;
  oss << "cache_schema=" << kBenchCacheSchema
      << ";tasks=" << s.num_tasks << ";etc=" << s.num_etc << ";dag=" << s.num_dag
      << ";seed=" << s.master_seed << ";tau1024=" << s.tau_seconds_at_1024
      << ";scale_batt=" << s.scale_batteries_with_tasks
      << ";etcgen=" << e.task_mean_seconds << "," << e.task_cv << ","
      << e.machine_cv << "," << e.speed_ratio_mean << "," << e.speed_ratio_cv << ","
      << e.speed_ratio_min << "," << e.speed_ratio_max << "," << e.min_task_seconds
      << ";data=" << d.mean_bits << "," << d.cv << "," << d.min_bits
      << ";tuner=" << p.tuner.coarse_step << "," << p.tuner.fine_step
      << ";clock=" << p.clock.dt << "," << p.clock.horizon
      << ";case=" << sim::to_string(grid_case)
      << ";heuristic=" << core::to_string(heuristic);
  return oss.str();
}

inline std::uint64_t cell_key(const CellKeyParams& p, sim::GridCase grid_case,
                              core::HeuristicKind heuristic) {
  return fnv1a_64(cell_key_text(p, grid_case, heuristic));
}

class CellCache {
 public:
  /// A disabled cache never loads nor stores — callers need no branches.
  explicit CellCache(std::string dir = kDefaultCacheDir, bool enabled = true)
      : dir_(std::move(dir)), enabled_(enabled) {}

  bool enabled() const noexcept { return enabled_; }
  const std::string& dir() const noexcept { return dir_; }
  std::size_t hits() const noexcept { return hits_; }
  std::size_t misses() const noexcept { return misses_; }

  /// Look a cell up; nullopt (counted as a miss) when absent, unreadable,
  /// or written by a different schema/build.
  std::optional<core::CaseHeuristicSummary> load(std::uint64_t key,
                                                 sim::GridCase grid_case,
                                                 core::HeuristicKind heuristic) {
    if (!enabled_) return std::nullopt;
    std::ifstream is(entry_path(key));
    if (!is) {
      ++misses_;
      return std::nullopt;
    }
    try {
      std::ostringstream buffer;
      buffer << is.rdbuf();
      auto summary = deserialize(buffer.str(), grid_case, heuristic);
      ++hits_;
      return summary;
    } catch (const std::exception&) {
      ++misses_;  // corrupt or stale-schema entry: recompute and overwrite
      return std::nullopt;
    }
  }

  /// Persist a freshly computed cell. Atomic: the entry appears complete or
  /// not at all. Errors (read-only dir, full disk) are swallowed — caching
  /// is an optimization, never a correctness dependency.
  void store(std::uint64_t key, const core::CaseHeuristicSummary& summary) {
    if (!enabled_) return;
    try {
      std::filesystem::create_directories(dir_);
      const std::filesystem::path final_path = entry_path(key);
      const std::filesystem::path tmp_path =
          final_path.string() + ".tmp." +
          std::to_string(std::chrono::steady_clock::now().time_since_epoch().count());
      {
        std::ofstream os(tmp_path);
        if (!os) return;
        os << serialize(summary);
      }
      std::filesystem::rename(tmp_path, final_path);
    } catch (const std::exception&) {
      // best-effort only
    }
  }

  /// Serialize one summary as a single JSON object (exposed for tests).
  static std::string serialize(const core::CaseHeuristicSummary& summary) {
    obs::JsonWriter json;
    json.begin_object();
    json.field("cache_schema", kBenchCacheSchema);
    json.field("version", kProjectVersion);
    json.field("case", sim::to_string(summary.grid_case));
    json.field("heuristic", core::to_string(summary.heuristic));
    json.key("scenarios").begin_array();
    for (const auto& eval : summary.scenarios) {
      json.begin_object();
      json.field("etc", static_cast<std::uint64_t>(eval.etc_index));
      json.field("dag", static_cast<std::uint64_t>(eval.dag_index));
      json.field("bound", static_cast<std::uint64_t>(eval.upper_bound));
      json.field("found", eval.tune.found);
      json.field("alpha", eval.tune.alpha);
      json.field("beta", eval.tune.beta);
      const auto& best = eval.tune.best;
      json.field("complete", best.complete);
      json.field("within_tau", best.within_tau);
      json.field("t100", static_cast<std::uint64_t>(best.t100));
      json.field("assigned", static_cast<std::uint64_t>(best.assigned));
      json.field("aet", static_cast<std::int64_t>(best.aet));
      json.field("tec", best.tec);
      json.field("wall_seconds", best.wall_seconds);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    // Phase metrics ride along via the standard snapshot JSON (doubles
    // round-trip exactly). Spliced in as a raw member — JsonWriter builds
    // one complete value, so the outer object is finished first and
    // reopened textually.
    std::ostringstream phases;
    summary.phases.write_json(phases);
    std::string out = json.str();
    out.pop_back();  // drop the closing '}'
    out += ",\"phases\":";
    out += phases.str();
    out += "}\n";
    return out;
  }

 private:
  std::filesystem::path entry_path(std::uint64_t key) const {
    std::ostringstream name;
    name << std::hex << key;
    return std::filesystem::path(dir_) / (name.str() + ".json");
  }

  /// Parse + rebuild. Throws on any shape mismatch (treated as a miss).
  static core::CaseHeuristicSummary deserialize(const std::string& text,
                                                sim::GridCase grid_case,
                                                core::HeuristicKind heuristic) {
    const obs::JsonValue root = obs::parse_json(text);
    AHG_EXPECTS_MSG(root.is_object(), "cache entry must be a JSON object");
    AHG_EXPECTS_MSG(root.get_int("cache_schema") == kBenchCacheSchema,
                    "cache entry written by another schema");
    AHG_EXPECTS_MSG(root.get_string("case") == sim::to_string(grid_case) &&
                        root.get_string("heuristic") == core::to_string(heuristic),
                    "cache entry identity mismatch (hash collision?)");

    core::CaseHeuristicSummary summary;
    summary.grid_case = grid_case;
    summary.heuristic = heuristic;
    const obs::JsonValue* scenarios = root.find("scenarios");
    AHG_EXPECTS_MSG(scenarios != nullptr && scenarios->is_array(),
                    "cache entry needs a scenarios array");
    for (const auto& s : scenarios->as_array()) {
      core::ScenarioEvaluation eval;
      eval.etc_index = static_cast<std::size_t>(s.get_int("etc"));
      eval.dag_index = static_cast<std::size_t>(s.get_int("dag"));
      eval.upper_bound = static_cast<std::size_t>(s.get_int("bound"));
      eval.tune.found = s.get_bool("found");
      eval.tune.alpha = s.get_double("alpha");
      eval.tune.beta = s.get_double("beta");
      auto& best = eval.tune.best;
      best.complete = s.get_bool("complete");
      best.within_tau = s.get_bool("within_tau");
      best.t100 = static_cast<std::size_t>(s.get_int("t100"));
      best.assigned = static_cast<std::size_t>(s.get_int("assigned"));
      best.aet = static_cast<Cycles>(s.get_int("aet"));
      best.tec = s.get_double("tec");
      best.wall_seconds = s.get_double("wall_seconds");
      // Replaying the shared aggregation path in stored (etc-major) order
      // reproduces the accumulators bit for bit.
      core::accumulate_scenario(summary, eval);
      summary.scenarios.push_back(std::move(eval));
    }
    if (const obs::JsonValue* phases = root.find("phases")) {
      summary.phases = obs::snapshot_from_json(*phases);
    }
    return summary;
  }

  std::string dir_;
  bool enabled_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace ahg::bench
