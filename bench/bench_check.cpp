// Bench regression gate CLI (bench_gate.hpp holds the pure logic).
//
//   bench_check [--baselines DIR] [--tolerance T] [--seconds-tolerance T]
//               [--floor F] [--update] [--allow-missing] BENCH_<name>.json...
//
// Check mode (default): each fresh BENCH dump is compared against
// DIR/BENCH_<bench>.json; any regression — or a metric missing on either
// side, unless --allow-missing — makes the exit status nonzero, which is
// what CI keys off. --update instead (re)writes the baselines from the
// fresh dumps; commit the result alongside the change that moved the
// numbers.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_gate.hpp"
#include "support/contract.hpp"
#include "support/table.hpp"

namespace {

using namespace ahg;

int usage(const char* argv0, int code) {
  (code == 0 ? std::cout : std::cerr)
      << "usage: " << argv0
      << " [--baselines DIR] [--tolerance T] [--seconds-tolerance T]\n"
         "       [--floor F] [--update] [--allow-missing] [--plot-scaling]\n"
         "       BENCH_<name>.json...\n"
         "\n"
         "  --baselines DIR        baseline directory (default bench/baselines)\n"
         "  --tolerance T          default relative tolerance for --update (0.25)\n"
         "  --seconds-tolerance T  tolerance for wall-clock metrics in --update\n"
         "                         (defaults to --tolerance)\n"
         "  --floor F              absolute slack in seconds for upper-gated\n"
         "                         metrics during checks (default 0.005)\n"
         "  --update               rewrite baselines from the fresh dumps\n"
         "  --allow-missing        metrics missing on one side do not fail\n"
         "  --plot-scaling         instead of gating, dump phase seconds vs\n"
         "                         |T| across the given dumps (one row per\n"
         "                         *_seconds metric per dump; gnuplot/awk\n"
         "                         friendly: 'phase num_tasks seconds')\n";
  return code;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  AHG_EXPECTS_MSG(in.good(), "cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string format_value(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

struct FreshDump {
  std::string path;
  std::string bench;
  std::int64_t num_tasks = 0;  ///< meta.num_tasks; 0 when the dump has none
  double peak_rss_bytes = 0.0;  ///< meta.peak_rss_bytes (0 on old dumps)
  double cpu_seconds = 0.0;     ///< meta.cpu_seconds
  double wall_seconds = 0.0;    ///< meta.wall_seconds
  obs::MetricsSnapshot metrics;
};

FreshDump load_dump(const std::string& path) {
  FreshDump dump;
  dump.path = path;
  const obs::JsonValue root = obs::parse_json(slurp(path));
  dump.bench = root.get_string("bench");
  AHG_EXPECTS_MSG(!dump.bench.empty(), path + ": no \"bench\" field");
  if (const obs::JsonValue* meta = root.find("meta")) {
    dump.num_tasks = meta->get_int("num_tasks", 0);
    dump.peak_rss_bytes = meta->get_double("peak_rss_bytes", 0.0);
    dump.cpu_seconds = meta->get_double("cpu_seconds", 0.0);
    dump.wall_seconds = meta->get_double("wall_seconds", 0.0);
  }
  const obs::JsonValue* metrics = root.find("metrics");
  AHG_EXPECTS_MSG(metrics != nullptr, path + ": no \"metrics\" object");
  dump.metrics = obs::snapshot_from_json(*metrics);
  return dump;
}

/// --plot-scaling: the scaling-curve dump. One row per *_seconds histogram
/// per input file, keyed by the dump's |T| — feed bench_scale dumps from
/// successive REPRO_SCALE tiers (or AHG_SCALE_TASKS doublings) in and plot
/// seconds vs |T| per phase to see which phases grow superlinearly.
int plot_scaling(const std::vector<std::string>& files) {
  struct Row {
    std::string phase;
    std::int64_t tasks;
    double seconds;
    std::string bench;
  };
  std::vector<Row> rows;
  for (const std::string& path : files) {
    const FreshDump dump = load_dump(path);
    AHG_EXPECTS_MSG(dump.num_tasks > 0,
                    path + ": no meta.num_tasks — not a scale dump");
    for (const auto& hist : dump.metrics.histograms) {
      const std::string suffix = "_seconds";
      if (hist.name.size() <= suffix.size() ||
          hist.name.compare(hist.name.size() - suffix.size(), suffix.size(),
                            suffix) != 0) {
        continue;
      }
      rows.push_back({hist.name, dump.num_tasks, hist.sum, dump.bench});
    }
    // Resource-footprint rows from the meta block (PR 10): memory growth and
    // parallel efficiency (cpu/wall, ideal = jobs) per |T|, plotted on the
    // same phase/value axes. Old dumps without the fields emit nothing.
    if (dump.peak_rss_bytes > 0.0) {
      rows.push_back(
          {"meta.peak_rss_bytes", dump.num_tasks, dump.peak_rss_bytes, dump.bench});
    }
    if (dump.wall_seconds > 0.0) {
      rows.push_back(
          {"meta.wall_seconds", dump.num_tasks, dump.wall_seconds, dump.bench});
      if (dump.cpu_seconds > 0.0) {
        rows.push_back(
            {"meta.cpu_seconds", dump.num_tasks, dump.cpu_seconds, dump.bench});
        rows.push_back({"meta.parallel_efficiency", dump.num_tasks,
                        dump.cpu_seconds / dump.wall_seconds, dump.bench});
      }
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.phase != b.phase ? a.phase < b.phase : a.tasks < b.tasks;
  });
  std::cout << "# phase num_tasks seconds bench\n";
  for (const Row& row : rows) {
    std::cout << row.phase << " " << row.tasks << " " << format_value(row.seconds)
              << " " << row.bench << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baselines_dir = "bench/baselines";
  double tolerance = 0.25;
  double seconds_tolerance = -1.0;
  double floor = 5e-3;
  bool update = false;
  bool allow_missing = false;
  bool scaling = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": " << name << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") return usage(argv[0], 0);
    if (arg == "--baselines") {
      baselines_dir = value("--baselines");
    } else if (arg == "--tolerance") {
      tolerance = std::stod(value("--tolerance"));
    } else if (arg == "--seconds-tolerance") {
      seconds_tolerance = std::stod(value("--seconds-tolerance"));
    } else if (arg == "--floor") {
      floor = std::stod(value("--floor"));
    } else if (arg == "--update") {
      update = true;
    } else if (arg == "--allow-missing") {
      allow_missing = true;
    } else if (arg == "--plot-scaling") {
      scaling = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << argv[0] << ": unknown argument '" << arg << "'\n";
      return usage(argv[0], 2);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::cerr << argv[0] << ": no BENCH json files given\n";
    return usage(argv[0], 2);
  }

  try {
    if (scaling) return plot_scaling(files);
    if (update) {
      std::filesystem::create_directories(baselines_dir);
      for (const std::string& path : files) {
        const FreshDump dump = load_dump(path);
        const bench::GateBaseline baseline = bench::make_baseline(
            dump.bench, dump.metrics, tolerance, seconds_tolerance);
        const std::string out_path = bench::baseline_path(baselines_dir, dump.bench);
        std::ofstream out(out_path);
        AHG_EXPECTS_MSG(out.good(), "cannot write " + out_path);
        bench::write_baseline(out, baseline);
        std::cout << "wrote " << out_path << " (" << baseline.metrics.size()
                  << " metrics)\n";
      }
      return 0;
    }

    bool pass = true;
    for (const std::string& path : files) {
      const FreshDump dump = load_dump(path);
      const std::string base_path = bench::baseline_path(baselines_dir, dump.bench);
      bench::GateResult result;
      if (!std::filesystem::exists(base_path)) {
        // A bench with no committed baseline yet is a gate finding, not an
        // I/O error: every fresh metric reports MISSING(baseline), failing
        // unless --allow-missing, with the fix spelled out.
        result = bench::check_without_baseline(dump.metrics);
        std::cout << "no baseline at " << base_path << " — run\n  " << argv[0]
                  << " --update --baselines " << baselines_dir << " " << path
                  << "\nto create it\n";
      } else {
        const bench::GateBaseline baseline =
            bench::parse_baseline(obs::parse_json(slurp(base_path)));
        AHG_EXPECTS_MSG(baseline.bench == dump.bench,
                        base_path + ": baseline is for bench '" + baseline.bench +
                            "', fresh dump is '" + dump.bench + "'");
        result = bench::check_bench(baseline, dump.metrics, floor);
      }
      const bool file_ok = result.ok(allow_missing);
      pass = pass && file_ok;

      std::cout << "=== " << dump.bench << " (" << path << " vs " << base_path
                << ") ===\n";
      TextTable table({"metric", "baseline", "fresh", "tol", "gate", "verdict"});
      for (const auto& finding : result.findings) {
        if (finding.verdict == bench::GateVerdict::Ok) continue;
        table.begin_row();
        table.cell(finding.metric);
        table.cell(format_value(finding.baseline));
        table.cell(format_value(finding.fresh));
        table.cell(format_value(finding.tolerance));
        table.cell(std::string(to_string(finding.direction)));
        table.cell(std::string(to_string(finding.verdict)));
      }
      if (result.regressions == 0 && result.missing == 0) {
        std::cout << "all " << result.findings.size() << " metrics within tolerance\n";
      } else {
        table.render(std::cout);
        std::cout << result.regressions << " regression(s), " << result.missing
                  << " missing (" << result.findings.size() << " metrics checked)"
                  << (file_ok ? " — tolerated\n" : "\n");
      }
      std::cout << "\n";
    }

    if (!pass) {
      std::cerr << "bench_check: FAILED — see tables above\n";
      return 1;
    }
    std::cout << "bench_check: OK\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << argv[0] << ": " << error.what() << "\n";
    return 2;
  }
}
