#pragma once
// Shared plumbing for the table/figure reproduction benches: scale
// resolution (REPRO_SCALE env), suite construction, common command-line
// flags (--version, --jobs, --cache...), header printing, and the
// BenchReport timing helper every bench routes its wall-clock measurements
// through.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "support/chrome_trace.hpp"
#include "support/env.hpp"
#include "support/jsonl.hpp"
#include "support/metrics.hpp"
#include "support/profile.hpp"
#include "support/runtime_profiler.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_pool.hpp"
#include "support/version.hpp"
#include "workload/scenario.hpp"

namespace ahg::bench {

/// Flags every bench binary accepts (on top of bench-specific env knobs).
/// Resolved once by handle_bench_flags(); run_matrix and BenchReport read
/// the singleton.
struct BenchFlags {
  std::size_t jobs = 0;  ///< --jobs override; 0 = AHG_JOBS env, then hardware
  /// Cell-cache tri-state: unset = AHG_BENCH_CACHE env (default on),
  /// --cache forces on, --no-cache forces off.
  std::optional<bool> cache;
  std::string cache_dir;  ///< --cache-dir; empty = AHG_BENCH_CACHE_DIR, then .bench_cache
  std::string worker_trace;  ///< --worker-trace: wall-clock Chrome trace output
  std::string heartbeat;     ///< --heartbeat: live heartbeat.json path
};

inline BenchFlags& bench_flags() {
  static BenchFlags flags;
  return flags;
}

inline bool cache_enabled_by_flags() {
  const BenchFlags& flags = bench_flags();
  if (flags.cache.has_value()) return *flags.cache;
  return env_int("AHG_BENCH_CACHE", 1) != 0;
}

inline std::string cache_dir_by_flags() {
  const BenchFlags& flags = bench_flags();
  if (!flags.cache_dir.empty()) return flags.cache_dir;
  if (const char* dir = std::getenv("AHG_BENCH_CACHE_DIR"); dir != nullptr && *dir) {
    return dir;
  }
  return ".bench_cache";
}

/// Parse the common bench flags, consuming them from argv (so leftovers can
/// be handed to Google Benchmark by the micro benches). Applies --jobs /
/// AHG_JOBS to the global pool immediately. Returns an exit code when the
/// process should stop (--version, --help, or — unless `lenient` — an
/// unrecognized argument), nullopt to continue.
inline std::optional<int> handle_bench_flags(int& argc, char** argv,
                                             bool lenient = false) {
  BenchFlags& flags = bench_flags();
  int out = 1;  // argv[0] stays
  std::optional<int> exit_code;
  const auto int_value = [&](int& i, const std::string& name) -> std::optional<long> {
    if (i + 1 >= argc) {
      std::cerr << argv[0] << ": " << name << " needs a value\n";
      return std::nullopt;
    }
    return std::strtol(argv[++i], nullptr, 10);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--version") {
      std::cout << build_description() << "\n";
      return 0;
    }
    if (arg == "--help" && !lenient) {
      std::cout << "usage: " << argv[0]
                << " [--version] [--jobs N] [--cache|--no-cache] [--cache-dir D]\n"
                   "       [--worker-trace FILE] [--heartbeat FILE]\n"
                   "env: REPRO_SCALE=smoke|default|paper|large, REPRO_SEED, AHG_JOBS,\n"
                   "     AHG_BENCH_CACHE=0|1, AHG_BENCH_CACHE_DIR\n";
      return 0;
    }
    if (arg == "--jobs" || arg.rfind("--jobs=", 0) == 0) {
      std::optional<long> value;
      if (arg == "--jobs") {
        value = int_value(i, "--jobs");
        if (!value) return 2;
      } else {
        value = std::strtol(arg.c_str() + 7, nullptr, 10);
      }
      if (*value < 0) {
        std::cerr << argv[0] << ": --jobs must be >= 0\n";
        return 2;
      }
      flags.jobs = static_cast<std::size_t>(*value);
      continue;
    }
    if (arg == "--cache") {
      flags.cache = true;
      continue;
    }
    if (arg == "--no-cache") {
      flags.cache = false;
      continue;
    }
    if (arg == "--cache-dir" || arg.rfind("--cache-dir=", 0) == 0) {
      if (arg == "--cache-dir") {
        if (i + 1 >= argc) {
          std::cerr << argv[0] << ": --cache-dir needs a value\n";
          return 2;
        }
        flags.cache_dir = argv[++i];
      } else {
        flags.cache_dir = arg.substr(12);
      }
      continue;
    }
    if (arg == "--worker-trace" || arg.rfind("--worker-trace=", 0) == 0) {
      if (arg == "--worker-trace") {
        if (i + 1 >= argc) {
          std::cerr << argv[0] << ": --worker-trace needs a value\n";
          return 2;
        }
        flags.worker_trace = argv[++i];
      } else {
        flags.worker_trace = arg.substr(15);
      }
      continue;
    }
    if (arg == "--heartbeat" || arg.rfind("--heartbeat=", 0) == 0) {
      if (arg == "--heartbeat") {
        if (i + 1 >= argc) {
          std::cerr << argv[0] << ": --heartbeat needs a value\n";
          return 2;
        }
        flags.heartbeat = argv[++i];
      } else {
        flags.heartbeat = arg.substr(12);
      }
      continue;
    }
    if (!lenient) {
      std::cerr << argv[0] << ": unknown argument '" << arg
                << "' (try --help)\n";
      return 2;
    }
    argv[out++] = argv[i];  // keep for the downstream parser
  }
  if (lenient) argc = out;
  if (flags.jobs == 0) {
    flags.jobs = static_cast<std::size_t>(
        std::max<std::int64_t>(0, env_int("AHG_JOBS", 0)));
  }
  if (flags.jobs != 0) configure_global_pool(flags.jobs);
  return exit_code;
}

/// RAII wall-clock observability for one bench process: when the common
/// --worker-trace / --heartbeat flags are set, attaches a RuntimeProfiler to
/// the global pool (and a Heartbeat wired to it) for the life of the bench;
/// destruction detaches at the bench's quiescent end and writes the pid-3
/// worker Chrome trace. With neither flag set this is a complete no-op (the
/// pool keeps its null handle; schedules are bit-identical).
class RuntimeSession {
 public:
  RuntimeSession() {
    const BenchFlags& flags = bench_flags();
    if (!flags.worker_trace.empty() || !flags.heartbeat.empty()) {
      profiler_ = std::make_unique<obs::RuntimeProfiler>(global_pool().size());
      global_pool().set_profiler(profiler_.get());
    }
    if (!flags.heartbeat.empty()) {
      obs::Heartbeat::Options options;
      options.path = flags.heartbeat;
      options.interval_seconds = 1.0;
      heartbeat_ = std::make_unique<obs::Heartbeat>(options, profiler_.get());
    }
  }
  ~RuntimeSession() {
    heartbeat_.reset();  // stop the sampler before the profiler goes away
    if (profiler_ != nullptr) {
      global_pool().set_profiler(nullptr);
      if (const std::string& path = bench_flags().worker_trace; !path.empty()) {
        std::ofstream os(path);
        if (os) {
          obs::write_chrome_trace(os, nullptr, nullptr, profiler_.get(),
                                  "bench");
          std::cout << "worker trace -> " << path << "\n";
        } else {
          std::cerr << "bench: cannot open worker trace file " << path << "\n";
        }
      }
    }
  }
  RuntimeSession(const RuntimeSession&) = delete;
  RuntimeSession& operator=(const RuntimeSession&) = delete;

  obs::RuntimeProfiler* profiler() const noexcept { return profiler_.get(); }
  obs::Heartbeat* heartbeat() const noexcept { return heartbeat_.get(); }

  /// Forwarded to the heartbeat when one is attached (no-op otherwise).
  void set_phase(std::string_view phase) {
    if (heartbeat_ != nullptr) heartbeat_->set_phase(phase);
  }

 private:
  std::unique_ptr<obs::RuntimeProfiler> profiler_;
  std::unique_ptr<obs::Heartbeat> heartbeat_;
};

struct BenchContext {
  ReproScale scale;
  ScaleParams params;
  workload::SuiteParams suite_params;
};

inline BenchContext make_context(const std::string& bench_name) {
  BenchContext ctx;
  ctx.scale = repro_scale_from_env();
  ctx.params = scale_params(ctx.scale);

  ctx.suite_params.num_tasks = ctx.params.num_subtasks;
  ctx.suite_params.num_etc = ctx.params.num_etc;
  ctx.suite_params.num_dag = ctx.params.num_dag;
  ctx.suite_params.master_seed = ctx.params.master_seed;

  std::cout << "=== " << bench_name << " ===\n"
            << build_description() << ", jobs=" << global_pool_jobs() << "\n"
            << "scale: " << to_string(ctx.scale) << " (REPRO_SCALE"
            << "=smoke|default|paper to change)\n"
            << "|T|=" << ctx.suite_params.num_tasks << ", "
            << ctx.suite_params.num_etc << " ETC x " << ctx.suite_params.num_dag
            << " DAG, seed " << ctx.suite_params.master_seed << "\n\n";
  return ctx;
}

/// Central timing sink for one bench run. Every measured section goes
/// through timed_section() (or arrives pre-aggregated via merge() from the
/// runner's per-case phase metrics), so a single write_json() call dumps the
/// bench's complete, stably-named phase-time breakdown as BENCH_<name>.json
/// — counters plus "bench.<section>_seconds" / "slrh.*_seconds" /
/// "maxmax.*_seconds" / "tuner.*_seconds" histograms, prefixed by a `meta`
/// block (BENCH schema version, build identity, jobs, and any bench-set
/// entries such as cache hit/miss counts).
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  obs::MetricsRegistry& metrics() noexcept { return metrics_; }

  /// Attach a meta entry (string or integer) to the JSON dump.
  void meta(const std::string& key, std::string value) {
    meta_[key] = std::move(value);
  }
  void meta(const std::string& key, std::int64_t value) { meta_[key] = value; }

  /// Run `fn` and record its wall time into the histogram
  /// "bench.<section>_seconds". Returns fn's result.
  template <typename F>
  auto timed_section(const std::string& section, F&& fn) {
    obs::Histogram* hist =
        obs::phase_histogram(&metrics_, "bench." + section + "_seconds");
    const Stopwatch timer;
    if constexpr (std::is_void_v<std::invoke_result_t<F&>>) {
      fn();
      hist->observe(timer.seconds());
    } else {
      auto result = fn();
      hist->observe(timer.seconds());
      return result;
    }
  }

  /// Fold externally collected metrics in (e.g. a CaseHeuristicSummary's
  /// phase snapshot).
  void merge(const obs::MetricsSnapshot& snapshot) { metrics_.merge(snapshot); }

  /// Write BENCH_<name>.json into the working directory and return the path.
  /// The meta block always carries the process resource footprint —
  /// peak_rss_bytes (VmHWM), cpu_seconds (user+system), and wall_seconds
  /// since this report was constructed — so bench_check --plot-scaling can
  /// chart memory growth and parallel efficiency (cpu/wall) per |T|.
  std::string write_json() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream os(path);
    os << "{\"bench\":\"" << obs::JsonWriter::escape(name_) << "\",\"meta\":{"
       << "\"schema\":" << kBenchSchemaVersion << ",\"version\":\""
       << obs::JsonWriter::escape(kProjectVersion) << "\",\"build_type\":\""
       << obs::JsonWriter::escape(build_type()) << "\",\"hardware_concurrency\":"
       << std::thread::hardware_concurrency() << ",\"jobs\":" << global_pool_jobs()
       << ",\"peak_rss_bytes\":" << obs::process_peak_rss_bytes()
       << ",\"cpu_seconds\":" << obs::process_cpu_seconds()
       << ",\"wall_seconds\":" << wall_.seconds();
    for (const auto& [key, value] : meta_) {
      os << ",\"" << obs::JsonWriter::escape(key) << "\":";
      if (const auto* text = std::get_if<std::string>(&value)) {
        os << "\"" << obs::JsonWriter::escape(*text) << "\"";
      } else {
        os << std::get<std::int64_t>(value);
      }
    }
    os << "},\"metrics\":";
    metrics_.snapshot().write_json(os);
    os << "}\n";
    return path;
  }

 private:
  std::string name_;
  obs::MetricsRegistry metrics_;
  std::map<std::string, std::variant<std::string, std::int64_t>> meta_;
  Stopwatch wall_;  ///< construction-to-write_json = the bench's wall clock
};

}  // namespace ahg::bench
