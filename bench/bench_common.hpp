#pragma once
// Shared plumbing for the table/figure reproduction benches: scale
// resolution (REPRO_SCALE env), suite construction, and header printing.

#include <iostream>
#include <string>

#include "support/env.hpp"
#include "workload/scenario.hpp"

namespace ahg::bench {

struct BenchContext {
  ReproScale scale;
  ScaleParams params;
  workload::SuiteParams suite_params;
};

inline BenchContext make_context(const std::string& bench_name) {
  BenchContext ctx;
  ctx.scale = repro_scale_from_env();
  ctx.params = scale_params(ctx.scale);

  ctx.suite_params.num_tasks = ctx.params.num_subtasks;
  ctx.suite_params.num_etc = ctx.params.num_etc;
  ctx.suite_params.num_dag = ctx.params.num_dag;
  ctx.suite_params.master_seed = ctx.params.master_seed;

  std::cout << "=== " << bench_name << " ===\n"
            << "scale: " << to_string(ctx.scale) << " (REPRO_SCALE"
            << "=smoke|default|paper to change)\n"
            << "|T|=" << ctx.suite_params.num_tasks << ", "
            << ctx.suite_params.num_etc << " ETC x " << ctx.suite_params.num_dag
            << " DAG, seed " << ctx.suite_params.master_seed << "\n\n";
  return ctx;
}

}  // namespace ahg::bench
