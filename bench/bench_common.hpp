#pragma once
// Shared plumbing for the table/figure reproduction benches: scale
// resolution (REPRO_SCALE env), suite construction, header printing, and the
// BenchReport timing helper every bench routes its wall-clock measurements
// through.

#include <fstream>
#include <iostream>
#include <string>
#include <type_traits>
#include <utility>

#include "support/env.hpp"
#include "support/jsonl.hpp"
#include "support/metrics.hpp"
#include "support/profile.hpp"
#include "support/stopwatch.hpp"
#include "workload/scenario.hpp"

namespace ahg::bench {

struct BenchContext {
  ReproScale scale;
  ScaleParams params;
  workload::SuiteParams suite_params;
};

inline BenchContext make_context(const std::string& bench_name) {
  BenchContext ctx;
  ctx.scale = repro_scale_from_env();
  ctx.params = scale_params(ctx.scale);

  ctx.suite_params.num_tasks = ctx.params.num_subtasks;
  ctx.suite_params.num_etc = ctx.params.num_etc;
  ctx.suite_params.num_dag = ctx.params.num_dag;
  ctx.suite_params.master_seed = ctx.params.master_seed;

  std::cout << "=== " << bench_name << " ===\n"
            << "scale: " << to_string(ctx.scale) << " (REPRO_SCALE"
            << "=smoke|default|paper to change)\n"
            << "|T|=" << ctx.suite_params.num_tasks << ", "
            << ctx.suite_params.num_etc << " ETC x " << ctx.suite_params.num_dag
            << " DAG, seed " << ctx.suite_params.master_seed << "\n\n";
  return ctx;
}

/// Central timing sink for one bench run. Every measured section goes
/// through timed_section() (or arrives pre-aggregated via merge() from the
/// runner's per-case phase metrics), so a single write_json() call dumps the
/// bench's complete, stably-named phase-time breakdown as BENCH_<name>.json
/// — counters plus "bench.<section>_seconds" / "slrh.*_seconds" /
/// "maxmax.*_seconds" / "tuner.*_seconds" histograms.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  obs::MetricsRegistry& metrics() noexcept { return metrics_; }

  /// Run `fn` and record its wall time into the histogram
  /// "bench.<section>_seconds". Returns fn's result.
  template <typename F>
  auto timed_section(const std::string& section, F&& fn) {
    obs::Histogram* hist =
        obs::phase_histogram(&metrics_, "bench." + section + "_seconds");
    const Stopwatch timer;
    if constexpr (std::is_void_v<std::invoke_result_t<F&>>) {
      fn();
      hist->observe(timer.seconds());
    } else {
      auto result = fn();
      hist->observe(timer.seconds());
      return result;
    }
  }

  /// Fold externally collected metrics in (e.g. a CaseHeuristicSummary's
  /// phase snapshot).
  void merge(const obs::MetricsSnapshot& snapshot) { metrics_.merge(snapshot); }

  /// Write BENCH_<name>.json into the working directory and return the path.
  std::string write_json() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream os(path);
    os << "{\"bench\":\"" << obs::JsonWriter::escape(name_) << "\",\"metrics\":";
    metrics_.snapshot().write_json(os);
    os << "}\n";
    return path;
  }

 private:
  std::string name_;
  obs::MetricsRegistry metrics_;
};

}  // namespace ahg::bench
