// Combined evaluation: one tuned pass over the (case x heuristic x scenario)
// grid, printing Figures 3-7 together. Use this instead of the individual
// figure benches when running at REPRO_SCALE=paper — the tuning pass
// dominates the cost and is shared across all five figures here.

#include <iostream>

#include "bench/bench_eval_common.hpp"

int main(int argc, char** argv) {
  if (const auto exit_code = ahg::bench::handle_bench_flags(argc, argv)) return *exit_code;
  using namespace ahg;
  const auto ctx = bench::make_context("Figures 3-7 combined (single tuned pass)");
  bench::BenchReport report("eval_all");
  auto cache = bench::make_cell_cache();
  const auto matrix = bench::run_matrix(ctx, /*verbose=*/true, &report, &cache);

  std::cout << "\n--- Figure 3: optimal weights (mean [min, max]) ---\n";
  for (const char param : {'a', 'b'}) {
    std::vector<std::string> headers = {"Case"};
    for (const auto kind : matrix.heuristics) headers.push_back(core::to_string(kind));
    TextTable table(std::move(headers));
    for (const auto grid_case : matrix.cases) {
      table.begin_row();
      table.cell(sim::to_string(grid_case));
      for (const auto kind : matrix.heuristics) {
        const auto& cell = matrix.cell(grid_case, kind);
        if (cell.feasible_count == 0) {
          table.cell(std::string("-"));
          continue;
        }
        const auto& acc = param == 'a' ? cell.alpha : cell.beta;
        table.cell(format_fixed(acc.mean(), 2) + " [" + format_fixed(acc.min(), 2) +
                   ", " + format_fixed(acc.max(), 2) + "]");
      }
    }
    std::cout << (param == 'a' ? "alpha:\n" : "beta:\n");
    table.render(std::cout);
  }

  std::cout << "\n--- Figure 4: T100 ---\n";
  bench::print_case_by_heuristic(std::cout, matrix, "T100",
                                 [](const auto& c) { return c.t100.mean(); }, 1);
  std::cout << "\n--- Figure 5: T100 / upper bound ---\n";
  bench::print_case_by_heuristic(std::cout, matrix, "T100/bound",
                                 [](const auto& c) { return c.vs_bound.mean(); }, 3);
  std::cout << "\n--- Figure 6: heuristic execution time [ms] ---\n";
  bench::print_case_by_heuristic(
      std::cout, matrix, "exec ms",
      [](const auto& c) { return c.wall_seconds.mean() * 1e3; }, 3);
  std::cout << "\n--- Figure 7: T100 per execution second ---\n";
  bench::print_case_by_heuristic(std::cout, matrix, "T100/s",
                                 [](const auto& c) { return c.value_metric.mean(); }, 0);
  std::cout << "\nphase times -> " << report.write_json() << "\n";
  return 0;
}
