#pragma once
// Shared evaluation-matrix plumbing for the Figure 3-7 benches: each figure
// is a different projection of the same tuned (case x heuristic x scenario)
// grid, so the benches share construction code (and the combined bench
// prints all figures from one pass).

#include <iostream>

#include "bench/bench_common.hpp"
#include "core/runner.hpp"
#include "support/table.hpp"

namespace ahg::bench {

inline core::EvaluationParams eval_params(const BenchContext& ctx, bool verbose) {
  core::EvaluationParams params;
  params.tuner.coarse_step = ctx.params.tune_coarse_step;
  params.tuner.fine_step = ctx.params.tune_fine_step;
  params.tuner.parallel = true;
  if (verbose) {
    params.progress = [](const std::string& line) { std::cout << "  " << line << "\n"; };
  }
  return params;
}

inline std::vector<sim::GridCase> all_cases() {
  return {sim::GridCase::A, sim::GridCase::B, sim::GridCase::C};
}

/// Tune the full (case x heuristic x scenario) grid. With a report attached,
/// the whole pass is timed into "bench.matrix_seconds" and every cell's
/// phase-time metrics (tuner sweeps, SLRH pool build / scoring / placement,
/// Max-Max selection) are merged into it for the BENCH_*.json dump.
inline core::EvaluationMatrix run_matrix(const BenchContext& ctx,
                                         bool verbose = false,
                                         BenchReport* report = nullptr) {
  const workload::ScenarioSuite suite(ctx.suite_params);
  const auto heuristics = core::reported_heuristics();
  std::cout << "tuning " << heuristics.size() << " heuristics x 3 cases x "
            << ctx.suite_params.num_etc * ctx.suite_params.num_dag
            << " scenarios (coarse step " << ctx.params.tune_coarse_step
            << ", fine step " << ctx.params.tune_fine_step << ") ...\n";
  const auto run = [&] {
    return core::evaluate_matrix(suite, all_cases(), heuristics,
                                 eval_params(ctx, verbose));
  };
  if (report == nullptr) return run();
  auto matrix = report->timed_section("matrix", run);
  for (const auto& cell : matrix.cells) report->merge(cell.phases);
  return matrix;
}

/// One row per case, one column per heuristic, values via `extract`.
template <typename Extract>
void print_case_by_heuristic(std::ostream& os, const core::EvaluationMatrix& matrix,
                             const std::string& value_name, Extract extract,
                             int precision = 2) {
  std::vector<std::string> headers = {"Case"};
  for (const auto kind : matrix.heuristics) headers.push_back(core::to_string(kind));
  TextTable table(std::move(headers));
  for (const auto grid_case : matrix.cases) {
    table.begin_row();
    table.cell(sim::to_string(grid_case));
    for (const auto kind : matrix.heuristics) {
      const auto& cell = matrix.cell(grid_case, kind);
      if (cell.feasible_count == 0) {
        table.cell(std::string("(no feasible)"));
      } else {
        table.cell(extract(cell), precision);
      }
    }
  }
  os << value_name << " (mean over feasible scenarios):\n";
  table.render(os);
}

}  // namespace ahg::bench
