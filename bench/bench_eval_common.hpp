#pragma once
// Shared evaluation-matrix plumbing for the Figure 3-7 benches: each figure
// is a different projection of the same tuned (case x heuristic x scenario)
// grid, so the benches share construction code (and the combined bench
// prints all figures from one pass).

#include <iostream>

#include "bench/bench_cache.hpp"
#include "bench/bench_common.hpp"
#include "core/runner.hpp"
#include "support/table.hpp"

namespace ahg::bench {

inline core::EvaluationParams eval_params(const BenchContext& ctx, bool verbose) {
  core::EvaluationParams params;
  params.tuner.coarse_step = ctx.params.tune_coarse_step;
  params.tuner.fine_step = ctx.params.tune_fine_step;
  params.tuner.parallel = true;
  if (verbose) {
    params.progress = [](const std::string& line) { std::cout << "  " << line << "\n"; };
  }
  return params;
}

inline std::vector<sim::GridCase> all_cases() {
  return {sim::GridCase::A, sim::GridCase::B, sim::GridCase::C};
}

/// Construct the default cell cache from the common bench flags / env.
inline CellCache make_cell_cache() {
  return CellCache(cache_dir_by_flags(), cache_enabled_by_flags());
}

/// Tune the full (case x heuristic x scenario) grid. With a report attached,
/// the whole pass is timed into "bench.matrix_seconds" and every cell's
/// phase-time metrics (tuner sweeps, SLRH pool build / scoring / placement,
/// Max-Max selection) are merged into it for the BENCH_*.json dump (plus
/// "cache_hits"/"cache_misses" meta entries when a cache is attached).
///
/// With a cache, each (case, heuristic) cell is looked up by its content
/// address first; only the missed cells are evaluated (still fanned out on
/// the pool via evaluate_cells) and then stored. Hits restore bit-identical
/// summaries, so downstream figures cannot tell a warm run from a cold one.
inline core::EvaluationMatrix run_matrix(const BenchContext& ctx,
                                         bool verbose = false,
                                         BenchReport* report = nullptr,
                                         CellCache* cache = nullptr) {
  const workload::ScenarioSuite suite(ctx.suite_params);
  const auto heuristics = core::reported_heuristics();
  const auto cases = all_cases();
  std::cout << "tuning " << heuristics.size() << " heuristics x " << cases.size()
            << " cases x " << ctx.suite_params.num_etc * ctx.suite_params.num_dag
            << " scenarios (coarse step " << ctx.params.tune_coarse_step
            << ", fine step " << ctx.params.tune_fine_step << ") ...\n";
  const core::EvaluationParams params = eval_params(ctx, verbose);

  const auto run = [&]() -> core::EvaluationMatrix {
    if (cache == nullptr || !cache->enabled()) {
      return core::evaluate_matrix(suite, cases, heuristics, params);
    }
    CellKeyParams key_params{ctx.suite_params, params.tuner, params.clock};
    core::EvaluationMatrix matrix;
    matrix.cases = cases;
    matrix.heuristics = heuristics;
    matrix.cells.resize(cases.size() * heuristics.size());
    std::vector<std::uint64_t> keys(matrix.cells.size());
    std::vector<core::CellRequest> missed;
    std::vector<std::size_t> missed_slots;
    for (std::size_t ci = 0; ci < cases.size(); ++ci) {
      for (std::size_t hi = 0; hi < heuristics.size(); ++hi) {
        const std::size_t slot = ci * heuristics.size() + hi;
        keys[slot] = cell_key(key_params, cases[ci], heuristics[hi]);
        if (auto hit = cache->load(keys[slot], cases[ci], heuristics[hi])) {
          matrix.cells[slot] = std::move(*hit);
        } else {
          missed.push_back(core::CellRequest{cases[ci], heuristics[hi]});
          missed_slots.push_back(slot);
        }
      }
    }
    if (!missed.empty()) {
      obs::MetricsRegistry exec_metrics;
      auto fresh = core::evaluate_cells(suite, missed, params, &exec_metrics);
      for (std::size_t i = 0; i < fresh.size(); ++i) {
        cache->store(keys[missed_slots[i]], fresh[i]);
        matrix.cells[missed_slots[i]] = std::move(fresh[i]);
      }
      matrix.exec = exec_metrics.snapshot();
    }
    return matrix;
  };

  core::EvaluationMatrix matrix;
  if (report == nullptr) {
    matrix = run();
  } else {
    matrix = report->timed_section("matrix", run);
    for (const auto& cell : matrix.cells) report->merge(cell.phases);
    report->merge(matrix.exec);
  }
  if (cache != nullptr && cache->enabled()) {
    std::cout << "cell cache (" << cache->dir() << "): " << cache->hits()
              << " hits, " << cache->misses() << " misses\n";
    if (report != nullptr) {
      report->meta("cache_hits", static_cast<std::int64_t>(cache->hits()));
      report->meta("cache_misses", static_cast<std::int64_t>(cache->misses()));
    }
  }
  return matrix;
}

/// One row per case, one column per heuristic, values via `extract`.
template <typename Extract>
void print_case_by_heuristic(std::ostream& os, const core::EvaluationMatrix& matrix,
                             const std::string& value_name, Extract extract,
                             int precision = 2) {
  std::vector<std::string> headers = {"Case"};
  for (const auto kind : matrix.heuristics) headers.push_back(core::to_string(kind));
  TextTable table(std::move(headers));
  for (const auto grid_case : matrix.cases) {
    table.begin_row();
    table.cell(sim::to_string(grid_case));
    for (const auto kind : matrix.heuristics) {
      const auto& cell = matrix.cell(grid_case, kind);
      if (cell.feasible_count == 0) {
        table.cell(std::string("(no feasible)"));
      } else {
        table.cell(extract(cell), precision);
      }
    }
  }
  os << value_name << " (mean over feasible scenarios):\n";
  table.render(os);
}

}  // namespace ahg::bench
