// Extension bench: the full baseline ladder. Places the paper's heuristics
// in context between classic comparators — Min-Min [IbK77] (the family
// Max-Max descends from), OLB, and a seeded random mapper as the floor.
// Fixed representative weights for the weighted heuristics (no tuner), so
// every mapper sees identical conditions.

#include <functional>
#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/baselines.hpp"
#include "core/heuristics.hpp"
#include "core/upper_bound.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  if (const auto exit_code = ahg::bench::handle_bench_flags(argc, argv)) return *exit_code;
  using namespace ahg;
  const auto ctx = bench::make_context("Extension: baseline ladder");
  const workload::ScenarioSuite suite(ctx.suite_params);
  const core::Weights weights = core::Weights::make(0.6, 0.3);

  struct Row {
    std::string name;
    std::function<core::MappingResult(const workload::Scenario&)> run;
  };
  const std::vector<Row> mappers = {
      {"SLRH-1",
       [&](const auto& s) {
         return core::run_heuristic(core::HeuristicKind::Slrh1, s, weights);
       }},
      {"SLRH-3",
       [&](const auto& s) {
         return core::run_heuristic(core::HeuristicKind::Slrh3, s, weights);
       }},
      {"Max-Max",
       [&](const auto& s) {
         return core::run_heuristic(core::HeuristicKind::MaxMax, s, weights);
       }},
      {"Min-Min", [](const auto& s) { return core::run_minmin(s); }},
      {"OLB", [](const auto& s) { return core::run_olb(s); }},
      {"Random", [](const auto& s) { return core::run_random(s); }},
  };

  for (const auto grid_case : {sim::GridCase::A, sim::GridCase::B, sim::GridCase::C}) {
    TextTable table({"mapper", "mean T100", "T100/bound", "complete", "within tau",
                     "mean ms"});
    for (const auto& mapper : mappers) {
      Accumulator t100;
      Accumulator ratio;
      Accumulator wall;
      std::size_t complete = 0;
      std::size_t within = 0;
      std::size_t total = 0;
      for (std::size_t etc = 0; etc < suite.num_etc(); ++etc) {
        for (std::size_t dag = 0; dag < suite.num_dag(); ++dag) {
          const auto scenario = suite.make(grid_case, etc, dag);
          const auto ub = core::compute_upper_bound(scenario);
          const auto result = mapper.run(scenario);
          ++total;
          if (result.complete) ++complete;
          if (result.within_tau) ++within;
          t100.add(static_cast<double>(result.t100));
          if (ub.bound > 0) {
            ratio.add(static_cast<double>(result.t100) / static_cast<double>(ub.bound));
          }
          wall.add(result.wall_seconds * 1e3);
        }
      }
      table.begin_row();
      table.cell(mapper.name);
      table.cell(t100.mean(), 1);
      table.cell(ratio.mean(), 3);
      table.cell(std::to_string(complete) + "/" + std::to_string(total));
      table.cell(std::to_string(within) + "/" + std::to_string(total));
      table.cell(wall.mean(), 2);
    }
    std::cout << to_string(grid_case) << " (fixed weights " << weights.str() << "):\n";
    table.render(std::cout);
    std::cout << '\n';
  }
  std::cout << "expected: SLRH-1 and Min-Min lead, OLB trails the informed "
               "mappers, Random is the floor\n";
  return 0;
}
