// Extension bench: the "truly dynamic" environment the paper's introduction
// motivates but the initial study simplifies away — subtask arrivals spread
// over the scheduling window (release times) and spurious communication-link
// outages. The dynamic SLRH-1 only sees subtasks after they arrive; the
// static Max-Max is granted clairvoyance (it sees everything up front) and
// only respects the release as an earliest-start bound.

#include <iostream>

#include "bench/bench_common.hpp"
#include "core/heuristics.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "workload/dynamics.hpp"

int main(int argc, char** argv) {
  if (const auto exit_code = ahg::bench::handle_bench_flags(argc, argv)) return *exit_code;
  using namespace ahg;
  const auto ctx =
      bench::make_context("Extension: arrival spread and link outages");
  const workload::ScenarioSuite suite(ctx.suite_params);
  const core::Weights weights = core::Weights::make(0.6, 0.3);

  std::cout << "--- subtask arrival spread (fraction of tau) ---\n";
  TextTable arrivals({"spread", "SLRH-1 T100", "SLRH-1 complete", "Max-Max T100",
                      "Max-Max complete"});
  for (const double spread : {0.0, 0.25, 0.5, 0.75}) {
    arrivals.begin_row();
    arrivals.cell(spread, 2);
    for (const auto kind : {core::HeuristicKind::Slrh1, core::HeuristicKind::MaxMax}) {
      Accumulator t100;
      std::size_t complete = 0;
      std::size_t total = 0;
      for (std::size_t etc = 0; etc < suite.num_etc(); ++etc) {
        for (std::size_t dag = 0; dag < suite.num_dag(); ++dag) {
          auto scenario = suite.make(sim::GridCase::A, etc, dag);
          workload::ReleaseParams params;
          params.spread_fraction = spread;
          scenario.releases = workload::generate_release_times(
              params, scenario.dag, scenario.tau, 1000 + etc * 10 + dag);
          const auto result = core::run_heuristic(kind, scenario, weights);
          ++total;
          if (result.complete && result.within_tau) ++complete;
          t100.add(static_cast<double>(result.t100));
        }
      }
      arrivals.cell(t100.mean(), 1);
      arrivals.cell(std::to_string(complete) + "/" + std::to_string(total));
    }
  }
  arrivals.render(std::cout);

  std::cout << "\n--- link outages per machine (mean 60 s each) ---\n";
  TextTable outages({"outages/machine", "SLRH-1 T100", "SLRH-1 complete",
                     "Max-Max T100", "Max-Max complete"});
  for (const double count : {0.0, 2.0, 4.0, 8.0}) {
    outages.begin_row();
    outages.cell(count, 0);
    for (const auto kind : {core::HeuristicKind::Slrh1, core::HeuristicKind::MaxMax}) {
      Accumulator t100;
      std::size_t complete = 0;
      std::size_t total = 0;
      for (std::size_t etc = 0; etc < suite.num_etc(); ++etc) {
        for (std::size_t dag = 0; dag < suite.num_dag(); ++dag) {
          auto scenario = suite.make(sim::GridCase::A, etc, dag);
          workload::OutageParams params;
          params.outages_per_machine = count;
          scenario.link_outages = workload::generate_link_outages(
              params, scenario.num_machines(), scenario.tau, 2000 + etc * 10 + dag);
          const auto result = core::run_heuristic(kind, scenario, weights);
          ++total;
          if (result.complete && result.within_tau) ++complete;
          t100.add(static_cast<double>(result.t100));
        }
      }
      outages.cell(t100.mean(), 1);
      outages.cell(std::to_string(complete) + "/" + std::to_string(total));
    }
  }
  outages.render(std::cout);

  std::cout << "\nexpected: T100 degrades gracefully with arrival spread "
               "(late arrivals compress the usable window) and is nearly "
               "immune to link outages (communication is a minor factor; "
               "placement plans around blackout windows)\n";
  return 0;
}
