// Extension bench: adaptive Lagrangian multipliers vs the "simplified"
// constant-weight approach (paper §IV names this simplification and §VIII
// calls for on-the-fly multiplier adjustment).
//
// For each grid case: the subgradient multiplier iteration (core/lagrangian)
// against the offline (alpha, beta) grid search the paper used, comparing
// best feasible T100 and the number of inner heuristic runs each needed.

#include <iostream>

#include "bench/bench_common.hpp"
#include "core/lagrangian.hpp"
#include "core/tuner.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  if (const auto exit_code = ahg::bench::handle_bench_flags(argc, argv)) return *exit_code;
  using namespace ahg;
  const auto ctx =
      bench::make_context("Extension: adaptive multipliers vs constant weights");
  const workload::ScenarioSuite suite(ctx.suite_params);

  TextTable table({"Case", "grid T100", "grid runs", "adaptive T100",
                   "adaptive runs", "adaptive/grid T100"});
  for (const auto grid_case : {sim::GridCase::A, sim::GridCase::B, sim::GridCase::C}) {
    Accumulator grid_t100;
    Accumulator grid_runs;
    Accumulator ada_t100;
    Accumulator ada_runs;
    for (std::size_t etc = 0; etc < suite.num_etc(); ++etc) {
      for (std::size_t dag = 0; dag < suite.num_dag(); ++dag) {
        const auto scenario = suite.make(grid_case, etc, dag);

        core::TunerParams tp;
        tp.coarse_step = ctx.params.tune_coarse_step;
        tp.fine_step = 0.0;
        tp.parallel = true;
        const auto grid = core::tune_weights(
            [&](const core::Weights& w) {
              return core::run_heuristic(core::HeuristicKind::Slrh1, scenario, w);
            },
            tp);

        core::LagrangianParams lp;
        lp.max_iterations = 20;
        const auto adaptive = core::run_lagrangian_iteration(scenario, lp);

        if (grid.found) {
          grid_t100.add(static_cast<double>(grid.best.t100));
          grid_runs.add(static_cast<double>(grid.evaluated.size()));
        }
        if (adaptive.found) {
          ada_t100.add(static_cast<double>(adaptive.best.t100));
          ada_runs.add(static_cast<double>(adaptive.runs));
        }
      }
    }
    table.begin_row();
    table.cell(to_string(grid_case));
    table.cell(grid_t100.mean(), 1);
    table.cell(grid_runs.mean(), 0);
    table.cell(ada_t100.mean(), 1);
    table.cell(ada_runs.mean(), 0);
    table.cell(grid_t100.mean() > 0 ? ada_t100.mean() / grid_t100.mean() : 0.0, 3);
  }
  table.render(std::cout);
  std::cout << "\nexpected: the multiplier iteration reaches a comparable "
               "(often better) T100 with several-fold fewer inner runs — the "
               "cost of the 'simplified' constant-multiplier design\n";
  return 0;
}
