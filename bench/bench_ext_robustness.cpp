// Extension bench: robustness of mappings to execution-time estimation
// error. Mappings are produced against the estimated ETC, then replayed with
// perturbed actual durations (dispatch decisions fixed, timing floating).
// Reports the fraction of replays that stay feasible and the AET stretch,
// per noise level, for SLRH-1 and Max-Max.

#include <iostream>

#include "bench/bench_common.hpp"
#include "core/heuristics.hpp"
#include "core/robustness.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace ahg;
  const auto ctx = bench::make_context("Extension: estimation-error robustness");
  const workload::ScenarioSuite suite(ctx.suite_params);
  const core::Weights weights = core::Weights::make(0.6, 0.3);
  constexpr int kReplications = 5;

  TextTable table({"noise cv", "heuristic", "robust replays", "mean AET stretch",
                   "worst AET stretch"});
  for (const double cv : {0.05, 0.1, 0.2, 0.4}) {
    for (const auto kind : {core::HeuristicKind::Slrh1, core::HeuristicKind::MaxMax}) {
      std::size_t robust = 0;
      std::size_t total = 0;
      Accumulator stretch;
      for (std::size_t etc = 0; etc < suite.num_etc(); ++etc) {
        for (std::size_t dag = 0; dag < suite.num_dag(); ++dag) {
          const auto scenario = suite.make(sim::GridCase::A, etc, dag);
          const auto mapping = core::run_heuristic(kind, scenario, weights);
          if (!mapping.complete) continue;
          for (int rep = 0; rep < kReplications; ++rep) {
            core::NoiseParams noise;
            noise.cv = cv;
            const auto actual = core::perturb_etc(
                scenario, noise,
                9000 + etc * 100 + dag * 10 + static_cast<std::uint64_t>(rep));
            const auto replayed =
                core::replay_with_actuals(scenario, actual, *mapping.schedule);
            ++total;
            if (replayed.robust()) ++robust;
            if (replayed.executed && replayed.planned_aet > 0) {
              stretch.add(static_cast<double>(replayed.aet) /
                          static_cast<double>(replayed.planned_aet));
            }
          }
        }
      }
      table.begin_row();
      table.cell(cv, 2);
      table.cell(to_string(kind));
      table.cell(std::to_string(robust) + "/" + std::to_string(total));
      table.cell(stretch.mean(), 3);
      table.cell(stretch.max(), 3);
    }
  }
  table.render(std::cout);
  std::cout << "\nexpected: feasibility degrades gracefully with noise; "
               "mappings with more slack (lower planned AET/tau) survive "
               "larger estimation errors\n";
  return 0;
}
