// Extension bench: robustness of mappings to two failure models.
//
//  1. Estimation error — mappings are produced against the estimated ETC,
//     then replayed with perturbed actual durations (dispatch decisions
//     fixed, timing floating). Reports the fraction of replays that stay
//     feasible and the AET stretch, per noise level, for SLRH-1 and Max-Max.
//  2. Machine churn — machines walk out of range / die mid-run per a
//     generated presence trace. SLRH reacts at the next timestep (orphans
//     re-mapped, departed batteries forfeited); static Max-Max replays its
//     fixed schedule against the same trace and loses the departed machines'
//     work. Emits BENCH_churn.json.

#include <iostream>
#include <sstream>

#include "bench/bench_common.hpp"
#include "core/churn.hpp"
#include "core/heuristics.hpp"
#include "core/robustness.hpp"
#include "core/upper_bound.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "workload/dynamics.hpp"

namespace {

std::string rate_label(double rate) {
  std::ostringstream oss;
  oss << rate;
  return oss.str();
}

}  // namespace

int main(int argc, char** argv) {
  if (const auto exit_code = ahg::bench::handle_bench_flags(argc, argv)) return *exit_code;
  using namespace ahg;
  const auto ctx = bench::make_context("Extension: estimation-error robustness");
  const workload::ScenarioSuite suite(ctx.suite_params);
  const core::Weights weights = core::Weights::make(0.6, 0.3);
  constexpr int kReplications = 5;

  TextTable table({"noise cv", "heuristic", "robust replays", "mean AET stretch",
                   "worst AET stretch"});
  for (const double cv : {0.05, 0.1, 0.2, 0.4}) {
    for (const auto kind : {core::HeuristicKind::Slrh1, core::HeuristicKind::MaxMax}) {
      std::size_t robust = 0;
      std::size_t total = 0;
      Accumulator stretch;
      for (std::size_t etc = 0; etc < suite.num_etc(); ++etc) {
        for (std::size_t dag = 0; dag < suite.num_dag(); ++dag) {
          const auto scenario = suite.make(sim::GridCase::A, etc, dag);
          const auto mapping = core::run_heuristic(kind, scenario, weights);
          if (!mapping.complete) continue;
          for (int rep = 0; rep < kReplications; ++rep) {
            core::NoiseParams noise;
            noise.cv = cv;
            const auto actual = core::perturb_etc(
                scenario, noise,
                9000 + etc * 100 + dag * 10 + static_cast<std::uint64_t>(rep));
            const auto replayed =
                core::replay_with_actuals(scenario, actual, *mapping.schedule);
            ++total;
            if (replayed.robust()) ++robust;
            if (replayed.executed && replayed.planned_aet > 0) {
              stretch.add(static_cast<double>(replayed.aet) /
                          static_cast<double>(replayed.planned_aet));
            }
          }
        }
      }
      table.begin_row();
      table.cell(cv, 2);
      table.cell(to_string(kind));
      table.cell(std::to_string(robust) + "/" + std::to_string(total));
      table.cell(stretch.mean(), 3);
      table.cell(stretch.max(), 3);
    }
  }
  table.render(std::cout);
  std::cout << "\nexpected: feasibility degrades gracefully with noise; "
               "mappings with more slack (lower planned AET/tau) survive "
               "larger estimation errors\n";

  // --- machine-churn sweep -------------------------------------------------
  std::cout << "\n=== Extension: machine-churn robustness ===\n";
  bench::BenchReport churn_report("churn");
  constexpr int kChurnReps = 3;
  struct ChurnRow {
    const char* key;    // gauge name component
    const char* label;  // table label
  };
  const ChurnRow rows[] = {
      {"slrh1", "SLRH-1"},
      {"slrh2", "SLRH-2"},
      {"slrh3", "SLRH-3"},
      {"slrh1_degrade", "SLRH-1 (degrade)"},
      {"maxmax_static", "Max-Max (static)"},
  };
  const core::SlrhVariant variants[] = {core::SlrhVariant::V1,
                                        core::SlrhVariant::V2,
                                        core::SlrhVariant::V3};

  TextTable churn_table({"dep/machine", "heuristic", "completed frac", "T100 frac",
                         "mean AET (s)"});
  Accumulator bound_acc;
  for (const double rate : {0.5, 1.0, 2.0, 4.0}) {
    Accumulator completed[5];
    Accumulator t100[5];
    Accumulator aet_seconds[5];
    Accumulator departures;
    for (std::size_t etc = 0; etc < suite.num_etc(); ++etc) {
      for (std::size_t dag = 0; dag < suite.num_dag(); ++dag) {
        const auto base = suite.make(sim::GridCase::A, etc, dag);
        const double num_tasks = static_cast<double>(base.num_tasks());
        if (rate == 0.5) {  // churn-independent: record once
          bound_acc.add(static_cast<double>(core::compute_upper_bound(base).bound) /
                        num_tasks);
        }
        // Max-Max plans churn-blind, against the base scenario.
        const auto maxmax =
            core::run_heuristic(core::HeuristicKind::MaxMax, base, weights);
        for (int rep = 0; rep < kChurnReps; ++rep) {
          workload::ChurnParams churn;
          churn.departures_per_machine = rate;
          const auto trace = workload::generate_machine_churn(
              churn, base.num_machines(), base.tau,
              7000 + etc * 100 + dag * 10 + static_cast<std::uint64_t>(rep));
          auto scenario = base;
          scenario.machine_windows = trace.windows;
          departures.add(static_cast<double>(trace.num_departures()));

          const auto record = [&](std::size_t row, std::size_t done,
                                  std::size_t primary, Cycles aet) {
            completed[row].add(static_cast<double>(done) / num_tasks);
            t100[row].add(static_cast<double>(primary) / num_tasks);
            aet_seconds[row].add(seconds_from_cycles(aet));
          };
          for (std::size_t v = 0; v < 3; ++v) {
            core::SlrhParams params;
            params.variant = variants[v];
            params.weights = weights;
            const auto outcome = churn_report.timed_section("slrh_churn", [&] {
              return core::run_slrh_with_churn(scenario, params);
            });
            record(v, outcome.result.assigned, outcome.result.t100,
                   outcome.result.aet);
          }
          {
            core::SlrhParams params;
            params.variant = core::SlrhVariant::V1;
            params.weights = weights;
            const auto outcome = churn_report.timed_section("slrh_churn", [&] {
              return core::run_slrh_with_churn(scenario, params,
                                               core::ChurnRecovery::Degrade);
            });
            record(3, outcome.result.assigned, outcome.result.t100,
                   outcome.result.aet);
          }
          if (maxmax.complete) {
            const auto replay = churn_report.timed_section("static_replay", [&] {
              return core::replay_static_under_churn(scenario, *maxmax.schedule);
            });
            record(4, replay.completed, replay.t100_completed, replay.aet);
          }
        }
      }
    }
    const std::string label = rate_label(rate);
    for (std::size_t r = 0; r < 5; ++r) {
      churn_table.begin_row();
      churn_table.cell(label);
      churn_table.cell(rows[r].label);
      churn_table.cell(completed[r].mean(), 3);
      churn_table.cell(t100[r].mean(), 3);
      churn_table.cell(aet_seconds[r].mean(), 1);
      const std::string prefix = "churn.rate_" + label + "." + rows[r].key;
      churn_report.metrics().gauge(prefix + ".completed_fraction").set(completed[r].mean());
      churn_report.metrics().gauge(prefix + ".t100_fraction").set(t100[r].mean());
      churn_report.metrics().gauge(prefix + ".aet_seconds").set(aet_seconds[r].mean());
    }
    churn_report.metrics()
        .gauge("churn.rate_" + label + ".mean_departures")
        .set(departures.mean());
  }
  churn_report.metrics().gauge("churn.upper_bound_t100_fraction").set(bound_acc.mean());
  churn_table.render(std::cout);
  std::cout << "\nexpected: reactive SLRH holds its completed fraction as "
               "departures climb while the static Max-Max replay sheds the "
               "departed machines' work; at >= 2 departures/machine the gap "
               "is strict\n"
            << "phase times -> " << churn_report.write_json() << "\n";
  return 0;
}
