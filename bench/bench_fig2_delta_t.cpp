// Figure 2 reproduction: impact of the dT timestep parameter on SLRH-1.
//
// The paper runs SLRH-1 on ETC 0 with two DAGs in Case A and sweeps dT,
// reporting (a) T100 and (b) heuristic execution time. Expected shape:
// T100 roughly flat for small-to-mid dT, declining for large dT (idle gaps);
// execution time rising steeply as dT -> 1 (many no-op sweeps).

#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/slrh.hpp"
#include "support/event_log.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  if (const auto exit_code = ahg::bench::handle_bench_flags(argc, argv)) return *exit_code;
  using namespace ahg;
  const auto ctx = bench::make_context("Figure 2: impact of dT on SLRH-1");
  const workload::ScenarioSuite suite(ctx.suite_params);
  bench::BenchReport report("fig2_delta_t");
  obs::ForwardSink phase_sink(&report.metrics(), nullptr);

  const std::vector<Cycles> dts = {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000};
  const std::size_t num_dags = std::min<std::size_t>(2, suite.num_dag());

  TextTable table({"dT (cycles)", "T100 (DAG 0)", "exec ms (DAG 0)",
                   "T100 (DAG 1)", "exec ms (DAG 1)"});
  for (const Cycles dt : dts) {
    table.begin_row();
    table.cell(static_cast<long long>(dt));
    for (std::size_t dag = 0; dag < 2; ++dag) {
      if (dag >= num_dags) {
        table.cell(std::string("-"));
        table.cell(std::string("-"));
        continue;
      }
      const auto scenario = suite.make(sim::GridCase::A, 0, dag);
      core::SlrhParams params;
      params.variant = core::SlrhVariant::V1;
      params.weights = core::Weights::make(0.7, 0.25);
      params.dt = dt;
      params.horizon = std::max<Cycles>(100, dt);
      params.sink = &phase_sink;
      const auto result = report.timed_section(
          "slrh_run", [&] { return core::run_slrh(scenario, params); });
      table.cell(static_cast<long long>(result.t100));
      table.cell(result.wall_seconds * 1e3, 2);
    }
  }
  table.render(std::cout);
  std::cout << "\npaper shape: T100 insensitive to dT over mid-range values; "
               "execution time strongly dependent for small dT\n"
            << "(paper selected dT = 10 cycles, H = 100 cycles)\n"
            << "phase times -> " << report.write_json() << "\n";
  return 0;
}
