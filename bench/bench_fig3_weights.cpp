// Figure 3 reproduction: sensitivity of the heuristics to the objective
// function weights — the average / min / max of the optimal (alpha, beta)
// values per grid case, for SLRH-1, SLRH-3 and Max-Max.
//
// Paper shape: SLRH-1 and SLRH-3 cluster tightly (essentially identical
// optimal sets), with the optimal alpha shifting by >50 % in Case C and its
// range shrinking; beta is nearly constant across all cases; Max-Max shows
// very wide optimal ranges with no correlation to ETC/DAG.

#include <iostream>

#include "bench/bench_eval_common.hpp"

int main(int argc, char** argv) {
  if (const auto exit_code = ahg::bench::handle_bench_flags(argc, argv)) return *exit_code;
  using namespace ahg;
  const auto ctx = bench::make_context("Figure 3: optimal objective-function weights");
  bench::BenchReport report("fig3_weights");
  auto cache = bench::make_cell_cache();
  const auto matrix = bench::run_matrix(ctx, /*verbose=*/false, &report, &cache);

  for (const char param : {'a', 'b'}) {
    std::cout << "\noptimal " << (param == 'a' ? "alpha" : "beta")
              << " per case — mean [min, max] over feasible scenarios:\n";
    std::vector<std::string> headers = {"Case"};
    for (const auto kind : matrix.heuristics) headers.push_back(core::to_string(kind));
    TextTable table(std::move(headers));
    for (const auto grid_case : matrix.cases) {
      table.begin_row();
      table.cell(sim::to_string(grid_case));
      for (const auto kind : matrix.heuristics) {
        const auto& cell = matrix.cell(grid_case, kind);
        if (cell.feasible_count == 0) {
          table.cell(std::string("(no feasible)"));
          continue;
        }
        const auto& acc = param == 'a' ? cell.alpha : cell.beta;
        table.cell(format_fixed(acc.mean(), 2) + " [" + format_fixed(acc.min(), 2) +
                   ", " + format_fixed(acc.max(), 2) + "]");
      }
    }
    table.render(std::cout);
  }

  std::cout << "\npaper shape: SLRH optima cluster tightly (alpha shifts and "
               "tightens in Case C; beta nearly constant);\n"
               "Max-Max optima spread widely with no ETC/DAG correlation\n"
            << "phase times -> " << report.write_json() << "\n";
  return 0;
}
