// Figure 4 reproduction: number of primary-version subtasks mapped (T100)
// per heuristic per grid case, averaged over all (ETC, DAG) scenarios at
// each scenario's tuned optimal weights.
//
// Paper shape: SLRH-1 ~ Max-Max in Case A, both well above SLRH-3; machine
// loss degrades SLRH-1 faster than Max-Max; SLRH-3 stays flat (from a low
// base).

#include <iostream>

#include "bench/bench_eval_common.hpp"

int main(int argc, char** argv) {
  if (const auto exit_code = ahg::bench::handle_bench_flags(argc, argv)) return *exit_code;
  using namespace ahg;
  const auto ctx = bench::make_context("Figure 4: T100 per heuristic per case");
  bench::BenchReport report("fig4_t100");
  auto cache = bench::make_cell_cache();
  const auto matrix = bench::run_matrix(ctx, /*verbose=*/false, &report, &cache);
  std::cout << '\n';
  bench::print_case_by_heuristic(
      std::cout, matrix, "T100",
      [](const core::CaseHeuristicSummary& cell) { return cell.t100.mean(); }, 1);
  std::cout << "\n(of |T| = " << ctx.suite_params.num_tasks << " subtasks)\n"
            << "paper shape: SLRH-1 ~ Max-Max >> SLRH-3 in Case A; both "
               "leaders drop on machine loss, SLRH-1 faster\n"
            << "phase times -> " << report.write_json() << "\n";
  return 0;
}
