// Figure 5 reproduction: heuristic T100 relative to the equivalent-
// computing-cycles upper bound, per heuristic per grid case.
//
// Paper shape: SLRH-1 above 60 % of the bound in Case A and slightly ahead
// of Max-Max; both drop markedly on machine loss with the impact roughly
// independent of which machine type is lost; SLRH-3 poor in Case A but
// comparatively insensitive to loss.

#include <iostream>

#include "bench/bench_eval_common.hpp"

int main(int argc, char** argv) {
  if (const auto exit_code = ahg::bench::handle_bench_flags(argc, argv)) return *exit_code;
  using namespace ahg;
  const auto ctx =
      bench::make_context("Figure 5: T100 relative to the upper bound");
  bench::BenchReport report("fig5_vs_bound");
  auto cache = bench::make_cell_cache();
  const auto matrix = bench::run_matrix(ctx, /*verbose=*/false, &report, &cache);
  std::cout << '\n';
  bench::print_case_by_heuristic(
      std::cout, matrix, "T100 / upper bound",
      [](const core::CaseHeuristicSummary& cell) { return cell.vs_bound.mean(); }, 3);
  std::cout << "\npaper shape: SLRH-1 > 0.60 in Case A, slightly ahead of "
               "Max-Max; both drop on machine loss independent of machine "
               "type; SLRH-3 low but loss-insensitive\n"
            << "phase times -> " << report.write_json() << "\n";
  return 0;
}
