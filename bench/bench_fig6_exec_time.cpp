// Figure 6 reproduction: average heuristic execution (wall-clock) time to
// map all subtasks, per heuristic per grid case, at tuned weights.
//
// Absolute values are not comparable to the paper's (Python 2.3.3 on a
// 2.1 GHz Xeon vs compiled C++ here — the paper itself anticipates large
// compiled-language speedups); the reproduced claim is the SHAPE: Max-Max
// roughly constant across cases, SLRH-3 inflating as machines are lost,
// SLRH-1 cheap — cheaper still when a fast machine is lost.

#include <iostream>

#include "bench/bench_eval_common.hpp"

int main(int argc, char** argv) {
  if (const auto exit_code = ahg::bench::handle_bench_flags(argc, argv)) return *exit_code;
  using namespace ahg;
  const auto ctx = bench::make_context("Figure 6: heuristic execution time");
  bench::BenchReport report("fig6_exec_time");
  auto cache = bench::make_cell_cache();
  const auto matrix = bench::run_matrix(ctx, /*verbose=*/false, &report, &cache);
  std::cout << '\n';
  bench::print_case_by_heuristic(
      std::cout, matrix, "heuristic execution time [ms]",
      [](const core::CaseHeuristicSummary& cell) {
        return cell.wall_seconds.mean() * 1e3;
      },
      3);
  std::cout << "\npaper shape: Max-Max flat across cases; SLRH-3 rises on "
               "machine loss; SLRH-1 smallest, dropping when a fast machine "
               "is lost\n"
            << "phase times -> " << report.write_json() << "\n";
  return 0;
}
