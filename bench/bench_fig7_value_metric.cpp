// Figure 7 reproduction: the paper's simple dynamic-value metric — T100 per
// unit of heuristic execution time — per heuristic per grid case.
//
// Paper shape: SLRH-1 far above SLRH-3 everywhere; SLRH-1 ~ Max-Max in
// Cases A and C, pulling clearly ahead when a slow machine is lost (Case B)
// thanks to its faster execution.

#include <iostream>

#include "bench/bench_eval_common.hpp"

int main(int argc, char** argv) {
  if (const auto exit_code = ahg::bench::handle_bench_flags(argc, argv)) return *exit_code;
  using namespace ahg;
  const auto ctx =
      bench::make_context("Figure 7: T100 per second of heuristic execution time");
  bench::BenchReport report("fig7_value_metric");
  auto cache = bench::make_cell_cache();
  const auto matrix = bench::run_matrix(ctx, /*verbose=*/false, &report, &cache);
  std::cout << '\n';
  bench::print_case_by_heuristic(
      std::cout, matrix, "T100 / heuristic execution seconds",
      [](const core::CaseHeuristicSummary& cell) { return cell.value_metric.mean(); },
      0);
  std::cout << "\npaper shape: SLRH-1 >> SLRH-3 everywhere; SLRH-1 ~ Max-Max "
               "in Case A, ahead on machine loss (execution-speed advantage)\n"
            << "phase times -> " << report.write_json() << "\n";
  return 0;
}
