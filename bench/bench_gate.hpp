#pragma once
// The bench regression gate (pure logic; bench_check.cpp is the CLI).
//
// A BENCH_<name>.json dump is flattened into a scalar metric map
// ("counter:NAME", "gauge:NAME", "hist_mean:NAME", "hist_count:NAME") and
// compared against a committed baseline with per-metric relative tolerances.
// Wall-clock metrics (any name containing "_seconds") gate in one direction
// only — getting FASTER is never a regression — and carry a small absolute
// floor so sub-millisecond sections don't flap on scheduler noise. Everything
// else (counters, ratios, histogram shapes) gates two-sided: a count that
// silently changes in either direction means the bench measured something
// different, which is exactly what the gate exists to catch.
//
// Baseline files are plain JSON, committed under bench/baselines/, and every
// field is editable by hand — bump one metric's tolerance without touching
// the tool.

#include <algorithm>
#include <cmath>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "support/contract.hpp"
#include "support/jsonl.hpp"
#include "support/metrics.hpp"

namespace ahg::bench {

inline constexpr int kGateSchemaVersion = 1;

enum class GateDirection : std::uint8_t {
  Upper,     ///< regression only when fresh exceeds baseline (wall-clock)
  TwoSided,  ///< regression when fresh drifts either way (counts, ratios)
};

inline const char* to_string(GateDirection d) noexcept {
  return d == GateDirection::Upper ? "upper" : "two-sided";
}

/// One gated metric in a baseline file.
struct GateMetric {
  double value = 0.0;
  double tolerance = 0.25;  ///< relative, 0.25 = +/-25%
  GateDirection direction = GateDirection::TwoSided;
};

struct GateBaseline {
  std::string bench;  ///< must match the fresh dump's "bench" field
  double default_tolerance = 0.25;
  std::map<std::string, GateMetric> metrics;
};

/// Wall-clock metric names gate Upper; everything else TwoSided.
inline GateDirection default_direction(std::string_view key) noexcept {
  return key.find("_seconds") != std::string_view::npos ? GateDirection::Upper
                                                        : GateDirection::TwoSided;
}

/// Flatten a metrics snapshot into the gate's scalar map. Non-finite values
/// (a parallel speedup against a ~0 denominator) are skipped — they cannot
/// be gated with a relative tolerance.
inline std::map<std::string, double> flatten_metrics(const obs::MetricsSnapshot& snapshot) {
  std::map<std::string, double> flat;
  const auto put = [&](std::string key, double value) {
    if (std::isfinite(value)) flat.emplace(std::move(key), value);
  };
  for (const auto& c : snapshot.counters) {
    put("counter:" + c.name, static_cast<double>(c.value));
  }
  for (const auto& g : snapshot.gauges) put("gauge:" + g.name, g.value);
  for (const auto& h : snapshot.histograms) {
    put("hist_mean:" + h.name, h.mean());
    put("hist_count:" + h.name, static_cast<double>(h.count));
  }
  return flat;
}

/// Build a baseline from a fresh snapshot. `seconds_tolerance`, when
/// non-negative, overrides `tolerance` for Upper (wall-clock) metrics —
/// timing baselines recorded on one machine need more headroom than exact
/// counts when checked on another.
inline GateBaseline make_baseline(std::string bench, const obs::MetricsSnapshot& snapshot,
                                  double tolerance = 0.25,
                                  double seconds_tolerance = -1.0) {
  AHG_EXPECTS_MSG(tolerance >= 0.0, "gate tolerance must be non-negative");
  GateBaseline baseline;
  baseline.bench = std::move(bench);
  baseline.default_tolerance = tolerance;
  for (const auto& [key, value] : flatten_metrics(snapshot)) {
    GateMetric metric;
    metric.value = value;
    metric.direction = default_direction(key);
    metric.tolerance = metric.direction == GateDirection::Upper && seconds_tolerance >= 0.0
                           ? seconds_tolerance
                           : tolerance;
    baseline.metrics.emplace(key, metric);
  }
  return baseline;
}

inline void write_baseline(std::ostream& os, const GateBaseline& baseline) {
  obs::JsonWriter json;
  json.begin_object();
  json.field("bench", baseline.bench);
  json.field("gate_schema", static_cast<std::int64_t>(kGateSchemaVersion));
  json.field("default_tolerance", baseline.default_tolerance);
  json.key("metrics");
  json.begin_object();
  for (const auto& [key, metric] : baseline.metrics) {
    json.key(key);
    json.begin_object();
    json.field("value", metric.value);
    json.field("tolerance", metric.tolerance);
    json.field("direction", to_string(metric.direction));
    json.end_object();
  }
  json.end_object();
  json.end_object();
  os << json.str() << "\n";
}

/// Inverse of write_baseline. Throws PreconditionError on a malformed file.
inline GateBaseline parse_baseline(const obs::JsonValue& root) {
  AHG_EXPECTS_MSG(root.is_object(), "gate baseline must be a JSON object");
  GateBaseline baseline;
  baseline.bench = root.get_string("bench");
  baseline.default_tolerance = root.get_double("default_tolerance", 0.25);
  const obs::JsonValue* metrics = root.find("metrics");
  AHG_EXPECTS_MSG(metrics != nullptr && metrics->is_object(),
                  "gate baseline needs a \"metrics\" object");
  for (const auto& [key, entry] : metrics->as_object()) {
    GateMetric metric;
    metric.value = entry.get_double("value");
    metric.tolerance = entry.get_double("tolerance", baseline.default_tolerance);
    metric.direction = entry.get_string("direction") == "upper"
                           ? GateDirection::Upper
                           : GateDirection::TwoSided;
    baseline.metrics.emplace(key, metric);
  }
  return baseline;
}

enum class GateVerdict : std::uint8_t {
  Ok,
  Regression,       ///< outside tolerance in a gated direction
  MissingFresh,     ///< baseline metric absent from the fresh dump
  MissingBaseline,  ///< fresh metric the baseline has never seen
};

inline const char* to_string(GateVerdict v) noexcept {
  switch (v) {
    case GateVerdict::Ok: return "ok";
    case GateVerdict::Regression: return "REGRESSION";
    case GateVerdict::MissingFresh: return "MISSING(fresh)";
    case GateVerdict::MissingBaseline: return "MISSING(baseline)";
  }
  return "?";
}

struct GateFinding {
  std::string metric;
  double baseline = 0.0;
  double fresh = 0.0;
  double tolerance = 0.0;
  GateDirection direction = GateDirection::TwoSided;
  GateVerdict verdict = GateVerdict::Ok;
};

struct GateResult {
  std::vector<GateFinding> findings;  ///< one per metric, sorted by name
  std::size_t regressions = 0;
  std::size_t missing = 0;

  bool ok(bool allow_missing) const noexcept {
    return regressions == 0 && (allow_missing || missing == 0);
  }
};

/// Where a bench's committed baseline lives under `dir`. Shared by the
/// CLI's check and --update modes so they can never disagree on the path.
inline std::string baseline_path(const std::string& dir, const std::string& bench) {
  return dir + "/BENCH_" + bench + ".json";
}

/// Gate verdict for a fresh dump whose baseline file does not exist yet:
/// every fresh metric is MissingBaseline. A brand-new bench then flows
/// through the normal finding machinery — failing by default with an
/// actionable fix (run --update to seed the baseline), tolerated under
/// --allow-missing — instead of dying on a file-open error.
inline GateResult check_without_baseline(const obs::MetricsSnapshot& fresh) {
  GateResult result;
  for (const auto& [key, value] : flatten_metrics(fresh)) {
    GateFinding finding;
    finding.metric = key;
    finding.fresh = value;
    finding.verdict = GateVerdict::MissingBaseline;
    ++result.missing;
    result.findings.push_back(std::move(finding));
  }
  return result;
}

/// Compare a fresh snapshot against a baseline. `seconds_floor` is the
/// absolute slack (in seconds) added on top of the relative tolerance for
/// Upper metrics, so tiny sections don't gate on nanosecond noise.
inline GateResult check_bench(const GateBaseline& baseline,
                              const obs::MetricsSnapshot& fresh,
                              double seconds_floor = 5e-3) {
  GateResult result;
  const std::map<std::string, double> flat = flatten_metrics(fresh);

  for (const auto& [key, metric] : baseline.metrics) {
    GateFinding finding;
    finding.metric = key;
    finding.baseline = metric.value;
    finding.tolerance = metric.tolerance;
    finding.direction = metric.direction;
    const auto it = flat.find(key);
    if (it == flat.end()) {
      finding.verdict = GateVerdict::MissingFresh;
      ++result.missing;
      result.findings.push_back(std::move(finding));
      continue;
    }
    finding.fresh = it->second;
    const double slack = std::abs(metric.value) * metric.tolerance;
    if (metric.direction == GateDirection::Upper) {
      if (finding.fresh > metric.value + slack + seconds_floor) {
        finding.verdict = GateVerdict::Regression;
        ++result.regressions;
      }
    } else if (std::abs(finding.fresh - metric.value) > slack + 1e-12) {
      finding.verdict = GateVerdict::Regression;
      ++result.regressions;
    }
    result.findings.push_back(std::move(finding));
  }

  for (const auto& [key, value] : flat) {
    if (baseline.metrics.find(key) != baseline.metrics.end()) continue;
    GateFinding finding;
    finding.metric = key;
    finding.fresh = value;
    finding.verdict = GateVerdict::MissingBaseline;
    // A fresh-only wall-clock phase (Upper direction) is a new timing
    // breakdown the baseline predates — e.g. slrh.sweep_parallel_seconds
    // appearing in dumps gated against a pre-accelerator baseline. It is
    // reported for visibility but cannot hide a regression (the phase rolls
    // up into a gated *_run_seconds total), so it does not fail the gate.
    // Fresh-only TwoSided metrics still count: a new correctness counter
    // the baseline has never seen deserves a deliberate --update.
    if (default_direction(key) != GateDirection::Upper) ++result.missing;
    result.findings.push_back(std::move(finding));
  }

  std::sort(result.findings.begin(), result.findings.end(),
            [](const GateFinding& a, const GateFinding& b) { return a.metric < b.metric; });
  return result;
}

}  // namespace ahg::bench
