// Campaign-engine benchmark: the same (case x heuristic x scenario) tuned
// grid run three ways — strictly serial, parallel cold (cell fan-out +
// nested tuner sweeps on the work-stealing pool, populating the cell
// cache), and parallel warm (every cell served from the cache). Writes
// BENCH_matrix.json with the three wall-clock times, the parallel speedup,
// and the warm run's hit/miss counts, and cross-checks that all three
// matrices agree on every deterministic field (the determinism test asserts
// the same bit-for-bit; this bench keeps the check in the measured binary).

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "bench/bench_eval_common.hpp"

namespace {

using namespace ahg;

/// Deterministic-field equality between two matrices (wall-clock-derived
/// values excluded: wall_seconds and the Fig. 7 value metric are measured
/// time, not schedule content). Exits nonzero on the first mismatch.
void expect_same_results(const core::EvaluationMatrix& want,
                         const core::EvaluationMatrix& got, const char* label) {
  bool ok = want.cells.size() == got.cells.size();
  for (std::size_t i = 0; ok && i < want.cells.size(); ++i) {
    const auto& a = want.cells[i];
    const auto& b = got.cells[i];
    ok = a.grid_case == b.grid_case && a.heuristic == b.heuristic &&
         a.feasible_count == b.feasible_count &&
         a.scenarios.size() == b.scenarios.size();
    for (std::size_t s = 0; ok && s < a.scenarios.size(); ++s) {
      const auto& x = a.scenarios[s];
      const auto& y = b.scenarios[s];
      ok = x.etc_index == y.etc_index && x.dag_index == y.dag_index &&
           x.upper_bound == y.upper_bound && x.tune.found == y.tune.found &&
           x.tune.alpha == y.tune.alpha && x.tune.beta == y.tune.beta &&
           x.tune.best.t100 == y.tune.best.t100 &&
           x.tune.best.aet == y.tune.best.aet &&
           x.tune.best.tec == y.tune.best.tec;
    }
  }
  if (!ok) {
    std::cerr << "FATAL: " << label
              << " diverged from the serial matrix — determinism bug\n";
    std::exit(1);
  }
  std::cout << label << ": results identical to serial\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (const auto exit_code = ahg::bench::handle_bench_flags(argc, argv)) {
    return *exit_code;
  }
  const auto ctx = bench::make_context("Campaign engine: serial vs parallel vs cached");
  bench::BenchReport report("matrix");

  // A dedicated cache dir, cleared up front, so "cold" is honest even when
  // a previous bench run populated the default cache.
  const std::string cache_dir =
      (std::filesystem::path(bench::cache_dir_by_flags()) / "matrix_bench").string();
  std::filesystem::remove_all(cache_dir);

  const workload::ScenarioSuite suite(ctx.suite_params);
  const auto heuristics = core::reported_heuristics();
  const auto cases = bench::all_cases();

  core::EvaluationParams serial_params = bench::eval_params(ctx, /*verbose=*/false);
  serial_params.parallel_cells = false;
  serial_params.tuner.parallel = false;

  std::cout << "serial pass (1 thread) ...\n";
  const Stopwatch serial_timer;
  const auto serial = report.timed_section("matrix_serial", [&] {
    return core::evaluate_matrix(suite, cases, heuristics, serial_params);
  });
  const double serial_seconds = serial_timer.seconds();

  std::cout << "parallel cold pass (" << global_pool_jobs() << " jobs) ...\n";
  bench::CellCache cold_cache(cache_dir);
  const Stopwatch parallel_timer;
  const auto parallel = report.timed_section("matrix_parallel", [&] {
    return bench::run_matrix(ctx, /*verbose=*/false, nullptr, &cold_cache);
  });
  const double parallel_seconds = parallel_timer.seconds();
  expect_same_results(serial, parallel, "parallel cold");

  std::cout << "parallel warm pass (cache at " << cache_dir << ") ...\n";
  bench::CellCache warm_cache(cache_dir);
  const Stopwatch warm_timer;
  const auto warm = report.timed_section("matrix_warm", [&] {
    return bench::run_matrix(ctx, /*verbose=*/false, nullptr, &warm_cache);
  });
  const double warm_seconds = warm_timer.seconds();
  expect_same_results(serial, warm, "cache warm");

  const double speedup =
      parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0;
  const double warm_speedup = warm_seconds > 0.0 ? serial_seconds / warm_seconds : 0.0;
  const auto total_cells = static_cast<std::int64_t>(serial.cells.size());
  report.metrics().gauge("bench.serial_seconds").set(serial_seconds);
  report.metrics().gauge("bench.parallel_seconds").set(parallel_seconds);
  report.metrics().gauge("bench.warm_seconds").set(warm_seconds);
  report.metrics().gauge("bench.parallel_speedup").set(speedup);
  report.metrics().gauge("bench.warm_speedup").set(warm_speedup);
  report.merge(parallel.exec);
  report.meta("cells", total_cells);
  report.meta("cache_hits", static_cast<std::int64_t>(warm_cache.hits()));
  report.meta("cache_misses", static_cast<std::int64_t>(warm_cache.misses()));

  std::cout << "\nserial:        " << serial_seconds << " s\n"
            << "parallel cold: " << parallel_seconds << " s  (" << speedup
            << "x, jobs=" << global_pool_jobs() << ")\n"
            << "cache warm:    " << warm_seconds << " s  (" << warm_speedup
            << "x; " << warm_cache.hits() << "/" << total_cells
            << " cells from cache)\n"
            << "wrote " << report.write_json() << "\n";
  return 0;
}
