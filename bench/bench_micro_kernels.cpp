// google-benchmark microbenchmarks of the scheduling kernels that dominate
// heuristic execution time: timeline insertion / earliest-fit search,
// candidate-pool construction, objective scoring, and placement planning.
// These are the operations a hardware (DSP/FPGA) implementation of SLRH
// would pipeline — the paper's §II motivation for the algorithm family.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>
#include <string_view>

#include "bench/bench_common.hpp"
#include "core/feasibility.hpp"
#include "core/frontier.hpp"
#include "core/placement.hpp"
#include "core/scenario_cache.hpp"
#include "core/scoring.hpp"
#include "core/slrh.hpp"
#include "sim/timeline.hpp"
#include "support/flight_recorder.hpp"
#include "support/rng.hpp"
#include "support/task_ledger.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace ahg;

void BM_TimelineInsertSequential(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Timeline tl;
    for (std::size_t i = 0; i < n; ++i) {
      tl.insert(static_cast<Cycles>(i) * 20, 10);
    }
    benchmark::DoNotOptimize(tl.ready_time());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TimelineInsertSequential)->Arg(64)->Arg(256)->Arg(1024);

void BM_TimelineEarliestFit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Timeline tl;
  Rng rng(7);
  Cycles cursor = 0;
  for (std::size_t i = 0; i < n; ++i) {
    cursor += rng.uniform_int(1, 30);
    const Cycles dur = rng.uniform_int(1, 20);
    tl.insert(cursor, dur);
    cursor += dur;
  }
  Cycles probe = 0;
  for (auto _ : state) {
    probe = (probe + 97) % cursor;
    benchmark::DoNotOptimize(tl.earliest_fit(probe, 25));
  }
}
BENCHMARK(BM_TimelineEarliestFit)->Arg(64)->Arg(256)->Arg(1024);

workload::Scenario bench_scenario(std::size_t num_tasks) {
  workload::SuiteParams params;
  params.num_tasks = num_tasks;
  params.num_etc = 1;
  params.num_dag = 1;
  params.master_seed = 99;
  return workload::ScenarioSuite(params).make(sim::GridCase::A, 0, 0);
}

void BM_PoolAdmissionScan(benchmark::State& state) {
  const auto scenario = bench_scenario(static_cast<std::size_t>(state.range(0)));
  sim::Schedule schedule(scenario.grid, scenario.num_tasks());
  for (auto _ : state) {
    std::size_t admissible = 0;
    for (std::size_t i = 0; i < scenario.num_tasks(); ++i) {
      if (core::slrh_pool_admissible(scenario, schedule, static_cast<TaskId>(i), 0)) {
        ++admissible;
      }
    }
    benchmark::DoNotOptimize(admissible);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PoolAdmissionScan)->Arg(256)->Arg(1024);

// --- pool construction: scan vs frontier ----------------------------------
//
// Same pool, two constructions. The scan walks all |T| subtasks re-deriving
// admission energies; the frontier walks only the ready set (for a fresh
// schedule: the DAG roots) against the precomputed tables. Both are measured
// from the state drive_slrh sees at clock 0 on machine 0, so the ratio is
// the per-pool-build speedup of the fast path.

void BM_BuildPool_Scan(benchmark::State& state) {
  const auto scenario = bench_scenario(static_cast<std::size_t>(state.range(0)));
  sim::Schedule schedule(scenario.grid, scenario.num_tasks());
  core::SlrhParams params;
  params.weights = core::Weights::make(0.6, 0.3);
  const auto totals = core::objective_totals(scenario);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_slrh_pool_scan(
        scenario, schedule, params, totals, /*machine=*/0, /*clock=*/0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_BuildPool_Scan)->Arg(256)->Arg(1024);

void BM_BuildPool_Frontier(benchmark::State& state) {
  const auto scenario = bench_scenario(static_cast<std::size_t>(state.range(0)));
  sim::Schedule schedule(scenario.grid, scenario.num_tasks());
  core::SlrhParams params;
  params.weights = core::Weights::make(0.6, 0.3);
  const auto totals = core::objective_totals(scenario);
  const core::ScenarioCache cache(scenario);
  core::ReadyFrontier frontier(scenario, schedule);
  frontier.advance_to(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_slrh_pool_frontier(
        scenario, cache, frontier, schedule, params, totals, /*machine=*/0,
        /*clock=*/0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_BuildPool_Frontier)->Arg(256)->Arg(1024);

// --- admission energy: derived vs table lookup ----------------------------
//
// The admission "energy need" (secondary execution + worst-case outgoing
// communication) is pure scenario data. Computed re-walks the children and
// the grid's worst link per query; Cached reads the |T|x|M|x2 table.

void BM_EnergyNeed_Computed(benchmark::State& state) {
  const auto scenario = bench_scenario(256);
  sim::Schedule schedule(scenario.grid, scenario.num_tasks());
  const auto num_tasks = static_cast<TaskId>(scenario.num_tasks());
  TaskId task = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::version_fits_energy(
        scenario, schedule, task, /*machine=*/0, VersionKind::Secondary));
    task = static_cast<TaskId>((task + 1) % num_tasks);
  }
}
BENCHMARK(BM_EnergyNeed_Computed);

void BM_EnergyNeed_Cached(benchmark::State& state) {
  const auto scenario = bench_scenario(256);
  sim::Schedule schedule(scenario.grid, scenario.num_tasks());
  const core::ScenarioCache cache(scenario);
  const auto num_tasks = static_cast<TaskId>(scenario.num_tasks());
  TaskId task = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::version_fits_energy(
        cache, schedule, task, /*machine=*/0, VersionKind::Secondary));
    task = static_cast<TaskId>((task + 1) % num_tasks);
  }
}
BENCHMARK(BM_EnergyNeed_Cached);

void BM_ScoreCandidate(benchmark::State& state) {
  const auto scenario = bench_scenario(256);
  sim::Schedule schedule(scenario.grid, scenario.num_tasks());
  const auto totals = core::objective_totals(scenario);
  const auto weights = core::Weights::make(0.6, 0.3);
  // Score root tasks (parents trivially satisfied).
  const auto roots = scenario.dag.roots();
  std::size_t k = 0;
  for (auto _ : state) {
    const TaskId task = roots[k++ % roots.size()];
    benchmark::DoNotOptimize(core::score_candidate(scenario, schedule, weights, totals,
                                                   task, 0, VersionKind::Primary, 0));
  }
}
BENCHMARK(BM_ScoreCandidate);

void BM_PlanPlacement(benchmark::State& state) {
  const auto scenario = bench_scenario(256);
  sim::Schedule schedule(scenario.grid, scenario.num_tasks());
  const auto roots = scenario.dag.roots();
  std::size_t k = 0;
  for (auto _ : state) {
    const TaskId task = roots[k++ % roots.size()];
    benchmark::DoNotOptimize(
        core::plan_placement(scenario, schedule, task, 1, VersionKind::Primary, 0));
  }
}
BENCHMARK(BM_PlanPlacement);

// Telemetry-overhead guard for the SLRH inner loop: arg 0 runs the null-sink
// fast path (the contract: same instructions as before the observability
// layer existed), arg 1 attaches a metrics-only sink (phase histograms, no
// events). Comparing the two rates bounds the cost of enabling phase timing;
// the null-sink run itself is what the <2 % inner-loop overhead budget is
// measured against.
void BM_SlrhInnerLoop(benchmark::State& state) {
  const auto scenario = bench_scenario(256);
  const bool with_metrics = state.range(0) != 0;
  obs::MetricsRegistry metrics;
  obs::ForwardSink sink(&metrics, nullptr);
  core::SlrhParams params;
  params.weights = core::Weights::make(0.7, 0.25);
  params.sink = with_metrics ? &sink : nullptr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_slrh(scenario, params));
  }
  state.SetLabel(with_metrics ? "metrics_sink" : "null_sink");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_SlrhInnerLoop)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// End-to-end before/after record for the fast path: run each SLRH variant
// over the same scenario with legacy_scan (the original scan-everything
// execution) and with the default cache + frontier + memo path, and dump the
// wall times as BENCH_inner_loop.json. Counters record that the schedules
// agree (t100/aet match — the bit-identity contract, asserted properly by
// tests/test_determinism.cpp).
void write_inner_loop_report() {
  bench::BenchReport report("inner_loop");
  const auto scenario = bench_scenario(1024);
  for (const auto variant :
       {core::SlrhVariant::V1, core::SlrhVariant::V2, core::SlrhVariant::V3}) {
    core::SlrhParams params;
    params.variant = variant;
    params.weights = core::Weights::make(0.7, 0.25);
    const std::string name = core::to_string(variant);

    params.legacy_scan = true;
    const auto legacy = report.timed_section(
        name + "_legacy", [&] { return core::run_slrh(scenario, params); });

    params.legacy_scan = false;
    const auto fast = report.timed_section(
        name + "_fast", [&] { return core::run_slrh(scenario, params); });

    report.metrics()
        .counter("bench." + name + "_schedules_identical")
        .add(legacy.t100 == fast.t100 && legacy.aet == fast.aet &&
                     legacy.tec == fast.tec
                 ? 1
                 : 0);
    std::cout << name << ": legacy " << legacy.wall_seconds << " s, fast "
              << fast.wall_seconds << " s ("
              << (fast.wall_seconds > 0.0 ? legacy.wall_seconds / fast.wall_seconds
                                          : 0.0)
              << "x)\n";
  }

  // Flight-recorder overhead guard (ISSUE: <= 3% on run_slrh at |T|=1024).
  // Min-of-3 on each side cuts scheduler noise; the ratio gauge is what the
  // regression gate watches.
  {
    constexpr int kReps = 9;
    core::SlrhParams params;
    params.weights = core::Weights::make(0.7, 0.25);
    // One recorder reused across reps: after the first run the ring has
    // wrapped and record() is allocation-free, so min-of-N measures the
    // steady-state overhead of an attached recorder (the cold first run is
    // ring warm-up, not recording cost).
    obs::FlightRecorder recorder;
    double off_seconds = 0.0;
    double on_seconds = 0.0;
    std::uint64_t frames = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      const Stopwatch off_timer;
      const auto off = core::run_slrh(scenario, params);
      const double off_elapsed = off_timer.seconds();
      static_cast<void>(off);
      off_seconds = rep == 0 ? off_elapsed : std::min(off_seconds, off_elapsed);

      const std::uint64_t frames_before = recorder.frames_recorded();
      params.recorder = &recorder;
      const Stopwatch on_timer;
      const auto on = core::run_slrh(scenario, params);
      const double on_elapsed = on_timer.seconds();
      static_cast<void>(on);
      params.recorder = nullptr;
      on_seconds = rep == 0 ? on_elapsed : std::min(on_seconds, on_elapsed);
      frames = recorder.frames_recorded() - frames_before;
    }
    const double ratio = off_seconds > 0.0 ? on_seconds / off_seconds : 1.0;
    report.metrics().gauge("bench.recorder_off_seconds").set(off_seconds);
    report.metrics().gauge("bench.recorder_on_seconds").set(on_seconds);
    report.metrics().gauge("bench.recorder_overhead_ratio").set(ratio);
    report.metrics().counter("bench.recorder_frames").add(frames);
    std::cout << "recorder: off " << off_seconds << " s, on " << on_seconds
              << " s (" << ratio << "x, " << frames << " frames)\n";
  }

  // Task-ledger overhead guard (ISSUE: <= 1.05x on run_slrh at |T|=1024).
  // A FRESH ledger per on-rep — unlike the recorder's ring there is no
  // steady state to reuse; a second run on the same ledger would take the
  // on_pooled fast path everywhere and undercount. Construction happens
  // outside the Stopwatch so only the recording cost is timed.
  {
    constexpr int kReps = 9;
    core::SlrhParams params;
    params.weights = core::Weights::make(0.7, 0.25);
    double off_seconds = 0.0;
    double on_seconds = 0.0;
    std::uint64_t transitions = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      const Stopwatch off_timer;
      const auto off = core::run_slrh(scenario, params);
      const double off_elapsed = off_timer.seconds();
      static_cast<void>(off);
      off_seconds = rep == 0 ? off_elapsed : std::min(off_seconds, off_elapsed);

      obs::TaskLedger ledger(scenario.num_tasks());
      params.ledger = &ledger;
      const Stopwatch on_timer;
      const auto on = core::run_slrh(scenario, params);
      const double on_elapsed = on_timer.seconds();
      static_cast<void>(on);
      params.ledger = nullptr;
      on_seconds = rep == 0 ? on_elapsed : std::min(on_seconds, on_elapsed);
      transitions = ledger.transitions_recorded();
    }
    const double ratio = off_seconds > 0.0 ? on_seconds / off_seconds : 1.0;
    report.metrics().gauge("bench.ledger_off_seconds").set(off_seconds);
    report.metrics().gauge("bench.ledger_on_seconds").set(on_seconds);
    report.metrics().gauge("bench.ledger_overhead_ratio").set(ratio);
    report.metrics().counter("bench.ledger_transitions").add(transitions);
    std::cout << "ledger: off " << off_seconds << " s, on " << on_seconds
              << " s (" << ratio << "x, " << transitions << " transitions)\n";
  }

  std::cout << "wrote " << report.write_json() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  // --quick (CI's bench-gate job): skip the google-benchmark sweep and only
  // produce BENCH_inner_loop.json. Stripped before handle_bench_flags so the
  // lenient pass doesn't forward it to the benchmark library.
  bool quick = false;
  {
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      if (std::string_view(argv[i]) == "--quick") {
        quick = true;
      } else {
        argv[out++] = argv[i];
      }
    }
    argc = out;
  }
  if (const auto exit_code =
          ahg::bench::handle_bench_flags(argc, argv, /*lenient=*/true)) {
    return *exit_code;
  }
  if (!quick) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  write_inner_loop_report();
  return 0;
}
