// google-benchmark microbenchmarks of the scheduling kernels that dominate
// heuristic execution time: timeline insertion / earliest-fit search,
// candidate-pool construction, objective scoring, and placement planning.
// These are the operations a hardware (DSP/FPGA) implementation of SLRH
// would pipeline — the paper's §II motivation for the algorithm family.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>
#include <span>
#include <string_view>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/feasibility.hpp"
#include "core/frontier.hpp"
#include "core/placement.hpp"
#include "core/scenario_cache.hpp"
#include "core/scoring.hpp"
#include "core/slrh.hpp"
#include "sim/timeline.hpp"
#include "support/flight_recorder.hpp"
#include "support/rng.hpp"
#include "support/task_ledger.hpp"
#include "support/thread_pool.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace ahg;

void BM_TimelineInsertSequential(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Timeline tl;
    for (std::size_t i = 0; i < n; ++i) {
      tl.insert(static_cast<Cycles>(i) * 20, 10);
    }
    benchmark::DoNotOptimize(tl.ready_time());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TimelineInsertSequential)->Arg(64)->Arg(256)->Arg(1024);

void BM_TimelineEarliestFit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Timeline tl;
  Rng rng(7);
  Cycles cursor = 0;
  for (std::size_t i = 0; i < n; ++i) {
    cursor += rng.uniform_int(1, 30);
    const Cycles dur = rng.uniform_int(1, 20);
    tl.insert(cursor, dur);
    cursor += dur;
  }
  Cycles probe = 0;
  for (auto _ : state) {
    probe = (probe + 97) % cursor;
    benchmark::DoNotOptimize(tl.earliest_fit(probe, 25));
  }
}
BENCHMARK(BM_TimelineEarliestFit)->Arg(64)->Arg(256)->Arg(1024);

// --- earliest fit: linear walk vs ordered hole index ----------------------
//
// Same busy set, same probe sequence, both paths. The dense timeline (tight
// gaps, mostly too small for the probe duration) is the adversarial shape:
// the walk inspects every gap until far into the timeline, the hole index
// skips 64-gap blocks via their maxima. The retained walk is also the
// reference the determinism tests diff against.

sim::Timeline dense_timeline(std::size_t n) {
  sim::Timeline tl;
  Rng rng(7);
  Cycles cursor = 0;
  for (std::size_t i = 0; i < n; ++i) {
    // Gaps of 1..4 cycles; one roomy gap every 512 intervals.
    cursor += i % 512 == 511 ? 60 : rng.uniform_int(1, 4);
    const Cycles dur = rng.uniform_int(1, 20);
    tl.insert(cursor, dur);
    cursor += dur;
  }
  return tl;
}

void BM_EarliestFit_Walk(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const sim::Timeline tl = dense_timeline(n);
  const Cycles horizon = tl.ready_time();
  Cycles probe = 0;
  for (auto _ : state) {
    probe = (probe + 97) % horizon;
    benchmark::DoNotOptimize(tl.earliest_fit_walk(probe, 50));
  }
}
BENCHMARK(BM_EarliestFit_Walk)->Arg(256)->Arg(1024)->Arg(8192);

void BM_EarliestFit_HoleIndex(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const sim::Timeline tl = dense_timeline(n);
  const Cycles horizon = tl.ready_time();
  Cycles probe = 0;
  for (auto _ : state) {
    probe = (probe + 97) % horizon;
    benchmark::DoNotOptimize(tl.earliest_fit(probe, 50));
  }
}
BENCHMARK(BM_EarliestFit_HoleIndex)->Arg(256)->Arg(1024)->Arg(8192);

// Mid-timeline mutation: the cost that used to be O(n) per insert under the
// flat suffix rebuild and is O(chunk) under the chunked structure. A steady
// insert/erase cycle at the midpoint of an n-interval timeline; sublinear
// growth 8192 -> 65536 is the acceptance signal (the flat rebuild grew 8x).
void BM_TimelineInsert_Mid(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Timeline tl;
  for (std::size_t i = 0; i < n; ++i) {
    tl.insert(static_cast<Cycles>(i) * 40, 10);
  }
  const Cycles mid = (static_cast<Cycles>(n) / 2) * 40 + 20;  // interior gap
  for (auto _ : state) {
    tl.insert(mid, 10);
    tl.erase(mid, 10);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_TimelineInsert_Mid)->Arg(8192)->Arg(65536);

workload::Scenario bench_scenario(std::size_t num_tasks) {
  workload::SuiteParams params;
  params.num_tasks = num_tasks;
  params.num_etc = 1;
  params.num_dag = 1;
  params.master_seed = 99;
  return workload::ScenarioSuite(params).make(sim::GridCase::A, 0, 0);
}

void BM_PoolAdmissionScan(benchmark::State& state) {
  const auto scenario = bench_scenario(static_cast<std::size_t>(state.range(0)));
  sim::Schedule schedule(scenario.grid, scenario.num_tasks());
  for (auto _ : state) {
    std::size_t admissible = 0;
    for (std::size_t i = 0; i < scenario.num_tasks(); ++i) {
      if (core::slrh_pool_admissible(scenario, schedule, static_cast<TaskId>(i), 0)) {
        ++admissible;
      }
    }
    benchmark::DoNotOptimize(admissible);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PoolAdmissionScan)->Arg(256)->Arg(1024);

// --- pool construction: scan vs frontier ----------------------------------
//
// Same pool, two constructions. The scan walks all |T| subtasks re-deriving
// admission energies; the frontier walks only the ready set (for a fresh
// schedule: the DAG roots) against the precomputed tables. Both are measured
// from the state drive_slrh sees at clock 0 on machine 0, so the ratio is
// the per-pool-build speedup of the fast path.

void BM_BuildPool_Scan(benchmark::State& state) {
  const auto scenario = bench_scenario(static_cast<std::size_t>(state.range(0)));
  sim::Schedule schedule(scenario.grid, scenario.num_tasks());
  core::SlrhParams params;
  params.weights = core::Weights::make(0.6, 0.3);
  const auto totals = core::objective_totals(scenario);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_slrh_pool_scan(
        scenario, schedule, params, totals, /*machine=*/0, /*clock=*/0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_BuildPool_Scan)->Arg(256)->Arg(1024);

void BM_BuildPool_Frontier(benchmark::State& state) {
  const auto scenario = bench_scenario(static_cast<std::size_t>(state.range(0)));
  sim::Schedule schedule(scenario.grid, scenario.num_tasks());
  core::SlrhParams params;
  params.weights = core::Weights::make(0.6, 0.3);
  const auto totals = core::objective_totals(scenario);
  const core::ScenarioCache cache(scenario);
  core::ReadyFrontier frontier(scenario, schedule);
  frontier.advance_to(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_slrh_pool_frontier(
        scenario, cache, frontier, schedule, params, totals, /*machine=*/0,
        /*clock=*/0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_BuildPool_Frontier)->Arg(256)->Arg(1024);

// --- admission energy: derived vs table lookup ----------------------------
//
// The admission "energy need" (secondary execution + worst-case outgoing
// communication) is pure scenario data. Computed re-walks the children and
// the grid's worst link per query; Cached reads the |T|x|M|x2 table.

void BM_EnergyNeed_Computed(benchmark::State& state) {
  const auto scenario = bench_scenario(256);
  sim::Schedule schedule(scenario.grid, scenario.num_tasks());
  const auto num_tasks = static_cast<TaskId>(scenario.num_tasks());
  TaskId task = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::version_fits_energy(
        scenario, schedule, task, /*machine=*/0, VersionKind::Secondary));
    task = static_cast<TaskId>((task + 1) % num_tasks);
  }
}
BENCHMARK(BM_EnergyNeed_Computed);

void BM_EnergyNeed_Cached(benchmark::State& state) {
  const auto scenario = bench_scenario(256);
  sim::Schedule schedule(scenario.grid, scenario.num_tasks());
  const core::ScenarioCache cache(scenario);
  const auto num_tasks = static_cast<TaskId>(scenario.num_tasks());
  TaskId task = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::version_fits_energy(
        cache, schedule, task, /*machine=*/0, VersionKind::Secondary));
    task = static_cast<TaskId>((task + 1) % num_tasks);
  }
}
BENCHMARK(BM_EnergyNeed_Cached);

// --- pool scoring: per-candidate scalar chain vs SoA batch kernel ---------
//
// The kernel-only comparison behind the batched tentpole: score every ready
// task against one machine, excluding the pool sort (identical on both
// sides) so the ratio is gather+score work alone. Independent tasks make the
// whole task set ready at clock 0 — the |T|=100k regime's pool shape. The
// scalar side replicates build_slrh_pool_frontier's admission + two
// score_candidate chains per task; the batched side is build_candidate_batch
// + score_batch over the same ready span.

workload::Scenario all_ready_scenario(std::size_t num_tasks) {
  auto grid = sim::GridConfig::make(4, 4);
  auto etc = workload::generate_etc({}, num_tasks,
                                    workload::machine_classes(grid), 99);
  workload::Scenario scenario{std::move(grid),
                              workload::Dag(num_tasks),
                              std::move(etc),
                              workload::DataSizes{},
                              workload::VersionModel{},
                              /*tau=*/cycles_from_seconds(34075.0 *
                                                          static_cast<double>(num_tasks) /
                                                          1024.0)};
  scenario.validate();
  return scenario;
}

std::vector<TaskId> all_tasks(std::size_t num_tasks) {
  std::vector<TaskId> ready(num_tasks);
  for (std::size_t i = 0; i < num_tasks; ++i) ready[i] = static_cast<TaskId>(i);
  return ready;
}

double scalar_score_kernel(const workload::Scenario& scenario,
                           const core::ScenarioCache& cache,
                           const sim::Schedule& schedule,
                           const core::Weights& weights,
                           const core::ObjectiveTotals& totals,
                           std::span<const TaskId> ready) {
  double acc = 0.0;
  for (const TaskId task : ready) {
    if (!core::version_fits_energy(cache, schedule, task, /*machine=*/0,
                                   VersionKind::Secondary)) {
      continue;
    }
    const double secondary = core::score_candidate(
        cache, scenario, schedule, weights, totals, task, 0,
        VersionKind::Secondary, /*earliest=*/0);
    double best = secondary;
    if (core::version_fits_energy(cache, schedule, task, 0, VersionKind::Primary)) {
      const double primary = core::score_candidate(
          cache, scenario, schedule, weights, totals, task, 0,
          VersionKind::Primary, /*earliest=*/0);
      if (primary >= secondary) best = primary;
    }
    acc += best;
  }
  return acc;
}

double batched_score_kernel(const workload::Scenario& scenario,
                            const core::ScenarioCache& cache,
                            const sim::Schedule& schedule,
                            const core::Weights& weights,
                            const core::ObjectiveTotals& totals,
                            std::span<const TaskId> ready,
                            core::CandidateBatch& batch) {
  core::build_candidate_batch(cache, scenario, schedule, ready, /*machine=*/0,
                              /*earliest=*/0, nullptr, batch);
  core::score_batch(batch, weights, totals, schedule.t100(), schedule.tec(),
                    schedule.aet());
  double acc = 0.0;
  for (std::size_t i = 0; i < batch.size(); ++i) acc += batch.score[i];
  return acc;
}

void BM_ScoreBatch_Scalar(benchmark::State& state) {
  const auto scenario = all_ready_scenario(static_cast<std::size_t>(state.range(0)));
  const core::ScenarioCache cache(scenario);
  sim::Schedule schedule(scenario.grid, scenario.num_tasks());
  const auto totals = core::objective_totals(scenario);
  const auto weights = core::Weights::make(0.6, 0.3);
  const auto ready = all_tasks(scenario.num_tasks());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scalar_score_kernel(scenario, cache, schedule, weights, totals, ready));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ScoreBatch_Scalar)->Arg(1024)->Arg(16384);

void BM_ScoreBatch_Batched(benchmark::State& state) {
  const auto scenario = all_ready_scenario(static_cast<std::size_t>(state.range(0)));
  const core::ScenarioCache cache(scenario);
  sim::Schedule schedule(scenario.grid, scenario.num_tasks());
  const auto totals = core::objective_totals(scenario);
  const auto weights = core::Weights::make(0.6, 0.3);
  const auto ready = all_tasks(scenario.num_tasks());
  core::CandidateBatch batch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(batched_score_kernel(scenario, cache, schedule,
                                                  weights, totals, ready, batch));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ScoreBatch_Batched)->Arg(1024)->Arg(16384);

void BM_ScoreCandidate(benchmark::State& state) {
  const auto scenario = bench_scenario(256);
  sim::Schedule schedule(scenario.grid, scenario.num_tasks());
  const auto totals = core::objective_totals(scenario);
  const auto weights = core::Weights::make(0.6, 0.3);
  // Score root tasks (parents trivially satisfied).
  const auto roots = scenario.dag.roots();
  std::size_t k = 0;
  for (auto _ : state) {
    const TaskId task = roots[k++ % roots.size()];
    benchmark::DoNotOptimize(core::score_candidate(scenario, schedule, weights, totals,
                                                   task, 0, VersionKind::Primary, 0));
  }
}
BENCHMARK(BM_ScoreCandidate);

void BM_PlanPlacement(benchmark::State& state) {
  const auto scenario = bench_scenario(256);
  sim::Schedule schedule(scenario.grid, scenario.num_tasks());
  const auto roots = scenario.dag.roots();
  std::size_t k = 0;
  for (auto _ : state) {
    const TaskId task = roots[k++ % roots.size()];
    benchmark::DoNotOptimize(
        core::plan_placement(scenario, schedule, task, 1, VersionKind::Primary, 0));
  }
}
BENCHMARK(BM_PlanPlacement);

// --- machine sweep: serial vs speculative-parallel vs cross-tick reuse ----
//
// Whole-run V3 comparison of the sweep accelerator's two mechanisms, each
// isolated: Serial turns both off (the pre-accelerator path and the
// determinism oracle), Parallel enables only the speculative fan-out over
// the global pool, Reuse enables only the cross-tick skip verdicts. V3 is
// the sweep-bound variant (it rebuilds the pool after every commit), so the
// ratios here are the per-mechanism shares of the end-to-end speedup
// bench_scale measures. Run with --jobs N to size the fan-out.

core::SlrhParams sweep_bench_params(bool reuse, bool parallel) {
  core::SlrhParams params;
  params.variant = core::SlrhVariant::V3;
  params.weights = core::Weights::make(0.7, 0.25);
  params.pool_reuse = reuse;
  params.sweep_parallel = parallel;
  return params;
}

void BM_Sweep_Serial(benchmark::State& state) {
  const auto scenario = bench_scenario(static_cast<std::size_t>(state.range(0)));
  const auto params = sweep_bench_params(false, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_slrh(scenario, params));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sweep_Serial)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_Sweep_Parallel(benchmark::State& state) {
  const auto scenario = bench_scenario(static_cast<std::size_t>(state.range(0)));
  const auto params = sweep_bench_params(false, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_slrh(scenario, params));
  }
  state.SetLabel("jobs=" + std::to_string(global_pool_jobs()));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sweep_Parallel)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_Sweep_Reuse(benchmark::State& state) {
  const auto scenario = bench_scenario(static_cast<std::size_t>(state.range(0)));
  const auto params = sweep_bench_params(true, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_slrh(scenario, params));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sweep_Reuse)->Arg(1024)->Unit(benchmark::kMillisecond);

// Telemetry-overhead guard for the SLRH inner loop: arg 0 runs the null-sink
// fast path (the contract: same instructions as before the observability
// layer existed), arg 1 attaches a metrics-only sink (phase histograms, no
// events). Comparing the two rates bounds the cost of enabling phase timing;
// the null-sink run itself is what the <2 % inner-loop overhead budget is
// measured against.
void BM_SlrhInnerLoop(benchmark::State& state) {
  const auto scenario = bench_scenario(256);
  const bool with_metrics = state.range(0) != 0;
  obs::MetricsRegistry metrics;
  obs::ForwardSink sink(&metrics, nullptr);
  core::SlrhParams params;
  params.weights = core::Weights::make(0.7, 0.25);
  params.sink = with_metrics ? &sink : nullptr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_slrh(scenario, params));
  }
  state.SetLabel(with_metrics ? "metrics_sink" : "null_sink");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_SlrhInnerLoop)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// End-to-end before/after record for the fast path: run each SLRH variant
// over the same scenario with legacy_scan (the original scan-everything
// execution) and with the default cache + frontier + memo path, and dump the
// wall times as BENCH_inner_loop.json. Counters record that the schedules
// agree (t100/aet match — the bit-identity contract, asserted properly by
// tests/test_determinism.cpp).
void write_inner_loop_report() {
  bench::BenchReport report("inner_loop");
  const auto scenario = bench_scenario(1024);
  for (const auto variant :
       {core::SlrhVariant::V1, core::SlrhVariant::V2, core::SlrhVariant::V3}) {
    core::SlrhParams params;
    params.variant = variant;
    params.weights = core::Weights::make(0.7, 0.25);
    const std::string name = core::to_string(variant);

    params.legacy_scan = true;
    const auto legacy = report.timed_section(
        name + "_legacy", [&] { return core::run_slrh(scenario, params); });

    params.legacy_scan = false;
    const auto fast = report.timed_section(
        name + "_fast", [&] { return core::run_slrh(scenario, params); });

    report.metrics()
        .counter("bench." + name + "_schedules_identical")
        .add(legacy.t100 == fast.t100 && legacy.aet == fast.aet &&
                     legacy.tec == fast.tec
                 ? 1
                 : 0);
    std::cout << name << ": legacy " << legacy.wall_seconds << " s, fast "
              << fast.wall_seconds << " s ("
              << (fast.wall_seconds > 0.0 ? legacy.wall_seconds / fast.wall_seconds
                                          : 0.0)
              << "x)\n";
  }

  // Score-kernel record (ISSUE: >= 3x on the pool-build/score kernel at
  // |T|=1024): the scalar per-candidate chain vs the SoA gather+score
  // kernel over an all-ready pool, sort excluded from both sides (it is
  // identical work and would dilute the kernel ratio). Min-of-N absorbs
  // scheduler noise; the speedup gauge is the before/after artifact the
  // gate tracks (its committed tolerance is wide — machine-dependent).
  {
    constexpr int kReps = 15;
    const auto pool_scenario = all_ready_scenario(1024);
    const core::ScenarioCache cache(pool_scenario);
    sim::Schedule schedule(pool_scenario.grid, pool_scenario.num_tasks());
    const auto totals = core::objective_totals(pool_scenario);
    const auto weights = core::Weights::make(0.6, 0.3);
    const auto ready = all_tasks(pool_scenario.num_tasks());
    core::CandidateBatch batch;
    double scalar_seconds = 0.0;
    double batched_seconds = 0.0;
    double scalar_sum = 0.0;
    double batched_sum = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      const Stopwatch scalar_timer;
      scalar_sum = scalar_score_kernel(pool_scenario, cache, schedule, weights,
                                       totals, ready);
      const double scalar_elapsed = scalar_timer.seconds();
      scalar_seconds =
          rep == 0 ? scalar_elapsed : std::min(scalar_seconds, scalar_elapsed);

      const Stopwatch batched_timer;
      batched_sum = batched_score_kernel(pool_scenario, cache, schedule, weights,
                                         totals, ready, batch);
      const double batched_elapsed = batched_timer.seconds();
      batched_seconds =
          rep == 0 ? batched_elapsed : std::min(batched_seconds, batched_elapsed);
    }
    const double speedup =
        batched_seconds > 0.0 ? scalar_seconds / batched_seconds : 0.0;
    report.metrics().gauge("bench.score_kernel_scalar_seconds").set(scalar_seconds);
    report.metrics().gauge("bench.score_kernel_batched_seconds").set(batched_seconds);
    report.metrics().gauge("bench.score_kernel_speedup").set(speedup);
    // The kernels agree bit for bit (the determinism suite asserts this
    // properly); the counter records it survived this run too.
    report.metrics()
        .counter("bench.score_kernel_sums_identical")
        .add(scalar_sum == batched_sum ? 1 : 0);
    std::cout << "score kernel @1024: scalar " << scalar_seconds << " s, batched "
              << batched_seconds << " s (" << speedup << "x)\n";
  }

  // Earliest-fit record: linear walk vs hole index over a dense 8192-interval
  // timeline (the |T|=100k placement regime). Same probes on both paths.
  {
    constexpr int kReps = 15;
    constexpr int kProbes = 4096;
    const sim::Timeline tl = dense_timeline(8192);
    const Cycles horizon = tl.ready_time();
    double walk_seconds = 0.0;
    double index_seconds = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      Cycles probe = 0;
      Cycles walk_acc = 0;
      const Stopwatch walk_timer;
      for (int q = 0; q < kProbes; ++q) {
        probe = (probe + 97) % horizon;
        walk_acc += tl.earliest_fit_walk(probe, 50);
      }
      const double walk_elapsed = walk_timer.seconds();
      benchmark::DoNotOptimize(walk_acc);
      walk_seconds = rep == 0 ? walk_elapsed : std::min(walk_seconds, walk_elapsed);

      probe = 0;
      Cycles index_acc = 0;
      const Stopwatch index_timer;
      for (int q = 0; q < kProbes; ++q) {
        probe = (probe + 97) % horizon;
        index_acc += tl.earliest_fit(probe, 50);
      }
      const double index_elapsed = index_timer.seconds();
      benchmark::DoNotOptimize(index_acc);
      index_seconds =
          rep == 0 ? index_elapsed : std::min(index_seconds, index_elapsed);
    }
    const double speedup = index_seconds > 0.0 ? walk_seconds / index_seconds : 0.0;
    report.metrics().gauge("bench.earliest_fit_walk_seconds").set(walk_seconds);
    report.metrics().gauge("bench.earliest_fit_index_seconds").set(index_seconds);
    report.metrics().gauge("bench.earliest_fit_speedup").set(speedup);
    std::cout << "earliest fit @8192: walk " << walk_seconds << " s, index "
              << index_seconds << " s (" << speedup << "x)\n";
  }

  // Sweep-accelerator record at the smoke shape, gated per push: the V3
  // sweep with both mechanisms off (serial oracle), speculation only, and
  // reuse only. Min-of-N whole runs; the reuse speedup gauge is the
  // mechanism the 1-core gate can actually watch (the parallel gauge is
  // recorded for the curve but its value is host-core-dependent, so only
  // its presence — not a ratio bound — is gated).
  {
    constexpr int kReps = 5;
    const auto params_serial = sweep_bench_params(false, false);
    const auto params_parallel = sweep_bench_params(false, true);
    const auto params_reuse = sweep_bench_params(true, false);
    double serial_seconds = 0.0;
    double parallel_seconds = 0.0;
    double reuse_seconds = 0.0;
    bool identical = true;
    for (int rep = 0; rep < kReps; ++rep) {
      const Stopwatch serial_timer;
      const auto serial = core::run_slrh(scenario, params_serial);
      const double serial_elapsed = serial_timer.seconds();
      serial_seconds =
          rep == 0 ? serial_elapsed : std::min(serial_seconds, serial_elapsed);

      const Stopwatch parallel_timer;
      const auto parallel = core::run_slrh(scenario, params_parallel);
      const double parallel_elapsed = parallel_timer.seconds();
      parallel_seconds = rep == 0 ? parallel_elapsed
                                  : std::min(parallel_seconds, parallel_elapsed);

      const Stopwatch reuse_timer;
      const auto reuse = core::run_slrh(scenario, params_reuse);
      const double reuse_elapsed = reuse_timer.seconds();
      reuse_seconds =
          rep == 0 ? reuse_elapsed : std::min(reuse_seconds, reuse_elapsed);

      identical = identical && serial.t100 == parallel.t100 &&
                  serial.tec == parallel.tec && serial.t100 == reuse.t100 &&
                  serial.tec == reuse.tec && serial.aet == parallel.aet &&
                  serial.aet == reuse.aet;
    }
    report.metrics().gauge("bench.sweep_serial_seconds").set(serial_seconds);
    report.metrics().gauge("bench.sweep_parallel_seconds").set(parallel_seconds);
    report.metrics().gauge("bench.sweep_reuse_seconds").set(reuse_seconds);
    report.metrics()
        .gauge("bench.sweep_reuse_speedup")
        .set(reuse_seconds > 0.0 ? serial_seconds / reuse_seconds : 0.0);
    report.metrics()
        .counter("bench.sweep_schedules_identical")
        .add(identical ? 1 : 0);
    std::cout << "sweep @1024 (V3, jobs=" << global_pool_jobs() << "): serial "
              << serial_seconds << " s, parallel " << parallel_seconds
              << " s, reuse " << reuse_seconds << " s ("
              << (reuse_seconds > 0.0 ? serial_seconds / reuse_seconds : 0.0)
              << "x reuse)\n";
  }

  // Flight-recorder overhead guard (ISSUE: <= 3% on run_slrh at |T|=1024).
  // Min-of-3 on each side cuts scheduler noise; the ratio gauge is what the
  // regression gate watches.
  {
    constexpr int kReps = 9;
    core::SlrhParams params;
    params.weights = core::Weights::make(0.7, 0.25);
    // One recorder reused across reps: after the first run the ring has
    // wrapped and record() is allocation-free, so min-of-N measures the
    // steady-state overhead of an attached recorder (the cold first run is
    // ring warm-up, not recording cost).
    obs::FlightRecorder recorder;
    double off_seconds = 0.0;
    double on_seconds = 0.0;
    std::uint64_t frames = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      const Stopwatch off_timer;
      const auto off = core::run_slrh(scenario, params);
      const double off_elapsed = off_timer.seconds();
      static_cast<void>(off);
      off_seconds = rep == 0 ? off_elapsed : std::min(off_seconds, off_elapsed);

      const std::uint64_t frames_before = recorder.frames_recorded();
      params.recorder = &recorder;
      const Stopwatch on_timer;
      const auto on = core::run_slrh(scenario, params);
      const double on_elapsed = on_timer.seconds();
      static_cast<void>(on);
      params.recorder = nullptr;
      on_seconds = rep == 0 ? on_elapsed : std::min(on_seconds, on_elapsed);
      frames = recorder.frames_recorded() - frames_before;
    }
    const double ratio = off_seconds > 0.0 ? on_seconds / off_seconds : 1.0;
    report.metrics().gauge("bench.recorder_off_seconds").set(off_seconds);
    report.metrics().gauge("bench.recorder_on_seconds").set(on_seconds);
    report.metrics().gauge("bench.recorder_overhead_ratio").set(ratio);
    report.metrics().counter("bench.recorder_frames").add(frames);
    std::cout << "recorder: off " << off_seconds << " s, on " << on_seconds
              << " s (" << ratio << "x, " << frames << " frames)\n";
  }

  // Task-ledger overhead guard (ISSUE: <= 1.05x on run_slrh at |T|=1024).
  // A FRESH ledger per on-rep — unlike the recorder's ring there is no
  // steady state to reuse; a second run on the same ledger would take the
  // on_pooled fast path everywhere and undercount. Construction happens
  // outside the Stopwatch so only the recording cost is timed.
  {
    constexpr int kReps = 9;
    core::SlrhParams params;
    params.weights = core::Weights::make(0.7, 0.25);
    double off_seconds = 0.0;
    double on_seconds = 0.0;
    std::uint64_t transitions = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      const Stopwatch off_timer;
      const auto off = core::run_slrh(scenario, params);
      const double off_elapsed = off_timer.seconds();
      static_cast<void>(off);
      off_seconds = rep == 0 ? off_elapsed : std::min(off_seconds, off_elapsed);

      obs::TaskLedger ledger(scenario.num_tasks());
      params.ledger = &ledger;
      const Stopwatch on_timer;
      const auto on = core::run_slrh(scenario, params);
      const double on_elapsed = on_timer.seconds();
      static_cast<void>(on);
      params.ledger = nullptr;
      on_seconds = rep == 0 ? on_elapsed : std::min(on_seconds, on_elapsed);
      transitions = ledger.transitions_recorded();
    }
    const double ratio = off_seconds > 0.0 ? on_seconds / off_seconds : 1.0;
    report.metrics().gauge("bench.ledger_off_seconds").set(off_seconds);
    report.metrics().gauge("bench.ledger_on_seconds").set(on_seconds);
    report.metrics().gauge("bench.ledger_overhead_ratio").set(ratio);
    report.metrics().counter("bench.ledger_transitions").add(transitions);
    std::cout << "ledger: off " << off_seconds << " s, on " << on_seconds
              << " s (" << ratio << "x, " << transitions << " transitions)\n";
  }

  // Runtime-profiler overhead guard (ISSUE: <= 1.05x on run_slrh at
  // |T|=1024, gated as an UPPER bound — see bench/baselines). One profiler
  // reused across reps, like the recorder: the rings overwrite in place, so
  // the steady-state cost of timed run slices + idle intervals on every pool
  // pop is what's measured, not ring allocation. The gated ratio is the
  // MEDIAN of per-rep paired on/off ratios: each pair runs back to back, so
  // host drift (a noisy shared core slowing one stretch of the bench) hits
  // both sides of a pair equally and the median discards the spiked pairs —
  // a ratio of independent min-of-N times wandered ±10% on a loaded host,
  // which the 1.05x gate cannot absorb.
  {
    constexpr int kReps = 101;
    core::SlrhParams params;
    params.weights = core::Weights::make(0.7, 0.25);
    obs::RuntimeProfiler profiler(global_pool().size());
    static_cast<void>(core::run_slrh(scenario, params));  // warm caches/pool
    double off_seconds = 0.0;
    double on_seconds = 0.0;
    std::vector<double> ratios;
    ratios.reserve(kReps);
    std::uint64_t tasks = 0;
    const auto timed_run = [&](bool with_profiler) {
      if (with_profiler) global_pool().set_profiler(&profiler);
      const Stopwatch timer;
      const auto result = core::run_slrh(scenario, params);
      const double elapsed = timer.seconds();
      static_cast<void>(result);
      if (with_profiler) global_pool().set_profiler(nullptr);
      return elapsed;
    };
    for (int rep = 0; rep < kReps; ++rep) {
      // Alternate which side of the pair runs first so any first-run warmup
      // or scheduler bias cancels across pairs instead of tilting the ratio.
      const bool on_first = (rep % 2) != 0;
      const std::uint64_t tasks_before = profiler.totals().tasks;
      const double first = timed_run(on_first);
      const double second = timed_run(!on_first);
      const double off_elapsed = on_first ? second : first;
      const double on_elapsed = on_first ? first : second;
      off_seconds = rep == 0 ? off_elapsed : std::min(off_seconds, off_elapsed);
      on_seconds = rep == 0 ? on_elapsed : std::min(on_seconds, on_elapsed);
      tasks = profiler.totals().tasks - tasks_before;
      if (off_elapsed > 0.0) ratios.push_back(on_elapsed / off_elapsed);
    }
    double ratio = 1.0;
    if (!ratios.empty()) {
      const auto mid =
          static_cast<std::vector<double>::difference_type>(ratios.size() / 2);
      std::nth_element(ratios.begin(), ratios.begin() + mid, ratios.end());
      ratio = ratios[ratios.size() / 2];
    }
    report.metrics().gauge("bench.profiler_off_seconds").set(off_seconds);
    report.metrics().gauge("bench.profiler_on_seconds").set(on_seconds);
    report.metrics().gauge("bench.profiler_overhead_ratio").set(ratio);
    std::cout << "profiler: off " << off_seconds << " s, on " << on_seconds
              << " s (median " << ratio << "x, " << tasks << " pool tasks)\n";
  }

  std::cout << "wrote " << report.write_json() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  // --quick (CI's bench-gate job): skip the google-benchmark sweep and only
  // produce BENCH_inner_loop.json. Stripped before handle_bench_flags so the
  // lenient pass doesn't forward it to the benchmark library.
  bool quick = false;
  {
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      if (std::string_view(argv[i]) == "--quick") {
        quick = true;
      } else {
        argv[out++] = argv[i];
      }
    }
    argc = out;
  }
  if (const auto exit_code =
          ahg::bench::handle_bench_flags(argc, argv, /*lenient=*/true)) {
    return *exit_code;
  }
  if (!quick) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  write_inner_loop_report();
  return 0;
}
