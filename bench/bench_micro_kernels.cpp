// google-benchmark microbenchmarks of the scheduling kernels that dominate
// heuristic execution time: timeline insertion / earliest-fit search,
// candidate-pool construction, objective scoring, and placement planning.
// These are the operations a hardware (DSP/FPGA) implementation of SLRH
// would pipeline — the paper's §II motivation for the algorithm family.

#include <benchmark/benchmark.h>

#include "core/feasibility.hpp"
#include "core/placement.hpp"
#include "core/scoring.hpp"
#include "core/slrh.hpp"
#include "sim/timeline.hpp"
#include "support/rng.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace ahg;

void BM_TimelineInsertSequential(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Timeline tl;
    for (std::size_t i = 0; i < n; ++i) {
      tl.insert(static_cast<Cycles>(i) * 20, 10);
    }
    benchmark::DoNotOptimize(tl.ready_time());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TimelineInsertSequential)->Arg(64)->Arg(256)->Arg(1024);

void BM_TimelineEarliestFit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Timeline tl;
  Rng rng(7);
  Cycles cursor = 0;
  for (std::size_t i = 0; i < n; ++i) {
    cursor += rng.uniform_int(1, 30);
    const Cycles dur = rng.uniform_int(1, 20);
    tl.insert(cursor, dur);
    cursor += dur;
  }
  Cycles probe = 0;
  for (auto _ : state) {
    probe = (probe + 97) % cursor;
    benchmark::DoNotOptimize(tl.earliest_fit(probe, 25));
  }
}
BENCHMARK(BM_TimelineEarliestFit)->Arg(64)->Arg(256)->Arg(1024);

workload::Scenario bench_scenario(std::size_t num_tasks) {
  workload::SuiteParams params;
  params.num_tasks = num_tasks;
  params.num_etc = 1;
  params.num_dag = 1;
  params.master_seed = 99;
  return workload::ScenarioSuite(params).make(sim::GridCase::A, 0, 0);
}

void BM_PoolAdmissionScan(benchmark::State& state) {
  const auto scenario = bench_scenario(static_cast<std::size_t>(state.range(0)));
  sim::Schedule schedule(scenario.grid, scenario.num_tasks());
  for (auto _ : state) {
    std::size_t admissible = 0;
    for (std::size_t i = 0; i < scenario.num_tasks(); ++i) {
      if (core::slrh_pool_admissible(scenario, schedule, static_cast<TaskId>(i), 0)) {
        ++admissible;
      }
    }
    benchmark::DoNotOptimize(admissible);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PoolAdmissionScan)->Arg(256)->Arg(1024);

void BM_ScoreCandidate(benchmark::State& state) {
  const auto scenario = bench_scenario(256);
  sim::Schedule schedule(scenario.grid, scenario.num_tasks());
  const auto totals = core::objective_totals(scenario);
  const auto weights = core::Weights::make(0.6, 0.3);
  // Score root tasks (parents trivially satisfied).
  const auto roots = scenario.dag.roots();
  std::size_t k = 0;
  for (auto _ : state) {
    const TaskId task = roots[k++ % roots.size()];
    benchmark::DoNotOptimize(core::score_candidate(scenario, schedule, weights, totals,
                                                   task, 0, VersionKind::Primary, 0));
  }
}
BENCHMARK(BM_ScoreCandidate);

void BM_PlanPlacement(benchmark::State& state) {
  const auto scenario = bench_scenario(256);
  sim::Schedule schedule(scenario.grid, scenario.num_tasks());
  const auto roots = scenario.dag.roots();
  std::size_t k = 0;
  for (auto _ : state) {
    const TaskId task = roots[k++ % roots.size()];
    benchmark::DoNotOptimize(
        core::plan_placement(scenario, schedule, task, 1, VersionKind::Primary, 0));
  }
}
BENCHMARK(BM_PlanPlacement);

// Telemetry-overhead guard for the SLRH inner loop: arg 0 runs the null-sink
// fast path (the contract: same instructions as before the observability
// layer existed), arg 1 attaches a metrics-only sink (phase histograms, no
// events). Comparing the two rates bounds the cost of enabling phase timing;
// the null-sink run itself is what the <2 % inner-loop overhead budget is
// measured against.
void BM_SlrhInnerLoop(benchmark::State& state) {
  const auto scenario = bench_scenario(256);
  const bool with_metrics = state.range(0) != 0;
  obs::MetricsRegistry metrics;
  obs::ForwardSink sink(&metrics, nullptr);
  core::SlrhParams params;
  params.weights = core::Weights::make(0.7, 0.25);
  params.sink = with_metrics ? &sink : nullptr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_slrh(scenario, params));
  }
  state.SetLabel(with_metrics ? "metrics_sink" : "null_sink");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_SlrhInnerLoop)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
