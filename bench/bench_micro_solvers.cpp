// google-benchmark end-to-end solver benchmarks: full SLRH-1/2/3 and Max-Max
// runs as a function of |T|, complementing Figure 6's per-case comparison
// with scaling curves (how heuristic cost grows with the application size).

#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"
#include "core/heuristics.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace ahg;

workload::Scenario bench_scenario(std::size_t num_tasks) {
  workload::SuiteParams params;
  params.num_tasks = num_tasks;
  params.num_etc = 1;
  params.num_dag = 1;
  params.master_seed = 99;
  return workload::ScenarioSuite(params).make(sim::GridCase::A, 0, 0);
}

void run_solver(benchmark::State& state, core::HeuristicKind kind) {
  const auto scenario = bench_scenario(static_cast<std::size_t>(state.range(0)));
  const auto weights = core::Weights::make(0.6, 0.3);
  std::size_t t100 = 0;
  for (auto _ : state) {
    const auto result = core::run_heuristic(kind, scenario, weights);
    t100 = result.t100;
    benchmark::DoNotOptimize(result.assigned);
  }
  state.counters["t100"] = static_cast<double>(t100);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_Slrh1(benchmark::State& state) { run_solver(state, core::HeuristicKind::Slrh1); }
void BM_Slrh2(benchmark::State& state) { run_solver(state, core::HeuristicKind::Slrh2); }
void BM_Slrh3(benchmark::State& state) { run_solver(state, core::HeuristicKind::Slrh3); }
void BM_MaxMax(benchmark::State& state) { run_solver(state, core::HeuristicKind::MaxMax); }

BENCHMARK(BM_Slrh1)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Slrh2)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Slrh3)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MaxMax)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace

// Expanded BENCHMARK_MAIN() so the shared bench flags (--version, --jobs)
// are peeled off before Google Benchmark sees the argument list.
int main(int argc, char** argv) {
  if (const auto exit_code =
          ahg::bench::handle_bench_flags(argc, argv, /*lenient=*/true)) {
    return *exit_code;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
