// Large-scale end-to-end tier: one SLRH mapping run far above the paper's
// |T| = 1024 — the ad-hoc-grid regime the batched SoA scoring kernel and the
// timeline hole index exist for. Default scale maps |T| = 65 536 subtasks
// onto |M| = 512 machines (128 subtasks per machine, half the paper's
// per-machine pressure, with tau and batteries scaled to match); smoke scale
// is the CI-sized run of the same shape. Dumps BENCH_scale.json /
// BENCH_scale_smoke.json for the regression gate.
//
// The scenario generalises the suite's recipe to an arbitrary machine count:
// a half-fast/half-slow grid, the Gamma-CVB ETC, a layered DAG whose level
// width scales with |T| (wide levels = large ready frontiers = large pools,
// the stress this tier measures), and per-machine tau/battery pressure
// pinned to a constant fraction of the paper's so the runs stay feasible and
// version-mixed at every size.

#include <algorithm>
#include <iostream>
#include <optional>
#include <string>

#include "bench/bench_common.hpp"
#include "core/scenario_cache.hpp"
#include "core/slrh.hpp"
#include "support/contract.hpp"
#include "support/env.hpp"
#include "support/event_log.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace ahg;

struct ScaleShape {
  std::size_t num_tasks = 0;
  std::size_t num_machines = 0;
  const char* bench_name = nullptr;
};

ScaleShape shape_for(ReproScale scale) {
  switch (scale) {
    case ReproScale::Smoke:
      return {8192, 64, "scale_smoke"};
    case ReproScale::Default:
    case ReproScale::Paper:
      return {65536, 512, "scale"};
    case ReproScale::Large:
      // The scaling-curve tier (weekly CI). |T| = 1M stays behind
      // AHG_SCALE_TASKS=1048576 — same shape, one doubling step further.
      return {262144, 512, "scale_large"};
  }
  return {65536, 512, "scale"};
}

/// Accepted ranges for the AHG_SCALE_* overrides. 2^20 tasks is the 1M
/// target shape; anything above it would also blow the int32 TaskId budget
/// long before memory does.
constexpr std::int64_t kMaxScaleTasks = 1 << 20;
constexpr std::int64_t kMaxScaleMachines = 1 << 15;

workload::Scenario make_scale_scenario(std::size_t num_tasks,
                                       std::size_t num_machines,
                                       std::uint64_t seed) {
  // Per-machine pressure relative to the paper's 1024 tasks on 4 machines.
  const double pressure = (static_cast<double>(num_tasks) /
                           static_cast<double>(num_machines)) /
                          256.0;
  auto grid = sim::GridConfig::make(num_machines / 2,
                                    num_machines - num_machines / 2)
                  .with_battery_scale(pressure);

  workload::DagGeneratorParams dag_params;
  dag_params.num_nodes = num_tasks;
  // Keep DAG depth roughly constant (~32 levels) as |T| grows, so ready
  // frontiers — and therefore pool sizes — scale with |T|.
  dag_params.mean_level_width = std::max<std::size_t>(32, num_tasks / 32);
  auto dag = workload::generate_dag(dag_params, seed);
  auto data = workload::generate_data_sizes({}, dag, seed + 1);
  auto etc = workload::generate_etc({}, num_tasks,
                                    workload::machine_classes(grid), seed + 2);

  workload::Scenario scenario{std::move(grid),
                              std::move(dag),
                              std::move(etc),
                              std::move(data),
                              workload::VersionModel{},
                              cycles_from_seconds(34075.0 * pressure)};
  scenario.validate();
  return scenario;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ahg;
  if (const auto exit_code = bench::handle_bench_flags(argc, argv)) {
    return *exit_code;
  }
  ScaleShape shape = shape_for(repro_scale_from_env());
  // Local-experiment overrides; the gated CI shapes come from REPRO_SCALE.
  // Strictly validated: a malformed or out-of-range value must not silently
  // fall back to the default shape and masquerade as an override run.
  bool overridden = false;
  try {
    if (const std::int64_t t =
            env_int_checked("AHG_SCALE_TASKS", 0, 1, kMaxScaleTasks);
        t > 0) {
      shape.num_tasks = static_cast<std::size_t>(t);
      overridden = true;
    }
    if (const std::int64_t m =
            env_int_checked("AHG_SCALE_MACHINES", 0, 1, kMaxScaleMachines);
        m > 0) {
      shape.num_machines = static_cast<std::size_t>(m);
      overridden = true;
    }
  } catch (const PreconditionError& error) {
    std::cerr << argv[0] << ": " << error.what() << "\n";
    return 2;
  }
  // An overridden shape dumps (and gates) under its own name — the weekly
  // 1M run must not overwrite the 262k tier's BENCH_scale_large.json or be
  // compared against its baseline.
  std::string bench_name = shape.bench_name;
  if (overridden) {
    bench_name = "scale_" + std::to_string(shape.num_tasks) + "x" +
                 std::to_string(shape.num_machines);
  }

  // The accelerated runs are the default; AHG_SCALE_SERIAL_REF=1 adds a
  // serial-path re-run of every variant (sweep_parallel and pool_reuse off)
  // plus a bench.<variant>_sweep_speedup gauge. Defaults on for the gated
  // smoke/default tiers — where the serial run is minutes, not hours — and
  // off for the large/1M shapes whose serial reference would blow the CI
  // window.
  const bool default_serial_ref =
      !overridden && repro_scale_from_env() != ReproScale::Large;
  const bool serial_ref =
      env_int("AHG_SCALE_SERIAL_REF", default_serial_ref ? 1 : 0) != 0;

  std::cout << "=== bench_scale (" << bench_name << ") ===\n"
            << build_description() << ", jobs=" << global_pool_jobs() << "\n"
            << "|T|=" << shape.num_tasks << ", |M|=" << shape.num_machines
            << " (REPRO_SCALE=smoke|default|large to change)\n\n";

  bench::BenchReport report(bench_name);
  report.meta("num_tasks", static_cast<std::int64_t>(shape.num_tasks));
  report.meta("num_machines", static_cast<std::int64_t>(shape.num_machines));

  // --worker-trace / --heartbeat observability: live progress for the
  // multi-hour 262k/1M tiers, and the per-worker wall-clock trace for the CI
  // evidence bundle. No flags, no cost.
  bench::RuntimeSession session;
  session.set_phase("scenario_build");

  const auto scenario = report.timed_section("scenario_build", [&] {
    return make_scale_scenario(shape.num_tasks, shape.num_machines, 20040426);
  });
  // ScenarioCache pins atomics for the lazy-build path, so it is neither
  // movable nor copyable: construct it in place inside the timed section.
  session.set_phase("cache_build");
  std::optional<core::ScenarioCache> cache;
  report.timed_section("cache_build", [&] { cache.emplace(scenario); });
  report.metrics()
      .gauge("bench.cache_columns_built")
      .set(static_cast<double>(cache->columns_built()));

  // Phase sink: routes the driver's slrh.*_seconds histograms (pool build,
  // scoring, sweep_parallel) and the pool_reuse/spec_abort counters into the
  // dump, so bench_check --plot-scaling can break the curve into phases.
  obs::ForwardSink phase_sink(&report.metrics(), nullptr);

  for (const auto variant : {core::SlrhVariant::V1, core::SlrhVariant::V3}) {
    core::SlrhParams params;
    params.variant = variant;
    params.weights = core::Weights::make(0.6, 0.3);
    params.cache = &*cache;
    params.sink = &phase_sink;
    params.heartbeat = session.heartbeat();
    const std::string name = core::to_string(variant);
    session.set_phase(name + "_run");
    const auto result = report.timed_section(
        name + "_run", [&] { return core::run_slrh(scenario, params); });
    report.metrics().counter("bench." + name + "_assigned").add(result.assigned);
    report.metrics().counter("bench." + name + "_t100").add(result.t100);
    report.metrics()
        .counter("bench." + name + "_pools")
        .add(static_cast<std::uint64_t>(result.pools_built));
    report.metrics()
        .counter("bench." + name + "_pools_reused")
        .add(static_cast<std::uint64_t>(result.pools_reused));
    report.metrics()
        .counter("bench." + name + "_spec_aborts")
        .add(static_cast<std::uint64_t>(result.spec_aborted));
    report.metrics()
        .counter("bench." + name + "_complete")
        .add(result.complete ? 1 : 0);
    std::cout << name << ": assigned " << result.assigned << "/"
              << shape.num_tasks << ", t100 " << result.t100 << ", pools "
              << result.pools_built << " (+" << result.pools_reused
              << " reused, " << result.spec_aborted << " spec aborts)\n";

    if (serial_ref) {
      core::SlrhParams serial = params;
      serial.sink = nullptr;  // time the bare serial loop, no telemetry
      serial.pool_reuse = false;
      serial.sweep_parallel = false;
      session.set_phase(name + "_serial_run");
      const auto serial_result = report.timed_section(
          name + "_serial_run", [&] { return core::run_slrh(scenario, serial); });
      AHG_EXPECTS_MSG(serial_result.assigned == result.assigned &&
                          serial_result.t100 == result.t100 &&
                          serial_result.tec == result.tec,
                      "serial reference diverged from accelerated run");
      const double speedup =
          result.wall_seconds > 0.0
              ? serial_result.wall_seconds / result.wall_seconds
              : 0.0;
      report.metrics().gauge("bench." + name + "_sweep_speedup").set(speedup);
      std::cout << name << " serial reference: " << serial_result.wall_seconds
                << " s vs " << result.wall_seconds << " s accelerated ("
                << speedup << "x)\n";
    }
  }

  session.set_phase("done");
  std::cout << "wrote " << report.write_json() << "\n";
  return 0;
}
