// Table 3 reproduction: average minimum relative speed MR(j), mean (sd) over
// the suite's ETC matrices, per grid case.
//
// Paper values (|T|=1024, 10 ETC matrices):
//   Case A: fast1 0.28 (0.03), slow1 1.65 (0.18), slow2 1.74 (0.30)
//   Case B: fast1 0.26 (0.03), slow1 1.55 (0.32)
//   Case C: slow1 1.63 (0.42), slow2 1.59 (0.33)
// The reference machine is always machine 0 (a fast machine), so MR(0) = 1
// by definition and is omitted from the table, as in the paper.

#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/upper_bound.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  if (const auto exit_code = ahg::bench::handle_bench_flags(argc, argv)) return *exit_code;
  using namespace ahg;
  const auto ctx = bench::make_context("Table 3: average minimum relative speed MR(j)");
  const workload::ScenarioSuite suite(ctx.suite_params);

  const std::vector<sim::GridCase> cases = {sim::GridCase::A, sim::GridCase::B,
                                            sim::GridCase::C};

  TextTable table({"Case", "machine 1", "machine 2", "machine 3"});
  for (const auto grid_case : cases) {
    // One scenario per ETC suffices: MR depends only on the ETC matrix.
    std::vector<Accumulator> per_machine;
    for (std::size_t etc = 0; etc < suite.num_etc(); ++etc) {
      const auto scenario = suite.make(grid_case, etc, 0);
      const auto ratios = core::min_ratios(scenario.etc);
      if (per_machine.empty()) per_machine.resize(ratios.size());
      for (std::size_t j = 0; j < ratios.size(); ++j) per_machine[j].add(ratios[j]);
    }
    table.begin_row();
    table.cell(to_string(grid_case));
    for (std::size_t col = 1; col < 4; ++col) {
      if (col < per_machine.size()) {
        table.cell(format_mean_sd(per_machine[col].mean(), per_machine[col].stddev()));
      } else {
        table.cell(std::string("-"));
      }
    }
  }
  table.render(std::cout);

  std::cout << "\nmachine classes per case — A: fast,fast,slow,slow; "
               "B: fast,fast,slow; C: fast,slow,slow (machine 0 = reference)\n"
            << "paper band: second fast machine ~0.26-0.28, slow machines "
               "~1.55-1.74\n";
  return 0;
}
