// Table 4 reproduction: upper bound on the number of primary-version
// subtasks per ETC matrix per grid case, via the equivalent-computing-cycles
// method of paper §VI.
//
// Paper shape (|T|=1024): Cases A and B are resource-adequate (bound = 1024,
// with one 1013 outlier), Case C is cycle-limited well below |T|
// (654-900 across the ten ETC matrices).

#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/upper_bound.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  if (const auto exit_code = ahg::bench::handle_bench_flags(argc, argv)) return *exit_code;
  using namespace ahg;
  const auto ctx = bench::make_context("Table 4: upper bound on T100");
  const workload::ScenarioSuite suite(ctx.suite_params);

  const std::vector<sim::GridCase> cases = {sim::GridCase::A, sim::GridCase::B,
                                            sim::GridCase::C};

  TextTable table({"ETC", "Case A (2f,2s)", "Case B (2f,1s)", "Case C (1f,2s)"});
  std::vector<std::string> limits;
  for (std::size_t etc = 0; etc < suite.num_etc(); ++etc) {
    table.begin_row();
    table.cell(static_cast<long long>(etc));
    for (const auto grid_case : cases) {
      const auto scenario = suite.make(grid_case, etc, 0);
      const auto ub = core::compute_upper_bound(scenario);
      std::string cell = std::to_string(ub.bound);
      if (ub.cycle_limited) cell += " c";
      if (ub.energy_limited) cell += " e";
      table.cell(std::move(cell));
    }
  }
  table.render(std::cout);
  std::cout << "\n(c = cycle-limited, e = energy-limited; no marker = all "
            << ctx.suite_params.num_tasks << " subtasks fit)\n"
            << "paper shape: A and B at |T| (one 1013 outlier), C cycle-limited "
               "substantially below |T|\n";
  return 0;
}
