// Tables 1 and 2 reproduction: the grid configurations (machine counts per
// case) and the machine parameters B(j), C(j), E(j), BW(j) — printed from
// the code's constants so that any drift between the implementation and the
// paper's setup is immediately visible.

#include <iostream>

#include "bench/bench_common.hpp"
#include "sim/grid.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  if (const auto exit_code = ahg::bench::handle_bench_flags(argc, argv)) return *exit_code;
  using namespace ahg;

  std::cout << "=== Table 1: simulation configurations ===\n";
  TextTable t1({"Configuration", "# \"Fast\" Machines", "# \"Slow\" Machines"});
  for (const auto grid_case : {sim::GridCase::A, sim::GridCase::B, sim::GridCase::C}) {
    const auto grid = sim::GridConfig::make_case(grid_case);
    t1.begin_row();
    t1.cell(to_string(grid_case));
    t1.cell(static_cast<long long>(grid.count(sim::MachineClass::Fast)));
    t1.cell(static_cast<long long>(grid.count(sim::MachineClass::Slow)));
  }
  t1.render(std::cout);

  std::cout << "\n=== Table 2: machine parameters ===\n";
  const auto fast = sim::fast_machine_spec();
  const auto slow = sim::slow_machine_spec();
  TextTable t2({"Parameter", "\"Fast\" Machines", "\"Slow\" Machines"});
  t2.begin_row();
  t2.cell(std::string("B(j) [energy units]"));
  t2.cell(fast.battery_capacity, 0);
  t2.cell(slow.battery_capacity, 0);
  t2.begin_row();
  t2.cell(std::string("C(j) [energy units/s]"));
  t2.cell(fast.transmit_power, 3);
  t2.cell(slow.transmit_power, 3);
  t2.begin_row();
  t2.cell(std::string("E(j) [energy units/s]"));
  t2.cell(fast.compute_power, 3);
  t2.cell(slow.compute_power, 3);
  t2.begin_row();
  t2.cell(std::string("BW(j) [Mbit/s]"));
  t2.cell(fast.bandwidth_bps / 1e6, 0);
  t2.cell(slow.bandwidth_bps / 1e6, 0);
  t2.render(std::cout);

  std::cout << "\npaper values: fast = Dell Precision M60-class notebook, "
               "slow = Dell Axim X5-class PDA;\n"
               "time constraint tau = 34075 s at |T| = 1024\n";
  return 0;
}
