file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_comm_energy.dir/bench_ablation_comm_energy.cpp.o"
  "CMakeFiles/bench_ablation_comm_energy.dir/bench_ablation_comm_energy.cpp.o.d"
  "bench_ablation_comm_energy"
  "bench_ablation_comm_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_comm_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
