file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_gamma_sign.dir/bench_ablation_gamma_sign.cpp.o"
  "CMakeFiles/bench_ablation_gamma_sign.dir/bench_ablation_gamma_sign.cpp.o.d"
  "bench_ablation_gamma_sign"
  "bench_ablation_gamma_sign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gamma_sign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
