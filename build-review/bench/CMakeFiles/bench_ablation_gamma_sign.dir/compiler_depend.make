# Empty compiler generated dependencies file for bench_ablation_gamma_sign.
# This may be replaced when dependencies are built.
