file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_slrh2.dir/bench_ablation_slrh2.cpp.o"
  "CMakeFiles/bench_ablation_slrh2.dir/bench_ablation_slrh2.cpp.o.d"
  "bench_ablation_slrh2"
  "bench_ablation_slrh2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_slrh2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
