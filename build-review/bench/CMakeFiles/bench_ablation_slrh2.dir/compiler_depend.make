# Empty compiler generated dependencies file for bench_ablation_slrh2.
# This may be replaced when dependencies are built.
