file(REMOVE_RECURSE
  "CMakeFiles/bench_eval_all.dir/bench_eval_all.cpp.o"
  "CMakeFiles/bench_eval_all.dir/bench_eval_all.cpp.o.d"
  "bench_eval_all"
  "bench_eval_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eval_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
