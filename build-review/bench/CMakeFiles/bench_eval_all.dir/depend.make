# Empty dependencies file for bench_eval_all.
# This may be replaced when dependencies are built.
