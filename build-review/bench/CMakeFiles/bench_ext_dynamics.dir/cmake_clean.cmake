file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_dynamics.dir/bench_ext_dynamics.cpp.o"
  "CMakeFiles/bench_ext_dynamics.dir/bench_ext_dynamics.cpp.o.d"
  "bench_ext_dynamics"
  "bench_ext_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
