# Empty dependencies file for bench_ext_dynamics.
# This may be replaced when dependencies are built.
