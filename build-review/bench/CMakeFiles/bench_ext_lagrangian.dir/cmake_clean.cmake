file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_lagrangian.dir/bench_ext_lagrangian.cpp.o"
  "CMakeFiles/bench_ext_lagrangian.dir/bench_ext_lagrangian.cpp.o.d"
  "bench_ext_lagrangian"
  "bench_ext_lagrangian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_lagrangian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
