# Empty compiler generated dependencies file for bench_ext_lagrangian.
# This may be replaced when dependencies are built.
