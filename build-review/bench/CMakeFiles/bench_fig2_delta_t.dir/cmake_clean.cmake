file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_delta_t.dir/bench_fig2_delta_t.cpp.o"
  "CMakeFiles/bench_fig2_delta_t.dir/bench_fig2_delta_t.cpp.o.d"
  "bench_fig2_delta_t"
  "bench_fig2_delta_t.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_delta_t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
