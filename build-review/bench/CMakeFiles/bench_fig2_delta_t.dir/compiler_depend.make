# Empty compiler generated dependencies file for bench_fig2_delta_t.
# This may be replaced when dependencies are built.
