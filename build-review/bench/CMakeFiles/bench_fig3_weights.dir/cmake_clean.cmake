file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_weights.dir/bench_fig3_weights.cpp.o"
  "CMakeFiles/bench_fig3_weights.dir/bench_fig3_weights.cpp.o.d"
  "bench_fig3_weights"
  "bench_fig3_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
