# Empty dependencies file for bench_fig3_weights.
# This may be replaced when dependencies are built.
