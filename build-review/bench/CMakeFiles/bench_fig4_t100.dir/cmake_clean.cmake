file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_t100.dir/bench_fig4_t100.cpp.o"
  "CMakeFiles/bench_fig4_t100.dir/bench_fig4_t100.cpp.o.d"
  "bench_fig4_t100"
  "bench_fig4_t100.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_t100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
