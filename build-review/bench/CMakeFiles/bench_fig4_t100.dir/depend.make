# Empty dependencies file for bench_fig4_t100.
# This may be replaced when dependencies are built.
