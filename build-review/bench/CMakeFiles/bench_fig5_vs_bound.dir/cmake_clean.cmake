file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_vs_bound.dir/bench_fig5_vs_bound.cpp.o"
  "CMakeFiles/bench_fig5_vs_bound.dir/bench_fig5_vs_bound.cpp.o.d"
  "bench_fig5_vs_bound"
  "bench_fig5_vs_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_vs_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
