# Empty compiler generated dependencies file for bench_fig5_vs_bound.
# This may be replaced when dependencies are built.
