file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_value_metric.dir/bench_fig7_value_metric.cpp.o"
  "CMakeFiles/bench_fig7_value_metric.dir/bench_fig7_value_metric.cpp.o.d"
  "bench_fig7_value_metric"
  "bench_fig7_value_metric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_value_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
