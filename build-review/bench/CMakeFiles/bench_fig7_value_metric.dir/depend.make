# Empty dependencies file for bench_fig7_value_metric.
# This may be replaced when dependencies are built.
