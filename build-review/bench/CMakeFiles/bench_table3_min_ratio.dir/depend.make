# Empty dependencies file for bench_table3_min_ratio.
# This may be replaced when dependencies are built.
