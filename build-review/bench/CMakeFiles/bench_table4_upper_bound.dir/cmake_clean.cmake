file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_upper_bound.dir/bench_table4_upper_bound.cpp.o"
  "CMakeFiles/bench_table4_upper_bound.dir/bench_table4_upper_bound.cpp.o.d"
  "bench_table4_upper_bound"
  "bench_table4_upper_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_upper_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
