# Empty dependencies file for bench_table4_upper_bound.
# This may be replaced when dependencies are built.
