file(REMOVE_RECURSE
  "CMakeFiles/bench_tables_config.dir/bench_tables_config.cpp.o"
  "CMakeFiles/bench_tables_config.dir/bench_tables_config.cpp.o.d"
  "bench_tables_config"
  "bench_tables_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tables_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
