# Empty dependencies file for bench_tables_config.
# This may be replaced when dependencies are built.
