file(REMOVE_RECURSE
  "CMakeFiles/machine_loss.dir/machine_loss.cpp.o"
  "CMakeFiles/machine_loss.dir/machine_loss.cpp.o.d"
  "machine_loss"
  "machine_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
