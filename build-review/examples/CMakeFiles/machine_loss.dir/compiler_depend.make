# Empty compiler generated dependencies file for machine_loss.
# This may be replaced when dependencies are built.
