file(REMOVE_RECURSE
  "CMakeFiles/slrh_cli.dir/slrh_cli.cpp.o"
  "CMakeFiles/slrh_cli.dir/slrh_cli.cpp.o.d"
  "slrh_cli"
  "slrh_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slrh_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
