# Empty compiler generated dependencies file for slrh_cli.
# This may be replaced when dependencies are built.
