
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cpp" "src/core/CMakeFiles/ahg_core.dir/adaptive.cpp.o" "gcc" "src/core/CMakeFiles/ahg_core.dir/adaptive.cpp.o.d"
  "/root/repo/src/core/baselines.cpp" "src/core/CMakeFiles/ahg_core.dir/baselines.cpp.o" "gcc" "src/core/CMakeFiles/ahg_core.dir/baselines.cpp.o.d"
  "/root/repo/src/core/feasibility.cpp" "src/core/CMakeFiles/ahg_core.dir/feasibility.cpp.o" "gcc" "src/core/CMakeFiles/ahg_core.dir/feasibility.cpp.o.d"
  "/root/repo/src/core/frontier.cpp" "src/core/CMakeFiles/ahg_core.dir/frontier.cpp.o" "gcc" "src/core/CMakeFiles/ahg_core.dir/frontier.cpp.o.d"
  "/root/repo/src/core/heuristics.cpp" "src/core/CMakeFiles/ahg_core.dir/heuristics.cpp.o" "gcc" "src/core/CMakeFiles/ahg_core.dir/heuristics.cpp.o.d"
  "/root/repo/src/core/lagrangian.cpp" "src/core/CMakeFiles/ahg_core.dir/lagrangian.cpp.o" "gcc" "src/core/CMakeFiles/ahg_core.dir/lagrangian.cpp.o.d"
  "/root/repo/src/core/maxmax.cpp" "src/core/CMakeFiles/ahg_core.dir/maxmax.cpp.o" "gcc" "src/core/CMakeFiles/ahg_core.dir/maxmax.cpp.o.d"
  "/root/repo/src/core/objective.cpp" "src/core/CMakeFiles/ahg_core.dir/objective.cpp.o" "gcc" "src/core/CMakeFiles/ahg_core.dir/objective.cpp.o.d"
  "/root/repo/src/core/placement.cpp" "src/core/CMakeFiles/ahg_core.dir/placement.cpp.o" "gcc" "src/core/CMakeFiles/ahg_core.dir/placement.cpp.o.d"
  "/root/repo/src/core/robustness.cpp" "src/core/CMakeFiles/ahg_core.dir/robustness.cpp.o" "gcc" "src/core/CMakeFiles/ahg_core.dir/robustness.cpp.o.d"
  "/root/repo/src/core/runner.cpp" "src/core/CMakeFiles/ahg_core.dir/runner.cpp.o" "gcc" "src/core/CMakeFiles/ahg_core.dir/runner.cpp.o.d"
  "/root/repo/src/core/scenario_cache.cpp" "src/core/CMakeFiles/ahg_core.dir/scenario_cache.cpp.o" "gcc" "src/core/CMakeFiles/ahg_core.dir/scenario_cache.cpp.o.d"
  "/root/repo/src/core/scoring.cpp" "src/core/CMakeFiles/ahg_core.dir/scoring.cpp.o" "gcc" "src/core/CMakeFiles/ahg_core.dir/scoring.cpp.o.d"
  "/root/repo/src/core/slrh.cpp" "src/core/CMakeFiles/ahg_core.dir/slrh.cpp.o" "gcc" "src/core/CMakeFiles/ahg_core.dir/slrh.cpp.o.d"
  "/root/repo/src/core/tuner.cpp" "src/core/CMakeFiles/ahg_core.dir/tuner.cpp.o" "gcc" "src/core/CMakeFiles/ahg_core.dir/tuner.cpp.o.d"
  "/root/repo/src/core/upper_bound.cpp" "src/core/CMakeFiles/ahg_core.dir/upper_bound.cpp.o" "gcc" "src/core/CMakeFiles/ahg_core.dir/upper_bound.cpp.o.d"
  "/root/repo/src/core/validate.cpp" "src/core/CMakeFiles/ahg_core.dir/validate.cpp.o" "gcc" "src/core/CMakeFiles/ahg_core.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/workload/CMakeFiles/ahg_workload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/ahg_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/ahg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
