file(REMOVE_RECURSE
  "libahg_core.a"
)
