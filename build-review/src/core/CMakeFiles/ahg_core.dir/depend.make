# Empty dependencies file for ahg_core.
# This may be replaced when dependencies are built.
