
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/comm.cpp" "src/sim/CMakeFiles/ahg_sim.dir/comm.cpp.o" "gcc" "src/sim/CMakeFiles/ahg_sim.dir/comm.cpp.o.d"
  "/root/repo/src/sim/energy.cpp" "src/sim/CMakeFiles/ahg_sim.dir/energy.cpp.o" "gcc" "src/sim/CMakeFiles/ahg_sim.dir/energy.cpp.o.d"
  "/root/repo/src/sim/grid.cpp" "src/sim/CMakeFiles/ahg_sim.dir/grid.cpp.o" "gcc" "src/sim/CMakeFiles/ahg_sim.dir/grid.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/sim/CMakeFiles/ahg_sim.dir/machine.cpp.o" "gcc" "src/sim/CMakeFiles/ahg_sim.dir/machine.cpp.o.d"
  "/root/repo/src/sim/schedule.cpp" "src/sim/CMakeFiles/ahg_sim.dir/schedule.cpp.o" "gcc" "src/sim/CMakeFiles/ahg_sim.dir/schedule.cpp.o.d"
  "/root/repo/src/sim/svg.cpp" "src/sim/CMakeFiles/ahg_sim.dir/svg.cpp.o" "gcc" "src/sim/CMakeFiles/ahg_sim.dir/svg.cpp.o.d"
  "/root/repo/src/sim/timeline.cpp" "src/sim/CMakeFiles/ahg_sim.dir/timeline.cpp.o" "gcc" "src/sim/CMakeFiles/ahg_sim.dir/timeline.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/ahg_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/ahg_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/support/CMakeFiles/ahg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
