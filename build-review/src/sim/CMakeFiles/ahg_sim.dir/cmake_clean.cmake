file(REMOVE_RECURSE
  "CMakeFiles/ahg_sim.dir/comm.cpp.o"
  "CMakeFiles/ahg_sim.dir/comm.cpp.o.d"
  "CMakeFiles/ahg_sim.dir/energy.cpp.o"
  "CMakeFiles/ahg_sim.dir/energy.cpp.o.d"
  "CMakeFiles/ahg_sim.dir/grid.cpp.o"
  "CMakeFiles/ahg_sim.dir/grid.cpp.o.d"
  "CMakeFiles/ahg_sim.dir/machine.cpp.o"
  "CMakeFiles/ahg_sim.dir/machine.cpp.o.d"
  "CMakeFiles/ahg_sim.dir/schedule.cpp.o"
  "CMakeFiles/ahg_sim.dir/schedule.cpp.o.d"
  "CMakeFiles/ahg_sim.dir/svg.cpp.o"
  "CMakeFiles/ahg_sim.dir/svg.cpp.o.d"
  "CMakeFiles/ahg_sim.dir/timeline.cpp.o"
  "CMakeFiles/ahg_sim.dir/timeline.cpp.o.d"
  "CMakeFiles/ahg_sim.dir/trace.cpp.o"
  "CMakeFiles/ahg_sim.dir/trace.cpp.o.d"
  "libahg_sim.a"
  "libahg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
