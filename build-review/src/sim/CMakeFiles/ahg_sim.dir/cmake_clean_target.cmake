file(REMOVE_RECURSE
  "libahg_sim.a"
)
