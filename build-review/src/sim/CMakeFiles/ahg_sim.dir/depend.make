# Empty dependencies file for ahg_sim.
# This may be replaced when dependencies are built.
