
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/args.cpp" "src/support/CMakeFiles/ahg_support.dir/args.cpp.o" "gcc" "src/support/CMakeFiles/ahg_support.dir/args.cpp.o.d"
  "/root/repo/src/support/csv.cpp" "src/support/CMakeFiles/ahg_support.dir/csv.cpp.o" "gcc" "src/support/CMakeFiles/ahg_support.dir/csv.cpp.o.d"
  "/root/repo/src/support/distributions.cpp" "src/support/CMakeFiles/ahg_support.dir/distributions.cpp.o" "gcc" "src/support/CMakeFiles/ahg_support.dir/distributions.cpp.o.d"
  "/root/repo/src/support/env.cpp" "src/support/CMakeFiles/ahg_support.dir/env.cpp.o" "gcc" "src/support/CMakeFiles/ahg_support.dir/env.cpp.o.d"
  "/root/repo/src/support/event_log.cpp" "src/support/CMakeFiles/ahg_support.dir/event_log.cpp.o" "gcc" "src/support/CMakeFiles/ahg_support.dir/event_log.cpp.o.d"
  "/root/repo/src/support/jsonl.cpp" "src/support/CMakeFiles/ahg_support.dir/jsonl.cpp.o" "gcc" "src/support/CMakeFiles/ahg_support.dir/jsonl.cpp.o.d"
  "/root/repo/src/support/metrics.cpp" "src/support/CMakeFiles/ahg_support.dir/metrics.cpp.o" "gcc" "src/support/CMakeFiles/ahg_support.dir/metrics.cpp.o.d"
  "/root/repo/src/support/profile.cpp" "src/support/CMakeFiles/ahg_support.dir/profile.cpp.o" "gcc" "src/support/CMakeFiles/ahg_support.dir/profile.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/support/CMakeFiles/ahg_support.dir/rng.cpp.o" "gcc" "src/support/CMakeFiles/ahg_support.dir/rng.cpp.o.d"
  "/root/repo/src/support/stats.cpp" "src/support/CMakeFiles/ahg_support.dir/stats.cpp.o" "gcc" "src/support/CMakeFiles/ahg_support.dir/stats.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/support/CMakeFiles/ahg_support.dir/table.cpp.o" "gcc" "src/support/CMakeFiles/ahg_support.dir/table.cpp.o.d"
  "/root/repo/src/support/thread_pool.cpp" "src/support/CMakeFiles/ahg_support.dir/thread_pool.cpp.o" "gcc" "src/support/CMakeFiles/ahg_support.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
