file(REMOVE_RECURSE
  "CMakeFiles/ahg_support.dir/args.cpp.o"
  "CMakeFiles/ahg_support.dir/args.cpp.o.d"
  "CMakeFiles/ahg_support.dir/csv.cpp.o"
  "CMakeFiles/ahg_support.dir/csv.cpp.o.d"
  "CMakeFiles/ahg_support.dir/distributions.cpp.o"
  "CMakeFiles/ahg_support.dir/distributions.cpp.o.d"
  "CMakeFiles/ahg_support.dir/env.cpp.o"
  "CMakeFiles/ahg_support.dir/env.cpp.o.d"
  "CMakeFiles/ahg_support.dir/event_log.cpp.o"
  "CMakeFiles/ahg_support.dir/event_log.cpp.o.d"
  "CMakeFiles/ahg_support.dir/jsonl.cpp.o"
  "CMakeFiles/ahg_support.dir/jsonl.cpp.o.d"
  "CMakeFiles/ahg_support.dir/metrics.cpp.o"
  "CMakeFiles/ahg_support.dir/metrics.cpp.o.d"
  "CMakeFiles/ahg_support.dir/profile.cpp.o"
  "CMakeFiles/ahg_support.dir/profile.cpp.o.d"
  "CMakeFiles/ahg_support.dir/rng.cpp.o"
  "CMakeFiles/ahg_support.dir/rng.cpp.o.d"
  "CMakeFiles/ahg_support.dir/stats.cpp.o"
  "CMakeFiles/ahg_support.dir/stats.cpp.o.d"
  "CMakeFiles/ahg_support.dir/table.cpp.o"
  "CMakeFiles/ahg_support.dir/table.cpp.o.d"
  "CMakeFiles/ahg_support.dir/thread_pool.cpp.o"
  "CMakeFiles/ahg_support.dir/thread_pool.cpp.o.d"
  "libahg_support.a"
  "libahg_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahg_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
