file(REMOVE_RECURSE
  "libahg_support.a"
)
