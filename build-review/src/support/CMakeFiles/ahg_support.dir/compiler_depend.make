# Empty compiler generated dependencies file for ahg_support.
# This may be replaced when dependencies are built.
