
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/dag.cpp" "src/workload/CMakeFiles/ahg_workload.dir/dag.cpp.o" "gcc" "src/workload/CMakeFiles/ahg_workload.dir/dag.cpp.o.d"
  "/root/repo/src/workload/dag_generator.cpp" "src/workload/CMakeFiles/ahg_workload.dir/dag_generator.cpp.o" "gcc" "src/workload/CMakeFiles/ahg_workload.dir/dag_generator.cpp.o.d"
  "/root/repo/src/workload/data_sizes.cpp" "src/workload/CMakeFiles/ahg_workload.dir/data_sizes.cpp.o" "gcc" "src/workload/CMakeFiles/ahg_workload.dir/data_sizes.cpp.o.d"
  "/root/repo/src/workload/dynamics.cpp" "src/workload/CMakeFiles/ahg_workload.dir/dynamics.cpp.o" "gcc" "src/workload/CMakeFiles/ahg_workload.dir/dynamics.cpp.o.d"
  "/root/repo/src/workload/etc_generator.cpp" "src/workload/CMakeFiles/ahg_workload.dir/etc_generator.cpp.o" "gcc" "src/workload/CMakeFiles/ahg_workload.dir/etc_generator.cpp.o.d"
  "/root/repo/src/workload/etc_matrix.cpp" "src/workload/CMakeFiles/ahg_workload.dir/etc_matrix.cpp.o" "gcc" "src/workload/CMakeFiles/ahg_workload.dir/etc_matrix.cpp.o.d"
  "/root/repo/src/workload/scenario.cpp" "src/workload/CMakeFiles/ahg_workload.dir/scenario.cpp.o" "gcc" "src/workload/CMakeFiles/ahg_workload.dir/scenario.cpp.o.d"
  "/root/repo/src/workload/scenario_io.cpp" "src/workload/CMakeFiles/ahg_workload.dir/scenario_io.cpp.o" "gcc" "src/workload/CMakeFiles/ahg_workload.dir/scenario_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/support/CMakeFiles/ahg_support.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/ahg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
