file(REMOVE_RECURSE
  "CMakeFiles/ahg_workload.dir/dag.cpp.o"
  "CMakeFiles/ahg_workload.dir/dag.cpp.o.d"
  "CMakeFiles/ahg_workload.dir/dag_generator.cpp.o"
  "CMakeFiles/ahg_workload.dir/dag_generator.cpp.o.d"
  "CMakeFiles/ahg_workload.dir/data_sizes.cpp.o"
  "CMakeFiles/ahg_workload.dir/data_sizes.cpp.o.d"
  "CMakeFiles/ahg_workload.dir/dynamics.cpp.o"
  "CMakeFiles/ahg_workload.dir/dynamics.cpp.o.d"
  "CMakeFiles/ahg_workload.dir/etc_generator.cpp.o"
  "CMakeFiles/ahg_workload.dir/etc_generator.cpp.o.d"
  "CMakeFiles/ahg_workload.dir/etc_matrix.cpp.o"
  "CMakeFiles/ahg_workload.dir/etc_matrix.cpp.o.d"
  "CMakeFiles/ahg_workload.dir/scenario.cpp.o"
  "CMakeFiles/ahg_workload.dir/scenario.cpp.o.d"
  "CMakeFiles/ahg_workload.dir/scenario_io.cpp.o"
  "CMakeFiles/ahg_workload.dir/scenario_io.cpp.o.d"
  "libahg_workload.a"
  "libahg_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahg_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
