file(REMOVE_RECURSE
  "libahg_workload.a"
)
