# Empty compiler generated dependencies file for ahg_workload.
# This may be replaced when dependencies are built.
