
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_adaptive.cpp" "tests/CMakeFiles/test_adaptive.dir/test_adaptive.cpp.o" "gcc" "tests/CMakeFiles/test_adaptive.dir/test_adaptive.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/ahg_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/workload/CMakeFiles/ahg_workload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/ahg_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/ahg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
