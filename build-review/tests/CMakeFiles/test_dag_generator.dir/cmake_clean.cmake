file(REMOVE_RECURSE
  "CMakeFiles/test_dag_generator.dir/test_dag_generator.cpp.o"
  "CMakeFiles/test_dag_generator.dir/test_dag_generator.cpp.o.d"
  "test_dag_generator"
  "test_dag_generator.pdb"
  "test_dag_generator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dag_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
