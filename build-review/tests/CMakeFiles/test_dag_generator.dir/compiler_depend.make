# Empty compiler generated dependencies file for test_dag_generator.
# This may be replaced when dependencies are built.
