file(REMOVE_RECURSE
  "CMakeFiles/test_data_sizes.dir/test_data_sizes.cpp.o"
  "CMakeFiles/test_data_sizes.dir/test_data_sizes.cpp.o.d"
  "test_data_sizes"
  "test_data_sizes.pdb"
  "test_data_sizes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
