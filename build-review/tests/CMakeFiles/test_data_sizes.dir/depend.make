# Empty dependencies file for test_data_sizes.
# This may be replaced when dependencies are built.
