file(REMOVE_RECURSE
  "CMakeFiles/test_etc.dir/test_etc.cpp.o"
  "CMakeFiles/test_etc.dir/test_etc.cpp.o.d"
  "test_etc"
  "test_etc.pdb"
  "test_etc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_etc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
