# Empty compiler generated dependencies file for test_etc.
# This may be replaced when dependencies are built.
