file(REMOVE_RECURSE
  "CMakeFiles/test_event_log.dir/test_event_log.cpp.o"
  "CMakeFiles/test_event_log.dir/test_event_log.cpp.o.d"
  "test_event_log"
  "test_event_log.pdb"
  "test_event_log[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
