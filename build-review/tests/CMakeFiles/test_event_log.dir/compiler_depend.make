# Empty compiler generated dependencies file for test_event_log.
# This may be replaced when dependencies are built.
