file(REMOVE_RECURSE
  "CMakeFiles/test_heuristics_runner.dir/test_heuristics_runner.cpp.o"
  "CMakeFiles/test_heuristics_runner.dir/test_heuristics_runner.cpp.o.d"
  "test_heuristics_runner"
  "test_heuristics_runner.pdb"
  "test_heuristics_runner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heuristics_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
