# Empty dependencies file for test_heuristics_runner.
# This may be replaced when dependencies are built.
