file(REMOVE_RECURSE
  "CMakeFiles/test_lagrangian.dir/test_lagrangian.cpp.o"
  "CMakeFiles/test_lagrangian.dir/test_lagrangian.cpp.o.d"
  "test_lagrangian"
  "test_lagrangian.pdb"
  "test_lagrangian[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lagrangian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
