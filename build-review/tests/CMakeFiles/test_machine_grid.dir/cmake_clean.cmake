file(REMOVE_RECURSE
  "CMakeFiles/test_machine_grid.dir/test_machine_grid.cpp.o"
  "CMakeFiles/test_machine_grid.dir/test_machine_grid.cpp.o.d"
  "test_machine_grid"
  "test_machine_grid.pdb"
  "test_machine_grid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
