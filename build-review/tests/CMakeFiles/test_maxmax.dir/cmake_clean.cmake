file(REMOVE_RECURSE
  "CMakeFiles/test_maxmax.dir/test_maxmax.cpp.o"
  "CMakeFiles/test_maxmax.dir/test_maxmax.cpp.o.d"
  "test_maxmax"
  "test_maxmax.pdb"
  "test_maxmax[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_maxmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
