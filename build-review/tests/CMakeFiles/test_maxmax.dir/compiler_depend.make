# Empty compiler generated dependencies file for test_maxmax.
# This may be replaced when dependencies are built.
