file(REMOVE_RECURSE
  "CMakeFiles/test_objective.dir/test_objective.cpp.o"
  "CMakeFiles/test_objective.dir/test_objective.cpp.o.d"
  "test_objective"
  "test_objective.pdb"
  "test_objective[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_objective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
