# Empty dependencies file for test_objective.
# This may be replaced when dependencies are built.
