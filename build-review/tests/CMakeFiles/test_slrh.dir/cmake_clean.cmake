file(REMOVE_RECURSE
  "CMakeFiles/test_slrh.dir/test_slrh.cpp.o"
  "CMakeFiles/test_slrh.dir/test_slrh.cpp.o.d"
  "test_slrh"
  "test_slrh.pdb"
  "test_slrh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slrh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
