# Empty dependencies file for test_slrh.
# This may be replaced when dependencies are built.
