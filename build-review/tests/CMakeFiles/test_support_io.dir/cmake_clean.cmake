file(REMOVE_RECURSE
  "CMakeFiles/test_support_io.dir/test_support_io.cpp.o"
  "CMakeFiles/test_support_io.dir/test_support_io.cpp.o.d"
  "test_support_io"
  "test_support_io.pdb"
  "test_support_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
