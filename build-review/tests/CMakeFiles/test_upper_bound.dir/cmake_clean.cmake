file(REMOVE_RECURSE
  "CMakeFiles/test_upper_bound.dir/test_upper_bound.cpp.o"
  "CMakeFiles/test_upper_bound.dir/test_upper_bound.cpp.o.d"
  "test_upper_bound"
  "test_upper_bound.pdb"
  "test_upper_bound[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_upper_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
