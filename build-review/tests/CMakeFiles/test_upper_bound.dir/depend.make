# Empty dependencies file for test_upper_bound.
# This may be replaced when dependencies are built.
