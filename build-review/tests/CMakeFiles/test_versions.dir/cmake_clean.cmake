file(REMOVE_RECURSE
  "CMakeFiles/test_versions.dir/test_versions.cpp.o"
  "CMakeFiles/test_versions.dir/test_versions.cpp.o.d"
  "test_versions"
  "test_versions.pdb"
  "test_versions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_versions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
