# Empty compiler generated dependencies file for test_versions.
# This may be replaced when dependencies are built.
