file(REMOVE_RECURSE
  "CMakeFiles/ahg_core.dir/adaptive.cpp.o"
  "CMakeFiles/ahg_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/ahg_core.dir/baselines.cpp.o"
  "CMakeFiles/ahg_core.dir/baselines.cpp.o.d"
  "CMakeFiles/ahg_core.dir/feasibility.cpp.o"
  "CMakeFiles/ahg_core.dir/feasibility.cpp.o.d"
  "CMakeFiles/ahg_core.dir/heuristics.cpp.o"
  "CMakeFiles/ahg_core.dir/heuristics.cpp.o.d"
  "CMakeFiles/ahg_core.dir/lagrangian.cpp.o"
  "CMakeFiles/ahg_core.dir/lagrangian.cpp.o.d"
  "CMakeFiles/ahg_core.dir/maxmax.cpp.o"
  "CMakeFiles/ahg_core.dir/maxmax.cpp.o.d"
  "CMakeFiles/ahg_core.dir/objective.cpp.o"
  "CMakeFiles/ahg_core.dir/objective.cpp.o.d"
  "CMakeFiles/ahg_core.dir/placement.cpp.o"
  "CMakeFiles/ahg_core.dir/placement.cpp.o.d"
  "CMakeFiles/ahg_core.dir/robustness.cpp.o"
  "CMakeFiles/ahg_core.dir/robustness.cpp.o.d"
  "CMakeFiles/ahg_core.dir/runner.cpp.o"
  "CMakeFiles/ahg_core.dir/runner.cpp.o.d"
  "CMakeFiles/ahg_core.dir/scoring.cpp.o"
  "CMakeFiles/ahg_core.dir/scoring.cpp.o.d"
  "CMakeFiles/ahg_core.dir/slrh.cpp.o"
  "CMakeFiles/ahg_core.dir/slrh.cpp.o.d"
  "CMakeFiles/ahg_core.dir/tuner.cpp.o"
  "CMakeFiles/ahg_core.dir/tuner.cpp.o.d"
  "CMakeFiles/ahg_core.dir/upper_bound.cpp.o"
  "CMakeFiles/ahg_core.dir/upper_bound.cpp.o.d"
  "CMakeFiles/ahg_core.dir/validate.cpp.o"
  "CMakeFiles/ahg_core.dir/validate.cpp.o.d"
  "libahg_core.a"
  "libahg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
