// critical_path: run a heuristic with the task ledger attached, walk the
// makespan critical path, and print the per-category attribution — the
// "where did the makespan go" forensic view (exec vs comm vs wait vs
// recovery, per machine).
//
//   critical_path                         # SLRH-1, |T|=1024, Case A
//   critical_path --heuristic maxmax --tasks 256 --top-k 5
//   critical_path --churn-rate 0.5       # recovery attribution
//
// The tool also self-checks the analyzer's exact-decomposition guarantee
// (segment durations sum to the makespan; category fractions sum to 1) and
// exits non-zero on violation, so CI can run it as a smoke test.

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <optional>

#include "core/churn.hpp"
#include "core/critical_path.hpp"
#include "core/heuristics.hpp"
#include "support/args.hpp"
#include "support/task_ledger.hpp"
#include "workload/dynamics.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace ahg;

  ArgParser args("critical_path",
                 "analyze the makespan critical path of a heuristic run");
  args.add_string("heuristic", "slrh1", "slrh1|slrh2|slrh3|maxmax");
  args.add_string("case", "A", "grid case: A (2f+2s), B (2f+1s), C (1f+2s)");
  args.add_int("tasks", 1024, "number of subtasks |T|");
  args.add_int("seed", 20040426, "suite master seed");
  args.add_double("alpha", 0.7, "objective weight on T100");
  args.add_double("beta", 0.3, "objective weight on TEC (gamma = 1-alpha-beta)");
  args.add_double("churn-rate", 0.0,
                  "mean machine departures per machine (slrh1-3 recover "
                  "mid-run; adds recovery attribution)");
  args.add_int("top-k", 3, "number of backward walks (runner-up paths)");
  args.add_flag("no-ledger",
                "analyze without the task ledger (horizon-wait absorbs the "
                "admission split; recovery attribution unavailable)");
  if (!args.parse(argc, argv)) return args.error() ? EXIT_FAILURE : EXIT_SUCCESS;

  const std::string name = args.get_string("heuristic");
  core::HeuristicKind kind;
  if (name == "slrh1") kind = core::HeuristicKind::Slrh1;
  else if (name == "slrh2") kind = core::HeuristicKind::Slrh2;
  else if (name == "slrh3") kind = core::HeuristicKind::Slrh3;
  else if (name == "maxmax") kind = core::HeuristicKind::MaxMax;
  else {
    std::cerr << "critical_path: unknown heuristic '" << name << "'\n";
    return EXIT_FAILURE;
  }
  const std::string case_name = args.get_string("case");
  sim::GridCase grid_case;
  if (case_name == "A" || case_name == "a") grid_case = sim::GridCase::A;
  else if (case_name == "B" || case_name == "b") grid_case = sim::GridCase::B;
  else if (case_name == "C" || case_name == "c") grid_case = sim::GridCase::C;
  else {
    std::cerr << "critical_path: unknown case '" << case_name << "'\n";
    return EXIT_FAILURE;
  }

  workload::SuiteParams suite_params;
  suite_params.num_tasks = static_cast<std::size_t>(args.get_int("tasks"));
  suite_params.num_etc = 1;
  suite_params.num_dag = 1;
  suite_params.master_seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const workload::ScenarioSuite suite(suite_params);
  auto scenario = suite.make(grid_case, 0, 0);
  if (const double churn_rate = args.get_double("churn-rate"); churn_rate > 0.0) {
    workload::ChurnParams params;
    params.departures_per_machine = churn_rate;
    const auto trace = workload::generate_machine_churn(
        params, scenario.num_machines(), scenario.tau,
        suite_params.master_seed ^ 0xC4C);
    scenario.machine_windows = trace.windows;
  }

  std::optional<obs::TaskLedger> ledger_storage;
  obs::TaskLedger* ledger = nullptr;
  if (!args.get_flag("no-ledger")) {
    ledger_storage.emplace(scenario.num_tasks());
    ledger = &*ledger_storage;
  }

  const core::Weights weights =
      core::Weights::make(args.get_double("alpha"), args.get_double("beta"));
  core::MappingResult result;
  if (kind != core::HeuristicKind::MaxMax && !scenario.machine_windows.empty()) {
    core::SlrhParams params;
    params.variant = kind == core::HeuristicKind::Slrh1   ? core::SlrhVariant::V1
                     : kind == core::HeuristicKind::Slrh2 ? core::SlrhVariant::V2
                                                          : core::SlrhVariant::V3;
    params.weights = weights;
    params.ledger = ledger;
    result = core::run_slrh_with_churn(scenario, params,
                                       core::ChurnRecovery::Remap)
                 .result;
  } else {
    result = core::run_heuristic(kind, scenario, weights, {},
                                 core::AetSign::Reward, nullptr, nullptr,
                                 nullptr, ledger);
  }
  std::cout << name << ": mapped " << result.assigned << "/"
            << scenario.num_tasks() << ", T100=" << result.t100 << ", AET "
            << seconds_from_cycles(result.aet) << " s\n\n";

  const auto report = core::analyze_critical_path(
      scenario, *result.schedule, ledger,
      static_cast<std::size_t>(args.get_int("top-k")));
  core::write_critical_path_report(std::cout, report);

  // --- exact-decomposition self-check --------------------------------------
  bool ok = true;
  for (const auto& path : report.paths) {
    Cycles sum = 0;
    Cycles cursor = 0;
    for (const auto& seg : path.segments) {
      if (seg.start != cursor) ok = false;  // gap or overlap
      sum += seg.duration();
      cursor = seg.finish;
    }
    if (sum != path.makespan) ok = false;
  }
  const double fractions = report.exec.fraction + report.comm.fraction +
                           report.wait.fraction + report.recovery.fraction;
  const Cycles categories = report.exec.cycles + report.comm.cycles +
                            report.wait.cycles + report.recovery.cycles;
  if (categories != report.makespan) ok = false;
  if (report.makespan > 0 && std::abs(fractions - 1.0) > 1e-9) ok = false;
  if (!ok) {
    std::cerr << "critical_path: DECOMPOSITION CHECK FAILED (segments "
                 "must tile [0, makespan) and categories must sum to 100%)\n";
    return EXIT_FAILURE;
  }
  std::cout << "\ndecomposition check: segment sum == makespan ("
            << report.makespan << " cycles), fractions sum to "
            << fractions << "\n";
  return EXIT_SUCCESS;
}
