// Machine loss: the introduction's motivating story. Runs the SLRH-1
// resource manager on the same workload in all three grid configurations
// (Case A = full grid, Case B = a slow machine lost, Case C = a fast machine
// lost) and then demonstrates DYNAMIC mid-run loss: the grid degrades while
// the heuristic is executing and the unfinished work is remapped onto the
// survivors (the paper's stated motivation for a dynamic heuristic).
//
// Usage: machine_loss [num_subtasks]

#include <cstdlib>
#include <iostream>

#include "core/adaptive.hpp"
#include "core/heuristics.hpp"
#include "core/validate.hpp"
#include "support/table.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace ahg;

  workload::SuiteParams suite_params;
  suite_params.num_tasks = argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 128;
  suite_params.num_etc = 1;
  suite_params.num_dag = 1;
  const workload::ScenarioSuite suite(suite_params);

  const core::Weights weights = core::Weights::make(0.6, 0.3);

  std::cout << "=== Static configuration comparison (SLRH-1, fixed weights "
            << weights.str() << ") ===\n";
  TextTable table({"Configuration", "machines", "T100", "mapped", "AET [s]",
                   "TEC", "feasible"});
  for (const auto grid_case : {sim::GridCase::A, sim::GridCase::B, sim::GridCase::C}) {
    const auto scenario = suite.make(grid_case, 0, 0);
    const auto result = core::run_heuristic(core::HeuristicKind::Slrh1, scenario, weights);
    table.begin_row();
    table.cell(to_string(grid_case));
    table.cell(static_cast<long long>(scenario.num_machines()));
    table.cell(static_cast<long long>(result.t100));
    table.cell(std::to_string(result.assigned) + "/" +
               std::to_string(scenario.num_tasks()));
    table.cell(seconds_from_cycles(result.aet), 1);
    table.cell(result.tec, 2);
    table.cell(std::string(result.feasible() ? "yes" : "NO"));
  }
  table.render(std::cout);

  std::cout << "\n=== Dynamic mid-run machine loss ===\n";
  const auto scenario = suite.make(sim::GridCase::A, 0, 0);
  // Lose fast machine 1 one quarter of the way into the time window.
  const Cycles loss_time = scenario.tau / 4;
  core::MachineLossEvent loss;
  loss.machine = 1;
  loss.time = loss_time;

  const auto outcome = core::run_slrh_with_loss(scenario, weights, loss);
  std::cout << "machine 1 (fast) lost at " << seconds_from_cycles(loss_time)
            << " s into the run\n"
            << "subtasks completed on the lost machine (results lost): "
            << outcome.completed_on_lost_machine << "\n"
            << "mapped subtasks invalidated and redone on survivors:   "
            << outcome.discarded << "\n"
            << "weights after online alpha adaptation: "
            << outcome.adapted_weights.str() << "\n"
            << "final: T100=" << outcome.result.t100 << ", mapped "
            << outcome.result.assigned << "/" << scenario.num_tasks() << ", AET "
            << seconds_from_cycles(outcome.result.aet) << " s, feasible: "
            << (outcome.result.feasible() ? "yes" : "NO") << "\n";

  const auto report =
      core::validate_schedule(outcome.degraded_scenario, *outcome.result.schedule,
                              core::ValidateOptions{false, false});
  std::cout << "independent validation of the post-loss schedule: " << report.str()
            << "\n";
  return report.ok() ? EXIT_SUCCESS : EXIT_FAILURE;
}
