// Quickstart: build a small ad hoc grid scenario, run the SLRH-1 resource
// manager, verify the mapping with the independent validator, and print a
// summary plus an ASCII Gantt chart.
//
// Usage: quickstart [num_subtasks] [seed]

#include <cstdlib>
#include <iostream>

#include "core/heuristics.hpp"
#include "core/upper_bound.hpp"
#include "core/validate.hpp"
#include "sim/trace.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace ahg;

  workload::SuiteParams suite_params;
  suite_params.num_tasks = argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 64;
  suite_params.num_etc = 1;
  suite_params.num_dag = 1;
  suite_params.master_seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2]))
                                      : 20040426ULL;

  const workload::ScenarioSuite suite(suite_params);
  const workload::Scenario scenario = suite.make(sim::GridCase::A, 0, 0);

  std::cout << "=== Ad hoc grid quickstart ===\n"
            << "subtasks: " << scenario.num_tasks()
            << ", machines: " << scenario.num_machines() << " ("
            << scenario.grid.count(sim::MachineClass::Fast) << " fast, "
            << scenario.grid.count(sim::MachineClass::Slow) << " slow)\n"
            << "tau: " << scenario.tau << " cycles ("
            << seconds_from_cycles(scenario.tau) << " s), TSE: "
            << scenario.grid.total_system_energy() << " energy units\n\n";

  // Weights from the tuned optimal region for Case A (see EXPERIMENTS.md).
  const core::Weights weights = core::Weights::make(0.7, 0.3);
  const core::MappingResult result =
      core::run_heuristic(core::HeuristicKind::Slrh1, scenario, weights);

  std::cout << "SLRH-1 with weights " << weights.str() << ":\n"
            << "  complete:   " << (result.complete ? "yes" : "NO") << " ("
            << result.assigned << "/" << scenario.num_tasks() << " mapped)\n"
            << "  T100:       " << result.t100 << " primary versions\n"
            << "  AET:        " << result.aet << " cycles ("
            << seconds_from_cycles(result.aet) << " s; tau "
            << (result.within_tau ? "met" : "VIOLATED") << ")\n"
            << "  TEC:        " << result.tec << " energy units\n"
            << "  heuristic:  " << result.wall_seconds * 1e3 << " ms, "
            << result.iterations << " clock sweeps\n\n";

  const auto bound = core::compute_upper_bound(scenario);
  std::cout << "upper bound on T100 (equivalent computing cycles): " << bound.bound
            << (bound.cycle_limited ? " [cycle-limited]" : "")
            << (bound.energy_limited ? " [energy-limited]" : "") << "\n\n";

  const auto report = core::validate_schedule(scenario, *result.schedule);
  std::cout << "independent validation: " << report.str() << "\n";

  sim::GanttOptions gantt;
  gantt.width = 96;
  sim::render_gantt(std::cout, *result.schedule, gantt);

  return report.ok() ? EXIT_SUCCESS : EXIT_FAILURE;
}
