// Run diff: align two `.frames.jsonl` flight recordings timestep by
// timestep and report where — and by how much — they diverge. The intended
// uses are A/B-ing a code change ("did my refactor alter any decision?"),
// comparing weight settings, and quantifying churn impact against a
// churn-free run of the same scenario.
//
//   run_diff base.frames.jsonl candidate.frames.jsonl
//
// Frames are matched exactly on (heuristic, clock); sampling differences
// (idle-stride decimation) leave unmatched frames, which are counted but not
// compared. Exit status: 0 identical within --tol, 1 diverged, 2 usage /
// I/O error.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "support/args.hpp"
#include "support/flight_recorder.hpp"
#include "support/table.hpp"

namespace {

using ahg::obs::Frame;

std::vector<Frame> load(const std::string& path, const std::string& filter) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "run_diff: cannot open " << path << "\n";
    std::exit(2);
  }
  std::vector<Frame> frames = ahg::obs::read_frames_jsonl(in);
  if (!filter.empty()) {
    std::erase_if(frames,
                  [&](const Frame& f) { return f.heuristic != filter; });
  }
  return frames;
}

struct TermDelta {
  std::string name;
  double max_abs = 0.0;
  ahg::Cycles at_clock = -1;

  void feed(double a, double b, ahg::Cycles clock) {
    const double delta = std::abs(a - b);
    if (delta > max_abs) {
      max_abs = delta;
      at_clock = clock;
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ahg;

  ArgParser args("run_diff",
                 "align two .frames.jsonl flight recordings by timestep and "
                 "report the first divergence and per-term drift");
  args.add_positional("base", "the baseline .frames.jsonl recording");
  args.add_positional("candidate", "the recording to compare against it");
  args.add_string("heuristic", "",
                  "only compare frames of this heuristic (exact match); "
                  "default: every heuristic present in either file");
  args.add_double("tol", 0.0,
                  "absolute tolerance for floating-point fields (terms, "
                  "objective, TEC, battery); integers always compare exactly");
  if (!args.parse(argc, argv)) return args.error() ? 2 : EXIT_SUCCESS;

  const std::string filter = args.get_string("heuristic");
  const double tol = args.get_double("tol");
  const std::string base_path = args.get_string("base");
  const std::string cand_path = args.get_string("candidate");
  const std::vector<Frame> base = load(base_path, filter);
  const std::vector<Frame> cand = load(cand_path, filter);
  if (base.empty() || cand.empty()) {
    std::cerr << "run_diff: " << (base.empty() ? base_path : cand_path)
              << " holds no frames"
              << (filter.empty() ? "" : " matching --heuristic") << "\n";
    return 2;
  }

  // Index: (heuristic, clock) -> frame. Later duplicates win (a recording
  // ring that wrapped keeps the newest sample of a clock).
  std::map<std::pair<std::string, Cycles>, const Frame*> base_index;
  for (const Frame& f : base) base_index[{f.heuristic, f.clock}] = &f;

  std::size_t aligned = 0;
  std::size_t cand_only = 0;
  bool diverged = false;
  const Frame* first_base = nullptr;
  const Frame* first_cand = nullptr;
  std::string first_field;

  TermDelta deltas[] = {{"objective"}, {"term_t100"}, {"term_tec"},
                        {"term_aet"},  {"tec"}};
  double battery_drift = 0.0;
  Cycles battery_drift_clock = -1;

  const auto check_int = [&](const Frame& a, const Frame& b,
                             const char* field, std::uint64_t va,
                             std::uint64_t vb) {
    if (va == vb || diverged) return;
    diverged = true;
    first_base = &a;
    first_cand = &b;
    first_field = field;
  };
  const auto check_double = [&](const Frame& a, const Frame& b,
                                const char* field, double va, double vb) {
    if (std::abs(va - vb) <= tol || diverged) return;
    diverged = true;
    first_base = &a;
    first_cand = &b;
    first_field = field;
  };

  for (const Frame& c : cand) {
    const auto it = base_index.find({c.heuristic, c.clock});
    if (it == base_index.end()) {
      ++cand_only;
      continue;
    }
    const Frame& b = *it->second;
    ++aligned;

    check_int(b, c, "assigned", b.assigned, c.assigned);
    check_int(b, c, "t100", b.t100, c.t100);
    check_int(b, c, "pools_built", b.pools_built, c.pools_built);
    check_int(b, c, "maps", b.maps, c.maps);
    check_int(b, c, "last_pool_size", b.last_pool_size, c.last_pool_size);
    check_int(b, c, "frontier_ready", b.frontier_ready, c.frontier_ready);
    check_int(b, c, "frontier_unreleased", b.frontier_unreleased,
              c.frontier_unreleased);
    check_int(b, c, "departures", b.departures, c.departures);
    check_int(b, c, "orphaned", b.orphaned, c.orphaned);
    check_int(b, c, "invalidated", b.invalidated, c.invalidated);
    check_double(b, c, "objective", b.objective, c.objective);
    check_double(b, c, "tec", b.tec, c.tec);
    check_int(b, c, "aet", static_cast<std::uint64_t>(b.aet),
              static_cast<std::uint64_t>(c.aet));

    deltas[0].feed(b.objective, c.objective, c.clock);
    deltas[1].feed(b.term_t100, c.term_t100, c.clock);
    deltas[2].feed(b.term_tec, c.term_tec, c.clock);
    deltas[3].feed(b.term_aet, c.term_aet, c.clock);
    deltas[4].feed(b.tec, c.tec, c.clock);

    const std::size_t machines =
        std::min(b.battery_fraction.size(), c.battery_fraction.size());
    if (b.battery_fraction.size() != c.battery_fraction.size())
      check_int(b, c, "battery_fraction.size", b.battery_fraction.size(),
                c.battery_fraction.size());
    for (std::size_t m = 0; m < machines; ++m) {
      const double drift =
          std::abs(b.battery_fraction[m] - c.battery_fraction[m]);
      if (drift > battery_drift) {
        battery_drift = drift;
        battery_drift_clock = c.clock;
      }
      if (drift > tol) check_double(b, c, "battery_fraction", 0.0, drift);
    }
  }
  const std::size_t base_only = base.size() - aligned;

  std::cout << "aligned " << aligned << " frame(s) on (heuristic, clock); "
            << base_only << " only in " << base_path << ", " << cand_only
            << " only in " << cand_path << "\n";
  if (aligned == 0) {
    std::cerr << "run_diff: nothing to compare — the recordings share no "
                 "(heuristic, clock) pair (different scenarios or sampling "
                 "options?)\n";
    return 2;
  }

  if (diverged) {
    std::cout << "FIRST DIVERGENCE: " << first_cand->heuristic << " clock "
              << first_cand->clock << ", field " << first_field << "\n";
    TextTable table({"field", "base", "candidate"},
                    {Align::Left, Align::Right, Align::Right});
    const auto row = [&](const std::string& name, double a, double b,
                         int precision) {
      table.begin_row();
      table.cell(name);
      table.cell(a, precision);
      table.cell(b, precision);
    };
    row("objective", first_base->objective, first_cand->objective, 6);
    row("assigned", static_cast<double>(first_base->assigned),
        static_cast<double>(first_cand->assigned), 0);
    row("T100", static_cast<double>(first_base->t100),
        static_cast<double>(first_cand->t100), 0);
    row("maps this tick", static_cast<double>(first_base->maps),
        static_cast<double>(first_cand->maps), 0);
    row("pool size", static_cast<double>(first_base->last_pool_size),
        static_cast<double>(first_cand->last_pool_size), 0);
    row("TEC", first_base->tec, first_cand->tec, 4);
    table.render(std::cout);
  } else {
    std::cout << "no divergence: every aligned frame matches (tol "
              << format_fixed(tol, 12) << " on floats)\n";
  }

  std::cout << "max per-term drift over aligned frames:\n";
  TextTable drift({"term", "max |delta|", "at clock"},
                  {Align::Left, Align::Right, Align::Right});
  for (const TermDelta& d : deltas) {
    drift.begin_row();
    drift.cell(d.name);
    drift.cell(d.max_abs, 9);
    drift.cell(static_cast<long long>(d.at_clock));
  }
  drift.begin_row();
  drift.cell(std::string("battery (per-machine)"));
  drift.cell(battery_drift, 9);
  drift.cell(static_cast<long long>(battery_drift_clock));
  drift.render(std::cout);

  return diverged ? 1 : 0;
}
