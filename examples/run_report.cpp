// Run report: render a `.frames.jsonl` flight recording (written by
// slrh_cli / trace_export via --frames-jsonl) as a human-readable timeline
// table plus a summary block — the quick look at "what did the run do over
// time" without loading a Chrome trace.
//
//   slrh_cli --heuristic slrh1 --frames-jsonl run.frames.jsonl
//   run_report run.frames.jsonl --every 50
//
// The timeline samples one row per `--every` frames (always including the
// first and last); `--heuristic` filters a multi-heuristic recording (e.g.
// trace_export writes SLRH-1 and Max-Max into one stream). `--spans` adds a
// task-major block from a `.spans.jsonl` ledger export.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <sstream>

#include "support/args.hpp"
#include "support/flight_recorder.hpp"
#include "support/jsonl.hpp"
#include "support/table.hpp"
#include "support/task_ledger.hpp"

namespace {

double min_battery(const ahg::obs::Frame& frame) {
  if (frame.battery_fraction.empty())
    return std::numeric_limits<double>::quiet_NaN();
  return *std::min_element(frame.battery_fraction.begin(),
                           frame.battery_fraction.end());
}

/// Frames without battery samples have no minimum: print "-", not "nan".
void battery_cell(ahg::TextTable& table, double value) {
  if (std::isnan(value)) {
    table.cell("-");
  } else {
    table.cell(value, 3);
  }
}

/// Task-major summary of a `.spans.jsonl` ledger export: span and task
/// counts plus total cycles per kind (exec / input / wait).
int report_spans(const std::string& path) {
  using namespace ahg;
  std::ifstream in(path);
  if (!in) {
    std::cerr << "run_report: cannot open " << path << "\n";
    return 2;
  }
  const auto spans = obs::read_task_spans_jsonl(in);
  if (spans.empty()) {
    std::cout << "spans: none in " << path << "\n";
    return EXIT_SUCCESS;
  }
  std::map<std::string, std::pair<std::uint64_t, Cycles>> by_kind;
  std::set<TaskId> tasks;
  std::uint64_t remapped = 0;
  for (const auto& span : spans) {
    auto& [count, cycles] = by_kind[span.kind];
    ++count;
    cycles += span.finish - span.start;
    tasks.insert(span.task);
    if (span.kind == "exec" && span.attempt > 1) ++remapped;
  }
  std::cout << "=== spans — " << spans.size() << " span(s) over "
            << tasks.size() << " task(s) ===\n";
  TextTable table({"kind", "spans", "cycles"},
                  {Align::Left, Align::Right, Align::Right});
  for (const auto& [kind, entry] : by_kind) {
    table.begin_row();
    table.cell(kind);
    table.cell(entry.first);
    table.cell(static_cast<long long>(entry.second));
  }
  table.render(std::cout);
  if (remapped > 0) {
    std::cout << remapped << " exec span(s) from remapped placements\n";
  }
  std::cout << "\n";
  return EXIT_SUCCESS;
}

/// Worker-utilization summary of a --worker-trace Chrome trace: parses the
/// pid-3 runtime process back out of the JSON — thread_name metadata for the
/// row labels, the per-slot "worker_counters" instants for whole-run totals,
/// ph-X slices for the per-region busy attribution (ring-bounded: slices
/// cover the newest window when a long run wrapped the event rings).
int report_workers(const std::string& path) {
  using namespace ahg;
  std::ifstream in(path);
  if (!in) {
    std::cerr << "run_report: cannot open " << path << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  obs::JsonValue root;
  try {
    root = obs::parse_json(buffer.str());
  } catch (const std::exception& e) {
    std::cerr << "run_report: " << path << ": " << e.what() << "\n";
    return 2;
  }
  const obs::JsonValue* events = root.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::cerr << "run_report: " << path << " has no traceEvents array\n";
    return 2;
  }

  constexpr std::int64_t kRuntimePid = 3;
  struct WorkerStats {
    std::string label;
    std::uint64_t tasks = 0;
    std::uint64_t steals = 0;
    std::uint64_t steal_attempts = 0;
    std::uint64_t parks = 0;
    double busy_seconds = 0.0;
    double idle_seconds = 0.0;
  };
  struct RegionStats {
    std::uint64_t windows = 0;  ///< tid-0 region slices
    double wall_seconds = 0.0;  ///< summed window durations
    std::uint64_t slices = 0;   ///< run slices attributed to the region
    std::uint64_t stolen = 0;
    std::map<std::int64_t, double> busy_by_tid;
  };
  std::map<std::int64_t, std::string> tid_labels;
  std::map<std::int64_t, WorkerStats> workers;
  std::map<std::string, RegionStats> regions;

  for (const obs::JsonValue& event : events->as_array()) {
    if (event.get_int("pid") != kRuntimePid) continue;
    const std::string ph = event.get_string("ph");
    const std::int64_t tid = event.get_int("tid");
    const obs::JsonValue* event_args = event.find("args");
    if (ph == "M") {
      if (event.get_string("name") == "thread_name" && event_args != nullptr) {
        tid_labels[tid] = event_args->get_string("name");
      }
    } else if (ph == "i" && event.get_string("name") == "worker_counters" &&
               event_args != nullptr) {
      WorkerStats& w = workers[tid];
      w.label = event_args->get_string("label");
      w.tasks = static_cast<std::uint64_t>(event_args->get_int("tasks"));
      w.steals = static_cast<std::uint64_t>(event_args->get_int("steals"));
      w.steal_attempts =
          static_cast<std::uint64_t>(event_args->get_int("steal_attempts"));
      w.parks = static_cast<std::uint64_t>(event_args->get_int("parks"));
      w.busy_seconds = event_args->get_double("busy_seconds");
      w.idle_seconds = event_args->get_double("idle_seconds");
    } else if (ph == "X") {
      const double dur_seconds = event.get_double("dur") / 1e6;
      if (tid == 0) {
        RegionStats& r = regions[event.get_string("name")];
        ++r.windows;
        r.wall_seconds += dur_seconds;
      } else if (event.get_string("name") != "idle") {
        std::string region =
            event_args != nullptr ? event_args->get_string("region") : "";
        if (region.empty()) region = "(unmarked)";
        RegionStats& r = regions[region];
        ++r.slices;
        if (event_args != nullptr && event_args->get_bool("stolen")) ++r.stolen;
        r.busy_by_tid[tid] += dur_seconds;
      }
    }
  }

  if (workers.empty() && regions.empty()) {
    std::cout << "run_report: no runtime (pid 3) events in " << path
              << " — was the trace written with --worker-trace?\n";
    return EXIT_SUCCESS;
  }

  std::size_t num_workers = 0;
  for (const auto& [tid, label] : tid_labels) {
    if (tid != 0 && label.rfind("worker", 0) == 0) ++num_workers;
  }

  std::cout << "=== workers — " << num_workers << " pool worker(s) ===\n";
  TextTable worker_table(
      {"worker", "tasks", "stolen", "probes", "parks", "busy s", "idle s",
       "busy %"},
      {Align::Left, Align::Right, Align::Right, Align::Right, Align::Right,
       Align::Right, Align::Right, Align::Right});
  for (const auto& [tid, w] : workers) {
    const double span = w.busy_seconds + w.idle_seconds;
    worker_table.begin_row();
    worker_table.cell(w.label.empty() ? tid_labels[tid] : w.label);
    worker_table.cell(w.tasks);
    worker_table.cell(w.steals);
    worker_table.cell(w.steal_attempts);
    worker_table.cell(w.parks);
    worker_table.cell(w.busy_seconds, 6);
    worker_table.cell(w.idle_seconds, 6);
    worker_table.cell(span > 0.0 ? 100.0 * w.busy_seconds / span : 0.0, 1);
  }
  worker_table.render(std::cout);

  if (!regions.empty()) {
    std::cout << "\n=== regions — parallel_for windows (slice-window scope) "
                 "===\n";
    TextTable region_table(
        {"region", "windows", "wall s", "busy s", "util %", "slices", "stolen",
         "steal %", "imbalance"},
        {Align::Left, Align::Right, Align::Right, Align::Right, Align::Right,
         Align::Right, Align::Right, Align::Right, Align::Right});
    for (const auto& [name, r] : regions) {
      double busy = 0.0;
      std::vector<double> per_worker;
      for (const auto& [tid, seconds] : r.busy_by_tid) {
        busy += seconds;
        per_worker.push_back(seconds);
      }
      // Utilization: attributed busy time over the window's total worker
      // capacity. Imbalance: max/median per-worker busy — 1.0 is a perfectly
      // even fan-out, >> 1 means one worker carried the region.
      const double capacity =
          r.wall_seconds * static_cast<double>(std::max<std::size_t>(1, num_workers));
      std::sort(per_worker.begin(), per_worker.end());
      double imbalance = 0.0;
      if (!per_worker.empty()) {
        const double median = per_worker[per_worker.size() / 2];
        imbalance = median > 0.0 ? per_worker.back() / median : 0.0;
      }
      region_table.begin_row();
      region_table.cell(name);
      region_table.cell(r.windows);
      region_table.cell(r.wall_seconds, 6);
      region_table.cell(busy, 6);
      region_table.cell(capacity > 0.0 ? 100.0 * busy / capacity : 0.0, 1);
      region_table.cell(r.slices);
      region_table.cell(r.stolen);
      region_table.cell(
          r.slices > 0 ? 100.0 * static_cast<double>(r.stolen) /
                             static_cast<double>(r.slices)
                       : 0.0,
          1);
      region_table.cell(imbalance, 2);
    }
    region_table.render(std::cout);
  }
  std::cout << "\n";
  return EXIT_SUCCESS;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ahg;

  ArgParser args("run_report",
                 "summarise a .frames.jsonl flight recording as a timeline "
                 "table");
  args.add_positional("frames",
                      "the .frames.jsonl file to report on (optional when "
                      "only --workers/--spans are requested)",
                      std::optional<std::string>(""));
  args.add_int("every", 1,
               "print one timeline row per N frames (first and last frames "
               "are always shown)");
  args.add_string("heuristic", "",
                  "only report frames whose heuristic matches exactly (e.g. "
                  "\"SLRH-1\", \"Max-Max\"); default: all, grouped");
  args.add_string("spans", "",
                  "also summarise a .spans.jsonl task-ledger export (written "
                  "by slrh_cli / trace_export via --spans-jsonl): span and "
                  "task counts per kind");
  args.add_string("workers", "",
                  "summarise the runtime (pid 3) process of a --worker-trace "
                  "Chrome trace: per-worker utilization and steal counters "
                  "plus per-region utilization, steal ratio, and imbalance "
                  "(max/median worker busy)");
  if (!args.parse(argc, argv)) return args.error() ? EXIT_FAILURE : EXIT_SUCCESS;

  const std::string spans_path = args.get_string("spans");
  const std::string workers_path = args.get_string("workers");
  const std::string path = args.get_string("frames");
  if (path.empty()) {
    if (workers_path.empty() && spans_path.empty()) {
      std::cerr << "run_report: nothing to do — give a frames file, "
                   "--workers, or --spans\n";
      return 2;
    }
    if (!workers_path.empty()) {
      if (const int rc = report_workers(workers_path); rc != EXIT_SUCCESS)
        return rc;
    }
    if (!spans_path.empty()) return report_spans(spans_path);
    return EXIT_SUCCESS;
  }
  std::ifstream in(path);
  if (!in) {
    std::cerr << "run_report: cannot open " << path << "\n";
    return 2;
  }
  std::vector<obs::Frame> frames = obs::read_frames_jsonl(in);
  const std::string filter = args.get_string("heuristic");
  if (!filter.empty()) {
    std::erase_if(frames,
                  [&](const obs::Frame& f) { return f.heuristic != filter; });
  }
  if (frames.empty()) {
    // An empty (or fully filtered) stream is a report, not an error: say so
    // cleanly instead of printing a degenerate table of garbage rows.
    std::cout << "run_report: no frames"
              << (filter.empty() ? "" : " matching --heuristic") << " in "
              << path << " — nothing to report\n";
    if (!workers_path.empty()) {
      if (const int rc = report_workers(workers_path); rc != EXIT_SUCCESS)
        return rc;
    }
    if (!spans_path.empty()) return report_spans(spans_path);
    return EXIT_SUCCESS;
  }
  const auto every = static_cast<std::size_t>(
      std::max<std::int64_t>(1, args.get_int("every")));

  // Group by heuristic, preserving first-seen order (a trace_export stream
  // holds both heuristics back to back).
  std::vector<std::string> order;
  for (const auto& frame : frames) {
    if (std::find(order.begin(), order.end(), frame.heuristic) == order.end())
      order.push_back(frame.heuristic);
  }

  for (const auto& name : order) {
    std::vector<const obs::Frame*> group;
    for (const auto& frame : frames)
      if (frame.heuristic == name) group.push_back(&frame);

    std::cout << "=== " << name << " — " << group.size() << " frame(s) ===\n";
    TextTable table({"clock", "objective", "t100 term", "tec term", "aet term",
                     "assigned", "T100", "pools", "reused", "aborts", "maps",
                     "ready", "min batt"},
                    {Align::Right, Align::Right, Align::Right, Align::Right,
                     Align::Right, Align::Right, Align::Right, Align::Right,
                     Align::Right, Align::Right, Align::Right, Align::Right,
                     Align::Right});
    for (std::size_t i = 0; i < group.size(); ++i) {
      if (i % every != 0 && i + 1 != group.size()) continue;
      const obs::Frame& f = *group[i];
      table.begin_row();
      table.cell(static_cast<long long>(f.clock));
      table.cell(f.objective, 5);
      table.cell(f.term_t100, 5);
      table.cell(f.term_tec, 5);
      table.cell(f.term_aet, 5);
      table.cell(f.assigned);
      table.cell(f.t100);
      table.cell(f.pools_built);
      table.cell(f.pools_reused);
      table.cell(f.spec_aborts);
      table.cell(f.maps);
      table.cell(f.frontier_ready);
      battery_cell(table, min_battery(f));
    }
    table.render(std::cout);

    const obs::Frame& last = *group.back();
    std::uint64_t total_pools = 0;
    std::uint64_t total_reused = 0;
    std::uint64_t total_aborts = 0;
    std::uint64_t total_maps = 0;
    double pool_seconds = 0.0;
    double sweep_seconds = 0.0;
    std::uint64_t active_ticks = 0;
    for (const auto* f : group) {
      total_pools += f->pools_built;
      total_reused += f->pools_reused;
      total_aborts += f->spec_aborts;
      total_maps += f->maps;
      pool_seconds += f->pool_build_seconds;
      sweep_seconds += f->sweep_seconds;
      if (f->maps > 0) ++active_ticks;
    }
    std::cout << "summary: final clock " << last.clock << ", objective "
              << format_fixed(last.objective, 5) << " (t100 "
              << format_fixed(last.term_t100, 5) << ", tec -"
              << format_fixed(last.term_tec, 5) << ", aet "
              << format_fixed(last.term_aet, 5) << ")\n"
              << "         assigned " << last.assigned << " (T100 " << last.t100
              << "), AET " << last.aet << " cycles, TEC "
              << format_fixed(last.tec, 3) << "\n"
              << "         " << total_pools << " pool build(s), " << total_maps
              << " map(s), " << active_ticks << "/" << group.size()
              << " sampled ticks committed a map, pool-build time "
              << format_fixed(pool_seconds * 1e3, 3) << " ms\n";
    // Re-planning economy (sweep accelerator): zero on recordings made with
    // pool_reuse / sweep_parallel off, and on pre-accelerator recordings.
    if (total_reused > 0 || total_aborts > 0 || sweep_seconds > 0.0) {
      std::cout << "         re-planning: " << total_pools << " pool(s) built vs "
                << total_reused << " reused, " << total_aborts
                << " speculative abort(s), sweep fan-out time "
                << format_fixed(sweep_seconds * 1e3, 3) << " ms\n";
    }
    if (last.departures > 0 || last.orphaned > 0) {
      std::cout << "         churn: " << last.departures << " departure(s), "
                << last.orphaned << " orphaned, " << last.invalidated
                << " invalidated, energy forfeited "
                << format_fixed(last.energy_forfeited, 3) << "\n";
    }
    std::cout << "\n";
  }
  if (!workers_path.empty()) {
    if (const int rc = report_workers(workers_path); rc != EXIT_SUCCESS)
      return rc;
  }
  if (!spans_path.empty()) return report_spans(spans_path);
  return EXIT_SUCCESS;
}
