// slrh_cli: run any heuristic on a generated or imported scenario from the
// command line — the downstream-user entry point.
//
//   slrh_cli --heuristic slrh1 --case A --tasks 256 --alpha 0.7 --beta 0.3
//   slrh_cli --scenario-in saved.scn --heuristic maxmax --validate
//   slrh_cli --tasks 128 --scenario-out saved.scn --heuristic none
//   slrh_cli --heuristic lagrangian --tasks 128 --case C

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>

#include "core/baselines.hpp"
#include "core/churn.hpp"
#include "core/critical_path.hpp"
#include "core/heuristics.hpp"
#include "core/lagrangian.hpp"
#include "core/upper_bound.hpp"
#include "core/validate.hpp"
#include "support/args.hpp"
#include "support/chrome_trace.hpp"
#include "support/env.hpp"
#include "support/event_log.hpp"
#include "support/flight_recorder.hpp"
#include "support/openmetrics.hpp"
#include "support/runtime_profiler.hpp"
#include "support/task_ledger.hpp"
#include "support/thread_pool.hpp"
#include "support/version.hpp"
#include "workload/scenario.hpp"
#include "workload/dynamics.hpp"
#include "workload/scenario_io.hpp"

namespace {

using namespace ahg;

int fail(const std::string& message) {
  std::cerr << "slrh_cli: " << message << "\n";
  return EXIT_FAILURE;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("slrh_cli",
                 "run ad hoc grid resource-management heuristics on a scenario");
  args.add_string("heuristic", "slrh1",
                  "slrh1|slrh2|slrh3|maxmax|minmin|olb|random|lagrangian|none");
  args.add_string("case", "A", "grid case: A (2f+2s), B (2f+1s), C (1f+2s)");
  args.add_int("tasks", 256, "number of subtasks |T|");
  args.add_int("etc", 0, "ETC matrix index within the suite");
  args.add_int("dag", 0, "DAG index within the suite");
  args.add_int("seed", 20040426, "suite master seed");
  args.add_double("alpha", 0.7, "objective weight on T100");
  args.add_double("beta", 0.3, "objective weight on TEC (gamma = 1-alpha-beta)");
  args.add_int("dt", 10, "SLRH timestep in cycles");
  args.add_int("horizon", 100, "SLRH receding horizon in cycles");
  args.add_double("arrival-spread", 0.0,
                  "spread subtask arrivals over this fraction of tau");
  args.add_double("outages", 0.0, "mean link outages per machine (60 s each)");
  args.add_double("churn-rate", 0.0,
                  "mean machine departures per machine (walk-out + battery "
                  "death); slrh1-3 recover mid-run, other heuristics run "
                  "churn-blind");
  args.add_string("churn-recovery", "remap",
                  "orphan recovery policy: remap|degrade (degrade pins "
                  "invalidated subtasks to their secondary versions)");
  args.add_string("scenario-in", "", "load a scenario file instead of generating");
  args.add_string("scenario-out", "", "save the scenario to this file");
  args.add_flag("validate", "run the independent schedule validator");
  args.add_flag("bound", "also compute the T100 upper bound");
  args.add_string("trace-jsonl", "",
                  "write a per-decision JSONL trace (run/pool/map/stall events) "
                  "to this file; slrh1-3 and maxmax only — inspect with "
                  "trace_inspect");
  args.add_string("metrics", "",
                  "write counters and phase-time histograms as JSON to this "
                  "file after the run");
  args.add_string("frames-jsonl", "",
                  "attach a full-fidelity flight recorder (slrh1-3, maxmax; "
                  "churn-aware) and write its per-timestep frames as JSONL to "
                  "this file — analyse with run_report / run_diff");
  args.add_string("chrome-trace", "",
                  "write the flight recording as Chrome trace_event JSON "
                  "(load in chrome://tracing or Perfetto): spans as duration "
                  "events, frames as counter tracks");
  args.add_string("openmetrics", "",
                  "write the run's metrics snapshot as OpenMetrics text "
                  "exposition to this file; with --spans-jsonl or "
                  "--critical-path the ledger's dwell-time histograms are "
                  "appended as a second exposition");
  args.add_string("spans-jsonl", "",
                  "attach a task ledger (slrh1-3, maxmax; churn-aware) and "
                  "write its task-major spans (exec/input/wait) as JSONL to "
                  "this file — analyse with run_report --spans");
  args.add_flag("critical-path",
                "attach a task ledger and print the makespan critical path "
                "with per-category attribution after the run");
  args.add_string("worker-trace", "",
                  "attach a runtime profiler to the thread pool and write a "
                  "wall-clock Chrome trace (one row per worker: run/steal/"
                  "idle slices, region markers) to this file — analyse with "
                  "run_report --workers");
  args.add_string("heartbeat", "",
                  "periodically rewrite this JSON file with live progress "
                  "(phase, clock, tasks placed, per-worker busy %, RSS, ETA) "
                  "while the run is in flight; slrh1-3 publish per tick");
  args.add_int("jobs", 0,
               "worker threads for parallel phases (0 = AHG_JOBS env, then "
               "hardware concurrency)");
  args.add_flag("version", "print build identity and exit");
  if (!args.parse(argc, argv)) return args.error() ? EXIT_FAILURE : EXIT_SUCCESS;
  // --jobs wins over the AHG_JOBS environment override; either sizes the
  // global pool (speculative sweep fan-out, cache builds) before first use.
  std::int64_t jobs = args.get_int("jobs");
  if (jobs <= 0) jobs = env_int("AHG_JOBS", 0);
  if (jobs > 0) configure_global_pool(static_cast<std::size_t>(jobs));
  if (args.get_flag("version")) {
    std::cout << build_description() << ", jobs=" << global_pool_jobs() << "\n";
    return EXIT_SUCCESS;
  }

  // --- scenario -----------------------------------------------------------
  std::optional<workload::Scenario> scenario;
  if (const auto path = args.get_string("scenario-in"); !path.empty()) {
    try {
      scenario = workload::load_scenario(path);
    } catch (const std::exception& e) {
      return fail(e.what());
    }
  } else {
    workload::SuiteParams suite_params;
    suite_params.num_tasks = static_cast<std::size_t>(args.get_int("tasks"));
    suite_params.num_etc = static_cast<std::size_t>(args.get_int("etc")) + 1;
    suite_params.num_dag = static_cast<std::size_t>(args.get_int("dag")) + 1;
    suite_params.master_seed = static_cast<std::uint64_t>(args.get_int("seed"));
    const std::string case_name = args.get_string("case");
    sim::GridCase grid_case;
    if (case_name == "A" || case_name == "a") grid_case = sim::GridCase::A;
    else if (case_name == "B" || case_name == "b") grid_case = sim::GridCase::B;
    else if (case_name == "C" || case_name == "c") grid_case = sim::GridCase::C;
    else return fail("unknown case '" + case_name + "' (want A, B or C)");
    const workload::ScenarioSuite suite(suite_params);
    scenario = suite.make(grid_case, static_cast<std::size_t>(args.get_int("etc")),
                          static_cast<std::size_t>(args.get_int("dag")));
    if (const double spread = args.get_double("arrival-spread"); spread > 0.0) {
      workload::ReleaseParams params;
      params.spread_fraction = spread;
      scenario->releases = workload::generate_release_times(
          params, scenario->dag, scenario->tau, suite_params.master_seed ^ 0xA11);
    }
    if (const double outages = args.get_double("outages"); outages > 0.0) {
      workload::OutageParams params;
      params.outages_per_machine = outages;
      scenario->link_outages = workload::generate_link_outages(
          params, scenario->num_machines(), scenario->tau,
          suite_params.master_seed ^ 0x0F7);
    }
    if (const double churn_rate = args.get_double("churn-rate"); churn_rate > 0.0) {
      workload::ChurnParams params;
      params.departures_per_machine = churn_rate;
      const auto trace = workload::generate_machine_churn(
          params, scenario->num_machines(), scenario->tau,
          suite_params.master_seed ^ 0xC4C);
      scenario->machine_windows = trace.windows;
      std::cout << "churn: " << trace.num_departures() << " departure(s) drawn at "
                << churn_rate << "/machine\n";
    }
  }

  if (const auto path = args.get_string("scenario-out"); !path.empty()) {
    try {
      workload::save_scenario(path, *scenario);
      std::cout << "scenario saved to " << path << "\n";
    } catch (const std::exception& e) {
      return fail(e.what());
    }
  }

  std::cout << "scenario: |T|=" << scenario->num_tasks() << ", machines "
            << scenario->num_machines() << " ("
            << scenario->grid.count(sim::MachineClass::Fast) << " fast, "
            << scenario->grid.count(sim::MachineClass::Slow) << " slow), tau "
            << seconds_from_cycles(scenario->tau) << " s\n";

  if (args.get_flag("bound")) {
    const auto ub = core::compute_upper_bound(*scenario);
    std::cout << "upper bound on T100: " << ub.bound
              << (ub.cycle_limited ? " (cycle-limited)" : "")
              << (ub.energy_limited ? " (energy-limited)" : "") << "\n";
  }

  // --- heuristic ------------------------------------------------------------
  const std::string name = args.get_string("heuristic");
  if (name == "none") return EXIT_SUCCESS;

  const core::Weights weights =
      core::Weights::make(args.get_double("alpha"), args.get_double("beta"));
  core::SlrhClock clock;
  clock.dt = args.get_int("dt");
  clock.horizon = args.get_int("horizon");

  // --- observability --------------------------------------------------------
  const std::string trace_path = args.get_string("trace-jsonl");
  const std::string metrics_path = args.get_string("metrics");
  const std::string frames_path = args.get_string("frames-jsonl");
  const std::string chrome_path = args.get_string("chrome-trace");
  const std::string openmetrics_path = args.get_string("openmetrics");
  obs::MetricsRegistry metrics;
  std::ofstream trace_stream;
  std::unique_ptr<obs::Sink> sink_holder;
  obs::Sink* sink = nullptr;
  if (!trace_path.empty()) {
    trace_stream.open(trace_path);
    if (!trace_stream) return fail("cannot open trace file " + trace_path);
    sink_holder = std::make_unique<obs::JsonlSink>(trace_stream, &metrics);
    sink = sink_holder.get();
  } else if (!metrics_path.empty() || !openmetrics_path.empty()) {
    // Metrics without a decision trace: a forwarding sink with no downstream
    // collects phase histograms but skips event assembly entirely.
    sink_holder = std::make_unique<obs::ForwardSink>(&metrics, nullptr);
    sink = sink_holder.get();
  }
  // Flight recorder: the analysis exporters want full fidelity, so every
  // tick is sampled and every pool build timed (dense_options) — this is an
  // inspection run, not a benchmark.
  std::optional<obs::FlightRecorder> recorder_storage;
  obs::FlightRecorder* recorder = nullptr;
  if (!frames_path.empty() || !chrome_path.empty()) {
    recorder_storage.emplace(obs::FlightRecorder::dense_options());
    recorder = &*recorder_storage;
  }
  // Task ledger: per-subtask lifecycle spans and the critical-path walk's
  // admission clocks. Also feeds the chrome trace's task-major rows.
  const std::string spans_path = args.get_string("spans-jsonl");
  const bool want_critical_path = args.get_flag("critical-path");
  std::optional<obs::TaskLedger> ledger_storage;
  obs::TaskLedger* ledger = nullptr;
  if (!spans_path.empty() || want_critical_path || !chrome_path.empty()) {
    ledger_storage.emplace(scenario->num_tasks());
    ledger = &*ledger_storage;
  }
  // Runtime profiler + heartbeat: wall-clock observability on the pool
  // itself, heuristic-agnostic (any pool user is covered). The heartbeat is
  // declared AFTER the profiler so its background thread stops before the
  // profiler it samples is destroyed.
  const std::string worker_trace_path = args.get_string("worker-trace");
  const std::string heartbeat_path = args.get_string("heartbeat");
  std::optional<obs::RuntimeProfiler> profiler_storage;
  obs::RuntimeProfiler* profiler = nullptr;
  if (!worker_trace_path.empty()) {
    profiler_storage.emplace(global_pool().size());
    profiler = &*profiler_storage;
    global_pool().set_profiler(profiler);
  }
  std::optional<obs::Heartbeat> heartbeat_storage;
  obs::Heartbeat* heartbeat = nullptr;
  if (!heartbeat_path.empty()) {
    obs::Heartbeat::Options hb_options;
    hb_options.path = heartbeat_path;
    hb_options.interval_seconds = 1.0;
    heartbeat_storage.emplace(hb_options, profiler);
    heartbeat = &*heartbeat_storage;
    heartbeat->set_phase(name);
  }
  const auto aet_sign = core::AetSign::Reward;
  if ((sink != nullptr || recorder != nullptr || ledger != nullptr) &&
      name != "slrh1" && name != "slrh2" && name != "slrh3" && name != "maxmax") {
    std::cerr << "slrh_cli: note: --trace-jsonl/--metrics/--frames-jsonl/"
                 "--chrome-trace/--spans-jsonl/--critical-path instrument only "
                 "slrh1-3 and maxmax; '"
              << name << "' emits no telemetry\n";
  }

  const std::string recovery_name = args.get_string("churn-recovery");
  core::ChurnRecovery recovery;
  if (recovery_name == "remap") recovery = core::ChurnRecovery::Remap;
  else if (recovery_name == "degrade") recovery = core::ChurnRecovery::Degrade;
  else return fail("unknown recovery policy '" + recovery_name +
                   "' (want remap or degrade)");
  const bool churny = !scenario->machine_windows.empty();
  const auto run_slrh_variant = [&](core::SlrhVariant variant) {
    core::SlrhParams params;
    params.variant = variant;
    params.weights = weights;
    params.dt = clock.dt;
    params.horizon = clock.horizon;
    params.aet_sign = aet_sign;
    params.sink = sink;
    params.recorder = recorder;
    params.ledger = ledger;
    params.heartbeat = heartbeat;
    if (!churny) return core::run_slrh(*scenario, params);
    const auto outcome = core::run_slrh_with_churn(*scenario, params, recovery);
    std::cout << "churn recovery (" << core::to_string(recovery) << "): "
              << outcome.departures_processed << " departure(s), "
              << outcome.orphaned << " orphan(s) returned, "
              << outcome.invalidated << " other subtask(s) invalidated, "
              << outcome.energy_forfeited << " energy units forfeited\n";
    return outcome.result;
  };

  core::MappingResult result;
  if (name == "slrh1") {
    result = run_slrh_variant(core::SlrhVariant::V1);
  } else if (name == "slrh2") {
    result = run_slrh_variant(core::SlrhVariant::V2);
  } else if (name == "slrh3") {
    result = run_slrh_variant(core::SlrhVariant::V3);
  } else if (name == "maxmax") {
    result = core::run_heuristic(core::HeuristicKind::MaxMax, *scenario, weights,
                                 clock, aet_sign, sink, nullptr, recorder, ledger);
  } else if (name == "minmin") {
    result = core::run_minmin(*scenario);
  } else if (name == "olb") {
    result = core::run_olb(*scenario);
  } else if (name == "random") {
    core::RandomMapperParams rparams;
    rparams.seed = static_cast<std::uint64_t>(args.get_int("seed"));
    result = core::run_random(*scenario, rparams);
  } else if (name == "lagrangian") {
    core::LagrangianParams lparams;
    lparams.clock = clock;
    const auto outcome = core::run_lagrangian_iteration(*scenario, lparams);
    std::cout << "lagrangian iteration: " << outcome.runs << " inner runs, "
              << (outcome.converged ? "converged" : "iteration cap") << "\n";
    if (!outcome.found) return fail("no feasible mapping found by the iteration");
    std::cout << "best multiplier weights: " << outcome.best_weights.str() << "\n";
    result = outcome.best;
  } else {
    return fail("unknown heuristic '" + name + "'");
  }

  // The run is quiescent now (run_slrh joined every fan-out), so this is a
  // legal detach point; the profiler object stays alive for the exporters.
  if (profiler != nullptr) global_pool().set_profiler(nullptr);
  if (heartbeat != nullptr) heartbeat->set_phase("done");

  std::cout << name << ": mapped " << result.assigned << "/" << scenario->num_tasks()
            << ", T100=" << result.t100 << ", AET " << seconds_from_cycles(result.aet)
            << " s (tau " << (result.within_tau ? "met" : "VIOLATED") << "), TEC "
            << result.tec << ", heuristic " << result.wall_seconds * 1e3 << " ms\n";

  // Memory telemetry gauges: per-structure footprints plus process peak RSS,
  // visible in --metrics / --openmetrics output.
  if (result.schedule != nullptr) {
    metrics.gauge("memory.timeline_bytes")
        .set(static_cast<double>(result.schedule->timeline_memory_bytes()));
  }
  if (recorder != nullptr) {
    metrics.gauge("memory.flight_recorder_bytes")
        .set(static_cast<double>(
            recorder->memory_bound_bytes(scenario->num_machines())));
  }
  if (ledger != nullptr) {
    metrics.gauge("memory.task_ledger_bytes")
        .set(static_cast<double>(ledger->memory_bound_bytes()));
  }
  metrics.gauge("runtime.peak_rss_bytes")
      .set(static_cast<double>(obs::process_peak_rss_bytes()));

  if (!trace_path.empty()) {
    const auto* jsonl = static_cast<const obs::JsonlSink*>(sink);
    std::cout << "trace: " << jsonl->events_written() << " events -> " << trace_path
              << "\n";
  }
  if (!metrics_path.empty()) {
    std::ofstream metrics_stream(metrics_path);
    if (!metrics_stream) return fail("cannot open metrics file " + metrics_path);
    metrics.snapshot().write_json(metrics_stream);
    metrics_stream << "\n";
    std::cout << "metrics -> " << metrics_path << "\n";
  }
  if (!frames_path.empty()) {
    std::ofstream frames_stream(frames_path);
    if (!frames_stream) return fail("cannot open frames file " + frames_path);
    recorder->write_frames_jsonl(frames_stream);
    std::cout << "frames: " << recorder->frames_recorded() << " recorded, "
              << recorder->frames_dropped() << " dropped -> " << frames_path
              << "\n";
  }
  if (!chrome_path.empty()) {
    std::ofstream chrome_stream(chrome_path);
    if (!chrome_stream) return fail("cannot open trace file " + chrome_path);
    obs::write_chrome_trace(chrome_stream, recorder, ledger, profiler, "slrh_cli");
    std::cout << "chrome trace: " << recorder->spans_recorded() << " span(s), "
              << recorder->frames_recorded() << " frame(s) -> " << chrome_path
              << "\n";
  }
  if (!worker_trace_path.empty()) {
    std::ofstream worker_stream(worker_trace_path);
    if (!worker_stream) return fail("cannot open trace file " + worker_trace_path);
    obs::write_chrome_trace(worker_stream, recorder, ledger, profiler, "slrh_cli");
    const obs::RuntimeProfiler::Totals totals = profiler->totals();
    std::cout << "worker trace: " << global_pool().size() << " worker(s), "
              << totals.tasks << " task(s), " << totals.steals << " steal(s) -> "
              << worker_trace_path << "\n";
  }
  if (!spans_path.empty()) {
    std::ofstream spans_stream(spans_path);
    if (!spans_stream) return fail("cannot open spans file " + spans_path);
    ledger->write_spans_jsonl(spans_stream);
    std::cout << "spans: " << ledger->spans().size() << " span(s), "
              << ledger->transitions_recorded() << " transition(s) ("
              << ledger->transitions_dropped() << " dropped) -> " << spans_path
              << "\n";
  }
  if (!openmetrics_path.empty()) {
    std::ofstream om_stream(openmetrics_path);
    if (!om_stream) return fail("cannot open openmetrics file " + openmetrics_path);
    obs::write_openmetrics(om_stream, metrics.snapshot());
    if (ledger != nullptr) obs::write_ledger_openmetrics(om_stream, *ledger);
    if (profiler != nullptr) obs::write_runtime_openmetrics(om_stream, *profiler);
    std::cout << "openmetrics -> " << openmetrics_path << "\n";
  }
  if (want_critical_path && result.schedule != nullptr) {
    const auto report =
        core::analyze_critical_path(*scenario, *result.schedule, ledger);
    core::write_critical_path_report(std::cout, report);
  }

  if (args.get_flag("validate")) {
    core::ValidateOptions options;
    options.require_complete = false;
    options.require_within_tau = false;
    const auto report = core::validate_schedule(*scenario, *result.schedule, options);
    std::cout << "validation: " << report.str() << "\n";
    if (!report.ok()) return EXIT_FAILURE;
  }
  return result.complete ? EXIT_SUCCESS : EXIT_FAILURE;
}
