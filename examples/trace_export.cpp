// Trace export: run two heuristics on the same scenario and dump complete
// schedule traces — assignment CSV/JSONL, communication CSV, an ASCII/SVG
// Gantt, and (opt-in) the per-decision JSONL telemetry stream the heuristics
// emit while running. Demonstrates the introspection surface of the schedule
// substrate and the observability layer together.
//
//   trace_export --tasks 96 --out-dir traces
//   trace_export --trace-jsonl traces/decisions.jsonl --metrics traces/metrics.json

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>

#include "core/critical_path.hpp"
#include "core/heuristics.hpp"
#include "core/validate.hpp"
#include "sim/svg.hpp"
#include "sim/trace.hpp"
#include "support/args.hpp"
#include "support/chrome_trace.hpp"
#include "support/event_log.hpp"
#include "support/flight_recorder.hpp"
#include "support/openmetrics.hpp"
#include "support/task_ledger.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace ahg;

  ArgParser args("trace_export",
                 "run SLRH-1 and Max-Max on one scenario and export schedule "
                 "traces (CSV, JSONL, SVG)");
  args.add_int("tasks", 96, "number of subtasks |T|");
  args.add_string("out-dir", "traces", "directory for the exported trace files");
  args.add_string("trace-jsonl", "",
                  "also write the heuristics' per-decision JSONL telemetry "
                  "(run/pool/map/stall events, both heuristics in one stream; "
                  "inspect with trace_inspect)");
  args.add_string("metrics", "",
                  "write counters and phase-time histograms as JSON to this "
                  "file after both runs");
  args.add_string("frames-jsonl", "",
                  "record per-timestep flight-recorder frames for BOTH "
                  "heuristics into one JSONL stream (analyse with run_report "
                  "/ run_diff)");
  args.add_string("chrome-trace", "",
                  "write the flight recording as Chrome trace_event JSON "
                  "(load in chrome://tracing or Perfetto)");
  args.add_string("openmetrics", "",
                  "write the combined metrics snapshot as OpenMetrics text "
                  "exposition to this file");
  args.add_string("spans-jsonl", "",
                  "attach a task ledger per heuristic and write its task-major "
                  "spans as JSONL; one file per heuristic, the name prefixed "
                  "with the heuristic (e.g. SLRH-1_spans.jsonl)");
  args.add_flag("critical-path",
                "attach a task ledger per heuristic and print each run's "
                "makespan critical path with per-category attribution");
  if (!args.parse(argc, argv)) return args.error() ? EXIT_FAILURE : EXIT_SUCCESS;

  workload::SuiteParams suite_params;
  suite_params.num_tasks = static_cast<std::size_t>(args.get_int("tasks"));
  suite_params.num_etc = 1;
  suite_params.num_dag = 1;
  const std::filesystem::path out_dir = args.get_string("out-dir");

  const workload::ScenarioSuite suite(suite_params);
  const auto scenario = suite.make(sim::GridCase::A, 0, 0);
  const core::Weights weights = core::Weights::make(0.6, 0.3);

  std::filesystem::create_directories(out_dir);

  const std::string trace_path = args.get_string("trace-jsonl");
  const std::string metrics_path = args.get_string("metrics");
  obs::MetricsRegistry metrics;
  std::ofstream trace_stream;
  std::unique_ptr<obs::Sink> sink_holder;
  obs::Sink* sink = nullptr;
  if (!trace_path.empty()) {
    trace_stream.open(trace_path);
    if (!trace_stream) {
      std::cerr << "trace_export: cannot open " << trace_path << "\n";
      return EXIT_FAILURE;
    }
    sink_holder = std::make_unique<obs::JsonlSink>(trace_stream, &metrics);
    sink = sink_holder.get();
  } else if (!metrics_path.empty() || !args.get_string("openmetrics").empty()) {
    sink_holder = std::make_unique<obs::ForwardSink>(&metrics, nullptr);
    sink = sink_holder.get();
  }

  const std::string frames_path = args.get_string("frames-jsonl");
  const std::string chrome_path = args.get_string("chrome-trace");
  const std::string openmetrics_path = args.get_string("openmetrics");
  // One recorder shared across both runs: the frames carry the heuristic
  // name, so run_report/run_diff can split the stream back apart. Analysis
  // runs want full fidelity, hence dense_options.
  std::optional<obs::FlightRecorder> recorder_storage;
  obs::FlightRecorder* recorder = nullptr;
  if (!frames_path.empty() || !chrome_path.empty()) {
    recorder_storage.emplace(obs::FlightRecorder::dense_options());
    recorder = &*recorder_storage;
  }

  const std::string spans_path = args.get_string("spans-jsonl");
  const bool want_critical_path = args.get_flag("critical-path");
  // A fresh ledger per heuristic run (spans have no heuristic field, so one
  // shared ledger would let the second run overwrite the first). The last
  // run's ledger also feeds the chrome trace's task-major rows.
  std::optional<obs::TaskLedger> ledger_storage;

  for (const auto kind : {core::HeuristicKind::Slrh1, core::HeuristicKind::MaxMax}) {
    obs::TaskLedger* ledger = nullptr;
    if (!spans_path.empty() || want_critical_path || !chrome_path.empty()) {
      ledger_storage.emplace(scenario.num_tasks());
      ledger = &*ledger_storage;
    }
    const auto result = core::run_heuristic(kind, scenario, weights, {},
                                            core::AetSign::Reward, sink,
                                            nullptr, recorder, ledger);
    const std::string stem = to_string(kind);
    if (!spans_path.empty()) {
      const std::filesystem::path given = spans_path;
      const auto per_run =
          given.parent_path() / (stem + "_" + given.filename().string());
      std::ofstream f(per_run);
      if (!f) {
        std::cerr << "trace_export: cannot open " << per_run.string() << "\n";
        return EXIT_FAILURE;
      }
      ledger->write_spans_jsonl(f);
      std::cout << "spans: " << ledger->spans().size() << " span(s) -> "
                << per_run.string() << "\n";
    }
    if (want_critical_path) {
      std::cout << "--- " << stem << " critical path ---\n";
      core::write_critical_path_report(
          std::cout, core::analyze_critical_path(scenario, *result.schedule, ledger));
    }

    const auto assignments_path = out_dir / (stem + "_assignments.csv");
    const auto assignments_jsonl_path = out_dir / (stem + "_assignments.jsonl");
    const auto comms_path = out_dir / (stem + "_comms.csv");
    {
      std::ofstream f(assignments_path);
      sim::write_assignment_csv(f, *result.schedule);
    }
    {
      std::ofstream f(assignments_jsonl_path);
      sim::write_assignment_jsonl(f, *result.schedule);
      sim::write_comm_jsonl(f, *result.schedule);
    }
    {
      std::ofstream f(comms_path);
      sim::write_comm_csv(f, *result.schedule);
    }
    const auto svg_path = out_dir / (stem + "_gantt.svg");
    {
      std::ofstream f(svg_path);
      sim::SvgOptions svg;
      svg.title = stem + " — " + std::to_string(scenario.num_tasks()) + " subtasks, Case A";
      sim::render_svg_gantt(f, *result.schedule, svg);
    }

    std::cout << "=== " << stem << " ===\n"
              << "mapped " << result.assigned << "/" << scenario.num_tasks()
              << ", T100=" << result.t100 << ", AET "
              << seconds_from_cycles(result.aet) << " s, TEC " << result.tec << "\n"
              << "wrote " << assignments_path.string() << ", "
              << assignments_jsonl_path.string() << ", " << comms_path.string()
              << " and " << svg_path.string() << "\n";
    sim::GanttOptions gantt;
    gantt.width = 96;
    gantt.show_comm = false;
    sim::render_gantt(std::cout, *result.schedule, gantt);
    std::cout << "\n";
  }

  if (!trace_path.empty()) {
    const auto* jsonl = static_cast<const obs::JsonlSink*>(sink);
    std::cout << "decision trace: " << jsonl->events_written() << " events -> "
              << trace_path << "\n";
  }
  if (!metrics_path.empty()) {
    std::ofstream metrics_stream(metrics_path);
    if (!metrics_stream) {
      std::cerr << "trace_export: cannot open " << metrics_path << "\n";
      return EXIT_FAILURE;
    }
    metrics.snapshot().write_json(metrics_stream);
    metrics_stream << "\n";
    std::cout << "metrics -> " << metrics_path << "\n";
  }
  if (!frames_path.empty()) {
    std::ofstream frames_stream(frames_path);
    if (!frames_stream) {
      std::cerr << "trace_export: cannot open " << frames_path << "\n";
      return EXIT_FAILURE;
    }
    recorder->write_frames_jsonl(frames_stream);
    std::cout << "frames: " << recorder->frames_recorded() << " recorded, "
              << recorder->frames_dropped() << " dropped -> " << frames_path
              << "\n";
  }
  if (!chrome_path.empty()) {
    std::ofstream chrome_stream(chrome_path);
    if (!chrome_stream) {
      std::cerr << "trace_export: cannot open " << chrome_path << "\n";
      return EXIT_FAILURE;
    }
    // Task-major rows reflect the LAST heuristic run (Max-Max): the rows are
    // keyed by machine, so overlaying both runs would interleave slices.
    obs::write_chrome_trace(chrome_stream, recorder,
                            ledger_storage ? &*ledger_storage : nullptr,
                            "trace_export");
    std::cout << "chrome trace: " << recorder->spans_recorded() << " span(s), "
              << recorder->frames_recorded() << " frame(s) -> " << chrome_path
              << "\n";
  }
  if (!openmetrics_path.empty()) {
    std::ofstream om_stream(openmetrics_path);
    if (!om_stream) {
      std::cerr << "trace_export: cannot open " << openmetrics_path << "\n";
      return EXIT_FAILURE;
    }
    obs::write_openmetrics(om_stream, metrics.snapshot());
    std::cout << "openmetrics -> " << openmetrics_path << "\n";
  }
  return EXIT_SUCCESS;
}
