// Trace export: run two heuristics on the same scenario and dump complete
// schedule traces — assignment CSV, communication CSV, and an ASCII Gantt —
// for offline analysis or plotting. Demonstrates the introspection surface
// of the schedule substrate.
//
// Usage: trace_export [num_subtasks] [output_dir]

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/heuristics.hpp"
#include "core/validate.hpp"
#include "sim/svg.hpp"
#include "sim/trace.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace ahg;

  workload::SuiteParams suite_params;
  suite_params.num_tasks = argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 96;
  suite_params.num_etc = 1;
  suite_params.num_dag = 1;
  const std::filesystem::path out_dir = argc > 2 ? argv[2] : "traces";

  const workload::ScenarioSuite suite(suite_params);
  const auto scenario = suite.make(sim::GridCase::A, 0, 0);
  const core::Weights weights = core::Weights::make(0.6, 0.3);

  std::filesystem::create_directories(out_dir);

  for (const auto kind : {core::HeuristicKind::Slrh1, core::HeuristicKind::MaxMax}) {
    const auto result = core::run_heuristic(kind, scenario, weights);
    const std::string stem = to_string(kind);

    const auto assignments_path = out_dir / (stem + "_assignments.csv");
    const auto comms_path = out_dir / (stem + "_comms.csv");
    {
      std::ofstream f(assignments_path);
      sim::write_assignment_csv(f, *result.schedule);
    }
    {
      std::ofstream f(comms_path);
      sim::write_comm_csv(f, *result.schedule);
    }
    const auto svg_path = out_dir / (stem + "_gantt.svg");
    {
      std::ofstream f(svg_path);
      sim::SvgOptions svg;
      svg.title = stem + " — " + std::to_string(scenario.num_tasks()) + " subtasks, Case A";
      sim::render_svg_gantt(f, *result.schedule, svg);
    }

    std::cout << "=== " << stem << " ===\n"
              << "mapped " << result.assigned << "/" << scenario.num_tasks()
              << ", T100=" << result.t100 << ", AET "
              << seconds_from_cycles(result.aet) << " s, TEC " << result.tec << "\n"
              << "wrote " << assignments_path.string() << ", "
              << comms_path.string() << " and " << svg_path.string() << "\n";
    sim::GanttOptions gantt;
    gantt.width = 96;
    gantt.show_comm = false;
    sim::render_gantt(std::cout, *result.schedule, gantt);
    std::cout << "\n";
  }
  return EXIT_SUCCESS;
}
