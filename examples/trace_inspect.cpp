// Trace inspector: offline analysis of the per-decision JSONL telemetry
// emitted by the heuristics (see --trace-jsonl on slrh_cli / trace_export).
//
// With no options: per-heuristic run summaries — decisions, stalls, pool
// statistics, admission-rejection totals, and the final run outcome.
// With --task N: the "why" drill-down — for every map event of subtask N,
// reconstruct what the heuristic saw at that moment: the candidate pool, the
// higher-ranked candidates that were passed over (and the reason each was
// rejected), and the weighted objective-term breakdown that made the chosen
// (task, version, machine) the winner. Everything is answered from the trace
// file alone; no re-run needed.
//
//   trace_inspect decisions.jsonl
//   trace_inspect decisions.jsonl --task 17

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "support/args.hpp"
#include "support/jsonl.hpp"

namespace {

using ahg::obs::JsonValue;

struct HeuristicStats {
  std::size_t run_begins = 0;
  std::size_t run_ends = 0;
  std::size_t maps = 0;
  std::size_t stalls = 0;
  std::size_t pools = 0;
  std::size_t pool_members = 0;
  std::size_t rejected_unreleased = 0;
  std::size_t rejected_assigned = 0;
  std::size_t rejected_parents = 0;
  std::size_t rejected_energy = 0;
  std::size_t tuner_points = 0;
  std::size_t tuner_feasible = 0;
  const JsonValue* last_run_end = nullptr;
  const JsonValue* tuner_best = nullptr;
};

std::string version_name(const JsonValue& event) {
  return event.get_string("version", "?");
}

void print_terms(const JsonValue& event) {
  if (const JsonValue* terms = event.find("terms"); terms != nullptr) {
    std::cout << "    objective terms: alpha*T100/|T| = "
              << terms->get_double("t100") << ", beta*TEC/TSE = "
              << terms->get_double("tec") << " (subtracted), gamma*AET/tau = "
              << terms->get_double("aet") << " -> value "
              << terms->get_double("value") << "\n";
  }
}

void drill_down(const std::vector<JsonValue>& events, std::int64_t task) {
  std::size_t hits = 0;
  for (const auto& event : events) {
    if (event.get_string("type") != "map") continue;
    if (event.get_int("task", -1) != task) continue;
    ++hits;
    std::cout << "why task " << task << " -> machine " << event.get_int("machine")
              << " (" << event.get_string("heuristic", "?") << ")\n";
    if (const JsonValue* clock = event.find("clock"); clock != nullptr) {
      std::cout << "  at clock " << clock->as_int() << ": ";
    } else {
      std::cout << "  ";
    }
    std::cout << "pool of " << event.get_int("pool_size") << " candidates; chose "
              << version_name(event) << " version, score "
              << event.get_double("score") << ", start "
              << event.get_int("start_cycles") << ", finish "
              << event.get_int("finish_cycles") << "\n";
    print_terms(event);
    if (const JsonValue* cands = event.find("candidates");
        cands != nullptr && cands->is_array()) {
      bool any_skipped = false;
      for (const auto& cand : cands->as_array()) {
        const std::string reject = cand.get_string("reject");
        const std::int64_t cand_task = cand.get_int("task", -1);
        if (cand_task == task && reject.empty()) break;  // the chosen one
        if (!any_skipped) {
          std::cout << "    ranked above it but passed over:\n";
          any_skipped = true;
        }
        std::cout << "      task " << cand_task << " (" << version_name(cand)
                  << ", score " << cand.get_double("score") << "): " << reject
                  << "\n";
      }
      if (!any_skipped) {
        std::cout << "    it was the highest-scoring candidate in the pool\n";
      }
    }
  }
  if (hits == 0) {
    std::cout << "no map event for task " << task
              << " in this trace (unmapped, or the run was not traced)\n";
  }
}

void summarize(const std::vector<JsonValue>& events) {
  std::map<std::string, HeuristicStats> by_heuristic;
  for (const auto& event : events) {
    const std::string type = event.get_string("type");
    HeuristicStats& stats = by_heuristic[event.get_string("heuristic", "?")];
    if (type == "run_begin") {
      ++stats.run_begins;
    } else if (type == "run_end") {
      ++stats.run_ends;
      stats.last_run_end = &event;
    } else if (type == "map") {
      ++stats.maps;
    } else if (type == "stall") {
      ++stats.stalls;
    } else if (type == "pool") {
      ++stats.pools;
      stats.pool_members += static_cast<std::size_t>(event.get_int("pool_size"));
      stats.rejected_unreleased +=
          static_cast<std::size_t>(event.get_int("rejected_unreleased"));
      stats.rejected_assigned +=
          static_cast<std::size_t>(event.get_int("rejected_assigned"));
      stats.rejected_parents +=
          static_cast<std::size_t>(event.get_int("rejected_parents"));
      stats.rejected_energy +=
          static_cast<std::size_t>(event.get_int("rejected_energy"));
    } else if (type == "tuner_point") {
      ++stats.tuner_points;
      if (event.get_bool("feasible")) ++stats.tuner_feasible;
    } else if (type == "tuner_best") {
      stats.tuner_best = &event;
    }
  }

  std::cout << events.size() << " events\n";
  for (const auto& [name, stats] : by_heuristic) {
    std::cout << "\n" << name << ":\n";
    if (stats.run_begins > 0 || stats.run_ends > 0) {
      std::cout << "  runs: " << stats.run_begins << "\n";
    }
    std::cout << "  map decisions: " << stats.maps << ", stalls: " << stats.stalls
              << "\n";
    if (stats.pools > 0) {
      std::cout << "  pools built: " << stats.pools << " (avg size "
                << static_cast<double>(stats.pool_members) /
                       static_cast<double>(stats.pools)
                << ")\n"
                << "  pool rejections: " << stats.rejected_unreleased
                << " unreleased, " << stats.rejected_assigned << " assigned, "
                << stats.rejected_parents << " parents unmapped, "
                << stats.rejected_energy << " energy\n";
    }
    if (stats.tuner_points > 0) {
      std::cout << "  tuner points: " << stats.tuner_points << " ("
                << stats.tuner_feasible << " feasible)\n";
    }
    if (stats.tuner_best != nullptr) {
      const auto& best = *stats.tuner_best;
      std::cout << "  tuner best: alpha=" << best.get_double("alpha")
                << ", beta=" << best.get_double("beta")
                << ", T100=" << best.get_int("t100")
                << (best.get_bool("feasible") ? "" : " (NO feasible point)") << "\n";
    }
    if (stats.last_run_end != nullptr) {
      const auto& end = *stats.last_run_end;
      std::cout << "  last run: T100=" << end.get_int("t100") << ", assigned "
                << end.get_int("assigned") << ", AET " << end.get_int("aet_cycles")
                << " cycles, "
                << (end.get_bool("feasible") ? "feasible" : "INFEASIBLE") << ", "
                << end.get_double("wall_seconds") * 1e3 << " ms\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  ahg::ArgParser args("trace_inspect",
                      "summarize a heuristic decision trace (JSONL) and answer "
                      "why-was-task-t-mapped-to-machine-j queries");
  args.add_positional("trace", "JSONL trace file written via --trace-jsonl");
  args.add_int("task", -1, "drill into every map decision of this subtask id");
  if (!args.parse(argc, argv)) return args.error() ? EXIT_FAILURE : EXIT_SUCCESS;

  const std::string path = args.get_string("trace");
  std::ifstream in(path);
  if (!in) {
    std::cerr << "trace_inspect: cannot open " << path << "\n";
    return EXIT_FAILURE;
  }

  std::vector<JsonValue> events;
  try {
    events = ahg::obs::parse_jsonl(in);
  } catch (const std::exception& e) {
    std::cerr << "trace_inspect: " << path << ": " << e.what() << "\n";
    return EXIT_FAILURE;
  }

  if (const std::int64_t task = args.get_int("task"); task >= 0) {
    drill_down(events, task);
  } else {
    summarize(events);
  }
  return EXIT_SUCCESS;
}
