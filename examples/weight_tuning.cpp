// Weight tuning: sweep the Lagrangian objective weights (alpha, beta) for
// SLRH-1 on one scenario, the way the paper's §VII sensitivity study does,
// and report which combinations produce a complete feasible mapping and
// which maximise T100.
//
// Usage: weight_tuning [num_subtasks] [case:A|B|C] [coarse_step]

#include <cstdlib>
#include <iostream>

#include "core/heuristics.hpp"
#include "core/tuner.hpp"
#include "support/table.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace ahg;

  workload::SuiteParams suite_params;
  suite_params.num_tasks = argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 128;
  suite_params.num_etc = 1;
  suite_params.num_dag = 1;

  sim::GridCase grid_case = sim::GridCase::A;
  if (argc > 2) {
    const char c = argv[2][0];
    grid_case = c == 'B' ? sim::GridCase::B : c == 'C' ? sim::GridCase::C : sim::GridCase::A;
  }
  const double coarse = argc > 3 ? std::atof(argv[3]) : 0.1;

  const workload::ScenarioSuite suite(suite_params);
  const workload::Scenario scenario = suite.make(grid_case, 0, 0);

  std::cout << "tuning SLRH-1 on " << to_string(grid_case) << ", |T|="
            << scenario.num_tasks() << ", coarse step " << coarse << "\n\n";

  const core::WeightedSolver solver = [&](const core::Weights& w) {
    return core::run_heuristic(core::HeuristicKind::Slrh1, scenario, w);
  };
  core::TunerParams tuner_params;
  tuner_params.coarse_step = coarse;
  tuner_params.fine_step = 0.02;
  const core::TuneOutcome outcome = core::tune_weights(solver, tuner_params);

  TextTable table({"alpha", "beta", "gamma", "T100", "feasible"});
  for (const auto& p : outcome.evaluated) {
    table.begin_row();
    table.cell(p.alpha, 2);
    table.cell(p.beta, 2);
    table.cell(1.0 - p.alpha - p.beta, 2);
    table.cell(static_cast<long long>(p.t100));
    table.cell(std::string(p.feasible ? "yes" : "-"));
  }
  table.render(std::cout);

  std::cout << "\nevaluated " << outcome.evaluated.size() << " weight combinations\n";
  if (!outcome.found) {
    std::cout << "no feasible combination found\n";
    return EXIT_FAILURE;
  }
  std::cout << "best: alpha=" << outcome.alpha << " beta=" << outcome.beta
            << " -> T100=" << outcome.best.t100 << " of " << scenario.num_tasks()
            << " (AET " << seconds_from_cycles(outcome.best.aet) << " s of tau "
            << seconds_from_cycles(scenario.tau) << " s)\n";
  const auto ar = outcome.alpha_range();
  const auto br = outcome.beta_range();
  std::cout << "optimal-region ranges: alpha [" << ar.min << ", " << ar.max
            << "] mean " << ar.mean << "; beta [" << br.min << ", " << br.max
            << "] mean " << br.mean << "\n";
  return EXIT_SUCCESS;
}
