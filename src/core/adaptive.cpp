#include "core/adaptive.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "core/placement.hpp"
#include "core/upper_bound.hpp"
#include "sim/comm.hpp"
#include "support/contract.hpp"
#include "support/stopwatch.hpp"

namespace ahg::core {

namespace {

/// Machine ids shift down past the removed machine.
MachineId remap_machine(MachineId original, MachineId removed) {
  AHG_EXPECTS_MSG(original != removed, "remapping the removed machine itself");
  return original < removed ? original : original - 1;
}

}  // namespace

Weights adapt_alpha(const Weights& weights, const workload::Scenario& original,
                    const workload::Scenario& degraded) {
  const double full = compute_upper_bound(original).tecc_seconds;
  const double left = compute_upper_bound(degraded).tecc_seconds;
  AHG_EXPECTS_MSG(full > 0.0, "original grid must have capacity");
  const double ratio = std::clamp(left / full, 0.0, 1.0);
  const double alpha = weights.alpha * ratio;
  // Preserve beta's share of what alpha gave up; gamma absorbs the rest.
  const double freed = weights.alpha - alpha;
  const double denom = weights.beta + weights.gamma;
  const double beta =
      denom > 0.0 ? weights.beta + freed * (weights.beta / denom) : weights.beta;
  return Weights::make(alpha, std::min(beta, 1.0 - alpha));
}

LossRunOutcome run_slrh_with_loss(const workload::Scenario& scenario,
                                  const Weights& weights,
                                  const MachineLossEvent& event,
                                  const SlrhClockParams& clock, bool adapt) {
  scenario.validate();
  AHG_EXPECTS_MSG(event.machine >= 0 &&
                      static_cast<std::size_t>(event.machine) < scenario.num_machines(),
                  "lost machine id out of range");
  AHG_EXPECTS_MSG(scenario.num_machines() > 1, "cannot lose the only machine");
  AHG_EXPECTS_MSG(event.time >= 0 && event.time <= scenario.tau,
                  "loss time must fall inside the scheduling window");

  const Stopwatch timer;

  // --- Phase 1: run on the full grid until the loss fires. ------------------
  SlrhParams params;
  params.variant = clock.variant;
  params.weights = weights;
  params.dt = clock.dt;
  params.horizon = clock.horizon;

  const auto before_ptr = make_schedule(scenario);
  sim::Schedule& before = *before_ptr;
  MappingResult phase1_stats;
  drive_slrh(scenario, params, before, /*start_clock=*/0,
             /*end_clock=*/event.time, phase1_stats);

  // --- Loss model: discard the lost machine's tasks + mapped descendants. ---
  const auto num_tasks = static_cast<TaskId>(scenario.num_tasks());
  std::vector<bool> discarded(scenario.num_tasks(), false);

  LossRunOutcome outcome{MappingResult{},
                         workload::Scenario{scenario.grid.without_machine(event.machine),
                                            scenario.dag,
                                            scenario.etc.without_machine(event.machine),
                                            scenario.data, scenario.versions,
                                            scenario.tau},
                         0, 0, weights};
  outcome.degraded_scenario.releases = scenario.releases;
  for (const auto& outage : scenario.link_outages) {
    if (outage.machine == event.machine) continue;  // its link died with it
    auto copy = outage;
    copy.machine = remap_machine(outage.machine, event.machine);
    outcome.degraded_scenario.link_outages.push_back(copy);
  }
  outcome.degraded_scenario.validate();

  std::queue<TaskId> spill;
  for (TaskId t = 0; t < num_tasks; ++t) {
    if (!before.is_assigned(t)) continue;
    const auto& a = before.assignment(t);
    if (a.machine == event.machine) {
      if (a.finish <= event.time) ++outcome.completed_on_lost_machine;
      discarded[static_cast<std::size_t>(t)] = true;
      spill.push(t);
    }
  }
  while (!spill.empty()) {
    const TaskId t = spill.front();
    spill.pop();
    for (const TaskId child : scenario.dag.children(t)) {
      if (discarded[static_cast<std::size_t>(child)]) continue;
      if (!before.is_assigned(child)) continue;
      discarded[static_cast<std::size_t>(child)] = true;
      spill.push(child);
    }
  }
  for (TaskId t = 0; t < num_tasks; ++t) {
    if (discarded[static_cast<std::size_t>(t)]) ++outcome.discarded;
  }

  // --- Replay the surviving mapping onto the degraded grid. -----------------
  auto schedule = make_schedule(outcome.degraded_scenario);
  auto kept = [&](TaskId t) {
    return before.is_assigned(t) && !discarded[static_cast<std::size_t>(t)];
  };
  // Transfers between kept tasks, replayed first-come (original times).
  for (const auto& ev : before.comm_events()) {
    if (!kept(ev.from_task) || !kept(ev.to_task)) continue;
    schedule->add_comm(ev.from_task, ev.to_task,
                       remap_machine(ev.from_machine, event.machine),
                       remap_machine(ev.to_machine, event.machine), ev.start,
                       ev.finish - ev.start, ev.bits, ev.energy);
  }
  for (const TaskId t : before.assignment_order()) {
    if (!kept(t)) continue;
    const auto& a = before.assignment(t);
    schedule->add_assignment(t, remap_machine(a.machine, event.machine), a.version,
                             a.start, a.finish - a.start, a.energy);
  }
  // Re-take worst-case reservations for kept tasks' edges to unmapped
  // children (discarded children will be remapped and their inputs re-sent
  // from the surviving parent's machine).
  for (TaskId t = 0; t < num_tasks; ++t) {
    if (!kept(t)) continue;
    const auto& a = before.assignment(t);
    const auto machine = remap_machine(a.machine, event.machine);
    const auto& spec = outcome.degraded_scenario.grid.machine(machine);
    for (const TaskId child : scenario.dag.children(t)) {
      if (schedule->is_assigned(child)) continue;
      const double bits = scenario.edge_bits(t, child, a.version);
      if (bits <= 0.0) continue;
      const Cycles wc =
          sim::worst_case_transfer_cycles(bits, spec, outcome.degraded_scenario.grid);
      schedule->ledger().reserve(machine, sim::edge_key(t, child),
                                 sim::transfer_energy(spec, wc));
    }
  }

  // --- Phase 2: resume on the degraded grid. ---------------------------------
  if (adapt) {
    outcome.adapted_weights = adapt_alpha(weights, scenario, outcome.degraded_scenario);
  }
  params.weights = outcome.adapted_weights;
  MappingResult& result = outcome.result;
  result.iterations = phase1_stats.iterations;
  result.pools_built = phase1_stats.pools_built;
  drive_slrh(outcome.degraded_scenario, params, *schedule,
             /*start_clock=*/event.time, outcome.degraded_scenario.tau + 1, result);

  result.wall_seconds = timer.seconds();
  result.complete = schedule->complete();
  result.assigned = schedule->num_assigned();
  result.t100 = schedule->t100();
  result.aet = schedule->aet();
  result.tec = schedule->tec();
  result.within_tau = schedule->aet() <= scenario.tau;
  result.schedule = std::move(schedule);
  return outcome;
}

}  // namespace ahg::core
