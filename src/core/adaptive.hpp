#pragma once
// Dynamic machine loss and online weight adaptation — the paper's stated
// future work (§VIII: the T100 multiplier "requires adjustment whenever the
// system environment changes") and the introduction's motivating scenario
// (assets "appear and disappear from the grid at unanticipated times").
//
// Loss model (documented in DESIGN.md §8):
//  * at the loss time T, every subtask ever mapped to the lost machine is
//    discarded — completed results on the lost device are NOT recovered
//    (the paper: recovering partial results "may prove too costly");
//  * every mapped descendant of a discarded subtask is discarded too (its
//    inputs may no longer be reproducible), keeping the surviving mapping
//    ancestor-closed;
//  * the surviving assignments and transfers are replayed onto a fresh
//    schedule over the degraded grid, worst-case reservations are re-taken
//    for edges to now-unmapped children, and the SLRH loop resumes at T;
//  * energy already sunk into discarded work is not re-charged to the
//    survivors (optimistic accounting — the study's focus is mapping
//    robustness, not waste accounting).

#include <optional>

#include "core/result.hpp"
#include "core/slrh.hpp"
#include "workload/scenario.hpp"

namespace ahg::core {

struct MachineLossEvent {
  MachineId machine = kInvalidMachine;  ///< id in the ORIGINAL grid
  Cycles time = 0;                      ///< loss time (clock cycles)
};

/// Online adjustment of the T100 multiplier when the machine set changes:
/// alpha is scaled by the ratio of degraded to original aggregate compute
/// capacity (the equivalent-computing-cycles total of §VI), mirroring the
/// paper's observation that the optimal alpha shrinks when resources are
/// lost; beta keeps its share of the remainder, gamma absorbs the rest.
Weights adapt_alpha(const Weights& weights, const workload::Scenario& original,
                    const workload::Scenario& degraded);

struct LossRunOutcome {
  MappingResult result;                 ///< final outcome on the degraded grid
  workload::Scenario degraded_scenario; ///< grid/ETC with the machine removed
  std::size_t completed_on_lost_machine = 0;  ///< finished there before T (lost)
  std::size_t discarded = 0;   ///< mapped subtasks invalidated by the loss
  Weights adapted_weights;     ///< weights used after the loss
};

/// Clock parameters for the loss run (dt/horizon/variant of the SLRH loop).
struct SlrhClockParams {
  SlrhVariant variant = SlrhVariant::V1;
  Cycles dt = 10;
  Cycles horizon = 100;
};

/// Run SLRH on the full grid until the loss event fires, apply the loss
/// model above, optionally adapt alpha, and resume on the degraded grid.
LossRunOutcome run_slrh_with_loss(const workload::Scenario& scenario,
                                  const Weights& weights,
                                  const MachineLossEvent& event,
                                  const SlrhClockParams& clock = {},
                                  bool adapt = true);

}  // namespace ahg::core
