#include "core/baselines.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <set>
#include <tuple>
#include <vector>

#include "core/feasibility.hpp"
#include "core/placement.hpp"
#include "support/contract.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"

namespace ahg::core {

namespace {

/// Shared frontier bookkeeping for the static baselines.
class Frontier {
 public:
  explicit Frontier(const workload::Scenario& scenario) {
    const auto num_tasks = static_cast<TaskId>(scenario.num_tasks());
    unmapped_parents_.resize(scenario.num_tasks());
    for (TaskId t = 0; t < num_tasks; ++t) {
      unmapped_parents_[static_cast<std::size_t>(t)] = scenario.dag.parents(t).size();
      if (unmapped_parents_[static_cast<std::size_t>(t)] == 0) tasks_.push_back(t);
    }
  }

  const std::vector<TaskId>& tasks() const noexcept { return tasks_; }
  bool empty() const noexcept { return tasks_.empty(); }

  void mark_mapped(const workload::Scenario& scenario, TaskId task) {
    tasks_.erase(std::find(tasks_.begin(), tasks_.end(), task));
    for (const TaskId child : scenario.dag.children(task)) {
      if (--unmapped_parents_[static_cast<std::size_t>(child)] == 0) {
        tasks_.push_back(child);
      }
    }
    std::sort(tasks_.begin(), tasks_.end());
  }

 private:
  std::vector<std::size_t> unmapped_parents_;
  std::vector<TaskId> tasks_;
};

/// Critical-path deadline budget per task (same rule as Max-Max; see
/// DESIGN.md §3b.3): longest descendant chain at cheapest secondary cost.
std::vector<Cycles> deadline_tails(const workload::Scenario& scenario) {
  const auto num_machines = static_cast<MachineId>(scenario.num_machines());
  std::vector<Cycles> tail(scenario.num_tasks(), 0);
  const auto order = scenario.dag.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId t = *it;
    Cycles min_exec = std::numeric_limits<Cycles>::max();
    for (MachineId j = 0; j < num_machines; ++j) {
      min_exec = std::min(min_exec, scenario.exec_cycles(t, j, VersionKind::Secondary));
    }
    for (const TaskId parent : scenario.dag.parents(t)) {
      tail[static_cast<std::size_t>(parent)] =
          std::max(tail[static_cast<std::size_t>(parent)],
                   min_exec + tail[static_cast<std::size_t>(t)]);
    }
  }
  return tail;
}

/// Hole-aware finish estimate (arrival lower bound = latest parent finish).
Cycles estimate_finish(const workload::Scenario& scenario, const sim::Schedule& schedule,
                       TaskId task, MachineId machine, VersionKind version) {
  const Cycles exec = scenario.exec_cycles(task, machine, version);
  Cycles arrival_lb = scenario.release(task);
  for (const TaskId parent : scenario.dag.parents(task)) {
    arrival_lb = std::max(arrival_lb, schedule.assignment(parent).finish);
  }
  return schedule.compute_timeline(machine).earliest_fit(arrival_lb, exec) + exec;
}

bool admissible(const workload::Scenario& scenario, const sim::Schedule& schedule,
                const BaselineParams& params, const std::vector<Cycles>& tail,
                TaskId task, MachineId machine, VersionKind version) {
  if (!version_fits_energy(scenario, schedule, task, machine, version)) return false;
  if (!params.enforce_tau) return true;
  return estimate_finish(scenario, schedule, task, machine, version) +
             tail[static_cast<std::size_t>(task)] <=
         scenario.tau;
}

/// Version policy shared by Min-Min and OLB: primary when admissible (the
/// baselines pick machines; this picks versions), else secondary, else none.
std::optional<VersionKind> pick_version(const workload::Scenario& scenario,
                                        const sim::Schedule& schedule,
                                        const BaselineParams& params,
                                        const std::vector<Cycles>& tail, TaskId task,
                                        MachineId machine) {
  if (params.prefer_primary &&
      admissible(scenario, schedule, params, tail, task, machine, VersionKind::Primary)) {
    return VersionKind::Primary;
  }
  if (admissible(scenario, schedule, params, tail, task, machine,
                 VersionKind::Secondary)) {
    return VersionKind::Secondary;
  }
  if (!params.prefer_primary &&
      admissible(scenario, schedule, params, tail, task, machine, VersionKind::Primary)) {
    return VersionKind::Primary;
  }
  return std::nullopt;
}

MappingResult finalize(const workload::Scenario& scenario,
                       std::shared_ptr<sim::Schedule> schedule, const Stopwatch& timer,
                       MappingResult result) {
  result.wall_seconds = timer.seconds();
  result.complete = schedule->complete();
  result.assigned = schedule->num_assigned();
  result.t100 = schedule->t100();
  result.aet = schedule->aet();
  result.tec = schedule->tec();
  result.within_tau = schedule->aet() <= scenario.tau;
  result.schedule = std::move(schedule);
  return result;
}

/// Commit with an exact-plan deadline re-check; returns false if every
/// retry is exhausted (the caller treats the triplet as inadmissible).
bool checked_commit(const workload::Scenario& scenario, sim::Schedule& schedule,
                    const BaselineParams& params, const std::vector<Cycles>& tail,
                    TaskId task, MachineId machine, VersionKind version) {
  const PlacementPlan plan =
      plan_placement(scenario, schedule, task, machine, version, /*not_before=*/0);
  if (params.enforce_tau &&
      plan.finish() + tail[static_cast<std::size_t>(task)] > scenario.tau) {
    return false;
  }
  commit_placement(scenario, schedule, plan);
  return true;
}

}  // namespace

MappingResult run_minmin(const workload::Scenario& scenario, const BaselineParams& params) {
  scenario.validate();
  const Stopwatch timer;
  auto schedule = make_schedule(scenario);
  const auto tail = deadline_tails(scenario);
  const auto num_machines = static_cast<MachineId>(scenario.num_machines());
  Frontier frontier(scenario);
  MappingResult result;

  std::set<std::pair<TaskId, MachineId>> excluded;
  while (!schedule->complete()) {
    ++result.iterations;
    // Min-Min: the (task, machine) pair with the minimum completion time,
    // with the version chosen primary-first per pair.
    TaskId best_task = kInvalidTask;
    MachineId best_machine = kInvalidMachine;
    VersionKind best_version = VersionKind::Primary;
    Cycles best_finish = std::numeric_limits<Cycles>::max();
    for (const TaskId task : frontier.tasks()) {
      for (MachineId machine = 0; machine < num_machines; ++machine) {
        if (excluded.contains({task, machine})) continue;
        const auto version =
            pick_version(scenario, *schedule, params, tail, task, machine);
        if (!version.has_value()) continue;
        const Cycles finish = estimate_finish(scenario, *schedule, task, machine, *version);
        if (finish < best_finish ||
            (finish == best_finish && task < best_task)) {
          best_task = task;
          best_machine = machine;
          best_version = *version;
          best_finish = finish;
        }
      }
    }
    if (best_task == kInvalidTask) break;  // stuck
    if (!checked_commit(scenario, *schedule, params, tail, best_task, best_machine,
                        best_version)) {
      excluded.insert({best_task, best_machine});
      --result.iterations;  // retry the same round
      continue;
    }
    excluded.clear();
    frontier.mark_mapped(scenario, best_task);
  }
  return finalize(scenario, std::move(schedule), timer, std::move(result));
}

MappingResult run_olb(const workload::Scenario& scenario, const BaselineParams& params) {
  scenario.validate();
  const Stopwatch timer;
  auto schedule = make_schedule(scenario);
  const auto tail = deadline_tails(scenario);
  const auto num_machines = static_cast<MachineId>(scenario.num_machines());
  Frontier frontier(scenario);
  MappingResult result;

  while (!schedule->complete() && !frontier.empty()) {
    ++result.iterations;
    const TaskId task = frontier.tasks().front();  // deterministic id order
    // Machines by ascending ready time (classic OLB ignores execution time).
    std::vector<MachineId> machines(static_cast<std::size_t>(num_machines));
    for (MachineId j = 0; j < num_machines; ++j) {
      machines[static_cast<std::size_t>(j)] = j;
    }
    std::sort(machines.begin(), machines.end(), [&](MachineId a, MachineId b) {
      const Cycles ra = schedule->machine_ready(a);
      const Cycles rb = schedule->machine_ready(b);
      if (ra != rb) return ra < rb;
      return a < b;
    });
    bool mapped = false;
    for (const MachineId machine : machines) {
      const auto version = pick_version(scenario, *schedule, params, tail, task, machine);
      if (!version.has_value()) continue;
      if (checked_commit(scenario, *schedule, params, tail, task, machine, *version)) {
        frontier.mark_mapped(scenario, task);
        mapped = true;
        break;
      }
    }
    if (!mapped) break;  // stuck on the head-of-line task
  }
  return finalize(scenario, std::move(schedule), timer, std::move(result));
}

MappingResult run_random(const workload::Scenario& scenario,
                         const RandomMapperParams& params) {
  scenario.validate();
  const Stopwatch timer;
  auto schedule = make_schedule(scenario);
  const auto tail = deadline_tails(scenario);
  const auto num_machines = static_cast<MachineId>(scenario.num_machines());
  Frontier frontier(scenario);
  Rng rng(params.seed);
  MappingResult result;

  while (!schedule->complete() && !frontier.empty()) {
    ++result.iterations;
    // Random frontier task; random admissible (machine, version).
    const auto& tasks = frontier.tasks();
    const TaskId task = tasks[rng.uniform_below(tasks.size())];

    std::vector<std::pair<MachineId, VersionKind>> options;
    for (MachineId machine = 0; machine < num_machines; ++machine) {
      for (const VersionKind version : {VersionKind::Primary, VersionKind::Secondary}) {
        if (admissible(scenario, *schedule, params.base, tail, task, machine, version)) {
          options.emplace_back(machine, version);
        }
      }
    }
    bool mapped = false;
    while (!options.empty()) {
      const std::size_t pick = rng.uniform_below(options.size());
      const auto [machine, version] = options[pick];
      if (checked_commit(scenario, *schedule, params.base, tail, task, machine, version)) {
        frontier.mark_mapped(scenario, task);
        mapped = true;
        break;
      }
      options.erase(options.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    if (!mapped) break;  // this task fits nowhere: stuck
  }
  return finalize(scenario, std::move(schedule), timer, std::move(result));
}

}  // namespace ahg::core
