#pragma once
// Classic scheduling baselines beyond the paper's Max-Max: the Min-Min
// completion-time heuristic of Ibarra & Kim [IbK77] (the family Max-Max is
// modelled on), OLB (opportunistic load balancing), and a seeded random
// mapper. These give the evaluation floor/context the paper's related-work
// section points to, and exercise the same placement substrate.
//
// All three are static (offline) mappers with the same input/output contract
// as run_maxmax: they process the precedence frontier, pick (task, machine,
// version) triplets, and commit through the shared placement planner, so
// every schedule they produce passes the independent validator.

#include <cstdint>

#include "core/result.hpp"
#include "workload/scenario.hpp"

namespace ahg::core {

struct BaselineParams {
  /// Deadline awareness (same critical-path-aware rule as Max-Max): a
  /// candidate is admissible only if its finish plus the cheapest execution
  /// of its longest descendant chain fits within tau.
  bool enforce_tau = true;
  /// Prefer the primary version whenever it is admissible (Min-Min/OLB pick
  /// the machine; this picks the version). When false, versions are chosen
  /// at random (random mapper) or secondary-first (stress floor).
  bool prefer_primary = true;
};

/// Min-Min [IbK77], adapted to DAGs and versions: among frontier candidates,
/// repeatedly commit the (task, machine, version) whose exact completion
/// time is MINIMUM (min over tasks of min over machines), honouring energy
/// and deadline admissibility.
MappingResult run_minmin(const workload::Scenario& scenario,
                         const BaselineParams& params = {});

/// OLB: assign each frontier task (in deterministic id order) to the machine
/// that becomes available earliest, ignoring execution times — the classic
/// low-information baseline.
MappingResult run_olb(const workload::Scenario& scenario,
                      const BaselineParams& params = {});

struct RandomMapperParams {
  BaselineParams base;
  std::uint64_t seed = 1;
};

/// Random mapper: frontier tasks in random order onto random admissible
/// machines with random admissible versions. The statistical floor.
MappingResult run_random(const workload::Scenario& scenario,
                         const RandomMapperParams& params = {});

}  // namespace ahg::core
