#include "core/churn.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/placement.hpp"
#include "core/scoring.hpp"
#include "sim/comm.hpp"
#include "support/contract.hpp"
#include "support/flight_recorder.hpp"
#include "support/stopwatch.hpp"
#include "support/task_ledger.hpp"

namespace ahg::core {

const char* to_string(ChurnRecovery recovery) noexcept {
  switch (recovery) {
    case ChurnRecovery::Remap: return "remap";
    case ChurnRecovery::Degrade: return "degrade";
  }
  return "unknown";
}

namespace {

constexpr Cycles kNoDeparture = workload::Scenario::kNoDeparture;

/// First SLRH grid point at or after `time` — where a departure that fired
/// between timesteps is actually discovered ("react at the next dT").
Cycles next_timestep(Cycles time, Cycles dt) {
  return ((time + dt - 1) / dt) * dt;
}

/// Which assigned subtasks lost their work to the departures seen so far.
/// Seed: unfinished subtasks on departed machines (the orphans). A COMPLETED
/// subtask on a departed machine survives only while every data-carrying
/// output edge is satisfied: consumed on the same machine by a surviving
/// child, or transmitted cross-machine before the departure to a surviving
/// child. Invalidation cascades to every mapped descendant (through all
/// edges), so kept = assigned && !invalid stays ancestor-closed and the
/// independent validator passes on the rebuilt schedule. The cascade can in
/// turn unsatisfy another departed machine's outputs, hence the fixpoint.
std::vector<char> compute_invalid(const workload::Scenario& scenario,
                                  const sim::Schedule& schedule,
                                  const std::vector<char>& departed,
                                  const std::vector<char>& extra_seed) {
  const auto num_tasks = static_cast<TaskId>(scenario.num_tasks());
  std::vector<char> invalid = extra_seed;
  const auto is_departed = [&](MachineId m) {
    return departed[static_cast<std::size_t>(m)] != 0;
  };
  const auto flag = [&](TaskId t) -> char& {
    return invalid[static_cast<std::size_t>(t)];
  };

  for (TaskId t = 0; t < num_tasks; ++t) {
    if (!schedule.is_assigned(t)) continue;
    const auto& a = schedule.assignment(t);
    if (is_departed(a.machine) && a.finish > scenario.machine_depart(a.machine)) {
      flag(t) = 1;
    }
  }

  std::unordered_map<std::uint64_t, Cycles> comm_finish;
  for (const auto& ev : schedule.comm_events()) {
    comm_finish.emplace(sim::edge_key(ev.from_task, ev.to_task), ev.finish);
  }

  bool changed = true;
  while (changed) {
    changed = false;
    // Downward closure in topological order: one pass settles a whole chain.
    for (const TaskId t : scenario.dag.topological_order()) {
      if (!schedule.is_assigned(t) || flag(t) != 0) continue;
      for (const TaskId parent : scenario.dag.parents(t)) {
        if (flag(parent) != 0) {
          flag(t) = 1;
          changed = true;
          break;
        }
      }
    }
    // Output survival on departed machines.
    for (TaskId t = 0; t < num_tasks; ++t) {
      if (!schedule.is_assigned(t) || flag(t) != 0) continue;
      const auto& a = schedule.assignment(t);
      if (!is_departed(a.machine)) continue;
      const Cycles depart = scenario.machine_depart(a.machine);
      bool lost = false;
      for (const TaskId child : scenario.dag.children(t)) {
        if (scenario.edge_bits(t, child, a.version) <= 0.0) continue;
        if (!schedule.is_assigned(child) || flag(child) != 0) {
          lost = true;
          break;
        }
        if (schedule.assignment(child).machine == a.machine) continue;
        const auto it = comm_finish.find(sim::edge_key(t, child));
        if (it == comm_finish.end() || it->second > depart) {
          lost = true;
          break;
        }
      }
      if (lost) {
        flag(t) = 1;
        changed = true;
      }
    }
  }
  return invalid;
}

/// Replay the surviving mapping onto a fresh schedule (original machines and
/// times — no remapping; machine ids are stable under churn), re-take the
/// worst-case communication reservations kept tasks owe their unmapped
/// children, then seal every departed machine: compute blocked past any
/// reachable clock (defense in depth — the sweep already skips absentees)
/// and the stranded battery forfeited.
///
/// Re-taking a reservation can FAIL: when the edge's original hold was
/// settled cheaply (or released on-machine) the freed headroom may have been
/// spent since, and the machine can no longer underwrite the worst-case
/// retransmission of that output. The work is then effectively lost — the
/// placement invariant (every data edge to an unmapped child is backed by a
/// worst-case hold on the parent's machine) is what makes future child
/// placements safe, so it cannot be waived. `*unaffordable` reports the
/// first such task (kInvalidTask when the rebuild is clean); the caller
/// folds it into the invalidation fixpoint and retries.
std::shared_ptr<sim::Schedule> rebuild_schedule(const workload::Scenario& scenario,
                                                const sim::Schedule& before,
                                                const std::vector<char>& invalid,
                                                const std::vector<char>& departed,
                                                TaskId* unaffordable) {
  constexpr double kLedgerEps = 1e-9;  // sim/energy.cpp's overdraw tolerance
  *unaffordable = kInvalidTask;
  auto schedule = make_schedule(scenario);
  const auto kept = [&](TaskId t) {
    return before.is_assigned(t) && invalid[static_cast<std::size_t>(t)] == 0;
  };
  for (const auto& ev : before.comm_events()) {
    if (!kept(ev.from_task) || !kept(ev.to_task)) continue;
    schedule->add_comm(ev.from_task, ev.to_task, ev.from_machine, ev.to_machine,
                       ev.start, ev.finish - ev.start, ev.bits, ev.energy);
  }
  for (const TaskId t : before.assignment_order()) {
    if (!kept(t)) continue;
    const auto& a = before.assignment(t);
    schedule->add_assignment(t, a.machine, a.version, a.start, a.finish - a.start,
                             a.energy);
  }
  const auto num_tasks = static_cast<TaskId>(scenario.num_tasks());
  for (TaskId t = 0; t < num_tasks; ++t) {
    if (!kept(t)) continue;
    const auto& a = before.assignment(t);
    for (const TaskId child : scenario.dag.children(t)) {
      if (schedule->is_assigned(child)) continue;
      const double bits = scenario.edge_bits(t, child, a.version);
      if (bits <= 0.0) continue;
      // A kept task on a departed machine cannot reach here: a data edge to
      // an unmapped child would have invalidated it.
      const auto& spec = scenario.grid.machine(a.machine);
      const Cycles wc = sim::worst_case_transfer_cycles(bits, spec, scenario.grid);
      const double hold = sim::transfer_energy(spec, wc);
      if (hold > schedule->energy().available(a.machine) + kLedgerEps) {
        *unaffordable = t;
        return schedule;
      }
      schedule->ledger().reserve(a.machine, sim::edge_key(t, child), hold);
    }
  }
  const auto num_machines = static_cast<MachineId>(scenario.num_machines());
  for (MachineId m = 0; m < num_machines; ++m) {
    if (departed[static_cast<std::size_t>(m)] == 0) continue;
    schedule->block_compute(m, scenario.machine_depart(m), scenario.tau * 8 + 1);
    schedule->ledger().forfeit(m);
  }
  return schedule;
}

obs::TermBreakdown terms_delta(const Weights& weights, const ObjectiveTotals& totals,
                               AetSign aet_sign, const sim::Schedule& before,
                               const sim::Schedule& after) {
  const ObjectiveTerms b = objective_terms(
      weights, ObjectiveState{before.t100(), before.tec(), before.aet()}, totals,
      aet_sign);
  const ObjectiveTerms a = objective_terms(
      weights, ObjectiveState{after.t100(), after.tec(), after.aet()}, totals,
      aet_sign);
  return {a.t100 - b.t100, a.tec - b.tec, a.aet - b.aet, a.value - b.value};
}

}  // namespace

ChurnRunOutcome run_slrh_with_churn(const workload::Scenario& scenario,
                                    const SlrhParams& params,
                                    ChurnRecovery recovery) {
  params.validate();
  scenario.validate();
  AHG_EXPECTS_MSG(params.secondary_only == nullptr,
                  "the churn driver owns the degrade mask");

  // No presence windows, or windows with no events inside them: the plain
  // run (the sweep's availability check is vacuously true).
  ChurnRunOutcome outcome;
  struct Pending {
    Cycles process;
    MachineId machine;
    bool is_departure;
  };
  std::vector<Pending> pending;
  const auto num_machines = static_cast<MachineId>(scenario.num_machines());
  for (MachineId m = 0; m < num_machines && !scenario.machine_windows.empty(); ++m) {
    const auto& w = scenario.machine_windows[static_cast<std::size_t>(m)];
    if (w.join > 0) pending.push_back({next_timestep(w.join, params.dt), m, false});
    if (w.depart != kNoDeparture) {
      pending.push_back({next_timestep(w.depart, params.dt), m, true});
    }
  }
  if (pending.empty()) {
    outcome.result = run_slrh(scenario, params);
    return outcome;
  }
  std::sort(pending.begin(), pending.end(), [](const Pending& a, const Pending& b) {
    if (a.process != b.process) return a.process < b.process;
    if (a.is_departure != b.is_departure) return !a.is_departure;  // joins first
    return a.machine < b.machine;
  });

  const Stopwatch timer;
  const ObjectiveTotals totals = objective_totals(scenario);
  const std::string heuristic_name = to_string(params.variant);
  obs::Sink* sink = params.sink;
  obs::FlightRecorder* recorder = params.recorder;

  std::vector<std::uint8_t> degrade_mask(scenario.num_tasks(), 0);
  SlrhParams run_params = params;
  if (recovery == ChurnRecovery::Degrade) run_params.secondary_only = &degrade_mask;

  if (sink != nullptr && sink->wants(obs::EventKind::RunBegin)) {
    obs::Event event;
    event.kind = obs::EventKind::RunBegin;
    event.heuristic = heuristic_name;
    event.alpha = params.weights.alpha;
    event.beta = params.weights.beta;
    event.gamma = params.weights.gamma;
    event.note = "churn=" + std::string(to_string(recovery)) +
                 ", windows=" + std::to_string(scenario.machine_windows.size());
    sink->emit(event);
  }

  auto schedule = make_schedule(scenario);
  MappingResult& result = outcome.result;
  std::vector<char> departed(scenario.num_machines(), 0);

  Cycles current = 0;
  std::size_t i = 0;
  while (i < pending.size()) {
    const Cycles process = pending[i].process;
    // A departure never interrupts the current segment — the loop reacts at
    // the next timestep, like any observer of an ad hoc grid.
    drive_slrh(scenario, run_params, *schedule, current, process, result);
    current = process;

    std::vector<MachineId> new_departures;
    for (; i < pending.size() && pending[i].process == process; ++i) {
      if (pending[i].is_departure) {
        departed[static_cast<std::size_t>(pending[i].machine)] = 1;
        new_departures.push_back(pending[i].machine);
      } else if (sink != nullptr && sink->wants(obs::EventKind::MachineJoin)) {
        obs::Event event;
        event.kind = obs::EventKind::MachineJoin;
        event.heuristic = heuristic_name;
        event.clock = process;
        event.machine = pending[i].machine;
        sink->emit(event);
      }
    }
    if (new_departures.empty()) continue;

    const double recovery_t0 = recorder != nullptr ? recorder->now_seconds() : 0.0;

    // Invalidation fixpoint, including affordability: a rebuild that cannot
    // re-take some kept task's worst-case output hold invalidates that task
    // too (its machine can no longer guarantee delivery), which frees energy
    // and may cascade. Each round invalidates at least one more task, so
    // this terminates within |T| rounds.
    std::vector<char> unaffordable_seed(scenario.num_tasks(), 0);
    std::vector<char> invalid;
    std::shared_ptr<sim::Schedule> rebuilt;
    for (;;) {
      invalid = compute_invalid(scenario, *schedule, departed, unaffordable_seed);
      TaskId unaffordable = kInvalidTask;
      rebuilt = rebuild_schedule(scenario, *schedule, invalid, departed,
                                 &unaffordable);
      if (unaffordable == kInvalidTask) break;
      unaffordable_seed[static_cast<std::size_t>(unaffordable)] = 1;
    }

    // Batch tallies: orphans are the unfinished subtasks on the machines
    // that departed THIS timestep; everything else newly invalid is
    // completed (or queued elsewhere) work lost to the cascade.
    const auto num_tasks = static_cast<TaskId>(scenario.num_tasks());
    std::vector<std::size_t> orphans_on(scenario.num_machines(), 0);
    std::size_t batch_orphaned = 0;
    std::size_t batch_invalid = 0;
    for (TaskId t = 0; t < num_tasks; ++t) {
      if (invalid[static_cast<std::size_t>(t)] == 0 || !schedule->is_assigned(t)) {
        continue;
      }
      ++batch_invalid;
      const auto& a = schedule->assignment(t);
      const bool new_machine =
          std::find(new_departures.begin(), new_departures.end(), a.machine) !=
          new_departures.end();
      const bool is_orphan =
          new_machine && a.finish > scenario.machine_depart(a.machine);
      if (params.ledger != nullptr) {
        // Transition clock = the grid point the loss is DISCOVERED at, same
        // convention as the recovery span and the event stream.
        if (is_orphan) {
          params.ledger->on_orphaned(t, process);
        } else {
          params.ledger->on_invalidated(t, process);
        }
        if (recovery == ChurnRecovery::Degrade) {
          params.ledger->on_degraded(t, process);
        }
      }
      if (is_orphan) {
        ++orphans_on[static_cast<std::size_t>(a.machine)];
        ++batch_orphaned;
        if (sink != nullptr && sink->wants(obs::EventKind::OrphanReturn)) {
          obs::Event event;
          event.kind = obs::EventKind::OrphanReturn;
          event.heuristic = heuristic_name;
          event.clock = process;
          event.machine = a.machine;
          event.task = t;
          sink->emit(event);
        }
      }
      if (recovery == ChurnRecovery::Degrade) {
        degrade_mask[static_cast<std::size_t>(t)] = 1;
      }
    }

    const obs::TermBreakdown delta = terms_delta(params.weights, totals,
                                                 params.aet_sign, *schedule, *rebuilt);
    for (const MachineId m : new_departures) {
      ++outcome.departures_processed;
      const double forfeited = rebuilt->energy().forfeited(m);
      outcome.energy_forfeited += forfeited;
      if (sink != nullptr && sink->wants(obs::EventKind::MachineDeparture)) {
        obs::Event event;
        event.kind = obs::EventKind::MachineDeparture;
        event.heuristic = heuristic_name;
        event.clock = process;
        event.machine = m;
        event.orphaned = orphans_on[static_cast<std::size_t>(m)];
        event.invalidated = batch_invalid - batch_orphaned;
        event.energy_forfeited = forfeited;
        event.terms = delta;
        sink->emit(event);
      }
    }
    outcome.orphaned += batch_orphaned;
    outcome.invalidated += batch_invalid - batch_orphaned;
    schedule = std::move(rebuilt);

    if (recorder != nullptr) {
      // Every frame sampled from here on carries the updated cumulative
      // churn tallies; the recovery itself shows up as a span.
      recorder->add_span("churn_recovery", recovery_t0,
                         recorder->now_seconds() - recovery_t0, process);
      recorder->set_churn_context(
          static_cast<std::uint64_t>(outcome.departures_processed),
          static_cast<std::uint64_t>(outcome.orphaned),
          static_cast<std::uint64_t>(outcome.invalidated),
          outcome.energy_forfeited);
    }
  }

  drive_slrh(scenario, run_params, *schedule, current, scenario.tau + 1, result);

  result.wall_seconds = timer.seconds();
  result.complete = schedule->complete();
  result.assigned = schedule->num_assigned();
  result.t100 = schedule->t100();
  result.aet = schedule->aet();
  result.tec = schedule->tec();
  result.within_tau = schedule->aet() <= scenario.tau;
  result.schedule = std::move(schedule);

  if (sink != nullptr && sink->wants(obs::EventKind::RunEnd)) {
    obs::Event event;
    event.kind = obs::EventKind::RunEnd;
    event.heuristic = heuristic_name;
    event.alpha = params.weights.alpha;
    event.beta = params.weights.beta;
    event.gamma = params.weights.gamma;
    event.t100 = result.t100;
    event.assigned = result.assigned;
    event.aet = result.aet;
    event.feasible = result.feasible();
    event.wall_seconds = result.wall_seconds;
    event.note = "departures=" + std::to_string(outcome.departures_processed);
    sink->emit(event);
  }
  return outcome;
}

StaticChurnReplay replay_static_under_churn(const workload::Scenario& scenario,
                                            const sim::Schedule& schedule) {
  scenario.validate();
  StaticChurnReplay out;

  std::unordered_map<std::uint64_t, const sim::CommEvent*> comms;
  for (const auto& ev : schedule.comm_events()) {
    comms.emplace(sim::edge_key(ev.from_task, ev.to_task), &ev);
  }
  const auto inside_window = [&](MachineId m, Cycles start, Cycles finish) {
    return scenario.machine_join(m) <= start && finish <= scenario.machine_depart(m);
  };

  std::vector<char> done(scenario.num_tasks(), 0);
  for (const TaskId t : scenario.dag.topological_order()) {
    if (!schedule.is_assigned(t)) continue;
    const auto& a = schedule.assignment(t);
    if (!inside_window(a.machine, a.start, a.finish)) continue;
    bool ok = true;
    for (const TaskId parent : scenario.dag.parents(t)) {
      if (done[static_cast<std::size_t>(parent)] == 0) {
        ok = false;
        break;
      }
      const auto& pa = schedule.assignment(parent);
      if (scenario.edge_bits(parent, t, pa.version) <= 0.0 ||
          pa.machine == a.machine) {
        continue;
      }
      const auto it = comms.find(sim::edge_key(parent, t));
      if (it == comms.end() ||
          !inside_window(it->second->from_machine, it->second->start,
                         it->second->finish) ||
          !inside_window(it->second->to_machine, it->second->start,
                         it->second->finish)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    done[static_cast<std::size_t>(t)] = 1;
    ++out.completed;
    if (a.version == VersionKind::Primary) ++out.t100_completed;
    out.aet = std::max(out.aet, a.finish);
    out.tec += a.energy;
  }
  for (const auto& ev : schedule.comm_events()) {
    if (done[static_cast<std::size_t>(ev.from_task)] != 0 &&
        done[static_cast<std::size_t>(ev.to_task)] != 0) {
      out.tec += ev.energy;
    }
  }
  return out;
}

}  // namespace ahg::core
