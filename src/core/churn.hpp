#pragma once
// Machine-churn fault injection with SLRH mid-run recovery (DESIGN.md §8).
//
// The paper's grid is *ad hoc*: machines wander out of wireless range and
// die when batteries drain. This extension makes that happen mid-run. A
// Scenario carries per-machine presence windows (workload::generate_machine_
// churn draws them); run_slrh_with_churn drives the normal SLRH timestep
// loop between departures and, at the first timestep on or after each
// departure, performs the recovery the receding-horizon design makes cheap:
//
//   * the departed machine vanishes from the machine sweep (and with it from
//     every candidate pool the frontier/scan builds);
//   * its unfinished subtasks are ORPHANED — returned, unassigned, to the
//     pool, along with every mapped descendant (the mapping stays
//     ancestor-closed, so the independent validator still passes mid-run);
//   * its completed subtasks SURVIVE iff every output edge was already
//     satisfied — transmitted off-machine before the departure, consumed on
//     the same machine by a surviving child, or carrying zero bits;
//   * the remainder of its battery is forfeited (the machine walked away
//     with its charge) and already-spent energy stays spent for kept work;
//   * recovery then either re-maps orphans normally (Remap: primary versions
//     still compete) or pins them to their secondary versions (Degrade:
//     finish cheaply, spend the saved energy elsewhere).
//
// Static Max-Max, by contrast, never reacts: replay_static_under_churn
// evaluates its fixed schedule against the same presence windows and counts
// what actually completes — reproducing the paper's dynamic-vs-static
// argument under volatility.

#include <cstdint>
#include <vector>

#include "core/result.hpp"
#include "core/slrh.hpp"
#include "workload/scenario.hpp"

namespace ahg::core {

/// What to do with subtasks whose work a departure destroyed.
enum class ChurnRecovery : std::uint8_t {
  Remap,    ///< re-map normally; primary versions still compete for slots
  Degrade,  ///< pin invalidated subtasks to their secondary versions
};

const char* to_string(ChurnRecovery recovery) noexcept;

struct ChurnRunOutcome {
  MappingResult result;
  std::size_t departures_processed = 0;  ///< departures inside the window
  std::size_t orphaned = 0;     ///< unfinished subtasks returned to the pool
  std::size_t invalidated = 0;  ///< other subtasks whose work was lost
  double energy_forfeited = 0.0;  ///< battery stranded on departed machines
};

/// Run SLRH against the scenario's machine presence windows. With no windows
/// set this is exactly run_slrh — bit-identical schedules (asserted by
/// tests/test_churn.cpp). params.sink additionally receives departure /
/// join / orphan events with per-term objective deltas across each recovery.
/// params.secondary_only must be null (the driver owns the degrade mask).
ChurnRunOutcome run_slrh_with_churn(const workload::Scenario& scenario,
                                    const SlrhParams& params,
                                    ChurnRecovery recovery = ChurnRecovery::Remap);

/// What a fixed (churn-blind) schedule actually achieves under the
/// scenario's presence windows. A subtask completes iff it was assigned, its
/// machine was present for its whole execution, every parent completed, and
/// every data-carrying input either stayed on-machine (parent completed
/// there) or its transfer fell inside both endpoints' windows.
struct StaticChurnReplay {
  std::size_t completed = 0;       ///< subtasks that actually finish
  std::size_t t100_completed = 0;  ///< completed at the primary version
  Cycles aet = 0;                  ///< finish of the last completed subtask
  double tec = 0.0;  ///< energy of completed work + its delivered transfers
};

StaticChurnReplay replay_static_under_churn(const workload::Scenario& scenario,
                                            const sim::Schedule& schedule);

}  // namespace ahg::core
