#include "core/critical_path.hpp"

#include <algorithm>
#include <limits>
#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/comm.hpp"
#include "support/table.hpp"
#include "support/task_ledger.hpp"

namespace ahg::core {

const char* to_string(SegmentKind kind) noexcept {
  switch (kind) {
    case SegmentKind::Exec: return "exec";
    case SegmentKind::Transfer: return "transfer";
    case SegmentKind::QueueWait: return "queue-wait";
    case SegmentKind::HorizonWait: return "horizon-wait";
    case SegmentKind::ReleaseWait: return "release-wait";
    case SegmentKind::Recovery: return "recovery";
  }
  return "?";
}

namespace {

/// Precomputed lookup state shared by the per-terminal walks.
struct WalkContext {
  const workload::Scenario* scenario = nullptr;
  const sim::Schedule* schedule = nullptr;
  const std::vector<obs::TaskRecord>* records = nullptr;  ///< null: no ledger
  /// Per machine: (finish, task) of every assignment, ascending.
  std::vector<std::vector<std::pair<Cycles, TaskId>>> by_machine;
  /// Data-carrying cross-machine transfer per (parent, child) edge.
  std::unordered_map<std::uint64_t, const sim::CommEvent*> comms;
};

WalkContext make_context(const workload::Scenario& scenario,
                         const sim::Schedule& schedule,
                         const obs::TaskLedger* ledger,
                         std::vector<obs::TaskRecord>& record_storage) {
  WalkContext ctx;
  ctx.scenario = &scenario;
  ctx.schedule = &schedule;
  if (ledger != nullptr && ledger->num_tasks() == scenario.num_tasks()) {
    record_storage = ledger->records();
    ctx.records = &record_storage;
  }
  ctx.by_machine.resize(scenario.num_machines());
  const auto num_tasks = static_cast<TaskId>(scenario.num_tasks());
  for (TaskId t = 0; t < num_tasks; ++t) {
    if (!schedule.is_assigned(t)) continue;
    const auto& a = schedule.assignment(t);
    ctx.by_machine[static_cast<std::size_t>(a.machine)].push_back({a.finish, t});
  }
  for (auto& lane : ctx.by_machine) std::sort(lane.begin(), lane.end());
  for (const auto& ev : schedule.comm_events()) {
    ctx.comms.emplace(sim::edge_key(ev.from_task, ev.to_task), &ev);
  }
  return ctx;
}

/// The ledger record for `task`, but only when it describes THIS placement
/// (churn may leave a stale record for work that was later invalidated and
/// never remapped into the final schedule).
const obs::TaskRecord* matching_record(const WalkContext& ctx, TaskId task,
                                       const sim::Assignment& a) {
  if (ctx.records == nullptr) return nullptr;
  const obs::TaskRecord& r = (*ctx.records)[static_cast<std::size_t>(task)];
  if (r.attempts == 0 || r.machine != a.machine || r.exec_start != a.start ||
      r.exec_finish != a.finish) {
    return nullptr;
  }
  return &r;
}

/// Latest assignment finish <= cursor on `machine` (excluding `self`);
/// kInvalidTask when the machine was untouched before cursor.
std::pair<Cycles, TaskId> queue_predecessor(const WalkContext& ctx,
                                            MachineId machine, Cycles cursor,
                                            TaskId self) {
  const auto& lane = ctx.by_machine[static_cast<std::size_t>(machine)];
  auto it = std::upper_bound(
      lane.begin(), lane.end(),
      std::make_pair(cursor, std::numeric_limits<TaskId>::max()));
  while (it != lane.begin()) {
    --it;
    if (it->second != self) return *it;
  }
  return {-1, kInvalidTask};
}

/// One backward walk from `terminal`. Pushes segments newest-first, then
/// reverses, so the result is a chronological gap-free tiling of
/// [0, finish(terminal)).
CriticalPath walk_back(const WalkContext& ctx, TaskId terminal) {
  const workload::Scenario& scenario = *ctx.scenario;
  const sim::Schedule& schedule = *ctx.schedule;

  CriticalPath path;
  path.terminal = terminal;
  path.makespan = schedule.assignment(terminal).finish;

  TaskId t = terminal;
  Cycles cursor = path.makespan;
  // Each iteration consumes one exec window with a strictly smaller finish,
  // so |T| iterations always suffice; the cap is pure defence.
  const std::size_t cap = 4 * scenario.num_tasks() + 16;
  for (std::size_t iter = 0; iter < cap && cursor > 0; ++iter) {
    const auto& a = schedule.assignment(t);

    // Execution segment (truncated at the cursor, which equals a.finish on
    // every regular entry).
    const Cycles exec_start = std::min(a.start, cursor);
    path.segments.push_back(
        {SegmentKind::Exec, t, kInvalidTask, a.machine, exec_start, cursor});
    cursor = exec_start;
    if (cursor <= 0) break;

    // Binding constraints at this start.
    // A: latest input-data landing (cross-machine: the transfer's finish;
    // same-machine: the parent's finish). Zero-bit edges impose no data
    // constraint, so any parent event past the cursor is skipped.
    Cycles data_at = -1;
    TaskId data_parent = kInvalidTask;
    const sim::CommEvent* data_comm = nullptr;
    for (const TaskId parent : scenario.dag.parents(t)) {
      if (!schedule.is_assigned(parent)) continue;
      const auto& pa = schedule.assignment(parent);
      const sim::CommEvent* ce = nullptr;
      Cycles at = pa.finish;
      if (pa.machine != a.machine &&
          scenario.edge_bits(parent, t, pa.version) > 0.0) {
        const auto it = ctx.comms.find(sim::edge_key(parent, t));
        if (it != ctx.comms.end()) {
          ce = it->second;
          at = ce->finish;
        }
      }
      if (at > cursor) continue;  // not binding (zero-bit edge overlap)
      if (at > data_at || (at == data_at && parent < data_parent)) {
        data_at = at;
        data_parent = parent;
        data_comm = ce;
      }
    }
    // Q: the machine's own previous booking.
    const auto [queue_at, queue_task] = queue_predecessor(ctx, a.machine, cursor, t);
    // R: the subtask's arrival.
    const Cycles release_at = scenario.release(t);
    // C: the heuristic's admission clock, when the ledger pins it.
    const obs::TaskRecord* record = matching_record(ctx, t, a);
    const Cycles admitted_at = record != nullptr ? record->admitted_clock : -1;
    const bool churned =
        record != nullptr && record->orphan_count + record->invalidated_count > 0;

    const Cycles base =
        std::max({data_at, queue_at, release_at, Cycles{0}});

    // Tile the gap (base, cursor): time above every hard constraint. The
    // admission clock splits it into pre-admission (horizon/timestep
    // latency) and post-admission (booking/queue) halves; churn-afflicted
    // tasks charge the whole gap to recovery.
    if (base < cursor) {
      const auto wait_kind = [&](SegmentKind fallback) {
        return churned ? SegmentKind::Recovery : fallback;
      };
      if (admitted_at > base && admitted_at < cursor) {
        path.segments.push_back({wait_kind(SegmentKind::HorizonWait), t,
                                 kInvalidTask, a.machine, base, admitted_at});
        path.segments.push_back({wait_kind(SegmentKind::QueueWait), t,
                                 kInvalidTask, a.machine, admitted_at, cursor});
      } else if (admitted_at >= 0 && admitted_at <= base) {
        path.segments.push_back({wait_kind(SegmentKind::QueueWait), t,
                                 kInvalidTask, a.machine, base, cursor});
      } else {
        path.segments.push_back({wait_kind(SegmentKind::HorizonWait), t,
                                 kInvalidTask, a.machine, base, cursor});
      }
      cursor = base;
    }
    if (cursor <= 0) break;

    // Continue through the binding constraint; data first (the richest
    // chain), then the machine queue, then the release.
    if (data_at == base) {
      if (data_comm != nullptr) {
        path.segments.push_back({SegmentKind::Transfer, t, data_parent,
                                 a.machine, data_comm->start, cursor});
        cursor = data_comm->start;
        const Cycles parent_finish = schedule.assignment(data_parent).finish;
        if (parent_finish < cursor) {
          // The transfer could not depart at the parent's finish: tx/rx
          // channel contention (or an outage window).
          path.segments.push_back({churned ? SegmentKind::Recovery
                                           : SegmentKind::QueueWait,
                                   t, data_parent, a.machine, parent_finish,
                                   cursor});
          cursor = parent_finish;
        }
      }
      t = data_parent;
      continue;
    }
    if (queue_at == base) {
      t = queue_task;
      continue;
    }
    // Release-bound: nothing below the arrival to walk into.
    path.segments.push_back(
        {SegmentKind::ReleaseWait, t, kInvalidTask, a.machine, 0, cursor});
    cursor = 0;
    break;
  }
  if (cursor > 0) {
    // Defensive: the iteration cap fired. Keep the tiling invariant (sum of
    // durations == makespan) intact.
    path.segments.push_back(
        {SegmentKind::HorizonWait, t, kInvalidTask, kInvalidMachine, 0, cursor});
  }
  std::reverse(path.segments.begin(), path.segments.end());
  return path;
}

}  // namespace

CriticalPathReport analyze_critical_path(const workload::Scenario& scenario,
                                         const sim::Schedule& schedule,
                                         const obs::TaskLedger* ledger,
                                         std::size_t top_k) {
  CriticalPathReport report;
  if (schedule.num_assigned() == 0 || top_k == 0) return report;

  std::vector<obs::TaskRecord> record_storage;
  const WalkContext ctx = make_context(scenario, schedule, ledger, record_storage);

  std::vector<TaskId> terminals;
  const auto num_tasks = static_cast<TaskId>(scenario.num_tasks());
  for (TaskId t = 0; t < num_tasks; ++t) {
    if (schedule.is_assigned(t)) terminals.push_back(t);
  }
  std::sort(terminals.begin(), terminals.end(), [&](TaskId x, TaskId y) {
    const Cycles fx = schedule.assignment(x).finish;
    const Cycles fy = schedule.assignment(y).finish;
    if (fx != fy) return fx > fy;
    return x < y;
  });
  if (terminals.size() > top_k) terminals.resize(top_k);

  for (const TaskId terminal : terminals) {
    report.paths.push_back(walk_back(ctx, terminal));
  }
  report.makespan = report.paths.front().makespan;

  for (const PathSegment& seg : report.paths.front().segments) {
    CategoryShare* share = nullptr;
    switch (seg.kind) {
      case SegmentKind::Exec: share = &report.exec; break;
      case SegmentKind::Transfer: share = &report.comm; break;
      case SegmentKind::Recovery: share = &report.recovery; break;
      case SegmentKind::QueueWait:
      case SegmentKind::HorizonWait:
      case SegmentKind::ReleaseWait: share = &report.wait; break;
    }
    share->cycles += seg.duration();

    if (seg.machine != kInvalidMachine) {
      auto it = std::find_if(report.per_machine.begin(), report.per_machine.end(),
                             [&](const MachineAttribution& m) {
                               return m.machine == seg.machine;
                             });
      if (it == report.per_machine.end()) {
        report.per_machine.push_back({seg.machine, 0, 0, 0, 0});
        it = std::prev(report.per_machine.end());
      }
      switch (seg.kind) {
        case SegmentKind::Exec: it->exec += seg.duration(); break;
        case SegmentKind::Transfer: it->comm += seg.duration(); break;
        case SegmentKind::Recovery: it->recovery += seg.duration(); break;
        default: it->wait += seg.duration(); break;
      }
    }
  }
  std::sort(report.per_machine.begin(), report.per_machine.end(),
            [](const MachineAttribution& x, const MachineAttribution& y) {
              return x.machine < y.machine;
            });
  if (report.makespan > 0) {
    const auto total = static_cast<double>(report.makespan);
    report.exec.fraction = static_cast<double>(report.exec.cycles) / total;
    report.comm.fraction = static_cast<double>(report.comm.cycles) / total;
    report.wait.fraction = static_cast<double>(report.wait.cycles) / total;
    report.recovery.fraction = static_cast<double>(report.recovery.cycles) / total;
  }
  return report;
}

void write_critical_path_report(std::ostream& os, const CriticalPathReport& report) {
  if (report.paths.empty()) {
    os << "critical path: no assignments\n";
    return;
  }
  const CriticalPath& main = report.paths.front();
  os << "critical path: terminal t" << main.terminal << ", makespan "
     << report.makespan << " cycles ("
     << format_fixed(seconds_from_cycles(report.makespan), 1) << " s), "
     << main.segments.size() << " segments\n";

  TextTable segments({"start", "finish", "dur", "kind", "task", "detail"},
                     {Align::Right, Align::Right, Align::Right, Align::Left,
                      Align::Left, Align::Left});
  for (const PathSegment& seg : main.segments) {
    segments.begin_row();
    segments.cell(static_cast<long long>(seg.start));
    segments.cell(static_cast<long long>(seg.finish));
    segments.cell(static_cast<long long>(seg.duration()));
    segments.cell(std::string(to_string(seg.kind)));
    segments.cell("t" + std::to_string(seg.task));
    std::string detail;
    if (seg.machine != kInvalidMachine) detail += "m" + std::to_string(seg.machine);
    if (seg.parent != kInvalidTask) {
      if (!detail.empty()) detail += " ";
      detail += "from t" + std::to_string(seg.parent);
    }
    segments.cell(std::move(detail));
  }
  segments.render(os);

  os << "\nmakespan attribution:\n";
  TextTable attribution({"category", "cycles", "share"},
                        {Align::Left, Align::Right, Align::Right});
  const auto row = [&](const char* name, const CategoryShare& share) {
    attribution.begin_row();
    attribution.cell(std::string(name));
    attribution.cell(static_cast<long long>(share.cycles));
    attribution.cell(format_fixed(share.fraction * 100.0, 1) + "%");
  };
  row("exec", report.exec);
  row("comm", report.comm);
  row("wait", report.wait);
  row("recovery", report.recovery);
  attribution.render(os);

  if (!report.per_machine.empty()) {
    os << "\nper machine (makespan path):\n";
    TextTable machines({"machine", "exec", "comm", "wait", "recovery"},
                       {Align::Left, Align::Right, Align::Right, Align::Right,
                        Align::Right});
    for (const MachineAttribution& m : report.per_machine) {
      machines.begin_row();
      machines.cell("m" + std::to_string(m.machine));
      machines.cell(static_cast<long long>(m.exec));
      machines.cell(static_cast<long long>(m.comm));
      machines.cell(static_cast<long long>(m.wait));
      machines.cell(static_cast<long long>(m.recovery));
    }
    machines.render(os);
  }

  if (report.paths.size() > 1) {
    os << "\nrunner-up paths:\n";
    for (std::size_t i = 1; i < report.paths.size(); ++i) {
      const CriticalPath& p = report.paths[i];
      os << "  #" << i + 1 << "  terminal t" << p.terminal << ", finish "
         << p.makespan << " cycles, " << p.segments.size() << " segments\n";
    }
  }
}

}  // namespace ahg::core
