#pragma once
// DAG critical-path analyzer and makespan attribution (paper Fig. 6/7
// forensics): starting from the makespan-defining completion, walk the
// schedule BACKWARDS through the binding constraint at every step —
//
//   exec          the task's own execution window
//   transfer      the cross-machine input transfer that gated its start
//   queue-wait    the machine (or channel) was busy with other work
//   horizon-wait  data/machine were free but the heuristic had not admitted
//                 the task yet (receding-horizon / timestep latency; with a
//                 TaskLedger attached the admission clock splits the gap
//                 exactly, without one the gap defaults here)
//   release-wait  the subtask had not arrived yet
//   recovery      wait attributable to churn (the task was orphaned or
//                 invalidated at least once, per the ledger)
//
// — yielding a chronological, gap-free segment chain covering [0, finish)
// whose integer cycle durations sum EXACTLY to the terminal's finish time.
// For the makespan path (paths[0]) that is the application makespan, which
// makes the per-category attribution an exact decomposition: exec + comm +
// wait + recovery == makespan, fractions sum to 1.
//
// The analyzer is read-only and deterministic; the ledger is optional and
// only sharpens wait classification (null ledger ⇒ same segments, with
// horizon-wait absorbing the unexplained gaps).

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sim/schedule.hpp"
#include "support/units.hpp"
#include "workload/scenario.hpp"

namespace ahg::obs {
class TaskLedger;
}  // namespace ahg::obs

namespace ahg::core {

enum class SegmentKind : std::uint8_t {
  Exec,
  Transfer,
  QueueWait,
  HorizonWait,
  ReleaseWait,
  Recovery,
};

const char* to_string(SegmentKind kind) noexcept;

struct PathSegment {
  SegmentKind kind = SegmentKind::Exec;
  TaskId task = kInvalidTask;      ///< the task waiting / executing
  TaskId parent = kInvalidTask;    ///< transfer segments: the producer
  MachineId machine = kInvalidMachine;
  Cycles start = 0;
  Cycles finish = 0;  ///< exclusive

  Cycles duration() const noexcept { return finish - start; }
};

/// One backward walk: chronological (oldest-first) segments tiling
/// [0, makespan) with no gaps or overlaps.
struct CriticalPath {
  TaskId terminal = kInvalidTask;
  Cycles makespan = 0;  ///< the terminal's finish time
  std::vector<PathSegment> segments;
};

struct CategoryShare {
  Cycles cycles = 0;
  double fraction = 0.0;  ///< of the makespan path's total
};

struct MachineAttribution {
  MachineId machine = kInvalidMachine;
  Cycles exec = 0;
  Cycles comm = 0;
  Cycles wait = 0;
  Cycles recovery = 0;
};

struct CriticalPathReport {
  /// Top-k paths ordered by terminal finish descending (ties: smaller task
  /// id). paths[0] — when any task is assigned — is the makespan path.
  std::vector<CriticalPath> paths;
  Cycles makespan = 0;

  /// Exact decomposition of paths[0]: exec + comm + wait + recovery ==
  /// makespan. "comm" is transfer time; "wait" merges queue / horizon /
  /// release waits; "recovery" is churn-attributed wait.
  CategoryShare exec;
  CategoryShare comm;
  CategoryShare wait;
  CategoryShare recovery;

  /// Per-machine split of paths[0] (only machines appearing on the path).
  std::vector<MachineAttribution> per_machine;
};

/// Analyze a finished (or partial) schedule. `ledger` may be null — see the
/// header comment; `top_k` bounds the number of backward walks.
CriticalPathReport analyze_critical_path(const workload::Scenario& scenario,
                                         const sim::Schedule& schedule,
                                         const obs::TaskLedger* ledger = nullptr,
                                         std::size_t top_k = 3);

/// Human-readable report: the makespan path's segment chain, the category
/// attribution table (fractions summing to 100%), the per-machine split,
/// and one summary line per runner-up path.
void write_critical_path_report(std::ostream& os, const CriticalPathReport& report);

}  // namespace ahg::core
