#include "core/feasibility.hpp"

#include "core/scenario_cache.hpp"
#include "sim/comm.hpp"

namespace ahg::core {

double worst_case_outgoing_energy(const workload::Scenario& scenario, TaskId task,
                                  MachineId machine, VersionKind version) {
  const auto& spec = scenario.grid.machine(machine);
  double total = 0.0;
  for (const TaskId child : scenario.dag.children(task)) {
    const double bits = scenario.edge_bits(task, child, version);
    if (bits <= 0.0) continue;
    const Cycles wc = sim::worst_case_transfer_cycles(bits, spec, scenario.grid);
    total += sim::transfer_energy(spec, wc);
  }
  return total;
}

double exec_energy(const workload::Scenario& scenario, TaskId task, MachineId machine,
                   VersionKind version) {
  const Cycles duration = scenario.exec_cycles(task, machine, version);
  return scenario.grid.machine(machine).compute_energy(duration);
}

bool version_fits_energy(const workload::Scenario& scenario,
                         const sim::Schedule& schedule, TaskId task,
                         MachineId machine, VersionKind version) {
  const double need = exec_energy(scenario, task, machine, version) +
                      worst_case_outgoing_energy(scenario, task, machine, version);
  return need <= schedule.energy().available(machine) + kEnergyFitEps;
}

bool version_fits_energy(const ScenarioCache& cache, const sim::Schedule& schedule,
                         TaskId task, MachineId machine, VersionKind version) {
  return cache.energy_need(task, machine, version) <=
         schedule.energy().available(machine) + kEnergyFitEps;
}

bool parents_assigned(const workload::Scenario& scenario, const sim::Schedule& schedule,
                      TaskId task) {
  for (const TaskId parent : scenario.dag.parents(task)) {
    if (!schedule.is_assigned(parent)) return false;
  }
  return true;
}

bool slrh_pool_admissible(const workload::Scenario& scenario,
                          const sim::Schedule& schedule, TaskId task,
                          MachineId machine) {
  return classify_slrh_admission(scenario, schedule, task, machine) ==
         AdmissionOutcome::Admissible;
}

const char* to_string(AdmissionOutcome outcome) {
  switch (outcome) {
    case AdmissionOutcome::Admissible: return "admissible";
    case AdmissionOutcome::AlreadyAssigned: return "already_assigned";
    case AdmissionOutcome::ParentsUnassigned: return "parents_unassigned";
    case AdmissionOutcome::EnergyInfeasible: return "energy_infeasible";
  }
  return "?";
}

AdmissionOutcome classify_slrh_admission(const workload::Scenario& scenario,
                                         const sim::Schedule& schedule, TaskId task,
                                         MachineId machine) {
  if (schedule.is_assigned(task)) return AdmissionOutcome::AlreadyAssigned;
  if (!parents_assigned(scenario, schedule, task)) {
    return AdmissionOutcome::ParentsUnassigned;
  }
  if (!version_fits_energy(scenario, schedule, task, machine, VersionKind::Secondary)) {
    return AdmissionOutcome::EnergyInfeasible;
  }
  return AdmissionOutcome::Admissible;
}

}  // namespace ahg::core
