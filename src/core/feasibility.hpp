#pragma once
// Energy feasibility rules (paper §IV).
//
// SLRH candidate-pool admission requires: (a) every parent of the subtask is
// already mapped, and (b) enough energy remains on the target machine for the
// subtask to execute at the SECONDARY version AND communicate all resulting
// data items in the worst case — i.e. assuming every child lands across the
// lowest-bandwidth link in the grid. Max-Max applies the same rule but
// assesses each version independently (so both versions of the same subtask
// can sit in the pool simultaneously).

#include "sim/schedule.hpp"
#include "support/units.hpp"
#include "support/version.hpp"
#include "workload/scenario.hpp"

namespace ahg::core {

class ScenarioCache;

/// Slack added to the available-energy side of every admission comparison
/// (need <= available + eps): absorbs the accumulated rounding of the
/// energy-need sums. Exposed so batch admission (core/scoring.hpp) performs
/// the bit-identical comparison.
inline constexpr double kEnergyFitEps = 1e-9;

/// Worst-case energy the target machine would need to send all of the
/// subtask's output data items, assuming every child is mapped across the
/// grid's lowest-bandwidth link.
double worst_case_outgoing_energy(const workload::Scenario& scenario, TaskId task,
                                  MachineId machine, VersionKind version);

/// Energy drawn from `machine`'s battery to execute (task, version) there.
double exec_energy(const workload::Scenario& scenario, TaskId task, MachineId machine,
                   VersionKind version);

/// True iff the machine's AVAILABLE energy (capacity - spent - reserved)
/// covers executing (task, version) plus the worst-case outgoing
/// communication for that version.
bool version_fits_energy(const workload::Scenario& scenario,
                         const sim::Schedule& schedule, TaskId task,
                         MachineId machine, VersionKind version);

/// Cache-aware form: the energy need is read from the precomputed table
/// instead of re-derived from the DAG. Bit-identical verdicts (the table is
/// built by the exact uncached expression).
bool version_fits_energy(const ScenarioCache& cache, const sim::Schedule& schedule,
                         TaskId task, MachineId machine, VersionKind version);

/// True iff every parent of `task` is already assigned in `schedule`.
bool parents_assigned(const workload::Scenario& scenario, const sim::Schedule& schedule,
                      TaskId task);

/// SLRH pool admission: parents assigned AND the secondary version fits.
/// Defined as classify_slrh_admission(...) == Admissible — the classifying
/// form is the single source of truth, so the boolean and telemetry paths
/// can never drift.
bool slrh_pool_admissible(const workload::Scenario& scenario,
                          const sim::Schedule& schedule, TaskId task,
                          MachineId machine);

/// Why a subtask was (or was not) admitted to an SLRH candidate pool — the
/// rejection reasons the decision trace records. The checks run in the same
/// order slrh_pool_admissible short-circuits them, so the first failing rule
/// is the reported reason.
enum class AdmissionOutcome : std::uint8_t {
  Admissible,
  AlreadyAssigned,
  ParentsUnassigned,
  EnergyInfeasible,  ///< secondary version + worst-case comms exceed budget
};

const char* to_string(AdmissionOutcome outcome);

AdmissionOutcome classify_slrh_admission(const workload::Scenario& scenario,
                                         const sim::Schedule& schedule, TaskId task,
                                         MachineId machine);

}  // namespace ahg::core
