#include "core/frontier.hpp"

#include <algorithm>

#include "support/contract.hpp"
#include "support/task_ledger.hpp"

namespace ahg::core {

ReadyFrontier::ReadyFrontier(const workload::Scenario& scenario,
                             const sim::Schedule& schedule)
    : scenario_(&scenario) {
  const std::size_t n = scenario.num_tasks();
  AHG_EXPECTS_MSG(schedule.num_tasks() == n, "schedule/scenario task count mismatch");
  unassigned_parents_.resize(n, 0);
  released_.assign(n, 0);
  assigned_.assign(n, 0);
  release_order_.resize(n);
  // Worst-case capacity up front (4 bytes/task): the sorted-insert hot path
  // never reallocates, and ready() spans stay valid across a whole pool
  // build even as wide DAG levels release thousands of tasks at once.
  ready_.reserve(n);

  const auto num_tasks = static_cast<TaskId>(n);
  for (TaskId t = 0; t < num_tasks; ++t) {
    release_order_[static_cast<std::size_t>(t)] = t;
    assigned_[static_cast<std::size_t>(t)] = schedule.is_assigned(t) ? 1 : 0;
    std::uint32_t missing = 0;
    for (const TaskId parent : scenario.dag.parents(t)) {
      if (!schedule.is_assigned(parent)) ++missing;
    }
    unassigned_parents_[static_cast<std::size_t>(t)] = missing;
  }
  std::sort(release_order_.begin(), release_order_.end(),
            [&scenario](TaskId a, TaskId b) {
              const Cycles ra = scenario.release(a);
              const Cycles rb = scenario.release(b);
              if (ra != rb) return ra < rb;
              return a < b;
            });
}

void ReadyFrontier::advance_to(Cycles clock) {
  if (ledger_ != nullptr && clock > clock_) clock_ = clock;
  while (cursor_ < release_order_.size() &&
         scenario_->release(release_order_[cursor_]) <= clock) {
    const TaskId t = release_order_[cursor_];
    released_[static_cast<std::size_t>(t)] = 1;
    if (ledger_ != nullptr) ledger_->on_released(t, scenario_->release(t));
    if (assigned_[static_cast<std::size_t>(t)] != 0) {
      ++assigned_released_;
    } else if (unassigned_parents_[static_cast<std::size_t>(t)] == 0) {
      insert_ready(t);
    }
    ++cursor_;
  }
}

void ReadyFrontier::on_commit(TaskId task) {
  const auto i = static_cast<std::size_t>(task);
  ++revision_;
  AHG_EXPECTS_MSG(task >= 0 && i < assigned_.size(), "task id out of range");
  AHG_EXPECTS_MSG(assigned_[i] == 0, "task committed twice");
  assigned_[i] = 1;
  if (released_[i] != 0) {
    ++assigned_released_;
    const auto it = std::lower_bound(ready_.begin(), ready_.end(), task);
    AHG_EXPECTS_MSG(it != ready_.end() && *it == task,
                    "committed task was not on the ready list");
    ready_.erase(it);
  }
  for (const TaskId child : scenario_->dag.children(task)) {
    const auto c = static_cast<std::size_t>(child);
    AHG_EXPECTS_MSG(unassigned_parents_[c] > 0, "parent count underflow");
    if (--unassigned_parents_[c] == 0 && released_[c] != 0 && assigned_[c] == 0) {
      insert_ready(child);
    }
  }
}

void ReadyFrontier::insert_ready(TaskId task) {
  ++revision_;
  ready_.insert(std::lower_bound(ready_.begin(), ready_.end(), task), task);
  // on_commit carries no clock; the last advance_to clock is the tick a
  // commit-unblocked child actually became ready at.
  if (ledger_ != nullptr) ledger_->on_frontier_ready(task, clock_);
}

}  // namespace ahg::core
