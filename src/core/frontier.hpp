#pragma once
// Incremental ready-task frontier for the clock-driven SLRH driver.
//
// The machine-independent part of SLRH pool admission — released, not yet
// assigned, every parent assigned — changes only when the clock advances past
// a release time or a placement commits. Instead of re-probing all |T|
// subtasks per (machine, timestep), a ReadyFrontier maintains that set
// incrementally: a release-time-sorted cursor advanced with the clock, a
// per-task unassigned-parent count decremented on commit, and a ready list
// kept sorted by task id (the scan order of the original full pass, so pools
// built from it are bit-identical to scan-built pools).
//
// The frontier also keeps the admission tallies the decision trace reports
// (unreleased / already-assigned / parents-unassigned) as running counters,
// so the telemetry path needs no per-task probes either.
//
// Invariants (asserted by tests/test_frontier.cpp against brute force):
//   ready() == { t : release(t) <= clock, !assigned(t), parents assigned }
//   num_unreleased() == |{ t : release(t) > clock }|
//   num_assigned_released() == |{ t : release(t) <= clock, assigned(t) }|
//   num_parents_blocked() == |{ t : release(t) <= clock, !assigned(t),
//                                  some parent unassigned }|

#include <cstdint>
#include <span>
#include <vector>

#include "sim/schedule.hpp"
#include "support/units.hpp"
#include "workload/scenario.hpp"

namespace ahg::obs {
class TaskLedger;
}  // namespace ahg::obs

namespace ahg::core {

class ReadyFrontier {
 public:
  /// Initialise from the schedule's CURRENT state (the driver may resume an
  /// existing, partially filled schedule — the machine-loss extension does).
  /// No task is released until advance_to() is called.
  ReadyFrontier(const workload::Scenario& scenario, const sim::Schedule& schedule);

  /// Optional task-major lifecycle ledger (not owned, may be null — the
  /// default changes nothing). With a ledger attached, advance_to records a
  /// released transition per newly released task (stamped with its RELEASE
  /// time) and every ready-list insertion records a frontier-ready
  /// transition at the frontier's current clock.
  void set_ledger(obs::TaskLedger* ledger) noexcept { ledger_ = ledger; }

  /// Release every task with release(t) <= clock. Monotone: the clock never
  /// moves backwards, so calls with a smaller clock are no-ops.
  void advance_to(Cycles clock);

  /// Record a committed placement: the task leaves the ready list and each
  /// child's unassigned-parent count drops (children whose count reaches
  /// zero join the ready list if already released). Must be called for every
  /// commit the driver makes, immediately after it.
  void on_commit(TaskId task);

  /// Released, unassigned tasks whose parents are all assigned, sorted by
  /// ascending task id.
  std::span<const TaskId> ready() const noexcept { return ready_; }

  /// Monotone counter bumped on every commit and on every ready-list
  /// insertion (releases and commit-unblocked children alike). Two equal
  /// revisions bracket a window in which the ready set — the
  /// machine-independent half of pool admission — did not change; the sweep
  /// accelerator (core/sweep.hpp) tags its cached verdicts with it.
  std::uint64_t revision() const noexcept { return revision_; }

  std::size_t num_unreleased() const noexcept {
    return release_order_.size() - cursor_;
  }
  std::size_t num_assigned_released() const noexcept { return assigned_released_; }
  std::size_t num_parents_blocked() const noexcept {
    return cursor_ - assigned_released_ - ready_.size();
  }

 private:
  void insert_ready(TaskId task);

  const workload::Scenario* scenario_;
  obs::TaskLedger* ledger_ = nullptr;
  Cycles clock_ = 0;  ///< last advance_to clock (ledger timestamps only)
  std::vector<TaskId> release_order_;  ///< all tasks, sorted by (release, id)
  std::size_t cursor_ = 0;             ///< first index not yet released
  std::vector<std::uint32_t> unassigned_parents_;
  std::vector<std::uint8_t> released_;
  std::vector<std::uint8_t> assigned_;
  std::vector<TaskId> ready_;
  std::size_t assigned_released_ = 0;
  std::uint64_t revision_ = 0;
};

}  // namespace ahg::core
