#include "core/heuristics.hpp"

namespace ahg::core {

std::string to_string(HeuristicKind kind) {
  switch (kind) {
    case HeuristicKind::Slrh1: return "SLRH-1";
    case HeuristicKind::Slrh2: return "SLRH-2";
    case HeuristicKind::Slrh3: return "SLRH-3";
    case HeuristicKind::MaxMax: return "Max-Max";
  }
  return "?";
}

std::vector<HeuristicKind> reported_heuristics() {
  return {HeuristicKind::Slrh1, HeuristicKind::Slrh3, HeuristicKind::MaxMax};
}

std::vector<HeuristicKind> all_heuristics() {
  return {HeuristicKind::Slrh1, HeuristicKind::Slrh2, HeuristicKind::Slrh3,
          HeuristicKind::MaxMax};
}

MappingResult run_heuristic(HeuristicKind kind, const workload::Scenario& scenario,
                            const Weights& weights, const SlrhClock& clock,
                            AetSign aet_sign, obs::Sink* sink,
                            const ScenarioCache* cache,
                            obs::FlightRecorder* recorder,
                            obs::TaskLedger* ledger) {
  switch (kind) {
    case HeuristicKind::Slrh1:
    case HeuristicKind::Slrh2:
    case HeuristicKind::Slrh3: {
      SlrhParams params;
      params.variant = kind == HeuristicKind::Slrh1   ? SlrhVariant::V1
                       : kind == HeuristicKind::Slrh2 ? SlrhVariant::V2
                                                      : SlrhVariant::V3;
      params.weights = weights;
      params.dt = clock.dt;
      params.horizon = clock.horizon;
      params.aet_sign = aet_sign;
      params.sink = sink;
      params.cache = cache;
      params.recorder = recorder;
      params.ledger = ledger;
      return run_slrh(scenario, params);
    }
    case HeuristicKind::MaxMax: {
      MaxMaxParams params;
      params.weights = weights;
      params.aet_sign = aet_sign;
      params.sink = sink;
      params.cache = cache;
      params.recorder = recorder;
      params.ledger = ledger;
      return run_maxmax(scenario, params);
    }
  }
  throw PreconditionError("unknown heuristic kind");
}

}  // namespace ahg::core
