#pragma once
// Uniform handle over the four evaluated heuristics (paper §V):
// SLRH-1, SLRH-2, SLRH-3 and the static Max-Max baseline.

#include <cstdint>
#include <string>
#include <vector>

#include "core/maxmax.hpp"
#include "core/result.hpp"
#include "core/slrh.hpp"
#include "workload/scenario.hpp"

namespace ahg::core {

enum class HeuristicKind : std::uint8_t { Slrh1, Slrh2, Slrh3, MaxMax };

std::string to_string(HeuristicKind kind);

/// The heuristics the paper carries through its final comparison (SLRH-2 is
/// dropped after §VII's weight study because it rarely achieves a complete
/// feasible mapping).
std::vector<HeuristicKind> reported_heuristics();

/// All four heuristics, including SLRH-2.
std::vector<HeuristicKind> all_heuristics();

/// Clock parameters shared by the SLRH variants (ignored by Max-Max).
struct SlrhClock {
  Cycles dt = 10;       ///< paper's selected timestep
  Cycles horizon = 100; ///< paper's selected receding horizon
};

/// Run any heuristic on a scenario with the given objective weights.
/// `sink` (not owned, may be null) receives the run's decision events and
/// feeds phase metrics — see SlrhParams::sink for the null-sink contract.
/// `cache` (not owned, may be null) supplies shared precomputed
/// pure-scenario tables; null makes each run build its own. Supply one when
/// running the same scenario many times (the tuner, the Lagrangian loop) —
/// it must have been built from `scenario` and is read-only here, so one
/// instance may serve concurrent callers. `recorder` (not owned, may be
/// null) samples per-timestep / per-round obs::Frames — see
/// SlrhParams::recorder for the null-recorder contract. `ledger` (not
/// owned, may be null) records per-subtask lifecycle transitions — see
/// SlrhParams::ledger for the null-ledger contract.
MappingResult run_heuristic(HeuristicKind kind, const workload::Scenario& scenario,
                            const Weights& weights, const SlrhClock& clock = {},
                            AetSign aet_sign = AetSign::Reward,
                            obs::Sink* sink = nullptr,
                            const ScenarioCache* cache = nullptr,
                            obs::FlightRecorder* recorder = nullptr,
                            obs::TaskLedger* ledger = nullptr);

}  // namespace ahg::core
