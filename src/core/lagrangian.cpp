#include "core/lagrangian.hpp"

#include <algorithm>
#include <cmath>

#include "core/scenario_cache.hpp"
#include "support/contract.hpp"

namespace ahg::core {

void LagrangianParams::validate() const {
  AHG_EXPECTS_MSG(max_iterations >= 1, "need at least one iteration");
  AHG_EXPECTS_MSG(initial_step > 0.0, "step must be positive");
  AHG_EXPECTS_MSG(step_decay >= 0.0, "decay must be non-negative");
  AHG_EXPECTS_MSG(energy_target > 0.0 && energy_target <= 1.0,
                  "energy target must be in (0, 1]");
  AHG_EXPECTS_MSG(lambda_energy0 >= 0.0 && lambda_time0 >= 0.0,
                  "multipliers must be non-negative");
}

namespace {

Weights weights_from_multipliers(double lambda_energy, double lambda_time) {
  const double denom = 1.0 + lambda_energy + lambda_time;
  return Weights::make(1.0 / denom, lambda_energy / denom);
}

}  // namespace

LagrangianOutcome run_lagrangian_iteration(const workload::Scenario& scenario,
                                           const LagrangianParams& params) {
  params.validate();
  scenario.validate();

  LagrangianOutcome outcome;
  double lambda_energy = params.lambda_energy0;
  double lambda_time = params.lambda_time0;
  const double tse = scenario.grid.total_system_energy();

  // Pure-scenario tables shared by every inner run — the multiplier updates
  // change only the weights, never the scenario.
  const ScenarioCache cache(scenario);

  for (std::size_t k = 0; k < params.max_iterations; ++k) {
    const Weights weights = weights_from_multipliers(lambda_energy, lambda_time);
    // The time multiplier prices LATENESS: the gamma term must penalize.
    const MappingResult run =
        run_heuristic(params.inner, scenario, weights, params.clock,
                      AetSign::Penalize, /*sink=*/nullptr, &cache);
    ++outcome.runs;

    LagrangianIterate iterate;
    iterate.iteration = k;
    iterate.lambda_energy = lambda_energy;
    iterate.lambda_time = lambda_time;
    iterate.weights = weights;
    iterate.t100 = run.t100;
    iterate.aet = run.aet;
    iterate.feasible = run.feasible();
    outcome.trajectory.push_back(iterate);

    if (run.feasible() && (!outcome.found || run.t100 > outcome.best.t100)) {
      outcome.found = true;
      outcome.best = run;
      outcome.best_weights = weights;
    }

    // Projected subgradient step on the relaxed constraints.
    const double step =
        params.initial_step / (1.0 + params.step_decay * static_cast<double>(k));
    const double g_time =
        run.complete
            ? static_cast<double>(run.aet) / static_cast<double>(scenario.tau) - 1.0
            : 1.0;  // incomplete: the deadline bound binds, price it harder
    const double g_energy = run.tec / tse - params.energy_target;

    const double new_lambda_time = std::max(0.0, lambda_time + step * g_time);
    const double new_lambda_energy = std::max(0.0, lambda_energy + step * g_energy);

    if (std::abs(new_lambda_time - lambda_time) < 1e-6 &&
        std::abs(new_lambda_energy - lambda_energy) < 1e-6) {
      lambda_time = new_lambda_time;
      lambda_energy = new_lambda_energy;
      outcome.converged = true;
      break;
    }
    lambda_time = new_lambda_time;
    lambda_energy = new_lambda_energy;
  }
  return outcome;
}

}  // namespace ahg::core
