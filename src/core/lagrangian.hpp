#pragma once
// Lagrangian multiplier iteration — the NON-simplified counterpart of SLRH.
//
// "Simplified" in SLRH means the Lagrangian multipliers are held constant
// for the whole run (paper §IV), with the admission that this yields "a less
// optimal mapping". The paper's §II lineage (Luh & Hoitomt's Lagrangian
// relaxation, the LRNN of Luh et al. [LuZ00]) and its §VIII conclusion (the
// multipliers "require adjustment") both point at iteratively adjusted
// multipliers. This module implements that: a projected-subgradient outer
// loop that prices the relaxed constraints and re-runs the inner heuristic
// until the mapping is feasible and T100 stops improving.
//
// Formulation. The relaxed problem is
//
//   max  T100/|T|  -  lambda_E * TEC/TSE  -  lambda_T * (AET/tau - 1)
//
// with lambda_E, lambda_T >= 0 pricing the energy and deadline constraints.
// Dividing by (1 + lambda_E + lambda_T) maps any multiplier pair onto the
// paper's normalised weight simplex:
//
//   alpha = 1/(1+lE+lT),  beta = lE/(1+lE+lT),  gamma = lT/(1+lE+lT)
//
// where the gamma term must act as a lateness PENALTY (AetSign::Penalize) —
// this is the genuine Lagrangian role of the time multiplier, as opposed to
// the reward sign the paper chose for its constant-weight heuristic.
//
// Multiplier update (projected subgradient with diminishing step):
//
//   lambda_T <- max(0, lambda_T + step_k * g_T),
//     g_T = AET/tau - 1            for a complete mapping,
//     g_T = +1                     when the mapping is incomplete
//                                  (the deadline bound, priced harder);
//   lambda_E <- max(0, lambda_E + step_k * (TEC/TSE - energy_target)).
//
// The iteration keeps the best FEASIBLE mapping seen (max T100) and stops on
// convergence (no multiplier movement) or after max_iterations.

#include <vector>

#include "core/heuristics.hpp"
#include "core/result.hpp"
#include "workload/scenario.hpp"

namespace ahg::core {

struct LagrangianParams {
  HeuristicKind inner = HeuristicKind::Slrh1;  ///< the inner mapping heuristic
  SlrhClock clock{};
  std::size_t max_iterations = 30;
  double initial_step = 0.5;
  /// Step decay: step_k = initial_step / (1 + decay * k).
  double step_decay = 0.3;
  /// Fraction of TSE the energy constraint is priced against (1.0 = the hard
  /// bound; lower values price energy thrift like the paper's beta term).
  double energy_target = 1.0;
  double lambda_energy0 = 0.2;
  double lambda_time0 = 0.2;

  void validate() const;
};

struct LagrangianIterate {
  std::size_t iteration = 0;
  double lambda_energy = 0.0;
  double lambda_time = 0.0;
  Weights weights;         ///< the normalised weights used this iteration
  std::size_t t100 = 0;
  Cycles aet = 0;
  bool feasible = false;
};

struct LagrangianOutcome {
  bool found = false;        ///< at least one feasible iterate
  MappingResult best;        ///< best feasible mapping (max T100)
  Weights best_weights;      ///< weights of the best iterate
  std::size_t runs = 0;      ///< inner heuristic invocations
  bool converged = false;    ///< multipliers stopped moving before the cap
  std::vector<LagrangianIterate> trajectory;
};

/// Run the multiplier iteration on one scenario. Deterministic.
LagrangianOutcome run_lagrangian_iteration(const workload::Scenario& scenario,
                                           const LagrangianParams& params = {});

}  // namespace ahg::core
