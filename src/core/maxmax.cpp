#include "core/maxmax.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <set>
#include <tuple>
#include <vector>

#include "core/feasibility.hpp"
#include "core/placement.hpp"
#include "core/scenario_cache.hpp"
#include "core/scoring.hpp"
#include "support/flight_recorder.hpp"
#include "support/profile.hpp"
#include "support/stopwatch.hpp"
#include "support/task_ledger.hpp"

namespace ahg::core {

namespace {

struct Triplet {
  TaskId task = kInvalidTask;
  MachineId machine = kInvalidMachine;
  VersionKind version = VersionKind::Primary;
  double score = 0.0;
  Cycles finish_est = 0;

  bool valid() const noexcept { return task != kInvalidTask; }

  /// Deterministic "is better" ordering: higher score wins; score ties break
  /// toward the earliest estimated finish (the standard list-scheduling
  /// secondary criterion — without it, flat objective regions would stack
  /// every subtask on machine 0 by id order), then task id, machine id, and
  /// primary before secondary.
  bool better_than(const Triplet& other) const noexcept {
    if (!other.valid()) return true;
    if (score != other.score) return score > other.score;
    if (finish_est != other.finish_est) return finish_est < other.finish_est;
    if (task != other.task) return task < other.task;
    if (machine != other.machine) return machine < other.machine;
    return version == VersionKind::Primary && other.version == VersionKind::Secondary;
  }
};

}  // namespace

MappingResult run_maxmax(const workload::Scenario& scenario, const MaxMaxParams& params) {
  params.validate();
  scenario.validate();
  const Stopwatch timer;

  auto schedule = make_schedule(scenario);
  const ObjectiveTotals totals = objective_totals(scenario);

  // Precomputed pure-scenario tables (admission energies, execution cycles,
  // per-task minimum execution cycles). Built by the exact uncached
  // expressions, so reading them changes no decision; legacy_scan forces the
  // original on-demand derivations for diff tests.
  std::optional<ScenarioCache> local_cache;
  const ScenarioCache* cache = nullptr;
  if (!params.legacy_scan) {
    cache = params.cache;
    if (cache == nullptr) {
      local_cache.emplace(scenario);
      cache = &*local_cache;
    }
  }
  const auto num_tasks = static_cast<TaskId>(scenario.num_tasks());
  const auto num_machines = static_cast<MachineId>(scenario.num_machines());

  // Telemetry handles, all null when no sink is attached (see SlrhParams for
  // the null-sink contract). Resolved once, outside the selection loop.
  obs::MetricsRegistry* metrics =
      params.sink != nullptr ? params.sink->metrics() : nullptr;
  obs::Histogram* select_hist = obs::phase_histogram(metrics, "maxmax.select_seconds");
  obs::Counter* rounds_counter =
      metrics != nullptr ? &metrics->counter("maxmax.rounds") : nullptr;
  obs::Counter* maps_counter =
      metrics != nullptr ? &metrics->counter("maxmax.map_decisions") : nullptr;
  const bool trace_maps =
      params.sink != nullptr && params.sink->wants(obs::EventKind::MapDecision);
  obs::FlightRecorder* recorder = params.recorder;

  if (params.sink != nullptr && params.sink->wants(obs::EventKind::RunBegin)) {
    obs::Event event;
    event.kind = obs::EventKind::RunBegin;
    event.heuristic = "Max-Max";
    event.alpha = params.weights.alpha;
    event.beta = params.weights.beta;
    event.gamma = params.weights.gamma;
    event.note = "|T|=" + std::to_string(scenario.num_tasks()) +
                 ", machines=" + std::to_string(scenario.num_machines()) +
                 ", tau=" + std::to_string(scenario.tau);
    params.sink->emit(event);
  }

  MappingResult result;

  // Frontier maintenance: tasks whose parents are all mapped but which are
  // themselves unmapped.
  std::vector<std::size_t> unmapped_parents(scenario.num_tasks(), 0);
  std::vector<TaskId> frontier;
  for (TaskId t = 0; t < num_tasks; ++t) {
    unmapped_parents[static_cast<std::size_t>(t)] = scenario.dag.parents(t).size();
    if (unmapped_parents[static_cast<std::size_t>(t)] == 0) frontier.push_back(t);
  }

  // Task-ledger milestones (clock-free heuristic: transition clocks carry
  // the selection round; releases carry the scenario's real release times —
  // the clairvoyant baseline sees every subtask up front, at round 0).
  obs::TaskLedger* ledger = params.ledger;
  if (ledger != nullptr) {
    for (TaskId t = 0; t < num_tasks; ++t) {
      ledger->on_released(t, scenario.release(t));
    }
    for (const TaskId t : frontier) ledger->on_frontier_ready(t, 0);
  }

  // Deadline admission is CRITICAL-PATH AWARE: a candidate may finish no
  // later than tau minus the cheapest possible execution of its longest
  // descendant chain (each descendant at its secondary version on its
  // fastest machine — a necessary condition for the rest of the DAG to
  // remain completable). Without this lookahead, the greedy packs slow
  // machines with primaries right up to tau and every descendant of those
  // last placements is strangled; no non-degenerate weight choice can then
  // produce a complete mapping, contradicting the paper's reported Max-Max
  // performance (see DESIGN.md §4). tail[i] is precomputed bottom-up.
  std::vector<Cycles> tail(scenario.num_tasks(), 0);
  if (params.enforce_tau) {
    const auto order = scenario.dag.topological_order();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const TaskId t = *it;
      Cycles min_exec = std::numeric_limits<Cycles>::max();
      if (cache != nullptr) {
        min_exec = cache->min_exec_cycles(t, VersionKind::Secondary);
      } else {
        for (MachineId j = 0; j < num_machines; ++j) {
          min_exec = std::min(min_exec, scenario.exec_cycles(t, j, VersionKind::Secondary));
        }
      }
      for (const TaskId parent : scenario.dag.parents(t)) {
        tail[static_cast<std::size_t>(parent)] =
            std::max(tail[static_cast<std::size_t>(parent)],
                     min_exec + tail[static_cast<std::size_t>(t)]);
      }
    }
  }

  // Triplets whose EXACT placement overshot the deadline budget this round
  // (the cheap finish estimate ignores communication delays, so an
  // estimate-feasible pick can still plan past it; exclusions reset per
  // commit because every commit changes the schedule).
  std::set<std::tuple<TaskId, MachineId, VersionKind>> excluded;

  const double run_t0 = recorder != nullptr ? recorder->now_seconds() : 0.0;

  while (!schedule->complete()) {
    ++result.iterations;
    ++result.pools_built;
    if (rounds_counter != nullptr) rounds_counter->add();
    const double round_t0 = recorder != nullptr ? recorder->now_seconds() : 0.0;
    const auto pool_size = static_cast<std::uint64_t>(frontier.size());
    if (ledger != nullptr) {
      // The whole frontier IS the candidate pool each round; first sighting
      // only (machine unknown until selection).
      const auto round = static_cast<Cycles>(result.iterations);
      for (const TaskId t : frontier) ledger->on_pooled(t, round, kInvalidMachine);
    }

    Triplet best;
    PlacementPlan best_plan;
    {
    obs::ProfileScope select_scope(select_hist);
    for (;;) {
      best = Triplet{};
      for (const TaskId task : frontier) {
        // Data-arrival lower bound: a pure function of the task's (already
        // committed) parents, hoisted out of the machine x version sweep.
        Cycles arrival_lb = scenario.release(task);
        for (const TaskId parent : scenario.dag.parents(task)) {
          arrival_lb = std::max(arrival_lb, schedule->assignment(parent).finish);
        }
        for (MachineId machine = 0; machine < num_machines; ++machine) {
          for (const VersionKind version :
               {VersionKind::Primary, VersionKind::Secondary}) {
            if (excluded.contains({task, machine, version})) continue;
            const bool fits =
                cache != nullptr
                    ? version_fits_energy(*cache, *schedule, task, machine, version)
                    : version_fits_energy(scenario, *schedule, task, machine,
                                          version);
            if (!fits) continue;
            // Hole-aware finish estimate: earliest-fit (served by the
            // timeline's ordered hole index) from the latest parent finish —
            // Max-Max backfills, so an append-style "ready + exec" estimate
            // would misprice every candidate once any machine has a late
            // booking.
            const Cycles exec = cache != nullptr
                                    ? cache->exec_cycles(task, machine, version)
                                    : scenario.exec_cycles(task, machine, version);
            const Cycles start_est =
                schedule->compute_timeline(machine).earliest_fit(arrival_lb, exec);
            const Cycles finish_est = start_est + exec;
            if (params.enforce_tau &&
                finish_est + tail[static_cast<std::size_t>(task)] > scenario.tau) {
              continue;
            }
            const double score =
                cache != nullptr
                    ? score_candidate_with_finish(*cache, scenario, *schedule,
                                                  params.weights, totals, task,
                                                  machine, version, finish_est,
                                                  params.aet_sign)
                    : score_candidate_with_finish(scenario, *schedule,
                                                  params.weights, totals, task,
                                                  machine, version, finish_est,
                                                  params.aet_sign);
            const Triplet triplet{task, machine, version, score, finish_est};
            if (triplet.better_than(best)) best = triplet;
          }
        }
      }
      if (!best.valid()) break;
      best_plan = plan_placement(scenario, *schedule, best.task, best.machine,
                                 best.version, /*not_before=*/0);
      if (!params.enforce_tau ||
          best_plan.finish() + tail[static_cast<std::size_t>(best.task)] <=
              scenario.tau) {
        break;
      }
      // The exact plan (communication included) overshoots tau: exclude this
      // triplet and re-select.
      excluded.insert({best.task, best.machine, best.version});
    }
    }  // select_scope

    if (!best.valid()) {  // no feasible pair remains: stuck
      if (params.sink != nullptr && params.sink->wants(obs::EventKind::Stall)) {
        obs::Event event;
        event.kind = obs::EventKind::Stall;
        event.heuristic = "Max-Max";
        event.note = std::to_string(scenario.num_tasks() -
                                    static_cast<std::size_t>(
                                        schedule->num_assigned())) +
                     " subtasks unmapped, no feasible pair remains";
        params.sink->emit(event);
      }
      break;
    }

    if (maps_counter != nullptr) maps_counter->add();
    if (trace_maps) {
      // Term breakdown against the PRE-commit schedule, evaluated at the
      // same finish estimate the selection scored.
      const ObjectiveTerms terms = score_candidate_terms_with_finish(
          scenario, *schedule, params.weights, totals, best.task, best.machine,
          best.version, best.finish_est, params.aet_sign);
      obs::Event event;
      event.kind = obs::EventKind::MapDecision;
      event.heuristic = "Max-Max";
      event.clock = static_cast<Cycles>(result.iterations);  // selection round
      event.machine = best.machine;
      event.task = best.task;
      event.version = best.version;
      event.score = best.score;
      event.terms = {terms.t100, terms.tec, terms.aet, terms.value};
      event.start = best_plan.start;
      event.finish = best_plan.finish();
      event.pool_size = frontier.size();
      params.sink->emit(event);
    }

    commit_placement(scenario, *schedule, best_plan);
    excluded.clear();
    if (ledger != nullptr) {
      record_placement(*ledger, *schedule, best_plan,
                       static_cast<Cycles>(result.iterations));
    }

    // Update the frontier.
    frontier.erase(std::find(frontier.begin(), frontier.end(), best.task));
    for (const TaskId child : scenario.dag.children(best.task)) {
      if (--unmapped_parents[static_cast<std::size_t>(child)] == 0) {
        frontier.push_back(child);
        if (ledger != nullptr) {
          ledger->on_frontier_ready(child, static_cast<Cycles>(result.iterations));
        }
      }
    }
    std::sort(frontier.begin(), frontier.end());

    if (recorder != nullptr) {
      // One frame per selection round; Max-Max has no simulation clock, so
      // frame.clock carries the round index (matching the event stream).
      const auto round = static_cast<Cycles>(result.iterations);
      const double now = recorder->now_seconds();
      recorder->add_span("select", round_t0, now - round_t0, round, best.machine);
      obs::Frame frame;
      frame.heuristic = "Max-Max";
      frame.clock = round;
      frame.wall_seconds = now;
      frame.timestep_seconds = now - round_t0;
      frame.pool_build_seconds = now - round_t0;  // the round IS the selection
      const ObjectiveTerms terms = objective_terms(
          params.weights,
          ObjectiveState{schedule->t100(), schedule->tec(), schedule->aet()},
          totals, params.aet_sign);
      frame.term_t100 = terms.t100;
      frame.term_tec = terms.tec;
      frame.term_aet = terms.aet;
      frame.objective = terms.value;
      frame.assigned = schedule->num_assigned();
      frame.t100 = schedule->t100();
      frame.tec = schedule->tec();
      frame.aet = schedule->aet();
      frame.pools_built = 1;
      frame.maps = 1;
      frame.last_pool_size = pool_size;
      frame.frontier_ready = frontier.size();
      const sim::EnergyLedger& energy = schedule->energy();
      for (MachineId m = 0; m < num_machines; ++m) {
        const double capacity = energy.capacity(m);
        frame.battery_fraction.push_back(
            capacity > 0.0 ? energy.available(m) / capacity : 0.0);
        frame.busy_until.push_back(schedule->machine_ready(m));
      }
      recorder->record(std::move(frame));
    }
  }

  if (recorder != nullptr) {
    recorder->add_span("run:Max-Max", run_t0, recorder->now_seconds() - run_t0);
  }

  result.wall_seconds = timer.seconds();
  result.complete = schedule->complete();
  result.assigned = schedule->num_assigned();
  result.t100 = schedule->t100();
  result.aet = schedule->aet();
  result.tec = schedule->tec();
  result.within_tau = schedule->aet() <= scenario.tau;
  result.schedule = std::move(schedule);

  if (params.sink != nullptr && params.sink->wants(obs::EventKind::RunEnd)) {
    obs::Event event;
    event.kind = obs::EventKind::RunEnd;
    event.heuristic = "Max-Max";
    event.alpha = params.weights.alpha;
    event.beta = params.weights.beta;
    event.gamma = params.weights.gamma;
    event.t100 = result.t100;
    event.assigned = result.assigned;
    event.aet = result.aet;
    event.feasible = result.feasible();
    event.wall_seconds = result.wall_seconds;
    params.sink->emit(event);
  }
  return result;
}

}  // namespace ahg::core
