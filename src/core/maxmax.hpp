#pragma once
// The Max-Max static baseline heuristic (paper §V), modelled on the
// Min-Min family of Ibarra & Kim [IbK77] but maximising the same global
// objective function the SLRH variants use.
//
// At every round: build the pool U of feasible subtask/version pairs —
// parents mapped, and EACH version independently energy-feasible under the
// worst-case communication rule (both versions of the same subtask may sit
// in U simultaneously). For each machine, find the pair giving the maximum
// objective increase; across machines, commit the best triplet. A triplet
// may be scheduled before the machine's availability time if a sufficiently
// large hole exists in its schedule (earliest-fit placement honours
// precedence and communication constraints). Repeat until every subtask is
// mapped or no feasible pair remains.
//
// Being static (offline), Max-Max has no clock, no timestep, and no horizon:
// it sees the whole frontier at once and may backfill arbitrarily.

#include "core/objective.hpp"
#include "core/result.hpp"
#include "support/event_log.hpp"
#include "workload/scenario.hpp"

namespace ahg::obs {
class FlightRecorder;
class TaskLedger;
}  // namespace ahg::obs

namespace ahg::core {

class ScenarioCache;

struct MaxMaxParams {
  Weights weights = Weights::make(0.5, 0.1);
  AetSign aet_sign = AetSign::Reward;
  /// Deadline awareness: candidates whose placement would finish after tau
  /// are dropped from the pool. The paper's offline baseline must behave
  /// this way to reach its reported performance — with the positive-gamma
  /// objective, nothing else ever prefers the secondary version on a slow
  /// machine, so a deadline-blind Max-Max overshoots tau at every
  /// non-degenerate weight choice and the tuner can only certify
  /// all-secondary mappings (see DESIGN.md §4). Disable for the ablation
  /// bench that demonstrates exactly that failure mode.
  bool enforce_tau = true;

  /// Optional observability sink (not owned). Null — the default — takes the
  /// exact pre-telemetry code path (no events, no clock reads, bit-identical
  /// schedules). With a sink attached the run emits run_begin/run_end, one
  /// map-decision event per committed triplet (objective-term breakdown
  /// included), and a stall event when the heuristic gets stuck with
  /// subtasks still unmapped; selection-round time feeds
  /// "maxmax.select_seconds" in sink->metrics() when present.
  obs::Sink* sink = nullptr;

  /// Optional flight recorder (not owned; same null contract as `sink`).
  /// Max-Max is clock-free, so one obs::Frame is sampled per SELECTION ROUND
  /// (frame.clock = round index) plus a "select" span per round; the
  /// recorder only observes.
  obs::FlightRecorder* recorder = nullptr;

  /// Optional task-major lifecycle ledger (not owned; same null contract as
  /// `recorder`). Max-Max is clock-free, so transition clocks carry the
  /// 1-based selection round index (matching frame.clock); release times are
  /// still the scenario's real release cycles. See SlrhParams::ledger.
  obs::TaskLedger* ledger = nullptr;

  /// Optional precomputed pure-scenario tables (not owned). Null — the
  /// default — makes the run build its own; supply one to amortise the
  /// build across many runs on the same scenario (the tuner does). Ignored
  /// when legacy_scan is set.
  const ScenarioCache* cache = nullptr;

  /// Diff baseline for tests: re-derive admission energies, execution
  /// cycles, and critical-path tails on demand instead of reading the
  /// tables. Bit-identical schedules either way (asserted by
  /// tests/test_determinism.cpp).
  bool legacy_scan = false;

  void validate() const { weights.validate(); }
};

MappingResult run_maxmax(const workload::Scenario& scenario, const MaxMaxParams& params);

}  // namespace ahg::core
