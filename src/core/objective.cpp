#include "core/objective.hpp"

#include <sstream>

namespace ahg::core {

std::string Weights::str() const {
  std::ostringstream oss;
  oss << "(alpha=" << alpha << ", beta=" << beta << ", gamma=" << gamma << ")";
  return oss.str();
}

double objective_value(const Weights& weights, const ObjectiveState& state,
                       const ObjectiveTotals& totals, AetSign aet_sign) {
  AHG_EXPECTS_MSG(totals.num_tasks > 0, "objective needs |T| > 0");
  AHG_EXPECTS_MSG(totals.tse > 0.0, "objective needs TSE > 0");
  AHG_EXPECTS_MSG(totals.tau > 0, "objective needs tau > 0");
  const double t100_term =
      static_cast<double>(state.t100) / static_cast<double>(totals.num_tasks);
  const double tec_term = state.tec / totals.tse;
  const double aet_term =
      static_cast<double>(state.aet) / static_cast<double>(totals.tau);
  return weights.alpha * t100_term - weights.beta * tec_term +
         static_cast<double>(static_cast<int>(aet_sign)) * weights.gamma * aet_term;
}

ObjectiveTerms objective_terms(const Weights& weights, const ObjectiveState& state,
                               const ObjectiveTotals& totals, AetSign aet_sign) {
  ObjectiveTerms terms;
  terms.t100 = weights.alpha * (static_cast<double>(state.t100) /
                                static_cast<double>(totals.num_tasks));
  terms.tec = weights.beta * (state.tec / totals.tse);
  terms.aet = static_cast<double>(static_cast<int>(aet_sign)) * weights.gamma *
              (static_cast<double>(state.aet) / static_cast<double>(totals.tau));
  terms.value = objective_value(weights, state, totals, aet_sign);
  return terms;
}

}  // namespace ahg::core
