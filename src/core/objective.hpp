#pragma once
// The global objective function (paper §IV):
//
//   ObjFn(a, b, g) = a * T100/|T|  -  b * TEC/TSE  +  g * AET/tau
//
// with a + b + g = 1 and each weight in [0, 1]. Every term is normalised to
// [0, 1] (for feasible mappings), so the objective itself stays in [-1, 1].
// The hard constraints on total system energy and execution time appear only
// as soft biases here — feasibility is enforced separately (candidate-pool
// admission and post-hoc tau check).
//
// The sign of the AET term is POSITIVE by default: the paper found that a
// negative sign produced very short-AET solutions with correspondingly lower
// T100, and explicitly chose + to encourage use of all available time. The
// negative variant is retained as an ablation knob (AetSign::Penalize).

#include <string>

#include "support/contract.hpp"
#include "support/units.hpp"

namespace ahg::core {

enum class AetSign : int { Reward = +1, Penalize = -1 };

struct Weights {
  double alpha = 0.0;  ///< weight on T100/|T|
  double beta = 0.0;   ///< weight on TEC/TSE (entering negatively)
  double gamma = 0.0;  ///< weight on AET/tau

  /// Construct with gamma = 1 - alpha - beta (the paper's convention: only
  /// two weights are free).
  static Weights make(double alpha, double beta) {
    Weights w{alpha, beta, 1.0 - alpha - beta};
    w.validate();
    return w;
  }

  void validate() const {
    constexpr double eps = 1e-9;
    AHG_EXPECTS_MSG(alpha >= -eps && alpha <= 1.0 + eps, "alpha must be in [0,1]");
    AHG_EXPECTS_MSG(beta >= -eps && beta <= 1.0 + eps, "beta must be in [0,1]");
    AHG_EXPECTS_MSG(gamma >= -eps && gamma <= 1.0 + eps, "gamma must be in [0,1]");
    const double sum = alpha + beta + gamma;
    AHG_EXPECTS_MSG(sum > 1.0 - 1e-6 && sum < 1.0 + 1e-6, "weights must sum to 1");
  }

  std::string str() const;
};

/// Scenario-level normalisation constants for the objective.
struct ObjectiveTotals {
  std::size_t num_tasks = 0;  ///< |T|
  double tse = 0.0;           ///< total system energy, sum of B(j)
  Cycles tau = 0;             ///< AET constraint in cycles
};

/// Snapshot of the quantities the objective scores.
struct ObjectiveState {
  std::size_t t100 = 0;
  double tec = 0.0;
  Cycles aet = 0;
};

/// Evaluate ObjFn for a (possibly hypothetical) state.
double objective_value(const Weights& weights, const ObjectiveState& state,
                       const ObjectiveTotals& totals,
                       AetSign aet_sign = AetSign::Reward);

/// The three weighted objective terms, individually — what the decision
/// trace records so a mapping choice can be explained after the fact
/// (ISSUE: observability). `value` is computed with the exact expression
/// objective_value uses, so the two never disagree.
struct ObjectiveTerms {
  double t100 = 0.0;  ///< alpha * T100/|T|
  double tec = 0.0;   ///< beta * TEC/TSE (enters the objective negatively)
  double aet = 0.0;   ///< gamma * AET/tau, sign applied
  double value = 0.0; ///< t100 - tec + aet
};

ObjectiveTerms objective_terms(const Weights& weights, const ObjectiveState& state,
                               const ObjectiveTotals& totals,
                               AetSign aet_sign = AetSign::Reward);

}  // namespace ahg::core
