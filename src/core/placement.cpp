#include "core/placement.hpp"

#include <algorithm>
#include <map>
#include <optional>

#include "core/feasibility.hpp"
#include "sim/comm.hpp"
#include "support/contract.hpp"
#include "support/task_ledger.hpp"

namespace ahg::core {

std::shared_ptr<sim::Schedule> make_schedule(const workload::Scenario& scenario) {
  auto schedule =
      std::make_shared<sim::Schedule>(scenario.grid, scenario.num_tasks());
  for (const auto& outage : scenario.link_outages) {
    schedule->block_channels(outage.machine, outage.start, outage.duration);
  }
  return schedule;
}

PlacementPlan plan_placement(const workload::Scenario& scenario,
                             const sim::Schedule& schedule, TaskId task,
                             MachineId machine, VersionKind version,
                             Cycles not_before) {
  AHG_EXPECTS_MSG(!schedule.is_assigned(task), "planning an already-assigned task");
  AHG_EXPECTS_MSG(not_before >= 0, "not_before must be non-negative");

  PlacementPlan plan;
  plan.task = task;
  plan.machine = machine;
  plan.version = version;
  plan.duration = scenario.exec_cycles(task, machine, version);
  plan.exec_energy = exec_energy(scenario, task, machine, version);

  // Release gate: execution may not start before the subtask's arrival.
  // Input transfers MAY pre-stage data earlier (the data exists as soon as
  // the parent finishes; the release gates the subtask itself).
  const Cycles release = scenario.release(task);

  // Sort parents by id for a deterministic transfer-scheduling order.
  std::vector<TaskId> parents(scenario.dag.parents(task).begin(),
                              scenario.dag.parents(task).end());
  std::sort(parents.begin(), parents.end());

  // Overlay copies: transfers planned for earlier parents occupy channel
  // time that later parents must respect, without touching the real state.
  // The rx overlay is copied lazily — a candidate with no cross-machine
  // data-carrying parent (every root, and most same-machine chains) never
  // pays for the copy.
  std::optional<sim::Timeline> rx_overlay;
  std::map<MachineId, sim::Timeline> tx_overlays;

  Cycles arrival = 0;
  for (const TaskId parent : parents) {
    AHG_EXPECTS_MSG(schedule.is_assigned(parent), "parent not yet assigned");
    const auto& pa = schedule.assignment(parent);
    const double bits = scenario.edge_bits(parent, task, pa.version);
    if (pa.machine == machine || bits <= 0.0) {
      // Same-machine (free, instantaneous) or empty edge: data is available
      // the moment the parent finishes.
      arrival = std::max(arrival, pa.finish);
      if (bits > 0.0) plan.released_parents.push_back(parent);
      continue;
    }
    const auto& sender = scenario.grid.machine(pa.machine);
    const auto& receiver = scenario.grid.machine(machine);
    const Cycles dur = sim::transfer_cycles(bits, sender, receiver);
    auto [it, inserted] = tx_overlays.try_emplace(pa.machine);
    if (inserted) it->second = schedule.tx_timeline(pa.machine);
    sim::Timeline& tx_overlay = it->second;
    if (!rx_overlay.has_value()) rx_overlay = schedule.rx_timeline(machine);

    const Cycles earliest = std::max(not_before, pa.finish);
    const Cycles start =
        sim::Timeline::earliest_fit_pair(tx_overlay, *rx_overlay, earliest, dur);
    tx_overlay.insert(start, dur);
    rx_overlay->insert(start, dur);

    CommPlan comm;
    comm.parent = parent;
    comm.from_machine = pa.machine;
    comm.start = start;
    comm.duration = dur;
    comm.bits = bits;
    comm.energy = sim::transfer_energy(sender, dur);
    plan.comms.push_back(comm);
    arrival = std::max(arrival, start + dur);
  }

  plan.arrival = arrival;
  plan.start = schedule.compute_timeline(machine).earliest_fit(
      std::max({not_before, arrival, release}), plan.duration);
  return plan;
}

void commit_placement(const workload::Scenario& scenario, sim::Schedule& schedule,
                      const PlacementPlan& plan) {
  AHG_EXPECTS_MSG(plan.task != kInvalidTask && plan.machine != kInvalidMachine,
                  "committing an empty plan");

  for (const auto& comm : plan.comms) {
    // add_comm settles the parent's per-edge worst-case reservation (the
    // actual charge can never exceed it — same sender, shorter-or-equal
    // duration).
    schedule.add_comm(comm.parent, plan.task, comm.from_machine, plan.machine,
                      comm.start, comm.duration, comm.bits, comm.energy);
  }
  for (const TaskId parent : plan.released_parents) {
    // Data stayed on the parent's machine: no transfer, no energy; drop the
    // worst-case hold.
    schedule.ledger().release(sim::edge_key(parent, plan.task));
  }

  schedule.add_assignment(plan.task, plan.machine, plan.version, plan.start,
                          plan.duration, plan.exec_energy);

  // Reserve worst-case outgoing energy for each data-carrying child edge.
  const auto& spec = scenario.grid.machine(plan.machine);
  for (const TaskId child : scenario.dag.children(plan.task)) {
    const double bits = scenario.edge_bits(plan.task, child, plan.version);
    if (bits <= 0.0) continue;
    const Cycles wc = sim::worst_case_transfer_cycles(bits, spec, scenario.grid);
    schedule.ledger().reserve(plan.machine, sim::edge_key(plan.task, child),
                              sim::transfer_energy(spec, wc));
  }
}

void record_placement(obs::TaskLedger& ledger, const sim::Schedule& schedule,
                      const PlacementPlan& plan, Cycles decision_clock) {
  obs::TaskPlacementSample sample;
  sample.task = plan.task;
  sample.machine = plan.machine;
  sample.version = plan.version == VersionKind::Primary ? std::int8_t{0}
                                                        : std::int8_t{1};
  sample.decision_clock = decision_clock;
  sample.arrival = plan.arrival;
  sample.start = plan.start;
  sample.finish = plan.finish();
  sample.inputs.reserve(plan.comms.size() + plan.released_parents.size());
  for (const CommPlan& comm : plan.comms) {
    sample.inputs.push_back(
        {comm.parent, comm.from_machine, comm.start, comm.start + comm.duration});
  }
  for (const TaskId parent : plan.released_parents) {
    const Cycles handoff = schedule.assignment(parent).finish;
    sample.inputs.push_back({parent, plan.machine, handoff, handoff});
  }
  ledger.on_placement(std::move(sample));
}

}  // namespace ahg::core
