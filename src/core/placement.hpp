#pragma once
// Placement planning and committing.
//
// plan_placement() answers, WITHOUT mutating the schedule: "if (task,
// version) were mapped to this machine with no action earlier than
// `not_before`, when would its inputs arrive, when could it start, and what
// would everything cost?" It schedules each incoming transfer on the
// parent's tx channel and the target's rx channel (one outgoing and one
// incoming transfer at a time per machine — paper assumptions (b)/(c)),
// honouring existing bookings through overlay copies of the affected
// timelines.
//
// commit_placement() applies a plan: records transfers (settling the
// parents' worst-case energy reservations), records the computation, and
// reserves worst-case outgoing-communication energy for the task's own
// children (paper §IV's conservative feasibility rule — see DESIGN.md §4).
//
// SLRH passes not_before = current clock ("the program would not allow the
// scheduler to look backward in time"); Max-Max passes 0 and naturally
// exploits schedule holes because planning uses earliest-fit searches.

#include <memory>
#include <vector>

#include "sim/schedule.hpp"
#include "support/units.hpp"
#include "support/version.hpp"
#include "workload/scenario.hpp"

namespace ahg::obs {
class TaskLedger;
}  // namespace ahg::obs

namespace ahg::core {

struct CommPlan {
  TaskId parent = kInvalidTask;
  MachineId from_machine = kInvalidMachine;
  Cycles start = 0;
  Cycles duration = 0;
  double bits = 0.0;
  double energy = 0.0;
};

struct PlacementPlan {
  TaskId task = kInvalidTask;
  MachineId machine = kInvalidMachine;
  VersionKind version = VersionKind::Primary;
  Cycles start = 0;
  Cycles duration = 0;
  Cycles arrival = 0;  ///< when the last input lands on the machine
  double exec_energy = 0.0;
  std::vector<CommPlan> comms;  ///< cross-machine transfers (bits > 0 only)
  /// Parents whose edge carried data but needs no transfer (same machine):
  /// their worst-case reservations are released on commit.
  std::vector<TaskId> released_parents;

  Cycles finish() const noexcept { return start + duration; }
  double comm_energy() const noexcept {
    double total = 0.0;
    for (const auto& c : comms) total += c.energy;
    return total;
  }
};

/// Plan (task, version) on `machine`, all actions at or after `not_before`;
/// execution additionally starts no earlier than the subtask's release time
/// (input transfers may pre-stage data before the release).
/// Requires: task unassigned, every parent assigned.
PlacementPlan plan_placement(const workload::Scenario& scenario,
                             const sim::Schedule& schedule, TaskId task,
                             MachineId machine, VersionKind version,
                             Cycles not_before);

/// Construct a schedule for a scenario with the scenario's link outages
/// pre-booked on the tx/rx channels (so every placement plans around them).
/// All heuristic runners build their schedules through this.
std::shared_ptr<sim::Schedule> make_schedule(const workload::Scenario& scenario);

/// Apply a plan produced by plan_placement() against the SAME schedule state
/// (no intervening mutations). Charges energy, books timelines, settles the
/// parents' reservations, and reserves worst-case outgoing energy for the
/// task's children. The caller must have verified version_fits_energy().
void commit_placement(const workload::Scenario& scenario, sim::Schedule& schedule,
                      const PlacementPlan& plan);

/// Record a just-committed plan into the task ledger: the admitted /
/// transfer / executing / completed transitions plus one causal input edge
/// per parent (timed cross-machine transfers from plan.comms; instantaneous
/// same-machine handoffs at the parent's finish from plan.released_parents).
/// Call AFTER commit_placement, against the same schedule. Pure observation.
void record_placement(obs::TaskLedger& ledger, const sim::Schedule& schedule,
                      const PlacementPlan& plan, Cycles decision_clock);

}  // namespace ahg::core
