#pragma once
// Outcome of one heuristic run on one scenario.

#include <memory>

#include "sim/schedule.hpp"
#include "support/units.hpp"

namespace ahg::core {

struct MappingResult {
  /// Every subtask received an assignment.
  bool complete = false;
  /// AET <= tau. Energy feasibility is guaranteed by construction (the
  /// ledger rejects overdraws), so complete && within_tau == fully feasible.
  bool within_tau = false;

  std::size_t t100 = 0;     ///< subtasks mapped at primary version
  std::size_t assigned = 0; ///< subtasks mapped at all
  Cycles aet = 0;           ///< application execution time, cycles
  double tec = 0.0;         ///< total energy consumed

  /// Heuristic execution (wall-clock) time in seconds — the quantity
  /// Figures 6 and 7 report.
  double wall_seconds = 0.0;

  /// Diagnostics: clock sweeps executed (SLRH) or selection rounds
  /// (Max-Max), and candidate pools constructed.
  std::size_t iterations = 0;
  std::size_t pools_built = 0;
  /// (machine, timestep) scopes the sweep accelerator skipped via a cached
  /// cross-tick verdict instead of rebuilding the pool (SLRH only; see
  /// SlrhParams::pool_reuse). pools_built + pools_reused is the serial
  /// path's scope count for variant 1.
  std::size_t pools_reused = 0;
  /// Speculative pools discarded because a commit intervened between the
  /// parallel fan-out and the machine's serial turn (see
  /// SlrhParams::sweep_parallel).
  std::size_t spec_aborted = 0;

  /// The full schedule, for validation / trace export. Shared so results can
  /// be copied cheaply by the experiment harness.
  std::shared_ptr<const sim::Schedule> schedule;

  bool feasible() const noexcept { return complete && within_tau; }
};

}  // namespace ahg::core
