#include "core/robustness.hpp"

#include <algorithm>
#include <vector>

#include "core/placement.hpp"
#include "support/contract.hpp"
#include "support/distributions.hpp"
#include "support/rng.hpp"

namespace ahg::core {

void NoiseParams::validate() const {
  AHG_EXPECTS_MSG(cv > 0.0, "noise cv must be positive");
  AHG_EXPECTS_MSG(bias > 0.0, "noise bias must be positive");
  AHG_EXPECTS_MSG(min_factor > 0.0 && min_factor < max_factor,
                  "noise truncation must be a valid positive interval");
}

workload::Scenario perturb_etc(const workload::Scenario& scenario,
                               const NoiseParams& params, std::uint64_t seed) {
  params.validate();
  scenario.validate();
  Rng rng(seed);
  const GammaDist factor_dist = GammaDist::from_mean_cv(params.bias, params.cv);

  workload::Scenario actual = scenario;
  for (std::size_t i = 0; i < scenario.num_tasks(); ++i) {
    for (std::size_t j = 0; j < scenario.num_machines(); ++j) {
      const double factor = sample_truncated_gamma(rng, factor_dist,
                                                   params.min_factor,
                                                   params.max_factor);
      const auto task = static_cast<TaskId>(i);
      const auto machine = static_cast<MachineId>(j);
      actual.etc.set_seconds(task, machine,
                             scenario.etc.seconds(task, machine) * factor);
    }
  }
  actual.validate();
  return actual;
}

ReplayResult replay_with_actuals(const workload::Scenario& estimated,
                                 const workload::Scenario& actual,
                                 const sim::Schedule& schedule) {
  estimated.validate();
  actual.validate();
  AHG_EXPECTS_MSG(actual.num_tasks() == estimated.num_tasks() &&
                      actual.num_machines() == estimated.num_machines(),
                  "estimated/actual scenario shape mismatch");
  AHG_EXPECTS_MSG(schedule.complete(), "replay requires a complete mapping");

  ReplayResult result;
  result.planned_aet = schedule.aet();

  // Dispatch order: original start times. This is simultaneously (a) each
  // machine's queue order and (b) a topological order of the DAG (a parent
  // always started strictly before its children in a valid schedule).
  std::vector<TaskId> order;
  order.reserve(estimated.num_tasks());
  for (TaskId t = 0; t < static_cast<TaskId>(estimated.num_tasks()); ++t) {
    order.push_back(t);
  }
  std::sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    const Cycles sa = schedule.assignment(a).start;
    const Cycles sb = schedule.assignment(b).start;
    if (sa != sb) return sa < sb;
    return a < b;
  });

  auto replay = make_schedule(actual);  // outages pre-booked
  std::vector<Cycles> machine_cursor(actual.num_machines(), 0);
  std::vector<double> demand(actual.num_machines(), 0.0);

  for (const TaskId task : order) {
    const auto& original = schedule.assignment(task);
    const MachineId machine = original.machine;

    // Plan with the ACTUAL durations, appended after this machine's
    // previously replayed work (dispatch order is preserved; timing floats).
    const PlacementPlan plan =
        plan_placement(actual, *replay, task, machine, original.version,
                       machine_cursor[static_cast<std::size_t>(machine)]);

    // Energy guard: the replan never reserves ahead; it charges as it goes
    // and stops the moment any battery would be overdrawn ("the machine
    // died mid-application"). Demand is aggregated PER MACHINE before the
    // decision: two transfers drawn from one source — or a transfer plus
    // the execution on the same machine — must jointly fit its remaining
    // battery, not merely each fit the same pre-charge availability.
    demand.assign(demand.size(), 0.0);
    demand[static_cast<std::size_t>(machine)] += plan.exec_energy;
    for (const auto& comm : plan.comms) {
      demand[static_cast<std::size_t>(comm.from_machine)] += comm.energy;
    }
    bool fits = true;
    for (std::size_t j = 0; j < demand.size(); ++j) {
      if (demand[j] > 0.0 &&
          replay->energy().available(static_cast<MachineId>(j)) < demand[j] - 1e-9) {
        fits = false;
        break;
      }
    }
    if (!fits) {
      result.executed = false;
      result.completed = replay->num_assigned();
      result.aet = replay->aet();
      result.tec = replay->tec();
      result.schedule = std::move(replay);
      return result;
    }

    for (const auto& comm : plan.comms) {
      replay->add_comm(comm.parent, task, comm.from_machine, machine, comm.start,
                       comm.duration, comm.bits, comm.energy);
    }
    replay->add_assignment(task, machine, original.version, plan.start,
                           plan.duration, plan.exec_energy);
    machine_cursor[static_cast<std::size_t>(machine)] = plan.finish();
  }

  result.executed = true;
  result.completed = replay->num_assigned();
  result.aet = replay->aet();
  result.tec = replay->tec();
  result.within_tau = result.aet <= actual.tau;
  result.schedule = std::move(replay);
  return result;
}

}  // namespace ahg::core
