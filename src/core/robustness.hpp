#pragma once
// Robustness of a mapping to execution-time estimation error.
//
// The "E" in ETC is *estimated*: a fielded resource manager plans with
// estimates while machines deliver actuals. This module evaluates how a
// produced mapping survives that gap: keep the mapping's DECISIONS — which
// machine, which version, and the per-machine execution order — and replay
// them with perturbed actual durations, recomputing every start, transfer,
// finish, and energy draw under the same physical rules (precedence, data
// arrival, channel exclusivity, battery limits). The replayed schedule is
// then judged against tau and the batteries.
//
// This mirrors how list schedules are executed in practice: dispatch order
// is fixed, timing floats. It quantifies the slack a heuristic's mapping
// leaves — a tightly-packed deadline-riding mapping breaks under small
// overruns, a padded one absorbs them.

#include <cstdint>
#include <memory>

#include "core/result.hpp"
#include "workload/scenario.hpp"

namespace ahg::core {

struct NoiseParams {
  /// Actual duration = estimate * factor, factor ~ Gamma(mean = bias,
  /// CV = cv), truncated to [min_factor, max_factor]. bias > 1 models
  /// systematic underestimation.
  double cv = 0.2;
  double bias = 1.0;
  double min_factor = 0.25;
  double max_factor = 4.0;

  void validate() const;
};

struct ReplayResult {
  bool executed = false;       ///< replay ran to completion (energy sufficed)
  bool within_tau = false;     ///< replayed AET <= tau
  std::size_t completed = 0;   ///< subtasks executed before energy ran out
  Cycles aet = 0;              ///< replayed application execution time
  double tec = 0.0;            ///< replayed energy consumption
  Cycles planned_aet = 0;      ///< the mapping's nominal AET, for comparison
  /// The replayed schedule (validates against the ACTUAL-duration scenario).
  std::shared_ptr<const sim::Schedule> schedule;

  bool robust() const noexcept { return executed && within_tau; }
};

/// Build the actual-duration scenario: every ETC entry scaled by an
/// independent truncated-Gamma factor. Deterministic in `seed`.
workload::Scenario perturb_etc(const workload::Scenario& scenario,
                               const NoiseParams& params, std::uint64_t seed);

/// Replay `schedule` (produced against `estimated`) under `actual` durations.
/// Requires: the schedule's mapping is complete and both scenarios share the
/// grid/DAG/data shape (perturb_etc output qualifies). Transfers are
/// re-slotted with the same (sender, receiver) pairs in the original edge
/// order; a machine executes its tasks in the original start order.
ReplayResult replay_with_actuals(const workload::Scenario& estimated,
                                 const workload::Scenario& actual,
                                 const sim::Schedule& schedule);

}  // namespace ahg::core
