#include "core/runner.hpp"

#include <sstream>

#include "core/scenario_cache.hpp"
#include "support/contract.hpp"
#include "support/profile.hpp"

namespace ahg::core {

CaseHeuristicSummary evaluate_case(const workload::ScenarioSuite& suite,
                                   sim::GridCase grid_case, HeuristicKind heuristic,
                                   const EvaluationParams& params) {
  CaseHeuristicSummary summary;
  summary.grid_case = grid_case;
  summary.heuristic = heuristic;

  // Per-case phase metrics always collect into a local registry; decision
  // events only flow when the caller attached a sink (ForwardSink::wants
  // returns false otherwise, so the heuristics skip event assembly — the
  // null-sink fast path applies to the event side even here).
  obs::MetricsRegistry case_metrics;
  obs::ForwardSink fwd(&case_metrics, params.sink);
  obs::Histogram* tune_hist = obs::phase_histogram(&case_metrics, "runner.tune_seconds");
  TunerParams tuner_params = params.tuner;
  tuner_params.sink = &fwd;

  // The upper bound depends only on (grid case, ETC); cache per ETC index.
  std::vector<std::optional<std::size_t>> bound_cache(suite.num_etc());

  for (std::size_t etc = 0; etc < suite.num_etc(); ++etc) {
    for (std::size_t dag = 0; dag < suite.num_dag(); ++dag) {
      const workload::Scenario scenario = suite.make(grid_case, etc, dag);

      // Build the pure-scenario tables once; the tuner's weight sweep then
      // shares them read-only across all of its (possibly parallel) solver
      // invocations, and the upper bound reads the same energy products.
      const ScenarioCache cache(scenario);

      if (!bound_cache[etc].has_value()) {
        bound_cache[etc] = compute_upper_bound(scenario, &cache).bound;
      }

      const WeightedSolver solver = [&](const Weights& w) {
        return run_heuristic(heuristic, scenario, w, params.clock,
                             AetSign::Reward, &fwd, &cache);
      };
      ScenarioEvaluation eval;
      eval.etc_index = etc;
      eval.dag_index = dag;
      eval.upper_bound = *bound_cache[etc];
      {
        obs::ProfileScope tune_scope(tune_hist);
        eval.tune = tune_weights(solver, tuner_params);
      }

      if (eval.tune.found) {
        ++summary.feasible_count;
        const auto& best = eval.tune.best;
        summary.t100.add(static_cast<double>(best.t100));
        if (eval.upper_bound > 0) {
          summary.vs_bound.add(static_cast<double>(best.t100) /
                               static_cast<double>(eval.upper_bound));
        }
        summary.wall_seconds.add(best.wall_seconds);
        if (best.wall_seconds > 0.0) {
          summary.value_metric.add(static_cast<double>(best.t100) / best.wall_seconds);
        }
        summary.alpha.add(eval.tune.alpha);
        summary.beta.add(eval.tune.beta);
      }

      if (params.progress) {
        std::ostringstream oss;
        oss << to_string(grid_case) << " " << to_string(heuristic) << " etc=" << etc
            << " dag=" << dag;
        if (eval.tune.found) {
          oss << " -> T100=" << eval.tune.best.t100 << " (alpha=" << eval.tune.alpha
              << ", beta=" << eval.tune.beta << ")";
        } else {
          oss << " -> no feasible weight combination";
        }
        params.progress(oss.str());
      }

      summary.scenarios.push_back(std::move(eval));
    }
  }

  summary.phases = case_metrics.snapshot();
  if (params.sink != nullptr && params.sink->metrics() != nullptr &&
      params.sink->metrics() != &case_metrics) {
    params.sink->metrics()->merge(summary.phases);
  }
  return summary;
}

const CaseHeuristicSummary& EvaluationMatrix::cell(sim::GridCase grid_case,
                                                   HeuristicKind heuristic) const {
  for (const auto& summary : cells) {
    if (summary.grid_case == grid_case && summary.heuristic == heuristic) {
      return summary;
    }
  }
  throw PreconditionError("no such (case, heuristic) cell");
}

EvaluationMatrix evaluate_matrix(const workload::ScenarioSuite& suite,
                                 const std::vector<sim::GridCase>& cases,
                                 const std::vector<HeuristicKind>& heuristics,
                                 const EvaluationParams& params) {
  EvaluationMatrix matrix;
  matrix.cases = cases;
  matrix.heuristics = heuristics;
  for (const auto grid_case : cases) {
    for (const auto heuristic : heuristics) {
      matrix.cells.push_back(evaluate_case(suite, grid_case, heuristic, params));
    }
  }
  return matrix;
}

}  // namespace ahg::core
