#include "core/runner.hpp"

#include <mutex>
#include <sstream>

#include "core/scenario_cache.hpp"
#include "support/contract.hpp"
#include "support/profile.hpp"
#include "support/runtime_profiler.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_pool.hpp"

namespace ahg::core {

void accumulate_scenario(CaseHeuristicSummary& summary,
                         const ScenarioEvaluation& eval) {
  if (!eval.tune.found) return;
  ++summary.feasible_count;
  const auto& best = eval.tune.best;
  summary.t100.add(static_cast<double>(best.t100));
  if (eval.upper_bound > 0) {
    summary.vs_bound.add(static_cast<double>(best.t100) /
                         static_cast<double>(eval.upper_bound));
  }
  summary.wall_seconds.add(best.wall_seconds);
  if (best.wall_seconds > 0.0) {
    summary.value_metric.add(static_cast<double>(best.t100) / best.wall_seconds);
  }
  summary.alpha.add(eval.tune.alpha);
  summary.beta.add(eval.tune.beta);
}

CaseHeuristicSummary evaluate_case(const workload::ScenarioSuite& suite,
                                   sim::GridCase grid_case, HeuristicKind heuristic,
                                   const EvaluationParams& params) {
  CaseHeuristicSummary summary;
  summary.grid_case = grid_case;
  summary.heuristic = heuristic;

  // Per-case phase metrics always collect into a local registry; decision
  // events only flow when the caller attached a sink (ForwardSink::wants
  // returns false otherwise, so the heuristics skip event assembly — the
  // null-sink fast path applies to the event side even here). The local
  // registry also keeps concurrent cells contention-free: each cell shards
  // into its own registry and the merge into sink->metrics() happens once,
  // at the cell barrier.
  obs::MetricsRegistry case_metrics;
  obs::ForwardSink fwd(&case_metrics, params.sink);
  obs::Histogram* tune_hist = obs::phase_histogram(&case_metrics, "runner.tune_seconds");
  TunerParams tuner_params = params.tuner;
  tuner_params.sink = &fwd;

  // The upper bound depends only on (grid case, ETC); cache per ETC index.
  std::vector<std::optional<std::size_t>> bound_cache(suite.num_etc());

  for (std::size_t etc = 0; etc < suite.num_etc(); ++etc) {
    for (std::size_t dag = 0; dag < suite.num_dag(); ++dag) {
      // The suite derives the scenario from per-(case, etc, dag) seed
      // substreams, so concurrent cells never share generator state.
      const workload::Scenario scenario = suite.make(grid_case, etc, dag);

      // Build the pure-scenario tables once; the tuner's weight sweep then
      // shares them read-only across all of its (possibly parallel) solver
      // invocations, and the upper bound reads the same energy products.
      // Living inside the cell task, independent scenarios build their
      // caches concurrently when the matrix fans out.
      const ScenarioCache cache(scenario);

      if (!bound_cache[etc].has_value()) {
        bound_cache[etc] = compute_upper_bound(scenario, &cache).bound;
      }

      const WeightedSolver solver = [&](const Weights& w) {
        return run_heuristic(heuristic, scenario, w, params.clock,
                             AetSign::Reward, &fwd, &cache);
      };
      ScenarioEvaluation eval;
      eval.etc_index = etc;
      eval.dag_index = dag;
      eval.upper_bound = *bound_cache[etc];
      {
        obs::ProfileScope tune_scope(tune_hist);
        eval.tune = tune_weights(solver, tuner_params);
      }

      accumulate_scenario(summary, eval);

      if (params.progress) {
        std::ostringstream oss;
        oss << to_string(grid_case) << " " << to_string(heuristic) << " etc=" << etc
            << " dag=" << dag;
        if (eval.tune.found) {
          oss << " -> T100=" << eval.tune.best.t100 << " (alpha=" << eval.tune.alpha
              << ", beta=" << eval.tune.beta << ")";
        } else {
          oss << " -> no feasible weight combination";
        }
        params.progress(oss.str());
      }

      summary.scenarios.push_back(std::move(eval));
    }
  }

  summary.phases = case_metrics.snapshot();
  if (params.sink != nullptr && params.sink->metrics() != nullptr &&
      params.sink->metrics() != &case_metrics) {
    params.sink->metrics()->merge(summary.phases);
  }
  return summary;
}

std::vector<CaseHeuristicSummary> evaluate_cells(
    const workload::ScenarioSuite& suite, const std::vector<CellRequest>& requests,
    const EvaluationParams& params, obs::MetricsRegistry* exec_metrics) {
  // Determinism by slots: results land at their request index no matter
  // which worker runs them or in which order they finish.
  std::vector<CaseHeuristicSummary> cells(requests.size());
  if (requests.empty()) return cells;

  EvaluationParams cell_params = params;
  std::mutex progress_mutex;
  if (params.progress) {
    // User progress callbacks are not required to be thread-safe; serialize.
    cell_params.progress = [&](const std::string& line) {
      std::lock_guard lock(progress_mutex);
      params.progress(line);
    };
  }

  obs::Histogram* queue_hist =
      obs::phase_histogram(exec_metrics, "runner.cell_queue_seconds");
  obs::Histogram* cell_hist = obs::phase_histogram(exec_metrics, "runner.cell_seconds");

  std::vector<double> busy(requests.size(), 0.0);
  const Stopwatch campaign;  // all cells are enqueued at fan-out time
  const auto run_cell = [&](std::size_t k) {
    if (queue_hist != nullptr) queue_hist->observe(campaign.seconds());
    const Stopwatch cell_timer;
    cells[k] = evaluate_case(suite, requests[k].grid_case, requests[k].heuristic,
                             cell_params);
    busy[k] = cell_timer.seconds();
    if (cell_hist != nullptr) cell_hist->observe(busy[k]);
  };

  if (params.parallel_cells && requests.size() > 1) {
    obs::RuntimeRegion region(global_pool().profiler(), "matrix_cells");
    global_pool().parallel_for(0, requests.size(), run_cell);
  } else {
    for (std::size_t k = 0; k < requests.size(); ++k) run_cell(k);
  }

  if (exec_metrics != nullptr) {
    const double elapsed = campaign.seconds();
    double busy_sum = 0.0;
    for (const double b : busy) busy_sum += b;
    const double width = params.parallel_cells
                             ? static_cast<double>(global_pool().size())
                             : 1.0;
    if (elapsed > 0.0 && width > 0.0) {
      exec_metrics->gauge("runner.pool_utilization").set(busy_sum / (elapsed * width));
    }
  }
  return cells;
}

const CaseHeuristicSummary& EvaluationMatrix::cell(sim::GridCase grid_case,
                                                   HeuristicKind heuristic) const {
  for (const auto& summary : cells) {
    if (summary.grid_case == grid_case && summary.heuristic == heuristic) {
      return summary;
    }
  }
  throw PreconditionError("no such (case, heuristic) cell");
}

EvaluationMatrix evaluate_matrix(const workload::ScenarioSuite& suite,
                                 const std::vector<sim::GridCase>& cases,
                                 const std::vector<HeuristicKind>& heuristics,
                                 const EvaluationParams& params) {
  EvaluationMatrix matrix;
  matrix.cases = cases;
  matrix.heuristics = heuristics;
  std::vector<CellRequest> requests;
  requests.reserve(cases.size() * heuristics.size());
  for (const auto grid_case : cases) {
    for (const auto heuristic : heuristics) {
      requests.push_back(CellRequest{grid_case, heuristic});
    }
  }
  obs::MetricsRegistry exec_metrics;
  matrix.cells = evaluate_cells(suite, requests, params, &exec_metrics);
  matrix.exec = exec_metrics.snapshot();
  return matrix;
}

}  // namespace ahg::core
