#pragma once
// Experiment pipeline for the paper's evaluation section (§VII).
//
// For every (grid case, heuristic, ETC, DAG) combination: tune the objective
// weights (coarse + optional fine pass), keep the run at the optimal
// (alpha, beta), and aggregate the four quantities the paper's Figures 4-7
// report — T100, T100 relative to the equivalent-computing-cycles upper
// bound, heuristic execution time, and T100 per second of heuristic
// execution time.

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/heuristics.hpp"
#include "core/tuner.hpp"
#include "core/upper_bound.hpp"
#include "support/event_log.hpp"
#include "support/metrics.hpp"
#include "support/stats.hpp"
#include "workload/scenario.hpp"

namespace ahg::core {

struct ScenarioEvaluation {
  std::size_t etc_index = 0;
  std::size_t dag_index = 0;
  TuneOutcome tune;
  std::size_t upper_bound = 0;
};

struct CaseHeuristicSummary {
  sim::GridCase grid_case = sim::GridCase::A;
  HeuristicKind heuristic = HeuristicKind::Slrh1;
  std::vector<ScenarioEvaluation> scenarios;

  std::size_t feasible_count = 0;  ///< scenarios with a feasible tuned mapping
  Accumulator t100;                ///< over feasible scenarios
  Accumulator vs_bound;            ///< T100 / upper bound
  Accumulator wall_seconds;        ///< heuristic execution time at optimum
  Accumulator value_metric;        ///< T100 / execution time (Fig. 7)
  Accumulator alpha;               ///< optimal alpha (Fig. 3)
  Accumulator beta;                ///< optimal beta (Fig. 3)

  /// Phase-time breakdown for this cell: the merged metrics of every
  /// heuristic run the tuner probed (histograms "slrh.pool_build_seconds",
  /// "slrh.scoring_seconds", "slrh.placement_seconds",
  /// "slrh.earliest_start_seconds", "maxmax.select_seconds",
  /// "tuner.sweep_seconds", "runner.tune_seconds", plus decision counters).
  /// Always collected — no sink needs to be attached — because the registry
  /// shards keep the cost off the hot path; benches dump it into
  /// BENCH_*.json.
  obs::MetricsSnapshot phases;
};

struct EvaluationParams {
  TunerParams tuner;
  SlrhClock clock;
  /// Evaluate matrix cells (grid case x heuristic) concurrently on the
  /// global thread pool. Each cell is an independent deterministic unit —
  /// the suite derives every scenario from (case, etc, dag) seed substreams
  /// and cells write to pre-sized slots — so the parallel matrix is
  /// bit-identical to the serial one (asserted by test_determinism.cpp).
  /// The tuner's own sweep may run nested inside a cell; the work-stealing
  /// pool supports that without deadlock or oversubscription.
  bool parallel_cells = true;
  /// Called after each scenario finishes (benches print progress with it).
  /// With parallel_cells the calls are serialized by the runner but arrive
  /// in nondeterministic cell order.
  std::function<void(const std::string&)> progress;
  /// Optional observability sink (not owned). Decision events from every
  /// tuner-probed run are forwarded here, and the per-case phase metrics are
  /// merged into sink->metrics() when present. Null simply skips the
  /// forwarding — the per-case phase metrics in CaseHeuristicSummary::phases
  /// are collected either way. Must be thread-safe when parallel_cells is
  /// set (all shipped sinks are).
  obs::Sink* sink = nullptr;
};

/// Fold one finished scenario into the summary accumulators. Shared by
/// evaluate_case and the bench result cache's loader so a cache-restored
/// summary replays the exact same Welford add() sequence (bit-identical
/// accumulators).
void accumulate_scenario(CaseHeuristicSummary& summary,
                         const ScenarioEvaluation& eval);

/// Evaluate one heuristic on one grid case across the suite's full
/// (ETC, DAG) grid.
CaseHeuristicSummary evaluate_case(const workload::ScenarioSuite& suite,
                                   sim::GridCase grid_case, HeuristicKind heuristic,
                                   const EvaluationParams& params);

/// One matrix cell to evaluate: a (grid case, heuristic) pair.
struct CellRequest {
  sim::GridCase grid_case = sim::GridCase::A;
  HeuristicKind heuristic = HeuristicKind::Slrh1;
};

/// Evaluate an arbitrary set of cells — the fan-out primitive behind
/// evaluate_matrix, exposed so the bench result cache can evaluate only the
/// cells it missed. Results land slot-for-slot in request order regardless
/// of execution order. With params.parallel_cells the cells run
/// concurrently on the global pool; `exec_metrics` (optional, not owned)
/// then receives the campaign-level execution telemetry: the per-cell
/// queue-latency ("runner.cell_queue_seconds") and cell-runtime
/// ("runner.cell_seconds") histograms plus the pool-utilization gauge
/// "runner.pool_utilization" (busy-seconds summed over cells divided by
/// wall time x pool width; the helping caller can push it above 1).
std::vector<CaseHeuristicSummary> evaluate_cells(
    const workload::ScenarioSuite& suite, const std::vector<CellRequest>& requests,
    const EvaluationParams& params, obs::MetricsRegistry* exec_metrics = nullptr);

/// The full cases x heuristics matrix (row-major over cases).
struct EvaluationMatrix {
  std::vector<sim::GridCase> cases;
  std::vector<HeuristicKind> heuristics;
  std::vector<CaseHeuristicSummary> cells;

  /// Campaign-level execution telemetry from evaluate_cells (queue latency,
  /// cell runtime, pool utilization). Purely observational — carries no
  /// result data.
  obs::MetricsSnapshot exec;

  const CaseHeuristicSummary& cell(sim::GridCase grid_case,
                                   HeuristicKind heuristic) const;
};

EvaluationMatrix evaluate_matrix(const workload::ScenarioSuite& suite,
                                 const std::vector<sim::GridCase>& cases,
                                 const std::vector<HeuristicKind>& heuristics,
                                 const EvaluationParams& params);

}  // namespace ahg::core
