#pragma once
// Experiment pipeline for the paper's evaluation section (§VII).
//
// For every (grid case, heuristic, ETC, DAG) combination: tune the objective
// weights (coarse + optional fine pass), keep the run at the optimal
// (alpha, beta), and aggregate the four quantities the paper's Figures 4-7
// report — T100, T100 relative to the equivalent-computing-cycles upper
// bound, heuristic execution time, and T100 per second of heuristic
// execution time.

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/heuristics.hpp"
#include "core/tuner.hpp"
#include "core/upper_bound.hpp"
#include "support/event_log.hpp"
#include "support/metrics.hpp"
#include "support/stats.hpp"
#include "workload/scenario.hpp"

namespace ahg::core {

struct ScenarioEvaluation {
  std::size_t etc_index = 0;
  std::size_t dag_index = 0;
  TuneOutcome tune;
  std::size_t upper_bound = 0;
};

struct CaseHeuristicSummary {
  sim::GridCase grid_case = sim::GridCase::A;
  HeuristicKind heuristic = HeuristicKind::Slrh1;
  std::vector<ScenarioEvaluation> scenarios;

  std::size_t feasible_count = 0;  ///< scenarios with a feasible tuned mapping
  Accumulator t100;                ///< over feasible scenarios
  Accumulator vs_bound;            ///< T100 / upper bound
  Accumulator wall_seconds;        ///< heuristic execution time at optimum
  Accumulator value_metric;        ///< T100 / execution time (Fig. 7)
  Accumulator alpha;               ///< optimal alpha (Fig. 3)
  Accumulator beta;                ///< optimal beta (Fig. 3)

  /// Phase-time breakdown for this cell: the merged metrics of every
  /// heuristic run the tuner probed (histograms "slrh.pool_build_seconds",
  /// "slrh.scoring_seconds", "slrh.placement_seconds",
  /// "slrh.earliest_start_seconds", "maxmax.select_seconds",
  /// "tuner.sweep_seconds", "runner.tune_seconds", plus decision counters).
  /// Always collected — no sink needs to be attached — because the registry
  /// shards keep the cost off the hot path; benches dump it into
  /// BENCH_*.json.
  obs::MetricsSnapshot phases;
};

struct EvaluationParams {
  TunerParams tuner;
  SlrhClock clock;
  /// Called after each scenario finishes (benches print progress with it).
  std::function<void(const std::string&)> progress;
  /// Optional observability sink (not owned). Decision events from every
  /// tuner-probed run are forwarded here, and the per-case phase metrics are
  /// merged into sink->metrics() when present. Null simply skips the
  /// forwarding — the per-case phase metrics in CaseHeuristicSummary::phases
  /// are collected either way.
  obs::Sink* sink = nullptr;
};

/// Evaluate one heuristic on one grid case across the suite's full
/// (ETC, DAG) grid.
CaseHeuristicSummary evaluate_case(const workload::ScenarioSuite& suite,
                                   sim::GridCase grid_case, HeuristicKind heuristic,
                                   const EvaluationParams& params);

/// The full cases x heuristics matrix (row-major over cases).
struct EvaluationMatrix {
  std::vector<sim::GridCase> cases;
  std::vector<HeuristicKind> heuristics;
  std::vector<CaseHeuristicSummary> cells;

  const CaseHeuristicSummary& cell(sim::GridCase grid_case,
                                   HeuristicKind heuristic) const;
};

EvaluationMatrix evaluate_matrix(const workload::ScenarioSuite& suite,
                                 const std::vector<sim::GridCase>& cases,
                                 const std::vector<HeuristicKind>& heuristics,
                                 const EvaluationParams& params);

}  // namespace ahg::core
