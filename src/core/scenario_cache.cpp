#include "core/scenario_cache.hpp"

#include <algorithm>
#include <limits>

#include "core/feasibility.hpp"
#include "support/checked.hpp"
#include "support/runtime_profiler.hpp"
#include "support/thread_pool.hpp"

namespace ahg::core {

ScenarioCache::ScenarioCache(const workload::Scenario& scenario, CacheBuild mode)
    : num_tasks_(scenario.num_tasks()), num_machines_(scenario.num_machines()) {
  const std::size_t cells =
      checked_mul(num_tasks_, num_machines_, 2, "ScenarioCache tables");
  exec_cycles_.resize(cells);
  exec_energy_.resize(cells);
  energy_need_.resize(cells);
  min_exec_cycles_.assign(checked_mul(num_tasks_, 2, "min_exec_cycles table"),
                          std::numeric_limits<Cycles>::max());
  primary_compute_energy_.resize(
      checked_mul(num_tasks_, num_machines_, "primary_compute_energy table"));

  const auto num_machines = static_cast<MachineId>(num_machines_);

  if (mode == CacheBuild::Lazy) {
    scenario_ = &scenario;
    column_once_ = std::make_unique<std::once_flag[]>(num_machines_);
    column_ready_ = std::make_unique<std::atomic<bool>[]>(num_machines_);
    for (std::size_t m = 0; m < num_machines_; ++m) {
      column_ready_[m].store(false, std::memory_order_relaxed);
    }
  } else if (mode == CacheBuild::Parallel) {
    // Entries are independent per (task, machine, version) and a machine's
    // column is one contiguous range, so columns fan out with no ordering
    // concerns — bit-identical tables to the serial build. The region marker
    // labels the fan-out in a worker trace when a profiler is attached.
    obs::RuntimeRegion region(global_pool().profiler(), "cache_build");
    global_pool().parallel_for(0, num_machines_, [&](std::size_t machine) {
      fill_column(scenario, static_cast<MachineId>(machine));
    });
    columns_built_.store(num_machines_, std::memory_order_relaxed);
  } else {
    // Serial diff baseline: machine-outer to match the machine-major table
    // layout (sequential writes).
    for (MachineId machine = 0; machine < num_machines; ++machine) {
      fill_column(scenario, machine);
    }
    columns_built_.store(num_machines_, std::memory_order_relaxed);
  }

  // The global per-task tables stay eager in every mode: they cost ETC
  // lookups only (no per-entry child walk), and Max-Max / the upper bound
  // read them for every task regardless of which machines get probed. The
  // minimum accumulates over machines in ascending order in every mode —
  // and min over integers is order-independent anyway — so the values are
  // bit-identical across modes.
  const bool parallel = mode == CacheBuild::Parallel;
  const auto per_task_tables = [&](std::size_t t) {
    const auto task = static_cast<TaskId>(t);
    for (MachineId machine = 0; machine < num_machines; ++machine) {
      for (const VersionKind version :
           {VersionKind::Primary, VersionKind::Secondary}) {
        const std::size_t m = static_cast<std::size_t>(task) * 2 +
                              (version == VersionKind::Primary ? 0 : 1);
        // The exact expression (and operation order) of the uncached path so
        // lookups are bit-identical to recomputation.
        min_exec_cycles_[m] = std::min(
            min_exec_cycles_[m], scenario.exec_cycles(task, machine, version));
      }
      // This table keeps the task-major layout its consumer (the upper
      // bound's per-task greedy sweep over machines) reads sequentially.
      primary_compute_energy_[static_cast<std::size_t>(task) * num_machines_ +
                              static_cast<std::size_t>(machine)] =
          scenario.grid.machine(machine).compute_power *
          scenario.etc.seconds(task, machine);
    }
  };
  if (parallel) {
    obs::RuntimeRegion region(global_pool().profiler(), "cache_build");
    global_pool().parallel_for(0, num_tasks_, per_task_tables);
  } else {
    for (std::size_t t = 0; t < num_tasks_; ++t) per_task_tables(t);
  }
}

void ScenarioCache::fill_column(const workload::Scenario& scenario,
                                MachineId machine) const {
  const auto num_tasks = static_cast<TaskId>(num_tasks_);
  for (TaskId task = 0; task < num_tasks; ++task) {
    for (const VersionKind version :
         {VersionKind::Primary, VersionKind::Secondary}) {
      const std::size_t i = index(task, machine, version);
      // Each entry uses the exact expression (and operation order) of the
      // uncached path so lookups are bit-identical to recomputation.
      exec_cycles_[i] = scenario.exec_cycles(task, machine, version);
      exec_energy_[i] = core::exec_energy(scenario, task, machine, version);
      energy_need_[i] =
          exec_energy_[i] +
          worst_case_outgoing_energy(scenario, task, machine, version);
    }
  }
}

void ScenarioCache::build_column(MachineId machine) const {
  std::call_once(column_once_[static_cast<std::size_t>(machine)], [&] {
    // Lazy first-touch fills happen on whatever thread probes the column —
    // often inside an already-marked fan-out region (sweep_fanout), whose
    // label then covers the fill. Only an unmarked touch (a serial driver's
    // first probe) opens its own region so the trace still attributes it.
    obs::RuntimeProfiler* prof = global_pool().profiler();
    std::uint32_t token = 0;
    if (prof != nullptr && prof->current_region() == 0) {
      token = prof->region_begin("cache_lazy_column");
    }
    fill_column(*scenario_, machine);
    columns_built_.fetch_add(1, std::memory_order_relaxed);
    column_ready_[static_cast<std::size_t>(machine)].store(
        true, std::memory_order_release);
    if (token != 0) prof->region_end(token);
  });
}

}  // namespace ahg::core
