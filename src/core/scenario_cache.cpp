#include "core/scenario_cache.hpp"

#include <algorithm>
#include <limits>

#include "core/feasibility.hpp"

namespace ahg::core {

ScenarioCache::ScenarioCache(const workload::Scenario& scenario)
    : num_tasks_(scenario.num_tasks()), num_machines_(scenario.num_machines()) {
  const std::size_t cells = num_tasks_ * num_machines_ * 2;
  exec_cycles_.resize(cells);
  exec_energy_.resize(cells);
  energy_need_.resize(cells);
  min_exec_cycles_.assign(num_tasks_ * 2, std::numeric_limits<Cycles>::max());
  primary_compute_energy_.resize(num_tasks_ * num_machines_);

  const auto num_tasks = static_cast<TaskId>(num_tasks_);
  const auto num_machines = static_cast<MachineId>(num_machines_);
  // Machine-outer to match the machine-major table layout (sequential
  // writes); the per-task minimum accumulates across the machine passes
  // (min is order-independent — identical values to a task-outer build).
  for (MachineId machine = 0; machine < num_machines; ++machine) {
    for (TaskId task = 0; task < num_tasks; ++task) {
      for (const VersionKind version :
           {VersionKind::Primary, VersionKind::Secondary}) {
        const std::size_t i = index(task, machine, version);
        // Each entry uses the exact expression (and operation order) of the
        // uncached path so lookups are bit-identical to recomputation.
        exec_cycles_[i] = scenario.exec_cycles(task, machine, version);
        exec_energy_[i] = core::exec_energy(scenario, task, machine, version);
        energy_need_[i] =
            exec_energy_[i] +
            worst_case_outgoing_energy(scenario, task, machine, version);
        const std::size_t m = static_cast<std::size_t>(task) * 2 +
                              (version == VersionKind::Primary ? 0 : 1);
        min_exec_cycles_[m] = std::min(min_exec_cycles_[m], exec_cycles_[i]);
      }
    }
  }
  // This table keeps the task-major layout its consumer (the upper bound's
  // per-task greedy sweep over machines) reads sequentially.
  for (TaskId task = 0; task < num_tasks; ++task) {
    for (MachineId machine = 0; machine < num_machines; ++machine) {
      primary_compute_energy_[static_cast<std::size_t>(task) * num_machines_ +
                              static_cast<std::size_t>(machine)] =
          scenario.grid.machine(machine).compute_power *
          scenario.etc.seconds(task, machine);
    }
  }
}

}  // namespace ahg::core
