#pragma once
// Precomputed pure-scenario tables for the heuristic inner loops.
//
// Pool admission and candidate scoring repeatedly evaluate quantities that
// are pure functions of the static scenario — execution durations, execution
// energies, and the conservative admission "energy need" (execution energy
// plus the worst-case outgoing-communication energy over all child edges,
// paper §IV). The clock-driven SLRH driver re-derives them O(timesteps ×
// machines × |T| × degree) times; a ScenarioCache computes each exactly once
// per (task, machine, version) and the hot paths read the tables instead.
//
// Bit-identity contract: every table entry is produced by the SAME
// expression, in the SAME operation order, as the uncached functions in
// feasibility.cpp / scoring.cpp evaluate on demand. A cached lookup therefore
// returns a bit-identical double, and heuristics driven through the cache
// make exactly the same decisions as the uncached paths (asserted by
// tests/test_determinism.cpp). The uncached functions remain as the diff
// baseline.
//
// A cache is immutable after construction and safe to share read-only across
// threads — the tuner builds one per scenario and all parallel_for workers
// probing weight grid points reuse it.

#include <vector>

#include "support/units.hpp"
#include "support/version.hpp"
#include "workload/scenario.hpp"

namespace ahg::core {

class ScenarioCache {
 public:
  explicit ScenarioCache(const workload::Scenario& scenario);

  std::size_t num_tasks() const noexcept { return num_tasks_; }
  std::size_t num_machines() const noexcept { return num_machines_; }

  /// scenario.exec_cycles(task, machine, version), precomputed.
  Cycles exec_cycles(TaskId task, MachineId machine, VersionKind version) const {
    return exec_cycles_[index(task, machine, version)];
  }

  /// core::exec_energy(scenario, task, machine, version), precomputed.
  double exec_energy(TaskId task, MachineId machine, VersionKind version) const {
    return exec_energy_[index(task, machine, version)];
  }

  /// The admission "energy need": exec_energy + worst_case_outgoing_energy —
  /// the quantity version_fits_energy compares against the machine's
  /// available battery.
  double energy_need(TaskId task, MachineId machine, VersionKind version) const {
    return energy_need_[index(task, machine, version)];
  }

  /// min over machines of exec_cycles(task, ·, version) — the per-task term
  /// of Max-Max's critical-path deadline lookahead.
  Cycles min_exec_cycles(TaskId task, VersionKind version) const {
    return min_exec_cycles_[static_cast<std::size_t>(task) * 2 +
                            (version == VersionKind::Primary ? 0 : 1)];
  }

  /// compute_power(machine) * etc.seconds(task, machine): the exact
  /// (un-rounded) primary execution energy the upper bound's greedy
  /// minimum-energy pick evaluates per (task, machine).
  double primary_compute_energy(TaskId task, MachineId machine) const {
    return primary_compute_energy_[static_cast<std::size_t>(task) * num_machines_ +
                                   static_cast<std::size_t>(machine)];
  }

 private:
  /// MACHINE-major: one machine's whole column is contiguous (stride 2
  /// entries per task). The SLRH hot path — the batched pool gather — reads
  /// a fixed machine's entries across many ready tasks, so this layout turns
  /// the gather into near-sequential loads at |M|=512, where the old
  /// task-major layout strode |M|*2 entries (a cache line per task).
  std::size_t index(TaskId task, MachineId machine, VersionKind version) const {
    return (static_cast<std::size_t>(machine) * num_tasks_ +
            static_cast<std::size_t>(task)) *
               2 +
           (version == VersionKind::Primary ? 0 : 1);
  }

  std::size_t num_tasks_ = 0;
  std::size_t num_machines_ = 0;
  std::vector<Cycles> exec_cycles_;           ///< |M| x |T| x 2
  std::vector<double> exec_energy_;           ///< |M| x |T| x 2
  std::vector<double> energy_need_;           ///< |M| x |T| x 2
  std::vector<Cycles> min_exec_cycles_;       ///< |T| x 2
  std::vector<double> primary_compute_energy_;  ///< |T| x |M|
};

}  // namespace ahg::core
