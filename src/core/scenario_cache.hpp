#pragma once
// Precomputed pure-scenario tables for the heuristic inner loops.
//
// Pool admission and candidate scoring repeatedly evaluate quantities that
// are pure functions of the static scenario — execution durations, execution
// energies, and the conservative admission "energy need" (execution energy
// plus the worst-case outgoing-communication energy over all child edges,
// paper §IV). The clock-driven SLRH driver re-derives them O(timesteps ×
// machines × |T| × degree) times; a ScenarioCache computes each exactly once
// per (task, machine, version) and the hot paths read the tables instead.
//
// Bit-identity contract: every table entry is produced by the SAME
// expression, in the SAME operation order, as the uncached functions in
// feasibility.cpp / scoring.cpp evaluate on demand. A cached lookup therefore
// returns a bit-identical double, and heuristics driven through the cache
// make exactly the same decisions as the uncached paths (asserted by
// tests/test_determinism.cpp). The uncached functions remain as the diff
// baseline.
//
// Build modes: entries are independent per (task, machine, version), so the
// build parallelizes over machine columns with no ordering concerns — every
// mode produces bit-identical tables (also asserted by test_determinism).
//  - Parallel (default): machine columns fan out over the global work-
//    stealing pool (configure_global_pool / --jobs); the dominant cost, the
//    admission energy's per-entry walk over the task's children, scales
//    with the worker count.
//  - Serial: the original single-thread build, kept as the diff baseline.
//  - Lazy: only the cheap global tables (min_exec_cycles,
//    primary_compute_energy) are built up front; a machine's column is
//    built on first touch, so machines never probed — e.g. churn-departed
//    ones — never pay the column walk. First-touch is thread-safe
//    (per-column once-flags); a lazy cache retains a pointer to the
//    scenario and must not outlive it.
//
// A cache is immutable after construction (lazy first-touch fills are
// memoization, invisible to readers) and safe to share read-only across
// threads — the tuner builds one per scenario and all parallel_for workers
// probing weight grid points reuse it.

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "support/units.hpp"
#include "support/version.hpp"
#include "workload/scenario.hpp"

namespace ahg::core {

enum class CacheBuild { Serial, Parallel, Lazy };

class ScenarioCache {
 public:
  explicit ScenarioCache(const workload::Scenario& scenario,
                         CacheBuild mode = CacheBuild::Parallel);

  std::size_t num_tasks() const noexcept { return num_tasks_; }
  std::size_t num_machines() const noexcept { return num_machines_; }

  /// scenario.exec_cycles(task, machine, version), precomputed.
  Cycles exec_cycles(TaskId task, MachineId machine, VersionKind version) const {
    touch_column(machine);
    return exec_cycles_[index(task, machine, version)];
  }

  /// core::exec_energy(scenario, task, machine, version), precomputed.
  double exec_energy(TaskId task, MachineId machine, VersionKind version) const {
    touch_column(machine);
    return exec_energy_[index(task, machine, version)];
  }

  /// The admission "energy need": exec_energy + worst_case_outgoing_energy —
  /// the quantity version_fits_energy compares against the machine's
  /// available battery.
  double energy_need(TaskId task, MachineId machine, VersionKind version) const {
    touch_column(machine);
    return energy_need_[index(task, machine, version)];
  }

  /// min over machines of exec_cycles(task, ·, version) — the per-task term
  /// of Max-Max's critical-path deadline lookahead. Always built eagerly
  /// (ETC lookups only, no child walk).
  Cycles min_exec_cycles(TaskId task, VersionKind version) const {
    return min_exec_cycles_[static_cast<std::size_t>(task) * 2 +
                            (version == VersionKind::Primary ? 0 : 1)];
  }

  /// compute_power(machine) * etc.seconds(task, machine): the exact
  /// (un-rounded) primary execution energy the upper bound's greedy
  /// minimum-energy pick evaluates per (task, machine). Always eager.
  double primary_compute_energy(TaskId task, MachineId machine) const {
    return primary_compute_energy_[static_cast<std::size_t>(task) * num_machines_ +
                                   static_cast<std::size_t>(machine)];
  }

  /// Machine columns materialized so far: num_machines() for eager modes,
  /// the first-touch count for Lazy (the scale tier's "departed machines
  /// never pay" assertion reads this).
  std::size_t columns_built() const noexcept {
    return columns_built_.load(std::memory_order_relaxed);
  }

  /// True iff `machine`'s column has been materialized (always true for
  /// eager modes).
  bool column_built(MachineId machine) const noexcept {
    return column_ready_ == nullptr ||
           column_ready_[static_cast<std::size_t>(machine)].load(
               std::memory_order_acquire);
  }

  /// Table storage in bytes (all five tables plus the lazy-mode per-column
  /// flags). Capacities are fixed at construction — Lazy first-touch fills
  /// write into pre-sized tables — so this is a constant upper bound, the
  /// memory-telemetry gauge exported as memory.scenario_cache_bytes.
  std::size_t memory_bound_bytes() const noexcept {
    std::size_t bytes = exec_cycles_.capacity() * sizeof(Cycles) +
                        exec_energy_.capacity() * sizeof(double) +
                        energy_need_.capacity() * sizeof(double) +
                        min_exec_cycles_.capacity() * sizeof(Cycles) +
                        primary_compute_energy_.capacity() * sizeof(double);
    if (column_ready_ != nullptr) {
      bytes += num_machines_ * (sizeof(std::once_flag) + sizeof(std::atomic<bool>));
    }
    return bytes;
  }

 private:
  /// MACHINE-major: one machine's whole column is contiguous (stride 2
  /// entries per task). The SLRH hot path — the batched pool gather — reads
  /// a fixed machine's entries across many ready tasks, so this layout turns
  /// the gather into near-sequential loads at |M|=512, where the old
  /// task-major layout strode |M|*2 entries (a cache line per task). It is
  /// also what makes the parallel and lazy builds trivially safe: a column
  /// is one contiguous disjoint range per machine.
  std::size_t index(TaskId task, MachineId machine, VersionKind version) const {
    return (static_cast<std::size_t>(machine) * num_tasks_ +
            static_cast<std::size_t>(task)) *
               2 +
           (version == VersionKind::Primary ? 0 : 1);
  }

  /// Lazy-mode first-touch hook: a no-op pointer test for eager caches.
  void touch_column(MachineId machine) const {
    if (column_ready_ == nullptr) return;
    if (!column_ready_[static_cast<std::size_t>(machine)].load(
            std::memory_order_acquire)) {
      build_column(machine);
    }
  }

  /// Fill one machine's exec_cycles/exec_energy/energy_need column.
  void fill_column(const workload::Scenario& scenario, MachineId machine) const;

  /// Lazy-mode column materialization (call_once per column; release-stores
  /// the ready flag the accessors acquire-load).
  void build_column(MachineId machine) const;

  std::size_t num_tasks_ = 0;
  std::size_t num_machines_ = 0;
  /// Tables are mutable for the Lazy mode's first-touch memoization — the
  /// logical value of every entry is fixed at construction.
  mutable std::vector<Cycles> exec_cycles_;   ///< |M| x |T| x 2
  mutable std::vector<double> exec_energy_;   ///< |M| x |T| x 2
  mutable std::vector<double> energy_need_;   ///< |M| x |T| x 2
  std::vector<Cycles> min_exec_cycles_;       ///< |T| x 2
  std::vector<double> primary_compute_energy_;  ///< |T| x |M|

  // Lazy-mode state (null / zero for eager modes).
  const workload::Scenario* scenario_ = nullptr;
  mutable std::unique_ptr<std::once_flag[]> column_once_;
  mutable std::unique_ptr<std::atomic<bool>[]> column_ready_;
  mutable std::atomic<std::size_t> columns_built_{0};
};

}  // namespace ahg::core
