#include "core/scoring.hpp"

#include <algorithm>

#include "core/feasibility.hpp"
#include "core/scenario_cache.hpp"
#include "sim/comm.hpp"
#include "support/contract.hpp"

namespace ahg::core {

ObjectiveTotals objective_totals(const workload::Scenario& scenario) {
  return ObjectiveTotals{scenario.num_tasks(), scenario.grid.total_system_energy(),
                         scenario.tau};
}

double score_candidate(const workload::Scenario& scenario,
                       const sim::Schedule& schedule, const Weights& weights,
                       const ObjectiveTotals& totals, TaskId task,
                       MachineId machine, VersionKind version, Cycles earliest,
                       AetSign aet_sign) {
  const Cycles duration = scenario.exec_cycles(task, machine, version);
  const Cycles finish_est =
      std::max(earliest, schedule.machine_ready(machine)) + duration;
  return score_candidate_with_finish(scenario, schedule, weights, totals, task,
                                     machine, version, finish_est, aet_sign);
}

namespace {

/// The global state the schedule WOULD have if (task, version) were mapped
/// to machine finishing at finish_est — the quantity both the scalar score
/// and the traced term breakdown evaluate the objective on. `task_exec_energy`
/// is exec_energy(scenario, task, machine, version), supplied by the caller
/// so the cached overloads can feed the precomputed (bit-identical) value.
ObjectiveState hypothetical_state(const workload::Scenario& scenario,
                                  const sim::Schedule& schedule, TaskId task,
                                  MachineId machine, VersionKind version,
                                  Cycles finish_est, double task_exec_energy) {
  double tec_delta = task_exec_energy;
  for (const TaskId parent : scenario.dag.parents(task)) {
    AHG_EXPECTS_MSG(schedule.is_assigned(parent), "scoring with unassigned parent");
    const auto& pa = schedule.assignment(parent);
    if (pa.machine == machine) continue;
    const double bits = scenario.edge_bits(parent, task, pa.version);
    if (bits <= 0.0) continue;
    const auto& sender = scenario.grid.machine(pa.machine);
    const auto& receiver = scenario.grid.machine(machine);
    tec_delta += sim::transfer_energy(sender, sim::transfer_cycles(bits, sender, receiver));
  }

  ObjectiveState state;
  state.t100 = schedule.t100() + (version == VersionKind::Primary ? 1 : 0);
  state.tec = schedule.tec() + tec_delta;
  state.aet = std::max(schedule.aet(), finish_est);
  return state;
}

}  // namespace

double score_candidate(const ScenarioCache& cache,
                       const workload::Scenario& scenario,
                       const sim::Schedule& schedule, const Weights& weights,
                       const ObjectiveTotals& totals, TaskId task,
                       MachineId machine, VersionKind version, Cycles earliest,
                       AetSign aet_sign) {
  const Cycles duration = cache.exec_cycles(task, machine, version);
  const Cycles finish_est =
      std::max(earliest, schedule.machine_ready(machine)) + duration;
  return score_candidate_with_finish(cache, scenario, schedule, weights, totals,
                                     task, machine, version, finish_est, aet_sign);
}

double score_candidate_with_finish(const workload::Scenario& scenario,
                                   const sim::Schedule& schedule,
                                   const Weights& weights,
                                   const ObjectiveTotals& totals, TaskId task,
                                   MachineId machine, VersionKind version,
                                   Cycles finish_est, AetSign aet_sign) {
  const ObjectiveState state =
      hypothetical_state(scenario, schedule, task, machine, version, finish_est,
                         exec_energy(scenario, task, machine, version));
  return objective_value(weights, state, totals, aet_sign);
}

double score_candidate_with_finish(const ScenarioCache& cache,
                                   const workload::Scenario& scenario,
                                   const sim::Schedule& schedule,
                                   const Weights& weights,
                                   const ObjectiveTotals& totals, TaskId task,
                                   MachineId machine, VersionKind version,
                                   Cycles finish_est, AetSign aet_sign) {
  const ObjectiveState state =
      hypothetical_state(scenario, schedule, task, machine, version, finish_est,
                         cache.exec_energy(task, machine, version));
  return objective_value(weights, state, totals, aet_sign);
}

ObjectiveTerms score_candidate_terms(const workload::Scenario& scenario,
                                     const sim::Schedule& schedule,
                                     const Weights& weights,
                                     const ObjectiveTotals& totals, TaskId task,
                                     MachineId machine, VersionKind version,
                                     Cycles earliest, AetSign aet_sign) {
  const Cycles duration = scenario.exec_cycles(task, machine, version);
  const Cycles finish_est =
      std::max(earliest, schedule.machine_ready(machine)) + duration;
  return score_candidate_terms_with_finish(scenario, schedule, weights, totals,
                                           task, machine, version, finish_est,
                                           aet_sign);
}

ObjectiveTerms score_candidate_terms_with_finish(
    const workload::Scenario& scenario, const sim::Schedule& schedule,
    const Weights& weights, const ObjectiveTotals& totals, TaskId task,
    MachineId machine, VersionKind version, Cycles finish_est, AetSign aet_sign) {
  const ObjectiveState state =
      hypothetical_state(scenario, schedule, task, machine, version, finish_est,
                         exec_energy(scenario, task, machine, version));
  return objective_terms(weights, state, totals, aet_sign);
}

// --- batched SoA scoring -----------------------------------------------

void CandidateBatch::clear() noexcept {
  // Columns keep their high-water storage; only the logical count resets.
  count_ = 0;
}

void CandidateBatch::reserve(std::size_t n) {
  task.reserve(n);
  finish_secondary.reserve(n);
  finish_primary.reserve(n);
  tec_delta_secondary.reserve(n);
  tec_delta_primary.reserve(n);
  primary_allowed.reserve(n);
}

std::size_t build_candidate_batch(const ScenarioCache& cache,
                                  const workload::Scenario& scenario,
                                  const sim::Schedule& schedule,
                                  std::span<const TaskId> ready,
                                  MachineId machine, Cycles earliest,
                                  const std::vector<std::uint8_t>* secondary_only,
                                  CandidateBatch& batch) {
  batch.machine = machine;
  // Hoisted per-machine state: pure during a pool build. The admission
  // comparison and the finish base reproduce version_fits_energy and
  // score_candidate exactly (available + eps is the scalar path's right-hand
  // side; max(earliest, ready) is integer — hoisting is exact).
  batch.headroom = schedule.energy().available(machine) + kEnergyFitEps;
  batch.start_base = std::max(earliest, schedule.machine_ready(machine));
  const auto& receiver = scenario.grid.machine(machine);

  // Grow the gather columns to the high-water ready-set size and fill
  // through raw pointers: a push_back per column per slot re-checks capacity
  // and bumps the end pointer six times per task, and at ~10ns/task gather
  // cost that bookkeeping is measurable. Growth is monotone — shrinking to
  // the slot count and regrowing next build would value-initialize (memset)
  // the regrown tail on every pool build, which the SLRH driver pays
  // thousands of times per run.
  const std::size_t cap = ready.size();
  if (batch.task.size() < cap) {
    batch.task.resize(cap);
    batch.finish_secondary.resize(cap);
    batch.finish_primary.resize(cap);
    batch.tec_delta_secondary.resize(cap);
    batch.tec_delta_primary.resize(cap);
    batch.primary_allowed.resize(cap);
  }
  TaskId* const col_task = batch.task.data();
  double* const col_fs = batch.finish_secondary.data();
  double* const col_fp = batch.finish_primary.data();
  double* const col_ts = batch.tec_delta_secondary.data();
  double* const col_tp = batch.tec_delta_primary.data();
  std::uint8_t* const col_allowed = batch.primary_allowed.data();
  const double headroom = batch.headroom;
  const Cycles start_base = batch.start_base;

  std::size_t slot = 0;
  std::size_t rejected_energy = 0;
  for (const TaskId task : ready) {
    const double need_s = cache.energy_need(task, machine, VersionKind::Secondary);
    if (!(need_s <= headroom)) {
      ++rejected_energy;
      continue;
    }
    const double need_p = cache.energy_need(task, machine, VersionKind::Primary);
    const bool degraded =
        secondary_only != nullptr &&
        (*secondary_only)[static_cast<std::size_t>(task)] != 0;

    // One parent walk feeds both versions' tec-delta chains: each chain
    // starts from its version's exec energy and adds the identical transfer
    // energies in parent order — the scalar accumulation order, per version.
    double tec_s = cache.exec_energy(task, machine, VersionKind::Secondary);
    double tec_p = cache.exec_energy(task, machine, VersionKind::Primary);
    for (const TaskId parent : scenario.dag.parents(task)) {
      AHG_EXPECTS_MSG(schedule.is_assigned(parent), "scoring with unassigned parent");
      const auto& pa = schedule.assignment(parent);
      if (pa.machine == machine) continue;
      const double bits = scenario.edge_bits(parent, task, pa.version);
      if (bits <= 0.0) continue;
      const auto& sender = scenario.grid.machine(pa.machine);
      const double transfer =
          sim::transfer_energy(sender, sim::transfer_cycles(bits, sender, receiver));
      tec_s += transfer;
      tec_p += transfer;
    }

    col_task[slot] = task;
    // Exact integer finish estimates, converted once (values < 2^53, so the
    // conversion is lossless — see the CandidateBatch doc comment).
    col_fs[slot] = static_cast<double>(
        start_base + cache.exec_cycles(task, machine, VersionKind::Secondary));
    col_fp[slot] = static_cast<double>(
        start_base + cache.exec_cycles(task, machine, VersionKind::Primary));
    col_ts[slot] = tec_s;
    col_tp[slot] = tec_p;
    col_allowed[slot] =
        !degraded && need_p <= headroom ? std::uint8_t{1} : std::uint8_t{0};
    ++slot;
  }
  batch.count_ = slot;
  return rejected_energy;
}

void score_batch(CandidateBatch& batch, const Weights& weights,
                 const ObjectiveTotals& totals, std::size_t t100_base,
                 double tec_base, Cycles aet_base, AetSign aet_sign) {
  AHG_EXPECTS_MSG(totals.num_tasks > 0, "objective needs |T| > 0");
  AHG_EXPECTS_MSG(totals.tse > 0.0, "objective needs TSE > 0");
  AHG_EXPECTS_MSG(totals.tau > 0, "objective needs tau > 0");
  const std::size_t n = batch.size();
  if (batch.score_secondary.size() < n) {
    batch.score_secondary.resize(n);
    batch.score_primary.resize(n);
    batch.version.resize(n);
    batch.score.resize(n);
  }

  // Per-batch constant subtrees of objective_value's expression, hoisted:
  // a batch has exactly two possible t100 terms (secondary leaves t100,
  // primary adds one) and one sign*gamma product. Each is computed by the
  // scalar path's exact operations, so reusing the resulting doubles keeps
  // every per-slot score bit-identical to objective_value.
  const double num_tasks = static_cast<double>(totals.num_tasks);
  const double tau = static_cast<double>(totals.tau);
  const double alpha_t100_s =
      weights.alpha * (static_cast<double>(t100_base) / num_tasks);
  const double alpha_t100_p =
      weights.alpha * (static_cast<double>(t100_base + 1) / num_tasks);
  const double sign_gamma =
      static_cast<double>(static_cast<int>(aet_sign)) * weights.gamma;

  // Two passes so the arithmetic loop is a pure double pipeline the
  // compiler can keep in SIMD lanes (the divisions dominate the kernel, and
  // packed division is IEEE correctly-rounded — identical bits to the
  // scalar path). std::max over the exactly-converted finish estimates
  // reproduces the integer max's value bit for bit (conversion is exact and
  // monotone). The select pass carries no divisions and costs little.
  const double aet_floor = static_cast<double>(aet_base);
  const double beta = weights.beta;
  const double tse = totals.tse;
  const double* const tds = batch.tec_delta_secondary.data();
  const double* const tdp = batch.tec_delta_primary.data();
  const double* const fs = batch.finish_secondary.data();
  const double* const fp = batch.finish_primary.data();
  double* const out_s = batch.score_secondary.data();
  double* const out_p = batch.score_primary.data();
  for (std::size_t i = 0; i < n; ++i) {
    const double tec_s = tec_base + tds[i];
    const double tec_p = tec_base + tdp[i];
    const double aet_s = std::max(aet_floor, fs[i]);
    const double aet_p = std::max(aet_floor, fp[i]);
    out_s[i] = alpha_t100_s - beta * (tec_s / tse) + sign_gamma * (aet_s / tau);
    out_p[i] = alpha_t100_p - beta * (tec_p / tse) + sign_gamma * (aet_p / tau);
  }
  for (std::size_t i = 0; i < n; ++i) {
    // Admission classification by select: primary iff allowed (degrade mask
    // + primary admission energy, gathered) and it beats secondary. The
    // primary score is computed unconditionally but only SELECTED when the
    // scalar path would have computed it — same choice, same bits.
    const bool pick_primary =
        batch.primary_allowed[i] != 0 && out_p[i] >= out_s[i];
    batch.version[i] = pick_primary ? VersionKind::Primary : VersionKind::Secondary;
    batch.score[i] = pick_primary ? out_p[i] : out_s[i];
  }
}

}  // namespace ahg::core
