#include "core/scoring.hpp"

#include <algorithm>

#include "core/feasibility.hpp"
#include "core/scenario_cache.hpp"
#include "sim/comm.hpp"
#include "support/contract.hpp"

namespace ahg::core {

ObjectiveTotals objective_totals(const workload::Scenario& scenario) {
  return ObjectiveTotals{scenario.num_tasks(), scenario.grid.total_system_energy(),
                         scenario.tau};
}

double score_candidate(const workload::Scenario& scenario,
                       const sim::Schedule& schedule, const Weights& weights,
                       const ObjectiveTotals& totals, TaskId task,
                       MachineId machine, VersionKind version, Cycles earliest,
                       AetSign aet_sign) {
  const Cycles duration = scenario.exec_cycles(task, machine, version);
  const Cycles finish_est =
      std::max(earliest, schedule.machine_ready(machine)) + duration;
  return score_candidate_with_finish(scenario, schedule, weights, totals, task,
                                     machine, version, finish_est, aet_sign);
}

namespace {

/// The global state the schedule WOULD have if (task, version) were mapped
/// to machine finishing at finish_est — the quantity both the scalar score
/// and the traced term breakdown evaluate the objective on. `task_exec_energy`
/// is exec_energy(scenario, task, machine, version), supplied by the caller
/// so the cached overloads can feed the precomputed (bit-identical) value.
ObjectiveState hypothetical_state(const workload::Scenario& scenario,
                                  const sim::Schedule& schedule, TaskId task,
                                  MachineId machine, VersionKind version,
                                  Cycles finish_est, double task_exec_energy) {
  double tec_delta = task_exec_energy;
  for (const TaskId parent : scenario.dag.parents(task)) {
    AHG_EXPECTS_MSG(schedule.is_assigned(parent), "scoring with unassigned parent");
    const auto& pa = schedule.assignment(parent);
    if (pa.machine == machine) continue;
    const double bits = scenario.edge_bits(parent, task, pa.version);
    if (bits <= 0.0) continue;
    const auto& sender = scenario.grid.machine(pa.machine);
    const auto& receiver = scenario.grid.machine(machine);
    tec_delta += sim::transfer_energy(sender, sim::transfer_cycles(bits, sender, receiver));
  }

  ObjectiveState state;
  state.t100 = schedule.t100() + (version == VersionKind::Primary ? 1 : 0);
  state.tec = schedule.tec() + tec_delta;
  state.aet = std::max(schedule.aet(), finish_est);
  return state;
}

}  // namespace

double score_candidate(const ScenarioCache& cache,
                       const workload::Scenario& scenario,
                       const sim::Schedule& schedule, const Weights& weights,
                       const ObjectiveTotals& totals, TaskId task,
                       MachineId machine, VersionKind version, Cycles earliest,
                       AetSign aet_sign) {
  const Cycles duration = cache.exec_cycles(task, machine, version);
  const Cycles finish_est =
      std::max(earliest, schedule.machine_ready(machine)) + duration;
  return score_candidate_with_finish(cache, scenario, schedule, weights, totals,
                                     task, machine, version, finish_est, aet_sign);
}

double score_candidate_with_finish(const workload::Scenario& scenario,
                                   const sim::Schedule& schedule,
                                   const Weights& weights,
                                   const ObjectiveTotals& totals, TaskId task,
                                   MachineId machine, VersionKind version,
                                   Cycles finish_est, AetSign aet_sign) {
  const ObjectiveState state =
      hypothetical_state(scenario, schedule, task, machine, version, finish_est,
                         exec_energy(scenario, task, machine, version));
  return objective_value(weights, state, totals, aet_sign);
}

double score_candidate_with_finish(const ScenarioCache& cache,
                                   const workload::Scenario& scenario,
                                   const sim::Schedule& schedule,
                                   const Weights& weights,
                                   const ObjectiveTotals& totals, TaskId task,
                                   MachineId machine, VersionKind version,
                                   Cycles finish_est, AetSign aet_sign) {
  const ObjectiveState state =
      hypothetical_state(scenario, schedule, task, machine, version, finish_est,
                         cache.exec_energy(task, machine, version));
  return objective_value(weights, state, totals, aet_sign);
}

ObjectiveTerms score_candidate_terms(const workload::Scenario& scenario,
                                     const sim::Schedule& schedule,
                                     const Weights& weights,
                                     const ObjectiveTotals& totals, TaskId task,
                                     MachineId machine, VersionKind version,
                                     Cycles earliest, AetSign aet_sign) {
  const Cycles duration = scenario.exec_cycles(task, machine, version);
  const Cycles finish_est =
      std::max(earliest, schedule.machine_ready(machine)) + duration;
  return score_candidate_terms_with_finish(scenario, schedule, weights, totals,
                                           task, machine, version, finish_est,
                                           aet_sign);
}

ObjectiveTerms score_candidate_terms_with_finish(
    const workload::Scenario& scenario, const sim::Schedule& schedule,
    const Weights& weights, const ObjectiveTotals& totals, TaskId task,
    MachineId machine, VersionKind version, Cycles finish_est, AetSign aet_sign) {
  const ObjectiveState state =
      hypothetical_state(scenario, schedule, task, machine, version, finish_est,
                         exec_energy(scenario, task, machine, version));
  return objective_terms(weights, state, totals, aet_sign);
}

}  // namespace ahg::core
