#pragma once
// Candidate scoring against the global objective function.
//
// Both SLRH and Max-Max order candidates by the objective value the global
// state WOULD have if the candidate were committed. Computing the exact
// start time of every candidate would require a full communication-slot
// search per candidate per machine; like the paper (which orders the pool
// first and only then finds the first candidate startable within the
// horizon), we score with a cheap finish estimate — max(lower_bound,
// machine ready time) + execution time — and run the exact placement search
// only for the candidates actually considered for selection.

#include <cstdint>
#include <span>
#include <vector>

#include "core/objective.hpp"
#include "sim/schedule.hpp"
#include "support/units.hpp"
#include "support/version.hpp"
#include "workload/scenario.hpp"

namespace ahg::core {

class ScenarioCache;

/// Objective-normalisation constants for a scenario.
ObjectiveTotals objective_totals(const workload::Scenario& scenario);

/// Hypothetical global objective if (task, version) were mapped to machine.
/// `earliest` is a lower bound on the start time (SLRH: the current clock;
/// Max-Max: 0). TEC' adds exec energy plus the exact energies of the
/// incoming transfers (computable without slot search); AET' uses the
/// finish estimate described above.
double score_candidate(const workload::Scenario& scenario,
                       const sim::Schedule& schedule, const Weights& weights,
                       const ObjectiveTotals& totals, TaskId task,
                       MachineId machine, VersionKind version, Cycles earliest,
                       AetSign aet_sign = AetSign::Reward);

/// Cache-aware form: duration and execution energy come from the precomputed
/// tables (bit-identical values); the incoming-transfer walk — which depends
/// on where parents actually landed — stays exact.
double score_candidate(const ScenarioCache& cache,
                       const workload::Scenario& scenario,
                       const sim::Schedule& schedule, const Weights& weights,
                       const ObjectiveTotals& totals, TaskId task,
                       MachineId machine, VersionKind version, Cycles earliest,
                       AetSign aet_sign = AetSign::Reward);

/// Same hypothetical-objective computation, but with the finish time
/// supplied by the caller. Max-Max uses this with a hole-aware earliest-fit
/// estimate (its placements backfill schedule holes, so the append-style
/// estimate of score_candidate would misprice every backfilled candidate).
double score_candidate_with_finish(const workload::Scenario& scenario,
                                   const sim::Schedule& schedule,
                                   const Weights& weights,
                                   const ObjectiveTotals& totals, TaskId task,
                                   MachineId machine, VersionKind version,
                                   Cycles finish_est,
                                   AetSign aet_sign = AetSign::Reward);

double score_candidate_with_finish(const ScenarioCache& cache,
                                   const workload::Scenario& scenario,
                                   const sim::Schedule& schedule,
                                   const Weights& weights,
                                   const ObjectiveTotals& totals, TaskId task,
                                   MachineId machine, VersionKind version,
                                   Cycles finish_est,
                                   AetSign aet_sign = AetSign::Reward);

/// Decision-trace variants: the same hypothetical objective, decomposed into
/// its weighted terms. Used only on the telemetry path (a sink is attached);
/// the comparison/ordering path keeps the scalar functions above.
ObjectiveTerms score_candidate_terms(const workload::Scenario& scenario,
                                     const sim::Schedule& schedule,
                                     const Weights& weights,
                                     const ObjectiveTotals& totals, TaskId task,
                                     MachineId machine, VersionKind version,
                                     Cycles earliest,
                                     AetSign aet_sign = AetSign::Reward);

ObjectiveTerms score_candidate_terms_with_finish(
    const workload::Scenario& scenario, const sim::Schedule& schedule,
    const Weights& weights, const ObjectiveTotals& totals, TaskId task,
    MachineId machine, VersionKind version, Cycles finish_est,
    AetSign aet_sign = AetSign::Reward);

// --- batched SoA scoring -----------------------------------------------
//
// One SLRH pool build evaluates every ready task against a single machine at
// a single clock. The scalar path pays two score_candidate call chains per
// candidate — each re-reading machine state, re-walking the parents and
// re-dividing the objective normalisers. The batched path splits the work
// into a GATHER stage (build_candidate_batch: admission + one parent walk
// per task, filling contiguous structure-of-arrays columns from the
// ScenarioCache tables and the per-machine schedule state) and a SCORE
// kernel (score_batch: branch-free arithmetic over the columns, admission
// classification by conditional select).
//
// Bit-identity contract (enforced by tests/test_determinism.cpp and the
// property tests in tests/test_scoring.cpp): every double in the batch is
// produced by the SAME expression in the SAME operation order as the scalar
// path — the tec-delta accumulation per version starts from the version's
// exec energy and adds the identical per-parent transfer energies in parent
// order; the finish estimate is max(earliest, machine_ready) + duration with
// the max hoisted (integers — exact); the objective is evaluated with
// objective_value's exact expression tree, with the two per-batch-constant
// t100 terms (t100 and t100+1 over |T|) and the sign*gamma product hoisted
// as whole subtrees (hoisting a subtree reuses its identical double). The
// scalar path stays available behind SlrhParams::scalar_score as the diff
// baseline.

/// Structure-of-arrays candidate columns for one (machine, clock) pool
/// build. Slots hold the ready tasks that passed secondary-version admission
/// (the pool membership rule); per-version columns are indexed by slot.
/// Reused across builds: columns grow to the high-water ready-set size and
/// never shrink, so steady-state filling is allocation- AND memset-free (a
/// shrink-regrow cycle would value-initialize the regrown tail on every
/// build). Only slots [0, size()) are meaningful; entries beyond are stale.
struct CandidateBatch {
  std::vector<TaskId> task;

  // Gather outputs (pure reads from ScenarioCache / schedule state). Finish
  // estimates are stored as doubles: the int64 cycle value is far below
  // 2^53, so the conversion is exact, and max over exactly-converted values
  // equals the converted integer max bit for bit — which lets the score
  // kernel stay in pure double arithmetic (and the compiler keep it in
  // divpd/maxpd lanes) without breaking the bit-identity contract.
  std::vector<double> finish_secondary, finish_primary;    ///< finish estimates
  std::vector<double> tec_delta_secondary, tec_delta_primary;  ///< exec + incoming-transfer energy
  std::vector<std::uint8_t> primary_allowed;  ///< degrade mask + primary admission

  // Score-kernel outputs.
  std::vector<double> score_secondary, score_primary;
  std::vector<VersionKind> version;  ///< objective-maximising version
  std::vector<double> score;         ///< its score

  // Per-batch scalars (hoisted per-machine state, recorded for diagnostics).
  MachineId machine = kInvalidMachine;
  Cycles start_base = 0;      ///< max(earliest, machine_ready)
  double headroom = 0.0;      ///< available battery + kEnergyFitEps

  std::size_t size() const noexcept { return count_; }
  void clear() noexcept;
  void reserve(std::size_t n);

  /// Logical slot count (set by build_candidate_batch); the columns' vector
  /// sizes are the high-water capacity, not the slot count.
  std::size_t count_ = 0;
};

/// Gather stage: fill `batch` with every task in `ready` whose secondary
/// version fits the machine's available energy (identical admission verdicts
/// to version_fits_energy). Walks each task's parents ONCE, accumulating
/// both versions' tec-delta chains simultaneously. `secondary_only` non-null
/// masks primary consideration per task (churn degrade policy). Returns the
/// number of tasks rejected by the admission energy check.
std::size_t build_candidate_batch(const ScenarioCache& cache,
                                  const workload::Scenario& scenario,
                                  const sim::Schedule& schedule,
                                  std::span<const TaskId> ready,
                                  MachineId machine, Cycles earliest,
                                  const std::vector<std::uint8_t>* secondary_only,
                                  CandidateBatch& batch);

/// Score kernel: compute both versions' scores and the admission
/// classification (primary iff allowed and >= secondary) for every slot,
/// branch-free over the columns. Scores are bit-identical to
/// score_candidate; the classification matches the scalar pool build's
/// version choice exactly.
void score_batch(CandidateBatch& batch, const Weights& weights,
                 const ObjectiveTotals& totals, std::size_t t100_base,
                 double tec_base, Cycles aet_base,
                 AetSign aet_sign = AetSign::Reward);

}  // namespace ahg::core
