#pragma once
// Candidate scoring against the global objective function.
//
// Both SLRH and Max-Max order candidates by the objective value the global
// state WOULD have if the candidate were committed. Computing the exact
// start time of every candidate would require a full communication-slot
// search per candidate per machine; like the paper (which orders the pool
// first and only then finds the first candidate startable within the
// horizon), we score with a cheap finish estimate — max(lower_bound,
// machine ready time) + execution time — and run the exact placement search
// only for the candidates actually considered for selection.

#include "core/objective.hpp"
#include "sim/schedule.hpp"
#include "support/units.hpp"
#include "support/version.hpp"
#include "workload/scenario.hpp"

namespace ahg::core {

class ScenarioCache;

/// Objective-normalisation constants for a scenario.
ObjectiveTotals objective_totals(const workload::Scenario& scenario);

/// Hypothetical global objective if (task, version) were mapped to machine.
/// `earliest` is a lower bound on the start time (SLRH: the current clock;
/// Max-Max: 0). TEC' adds exec energy plus the exact energies of the
/// incoming transfers (computable without slot search); AET' uses the
/// finish estimate described above.
double score_candidate(const workload::Scenario& scenario,
                       const sim::Schedule& schedule, const Weights& weights,
                       const ObjectiveTotals& totals, TaskId task,
                       MachineId machine, VersionKind version, Cycles earliest,
                       AetSign aet_sign = AetSign::Reward);

/// Cache-aware form: duration and execution energy come from the precomputed
/// tables (bit-identical values); the incoming-transfer walk — which depends
/// on where parents actually landed — stays exact.
double score_candidate(const ScenarioCache& cache,
                       const workload::Scenario& scenario,
                       const sim::Schedule& schedule, const Weights& weights,
                       const ObjectiveTotals& totals, TaskId task,
                       MachineId machine, VersionKind version, Cycles earliest,
                       AetSign aet_sign = AetSign::Reward);

/// Same hypothetical-objective computation, but with the finish time
/// supplied by the caller. Max-Max uses this with a hole-aware earliest-fit
/// estimate (its placements backfill schedule holes, so the append-style
/// estimate of score_candidate would misprice every backfilled candidate).
double score_candidate_with_finish(const workload::Scenario& scenario,
                                   const sim::Schedule& schedule,
                                   const Weights& weights,
                                   const ObjectiveTotals& totals, TaskId task,
                                   MachineId machine, VersionKind version,
                                   Cycles finish_est,
                                   AetSign aet_sign = AetSign::Reward);

double score_candidate_with_finish(const ScenarioCache& cache,
                                   const workload::Scenario& scenario,
                                   const sim::Schedule& schedule,
                                   const Weights& weights,
                                   const ObjectiveTotals& totals, TaskId task,
                                   MachineId machine, VersionKind version,
                                   Cycles finish_est,
                                   AetSign aet_sign = AetSign::Reward);

/// Decision-trace variants: the same hypothetical objective, decomposed into
/// its weighted terms. Used only on the telemetry path (a sink is attached);
/// the comparison/ordering path keeps the scalar functions above.
ObjectiveTerms score_candidate_terms(const workload::Scenario& scenario,
                                     const sim::Schedule& schedule,
                                     const Weights& weights,
                                     const ObjectiveTotals& totals, TaskId task,
                                     MachineId machine, VersionKind version,
                                     Cycles earliest,
                                     AetSign aet_sign = AetSign::Reward);

ObjectiveTerms score_candidate_terms_with_finish(
    const workload::Scenario& scenario, const sim::Schedule& schedule,
    const Weights& weights, const ObjectiveTotals& totals, TaskId task,
    MachineId machine, VersionKind version, Cycles finish_est,
    AetSign aet_sign = AetSign::Reward);

}  // namespace ahg::core
