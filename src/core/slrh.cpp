#include "core/slrh.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <vector>

#include "core/feasibility.hpp"
#include "core/frontier.hpp"
#include "core/placement.hpp"
#include "core/scenario_cache.hpp"
#include "core/scoring.hpp"
#include "core/sweep.hpp"
#include "support/flight_recorder.hpp"
#include "support/profile.hpp"
#include "support/runtime_profiler.hpp"
#include "support/stopwatch.hpp"
#include "support/task_ledger.hpp"
#include "support/thread_pool.hpp"

namespace ahg::core {

std::string to_string(SlrhVariant variant) {
  switch (variant) {
    case SlrhVariant::V1: return "SLRH-1";
    case SlrhVariant::V2: return "SLRH-2";
    case SlrhVariant::V3: return "SLRH-3";
  }
  return "SLRH-?";
}

namespace {

/// Telemetry handles for one drive_slrh window, all nullable. Resolved once
/// per call so the inner loop never touches the registry's name map. With
/// params.sink == nullptr every member stays null and each instrumentation
/// point reduces to a single predictable branch.
struct SlrhTelemetry {
  obs::Sink* sink = nullptr;
  obs::Histogram* pool_build = nullptr;      ///< build_pool wall time
  obs::Histogram* scoring = nullptr;         ///< scoring share of a pool build
  obs::Histogram* placement = nullptr;       ///< map_first_startable wall time
  obs::Histogram* earliest_start = nullptr;  ///< plan_placement share of placement
  obs::Histogram* sweep_parallel = nullptr;  ///< speculative fan-out wall time/tick
  obs::Counter* pools = nullptr;
  obs::Counter* maps = nullptr;
  obs::Counter* timesteps = nullptr;
  obs::Counter* reuse_hits = nullptr;    ///< machine scopes skipped via verdicts
  obs::Counter* reuse_misses = nullptr;  ///< scopes that had to build
  obs::Counter* spec_aborts = nullptr;   ///< speculative pools discarded

  bool tracing(obs::EventKind kind) const noexcept {
    return sink != nullptr && sink->wants(kind);
  }

  static SlrhTelemetry resolve(obs::Sink* sink) {
    SlrhTelemetry t;
    t.sink = sink;
    obs::MetricsRegistry* metrics = sink != nullptr ? sink->metrics() : nullptr;
    if (metrics != nullptr) {
      t.pool_build = obs::phase_histogram(metrics, "slrh.pool_build_seconds");
      t.scoring = obs::phase_histogram(metrics, "slrh.scoring_seconds");
      t.placement = obs::phase_histogram(metrics, "slrh.placement_seconds");
      t.earliest_start = obs::phase_histogram(metrics, "slrh.earliest_start_seconds");
      t.sweep_parallel = obs::phase_histogram(metrics, "slrh.sweep_parallel_seconds");
      t.pools = &metrics->counter("slrh.pools_built");
      t.maps = &metrics->counter("slrh.map_decisions");
      t.timesteps = &metrics->counter("slrh.timesteps");
      t.reuse_hits = &metrics->counter("slrh.pool_reuse_hits");
      t.reuse_misses = &metrics->counter("slrh.pool_reuse_misses");
      t.spec_aborts = &metrics->counter("slrh.spec_aborts");
    }
    return t;
  }
};

/// Accumulates sub-phase time across many small sections within one scope
/// (per-candidate scoring, per-candidate placement planning) and reports the
/// total as a single histogram observation. Null histogram = no clock reads.
class SubPhaseAccumulator {
 public:
  explicit SubPhaseAccumulator(obs::Histogram* histogram) noexcept
      : histogram_(histogram) {}

  ~SubPhaseAccumulator() {
    if (histogram_ != nullptr && seconds_ > 0.0) histogram_->observe(seconds_);
  }

  template <typename F>
  auto time(F&& fn) {
    if (histogram_ == nullptr) return fn();
    const auto t0 = std::chrono::steady_clock::now();
    auto result = fn();
    seconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return result;
  }

 private:
  obs::Histogram* histogram_;
  double seconds_ = 0.0;
};

/// True when the churn degrade policy has pinned this task to its secondary
/// version. Null mask (the default everywhere outside churn recovery) makes
/// this a constant false — no behaviour change.
bool degraded_to_secondary(const SlrhParams& params, TaskId task) noexcept {
  return params.secondary_only != nullptr &&
         (*params.secondary_only)[static_cast<std::size_t>(task)] != 0;
}

/// Order the candidate pool by score descending (ties: smaller task id, for
/// determinism). Scores are distinct per task, so the result is independent
/// of the insertion order — scan- and frontier-built pools sort identically.
void sort_pool(std::vector<SlrhPoolCandidate>& pool) {
  std::sort(pool.begin(), pool.end(),
            [](const SlrhPoolCandidate& a, const SlrhPoolCandidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.task < b.task;
            });
}

/// Per-(machine, clock) memo of candidates whose exact placement was proven
/// beyond the horizon. Within one such scope a commit can only ADD channel
/// bookings and never reassigns a candidate's (already mapped) parents, so
/// plan_placement's arrival is monotonically non-decreasing across the
/// variant-2/3 re-walks — a candidate once beyond the horizon at this clock
/// stays beyond it, and re-planning it is pure waste. The arrival is also
/// version-independent (incoming edge volumes depend on the PARENTS'
/// committed versions), so one bit per task suffices. Generation stamping
/// makes scope resets O(1).
class BeyondHorizonMemo {
 public:
  explicit BeyondHorizonMemo(std::size_t num_tasks) : stamp_(num_tasks, 0) {}

  void begin_scope() noexcept { ++generation_; }

  bool contains(TaskId task) const noexcept {
    return stamp_[static_cast<std::size_t>(task)] == generation_;
  }

  void insert(TaskId task) noexcept {
    stamp_[static_cast<std::size_t>(task)] = generation_;
  }

 private:
  std::vector<std::uint64_t> stamp_;
  std::uint64_t generation_ = 1;
};

/// What a traced map_first_startable call saw: every candidate it examined
/// (with the rejection reason for the passed-over ones) and, when a commit
/// happened, the committed placement with its objective-term breakdown.
struct MapTrace {
  std::vector<obs::CandidateTrace> candidates;
  ObjectiveTerms terms;
  VersionKind version = VersionKind::Secondary;
  Cycles start = 0;
  Cycles finish = 0;
};

/// Walk the ordered pool and commit the first candidate whose exact
/// earliest start (communication included) falls within the horizon.
/// Returns the index into `pool` of the mapped candidate, or npos.
/// `cache` non-null reads admission energies from the precomputed tables.
/// `memo` non-null skips re-planning candidates already proven
/// beyond-horizon in this (machine, clock) scope.
/// `trace` non-null records the decision (telemetry path only).
/// `committed` non-null receives a copy of the committed plan (task-ledger
/// and sweep-accelerator paths).
/// `min_beyond` non-null accumulates (running min) the arrival of every
/// candidate this walk proved beyond the horizon — the raw material for the
/// cross-tick skip verdicts (core/sweep.hpp). Memo-skipped candidates were
/// accumulated by the earlier walk that inserted them; arrivals only move
/// later within a scope, so those remain valid lower bounds.
std::size_t map_first_startable(const workload::Scenario& scenario,
                                sim::Schedule& schedule, const SlrhParams& params,
                                const ObjectiveTotals& totals,
                                const std::vector<SlrhPoolCandidate>& pool,
                                MachineId machine, Cycles clock,
                                const SlrhTelemetry& telemetry,
                                const ScenarioCache* cache, BeyondHorizonMemo* memo,
                                std::size_t skip_before = 0,
                                MapTrace* trace = nullptr,
                                PlacementPlan* committed = nullptr,
                                Cycles* min_beyond = nullptr) {
  obs::ProfileScope placement_scope(telemetry.placement);
  SubPhaseAccumulator earliest_time(telemetry.earliest_start);
  const auto fits = [&](TaskId task, VersionKind version) {
    return cache != nullptr
               ? version_fits_energy(*cache, schedule, task, machine, version)
               : version_fits_energy(scenario, schedule, task, machine, version);
  };
  for (std::size_t k = skip_before; k < pool.size(); ++k) {
    const SlrhPoolCandidate& cand = pool[k];
    if (schedule.is_assigned(cand.task)) {
      if (trace != nullptr) {
        trace->candidates.push_back(
            {cand.task, cand.version, cand.score, "already_assigned"});
      }
      continue;
    }
    // Re-check energy: earlier commits in this timestep (variants 2/3) may
    // have consumed what the pool admission saw.
    VersionKind version = cand.version;
    if (!fits(cand.task, version)) {
      if (version == VersionKind::Primary &&
          fits(cand.task, VersionKind::Secondary)) {
        version = VersionKind::Secondary;
      } else {
        if (trace != nullptr) {
          trace->candidates.push_back(
              {cand.task, cand.version, cand.score, "energy_exhausted"});
        }
        continue;
      }
    }
    if (memo != nullptr && memo->contains(cand.task)) {
      // Proven beyond-horizon earlier in this (machine, clock) scope; the
      // arrival can only have moved later since. Same decision, no re-plan.
      if (trace != nullptr) {
        trace->candidates.push_back(
            {cand.task, cand.version, cand.score, "beyond_horizon"});
      }
      continue;
    }
    const PlacementPlan plan = earliest_time.time([&] {
      return plan_placement(scenario, schedule, cand.task, machine, version, clock);
    });
    // The horizon test uses the earliest possible start "given precedence
    // and communication requirements" (paper §IV) — i.e. data readiness on
    // this machine, NOT the machine's queue. For variant 1 the two coincide
    // (the machine is idle at the clock); for variants 2/3 this is what lets
    // them stack a queue of data-ready subtasks onto one machine within a
    // single timestep — and is exactly why SLRH-2 overloads machines and
    // rarely meets the constraints (paper §VII).
    const Cycles data_ready = std::max(clock, plan.arrival);
    if (data_ready <= clock + params.horizon) {
      if (trace != nullptr) {
        // Capture the decision against the PRE-commit schedule state: the
        // breakdown of the hypothetical objective this choice maximised.
        trace->terms = score_candidate_terms(scenario, schedule, params.weights,
                                             totals, cand.task, machine, version,
                                             clock, params.aet_sign);
        trace->version = version;
        trace->start = plan.start;
        trace->finish = plan.finish();
        trace->candidates.push_back({cand.task, version, cand.score, ""});
      }
      commit_placement(scenario, schedule, plan);
      if (committed != nullptr) *committed = plan;
      return k;
    }
    if (min_beyond != nullptr && plan.arrival < *min_beyond) {
      *min_beyond = plan.arrival;
    }
    if (memo != nullptr) memo->insert(cand.task);
    if (trace != nullptr) {
      trace->candidates.push_back(
          {cand.task, cand.version, cand.score, "beyond_horizon"});
    }
  }
  return static_cast<std::size_t>(-1);
}

}  // namespace

std::vector<SlrhPoolCandidate> build_slrh_pool_scan(
    const workload::Scenario& scenario, const sim::Schedule& schedule,
    const SlrhParams& params, const ObjectiveTotals& totals, MachineId machine,
    Cycles clock, SlrhPoolRejects* rejects, obs::Histogram* scoring_histogram) {
  SubPhaseAccumulator scoring_time(scoring_histogram);
  std::vector<SlrhPoolCandidate> pool;
  const auto num_tasks = static_cast<TaskId>(scenario.num_tasks());
  for (TaskId task = 0; task < num_tasks; ++task) {
    // A subtask that has not arrived yet is invisible to the dynamic
    // heuristic (unlike the clairvoyant static baselines, which see the
    // whole application and only respect the release as a start bound).
    if (scenario.release(task) > clock) {
      if (rejects != nullptr) ++rejects->unreleased;
      continue;
    }
    if (rejects == nullptr) {
      if (!slrh_pool_admissible(scenario, schedule, task, machine)) continue;
    } else {
      const AdmissionOutcome outcome =
          classify_slrh_admission(scenario, schedule, task, machine);
      if (outcome != AdmissionOutcome::Admissible) {
        switch (outcome) {
          case AdmissionOutcome::AlreadyAssigned: ++rejects->assigned; break;
          case AdmissionOutcome::ParentsUnassigned: ++rejects->parents; break;
          case AdmissionOutcome::EnergyInfeasible: ++rejects->energy; break;
          case AdmissionOutcome::Admissible: break;
        }
        continue;
      }
    }

    // The pool admission guarantees the secondary version fits; the primary
    // version is only offered to the objective if its own worst-case energy
    // fits too.
    const SlrhPoolCandidate cand = scoring_time.time([&] {
      const double secondary_score =
          score_candidate(scenario, schedule, params.weights, totals, task, machine,
                          VersionKind::Secondary, clock, params.aet_sign);
      SlrhPoolCandidate c{task, VersionKind::Secondary, secondary_score};
      if (!degraded_to_secondary(params, task) &&
          version_fits_energy(scenario, schedule, task, machine,
                              VersionKind::Primary)) {
        const double primary_score =
            score_candidate(scenario, schedule, params.weights, totals, task,
                            machine, VersionKind::Primary, clock, params.aet_sign);
        if (primary_score >= secondary_score) {
          c.version = VersionKind::Primary;
          c.score = primary_score;
        }
      }
      return c;
    });
    pool.push_back(cand);
  }
  sort_pool(pool);
  return pool;
}

std::vector<SlrhPoolCandidate> build_slrh_pool_batched(
    const workload::Scenario& scenario, const ScenarioCache& cache,
    const ReadyFrontier& frontier, const sim::Schedule& schedule,
    const SlrhParams& params, const ObjectiveTotals& totals, MachineId machine,
    Cycles clock, SlrhPoolRejects* rejects, obs::Histogram* scoring_histogram,
    CandidateBatch* scratch) {
  SubPhaseAccumulator scoring_time(scoring_histogram);
  if (rejects != nullptr) {
    rejects->unreleased = frontier.num_unreleased();
    rejects->assigned = frontier.num_assigned_released();
    rejects->parents = frontier.num_parents_blocked();
  }
  CandidateBatch local;
  CandidateBatch& batch = scratch != nullptr ? *scratch : local;
  // The scoring histogram covers gather + kernel: both stages together do
  // the work the scalar path's per-candidate scoring lambda did (the
  // admission compare folded into the gather is noise). Telemetry only.
  std::vector<SlrhPoolCandidate> pool = scoring_time.time([&] {
    const std::size_t rejected_energy = build_candidate_batch(
        cache, scenario, schedule, frontier.ready(), machine, clock,
        params.secondary_only, batch);
    if (rejects != nullptr) rejects->energy = rejected_energy;
    score_batch(batch, params.weights, totals, schedule.t100(), schedule.tec(),
                schedule.aet(), params.aet_sign);
    std::vector<SlrhPoolCandidate> out;
    out.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      out.push_back({batch.task[i], batch.version[i], batch.score[i]});
    }
    return out;
  });
  sort_pool(pool);
  return pool;
}

std::vector<SlrhPoolCandidate> build_slrh_pool_frontier(
    const workload::Scenario& scenario, const ScenarioCache& cache,
    const ReadyFrontier& frontier, const sim::Schedule& schedule,
    const SlrhParams& params, const ObjectiveTotals& totals, MachineId machine,
    Cycles clock, SlrhPoolRejects* rejects, obs::Histogram* scoring_histogram) {
  SubPhaseAccumulator scoring_time(scoring_histogram);
  if (rejects != nullptr) {
    // The machine-independent tallies fall out of the frontier bookkeeping;
    // only the per-machine energy rejections need per-task evaluation.
    rejects->unreleased = frontier.num_unreleased();
    rejects->assigned = frontier.num_assigned_released();
    rejects->parents = frontier.num_parents_blocked();
  }
  std::vector<SlrhPoolCandidate> pool;
  for (const TaskId task : frontier.ready()) {
    if (!version_fits_energy(cache, schedule, task, machine,
                             VersionKind::Secondary)) {
      if (rejects != nullptr) ++rejects->energy;
      continue;
    }
    const SlrhPoolCandidate cand = scoring_time.time([&] {
      const double secondary_score =
          score_candidate(cache, scenario, schedule, params.weights, totals, task,
                          machine, VersionKind::Secondary, clock, params.aet_sign);
      SlrhPoolCandidate c{task, VersionKind::Secondary, secondary_score};
      if (!degraded_to_secondary(params, task) &&
          version_fits_energy(cache, schedule, task, machine,
                              VersionKind::Primary)) {
        const double primary_score = score_candidate(
            cache, scenario, schedule, params.weights, totals, task, machine,
            VersionKind::Primary, clock, params.aet_sign);
        if (primary_score >= secondary_score) {
          c.version = VersionKind::Primary;
          c.score = primary_score;
        }
      }
      return c;
    });
    pool.push_back(cand);
  }
  sort_pool(pool);
  return pool;
}

void drive_slrh(const workload::Scenario& scenario, const SlrhParams& params,
                sim::Schedule& schedule, Cycles start_clock, Cycles end_clock,
                MappingResult& result) {
  params.validate();
  AHG_EXPECTS_MSG(start_clock >= 0, "start clock must be non-negative");
  const ObjectiveTotals totals = objective_totals(scenario);
  constexpr auto npos = static_cast<std::size_t>(-1);
  const auto num_machines = static_cast<MachineId>(scenario.num_machines());

  const SlrhTelemetry telemetry = SlrhTelemetry::resolve(params.sink);
  const bool trace_pools = telemetry.tracing(obs::EventKind::PoolBuilt);
  const bool trace_maps = telemetry.tracing(obs::EventKind::MapDecision);
  const bool trace_stalls = telemetry.tracing(obs::EventKind::Stall);
  obs::FlightRecorder* recorder = params.recorder;
  obs::TaskLedger* ledger = params.ledger;
  const std::string heuristic_name = params.sink != nullptr || recorder != nullptr
                                         ? to_string(params.variant)
                                         : std::string();

  // Flight-recorder per-timestep accumulators (touched only with a recorder
  // attached; the null-recorder path never reads a clock). The overhead
  // budget (≤3% with a recorder ATTACHED, see bench_micro_kernels) shapes
  // this path too: step_t0 is set lazily by the tick's first pool build so
  // an idle tick costs no clock read, `scratch` is reused across ticks so
  // frame assembly is allocation-free after the first, and idle ticks are
  // decimated per Options::idle_stride (active ticks are always sampled).
  double step_t0 = 0.0;
  bool step_timed = false;
  double step_pool_seconds = 0.0;
  std::uint64_t step_pools = 0;
  std::uint64_t step_maps = 0;
  std::uint64_t step_last_pool = 0;
  std::uint64_t idle_ticks_unsampled = 0;
  std::uint64_t span_countdown = 1;  // countdown, not modulo: no div per build
  const std::uint64_t idle_stride =
      recorder != nullptr
          ? std::max<std::uint64_t>(std::uint64_t{1}, recorder->options().idle_stride)
          : std::uint64_t{1};
  const std::uint64_t span_stride =
      recorder != nullptr
          ? std::max<std::uint64_t>(std::uint64_t{1}, recorder->options().span_stride)
          : std::uint64_t{1};
  obs::Frame scratch;

  // Fast-path machinery (see DESIGN.md "Incremental frontier"): precomputed
  // pure-scenario tables, the incremental ready frontier, and the
  // beyond-horizon memo. legacy_scan disables all three, reproducing the
  // original scan-everything execution exactly.
  std::optional<ScenarioCache> local_cache;
  const ScenarioCache* cache = nullptr;
  std::optional<ReadyFrontier> frontier;
  std::optional<BeyondHorizonMemo> memo_storage;
  if (!params.legacy_scan) {
    cache = params.cache;
    if (cache == nullptr) {
      local_cache.emplace(scenario);
      cache = &*local_cache;
    }
    frontier.emplace(scenario, schedule);
    if (ledger != nullptr) frontier->set_ledger(ledger);
    memo_storage.emplace(scenario.num_tasks());
  }
  BeyondHorizonMemo* memo = memo_storage.has_value() ? &*memo_storage : nullptr;

  // SoA scratch for the batched score kernel, reused across every pool build
  // of the window (allocation-free steady state).
  CandidateBatch batch_scratch;

  // Sweep accelerator state (core/sweep.hpp): cross-tick skip verdicts and
  // speculative parallel pool builds. Both need the frontier as the epoch
  // source, so legacy_scan runs without either; a fresh context per drive
  // window means churn segment boundaries invalidate everything cached.
  const bool reuse_on = frontier.has_value() && params.pool_reuse;
  const std::size_t workers =
      params.sweep_parallel && frontier.has_value() ? ahg::global_pool_jobs() : 0;
  const bool spec_on = workers >= 2;
  std::optional<SweepContext> sweep_storage;
  if (reuse_on || spec_on) {
    sweep_storage.emplace(
        scenario.num_machines(),
        spec_on ? std::min<std::size_t>(workers * 2, std::size_t{64})
                : std::size_t{1});
  }
  SweepContext* sweep = sweep_storage.has_value() ? &*sweep_storage : nullptr;
  std::vector<MachineId> spec_pending;
  if (spec_on) spec_pending.reserve(scenario.num_machines());
  bool spec_tick = false;         // this tick ran a speculative fan-out
  std::uint64_t spec_serial = 0;  // commit serial at fan-out time
  std::uint64_t step_reused = 0;
  std::uint64_t step_aborts = 0;
  double step_sweep_seconds = 0.0;

  // Deferred per-pool side effects (ledger sweep, counters, trace event) —
  // shared by the inline build and the speculative consume, and applied
  // strictly on the serial walk either way.
  const auto account_pool = [&](const std::vector<SlrhPoolCandidate>& pool,
                                const SlrhPoolRejects& rejects, MachineId machine,
                                Cycles clock) {
    if (ledger != nullptr) {
      // First sighting per task is a relaxed load + early-out, so sweeping
      // the whole pool every build stays inside the ≤1.05x overhead budget.
      for (const SlrhPoolCandidate& cand : pool) {
        ledger->on_pooled(cand.task, clock, machine);
      }
    }
    ++result.pools_built;
    if (telemetry.pools != nullptr) telemetry.pools->add();
    if (trace_pools && (!pool.empty() || rejects.any())) {
      obs::Event event;
      event.kind = obs::EventKind::PoolBuilt;
      event.heuristic = heuristic_name;
      event.clock = clock;
      event.machine = machine;
      event.pool_size = pool.size();
      event.rejected_unreleased = rejects.unreleased;
      event.rejected_assigned = rejects.assigned;
      event.rejected_parents = rejects.parents;
      event.rejected_energy = rejects.energy;
      params.sink->emit(event);
    }
  };

  // One pool for the serial walk: consume this tick's speculative build when
  // it is still exact (no commit since the fan-out — commits move the global
  // t100/tec/aet terms that feed every score), else build inline.
  // `allow_spec` is true only for the first build of a machine scope; V3's
  // post-commit rebuilds are always inline (their slot was already settled).
  const auto make_pool = [&](MachineId machine, Cycles clock, bool allow_spec) {
    if (spec_tick && allow_spec) {
      SweepContext::SpecSlot& slot = sweep->spec(machine);
      if (slot.valid) {
        slot.valid = false;
        if (sweep->commit_serial() == spec_serial) {
          std::vector<SlrhPoolCandidate> pool = std::move(slot.pool);
          if (recorder != nullptr) {
            ++step_pools;
            step_last_pool = pool.size();
          }
          account_pool(pool, slot.rejects, machine, clock);
          return pool;
        }
        // Stale: an earlier machine committed after the fan-out. Every score
        // in the slot read the old global terms — rebuild inline.
        ++result.spec_aborted;
        if (telemetry.spec_aborts != nullptr) telemetry.spec_aborts->add();
        if (recorder != nullptr) ++step_aborts;
      }
    }
    SlrhPoolRejects rejects;
    std::vector<SlrhPoolCandidate> pool;
    const bool time_this_build = recorder != nullptr && --span_countdown == 0;
    const double span_t0 = time_this_build ? recorder->now_seconds() : 0.0;
    {
      obs::ProfileScope scope(telemetry.pool_build);
      SlrhPoolRejects* rej = trace_pools ? &rejects : nullptr;
      pool = !frontier.has_value()
                 ? build_slrh_pool_scan(scenario, schedule, params, totals, machine,
                                        clock, rej, telemetry.scoring)
             : params.scalar_score
                 ? build_slrh_pool_frontier(scenario, *cache, *frontier, schedule,
                                            params, totals, machine, clock, rej,
                                            telemetry.scoring)
                 : build_slrh_pool_batched(scenario, *cache, *frontier, schedule,
                                           params, totals, machine, clock, rej,
                                           telemetry.scoring, &batch_scratch);
    }
    if (recorder != nullptr) {
      if (time_this_build) {
        span_countdown = span_stride;
        const double elapsed = recorder->now_seconds() - span_t0;
        recorder->add_span("pool_build", span_t0, elapsed, clock, machine);
        if (!step_timed) {
          step_t0 = span_t0;
          step_timed = true;
        }
        step_pool_seconds += elapsed;
      }
      ++step_pools;
      step_last_pool = pool.size();
    }
    account_pool(pool, rejects, machine, clock);
    return pool;
  };

  // One map attempt; emits a map event on commit, a stall event otherwise.
  // Every commit is mirrored into the frontier (and the sweep accelerator's
  // epochs) immediately.
  const auto try_map = [&](const std::vector<SlrhPoolCandidate>& pool,
                           MachineId machine, Cycles clock,
                           std::size_t skip_before, Cycles* min_beyond) {
    const bool tracing = trace_maps || trace_stalls;
    MapTrace trace;
    PlacementPlan committed;
    const bool want_plan = ledger != nullptr || sweep != nullptr;
    const std::size_t mapped =
        map_first_startable(scenario, schedule, params, totals, pool, machine,
                            clock, telemetry, cache, memo, skip_before,
                            tracing ? &trace : nullptr,
                            want_plan ? &committed : nullptr, min_beyond);
    if (mapped != npos) {
      if (frontier.has_value()) frontier->on_commit(pool[mapped].task);
      if (sweep != nullptr) sweep->note_commit(committed);
      if (telemetry.maps != nullptr) telemetry.maps->add();
      if (recorder != nullptr) ++step_maps;
      if (ledger != nullptr) record_placement(*ledger, schedule, committed, clock);
    }
    if (tracing && (mapped != npos ? trace_maps : trace_stalls) &&
        !(mapped == npos && pool.size() == skip_before)) {
      obs::Event event;
      event.heuristic = heuristic_name;
      event.clock = clock;
      event.machine = machine;
      event.pool_size = pool.size();
      event.candidates = std::move(trace.candidates);
      if (mapped != npos) {
        event.kind = obs::EventKind::MapDecision;
        event.task = pool[mapped].task;
        event.version = trace.version;
        event.score = trace.terms.value;
        event.terms = {trace.terms.t100, trace.terms.tec, trace.terms.aet,
                       trace.terms.value};
        event.start = trace.start;
        event.finish = trace.finish;
      } else {
        event.kind = obs::EventKind::Stall;
        event.note = "no pool candidate startable within horizon";
      }
      params.sink->emit(event);
    }
    return mapped;
  };

  // End-of-timestep frame assembly (recorder path only). Samples the
  // schedule AFTER the machine sweep so the frame reflects every decision
  // the tick made; nothing here feeds back into the loop.
  const auto record_frame = [&](Cycles clock) {
    obs::Frame& frame = scratch;
    frame.heuristic = heuristic_name;
    frame.clock = clock;
    const double now = recorder->now_seconds();
    frame.wall_seconds = now;
    frame.timestep_seconds = step_timed ? now - step_t0 : 0.0;
    frame.pool_build_seconds = step_pool_seconds;
    const ObjectiveTerms terms = objective_terms(
        params.weights,
        ObjectiveState{schedule.t100(), schedule.tec(), schedule.aet()}, totals,
        params.aet_sign);
    frame.term_t100 = terms.t100;
    frame.term_tec = terms.tec;
    frame.term_aet = terms.aet;
    frame.objective = terms.value;
    frame.assigned = schedule.num_assigned();
    frame.t100 = schedule.t100();
    frame.tec = schedule.tec();
    frame.aet = schedule.aet();
    frame.pools_built = step_pools;
    frame.maps = step_maps;
    frame.last_pool_size = step_last_pool;
    frame.pools_reused = step_reused;
    frame.spec_aborts = step_aborts;
    frame.sweep_seconds = step_sweep_seconds;
    if (frontier.has_value()) {
      frame.frontier_ready = frontier->ready().size();
      frame.frontier_unreleased = frontier->num_unreleased();
    } else {
      frame.frontier_ready = 0;
      frame.frontier_unreleased = 0;
    }
    const sim::EnergyLedger& energy = schedule.energy();
    frame.battery_fraction.clear();
    frame.busy_until.clear();
    frame.battery_fraction.reserve(static_cast<std::size_t>(num_machines));
    frame.busy_until.reserve(static_cast<std::size_t>(num_machines));
    for (MachineId m = 0; m < num_machines; ++m) {
      const double capacity = energy.capacity(m);
      frame.battery_fraction.push_back(
          capacity > 0.0 ? energy.available(m) / capacity : 0.0);
      frame.busy_until.push_back(schedule.machine_ready(m));
    }
    recorder->record(frame);
  };

  for (Cycles clock = start_clock;
       !schedule.complete() && clock <= scenario.tau && clock < end_clock;
       clock += params.dt) {
    ++result.iterations;
    if (telemetry.timesteps != nullptr) telemetry.timesteps->add();
    if (recorder != nullptr) {
      step_pool_seconds = 0.0;
      step_sweep_seconds = 0.0;
      step_pools = step_maps = step_last_pool = 0;
      step_reused = step_aborts = 0;
      step_timed = false;
    }
    if (frontier.has_value()) frontier->advance_to(clock);

    // Speculative fan-out: build every pending machine's pool concurrently
    // before the serial walk. Pure const reads of the schedule / frontier /
    // cache — every side effect (ledger, counters, events) is deferred to
    // the consume point on the serial walk.
    spec_tick = false;
    if (spec_on && !schedule.complete()) {
      spec_pending.clear();
      for (MachineId machine = 0; machine < num_machines; ++machine) {
        if (!scenario.machine_available(machine, clock)) continue;
        if (schedule.machine_ready(machine) > clock) continue;
        if (reuse_on && sweep->can_skip(machine, clock, params.horizon,
                                        frontier->revision())) {
          continue;
        }
        spec_pending.push_back(machine);
      }
      if (spec_pending.size() >= 2) {
        const bool time_sweep =
            telemetry.sweep_parallel != nullptr || recorder != nullptr;
        const auto sweep_t0 = time_sweep ? std::chrono::steady_clock::now()
                                         : std::chrono::steady_clock::time_point{};
        const std::size_t n = spec_pending.size();
        const std::size_t chunks = std::min(sweep->max_chunks(), n);
        // Wall-clock region marker for the runtime profiler (no-op when no
        // profiler is attached to the pool): labels the fan-out's run slices
        // and the per-tick region window in the worker trace.
        obs::RuntimeRegion sweep_region(ahg::global_pool().profiler(),
                                        "sweep_fanout");
        ahg::global_pool().parallel_for(0, chunks, [&](std::size_t c) {
          const std::size_t lo = n * c / chunks;
          const std::size_t hi = n * (c + 1) / chunks;
          CandidateBatch& chunk_batch = sweep->chunk_scratch(c);
          for (std::size_t i = lo; i < hi; ++i) {
            const MachineId m = spec_pending[i];
            SweepContext::SpecSlot& slot = sweep->spec(m);
            slot.rejects = SlrhPoolRejects{};
            SlrhPoolRejects* rej = trace_pools ? &slot.rejects : nullptr;
            slot.pool =
                params.scalar_score
                    ? build_slrh_pool_frontier(scenario, *cache, *frontier,
                                               schedule, params, totals, m, clock,
                                               rej, nullptr)
                    : build_slrh_pool_batched(scenario, *cache, *frontier,
                                              schedule, params, totals, m, clock,
                                              rej, nullptr, &chunk_batch);
            slot.valid = true;
          }
        });
        spec_tick = true;
        spec_serial = sweep->commit_serial();
        if (time_sweep) {
          const double elapsed =
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            sweep_t0)
                  .count();
          if (telemetry.sweep_parallel != nullptr) {
            telemetry.sweep_parallel->observe(elapsed);
          }
          step_sweep_seconds += elapsed;
        }
      }
    }

    for (MachineId machine = 0; machine < num_machines; ++machine) {
      if (schedule.complete()) break;
      // Churn: a machine outside its presence window is invisible to the
      // sweep. Only CURRENT presence is consulted — SLRH never anticipates a
      // departure; it discovers one at the next timestep like any observer.
      if (!scenario.machine_available(machine, clock)) continue;
      if (schedule.machine_ready(machine) > clock) continue;  // not available
      if (reuse_on) {
        // O(1) cross-tick skip: the cached verdict proves the serial sweep
        // would build this machine's pool and map nothing from it.
        if (sweep->can_skip(machine, clock, params.horizon,
                            frontier->revision())) {
          ++result.pools_reused;
          if (telemetry.reuse_hits != nullptr) telemetry.reuse_hits->add();
          if (recorder != nullptr) ++step_reused;
          continue;
        }
        if (telemetry.reuse_misses != nullptr) telemetry.reuse_misses->add();
      }
      if (memo != nullptr) memo->begin_scope();

      // Scope bookkeeping for the cross-tick verdict: the smallest
      // beyond-horizon arrival proven by any walk, whether the scope
      // committed, and the epochs the LAST pool was built at (a recordable
      // verdict requires that pool to be current — see sweep.hpp).
      Cycles scope_min_arrival = SweepContext::kNoArrival;
      Cycles* min_beyond = reuse_on ? &scope_min_arrival : nullptr;
      bool scope_committed = false;
      std::uint64_t pool_revision = 0;
      std::uint64_t pool_energy_epoch = 0;
      const auto snapshot_pool_epochs = [&] {
        if (reuse_on) {
          pool_revision = frontier->revision();
          pool_energy_epoch = sweep->energy_epoch(machine);
        }
      };

      switch (params.variant) {
        case SlrhVariant::V1: {
          const auto pool = make_pool(machine, clock, true);
          snapshot_pool_epochs();
          if (pool.empty()) break;
          scope_committed = try_map(pool, machine, clock, 0, min_beyond) != npos;
          break;
        }
        case SlrhVariant::V2: {
          // One pool per (machine, timestep); keep assigning pairs from it in
          // score order until exhausted or nothing starts within the horizon.
          const auto pool = make_pool(machine, clock, true);
          snapshot_pool_epochs();
          std::size_t next = 0;
          while (next < pool.size()) {
            const std::size_t mapped = try_map(pool, machine, clock, next, min_beyond);
            if (mapped == npos) break;
            scope_committed = true;
            next = mapped + 1;
          }
          break;
        }
        case SlrhVariant::V3: {
          // Rebuild and re-score the pool after every assignment; children of
          // the subtask just mapped become admissible immediately.
          for (bool first = true;; first = false) {
            const auto pool = make_pool(machine, clock, first);
            snapshot_pool_epochs();
            if (pool.empty()) break;
            const std::size_t mapped = try_map(pool, machine, clock, 0, min_beyond);
            if (mapped == npos) break;
            scope_committed = true;
          }
          break;
        }
      }

      // Record the cross-tick verdict only for a scope that ended without a
      // commit AND whose last pool is current (no mid-scope commit after it
      // — else commit-enabled children could be missing from it). Variant 2
      // scopes that mapped anything fail the epoch compare by construction.
      if (reuse_on && !scope_committed &&
          pool_revision == frontier->revision() &&
          pool_energy_epoch == sweep->energy_epoch(machine)) {
        sweep->record_verdict(machine, scope_min_arrival, pool_revision);
      }
    }
    if (recorder != nullptr) {
      // A tick that committed a mapping is always sampled; poll-only and
      // fully idle ticks are decimated (see Options::idle_stride).
      if (step_maps > 0 || ++idle_ticks_unsampled >= idle_stride) {
        record_frame(clock);
        idle_ticks_unsampled = 0;
      }
    }
    if (params.heartbeat != nullptr) {
      // Relaxed atomic stores only — the heartbeat thread reads them. Never
      // affects a decision (same null contract as the other handles).
      params.heartbeat->set_clock(
          clock, std::min<Cycles>(scenario.tau, end_clock > 0 ? end_clock - 1
                                                              : scenario.tau));
      params.heartbeat->set_progress(schedule.num_assigned(),
                                     scenario.num_tasks());
    }
  }
}

MappingResult run_slrh(const workload::Scenario& scenario, const SlrhParams& params) {
  params.validate();
  scenario.validate();
  const Stopwatch timer;

  if (params.sink != nullptr && params.sink->wants(obs::EventKind::RunBegin)) {
    obs::Event event;
    event.kind = obs::EventKind::RunBegin;
    event.heuristic = to_string(params.variant);
    event.alpha = params.weights.alpha;
    event.beta = params.weights.beta;
    event.gamma = params.weights.gamma;
    event.note = "|T|=" + std::to_string(scenario.num_tasks()) +
                 ", machines=" + std::to_string(scenario.num_machines()) +
                 ", tau=" + std::to_string(scenario.tau);
    params.sink->emit(event);
  }

  auto schedule = make_schedule(scenario);
  MappingResult result;
  const double run_t0 =
      params.recorder != nullptr ? params.recorder->now_seconds() : 0.0;
  drive_slrh(scenario, params, *schedule, /*start_clock=*/0,
             /*end_clock=*/scenario.tau + 1, result);
  if (params.recorder != nullptr) {
    params.recorder->add_span("run:" + to_string(params.variant), run_t0,
                              params.recorder->now_seconds() - run_t0);
  }

  result.wall_seconds = timer.seconds();
  result.complete = schedule->complete();
  result.assigned = schedule->num_assigned();
  result.t100 = schedule->t100();
  result.aet = schedule->aet();
  result.tec = schedule->tec();
  result.within_tau = schedule->aet() <= scenario.tau;
  result.schedule = std::move(schedule);

  if (params.sink != nullptr && params.sink->wants(obs::EventKind::RunEnd)) {
    obs::Event event;
    event.kind = obs::EventKind::RunEnd;
    event.heuristic = to_string(params.variant);
    event.alpha = params.weights.alpha;
    event.beta = params.weights.beta;
    event.gamma = params.weights.gamma;
    event.t100 = result.t100;
    event.assigned = result.assigned;
    event.aet = result.aet;
    event.feasible = result.feasible();
    event.wall_seconds = result.wall_seconds;
    params.sink->emit(event);
  }
  return result;
}

}  // namespace ahg::core
