#include "core/slrh.hpp"

#include <algorithm>
#include <vector>

#include "core/feasibility.hpp"
#include "core/placement.hpp"
#include "core/scoring.hpp"
#include "support/stopwatch.hpp"

namespace ahg::core {

std::string to_string(SlrhVariant variant) {
  switch (variant) {
    case SlrhVariant::V1: return "SLRH-1";
    case SlrhVariant::V2: return "SLRH-2";
    case SlrhVariant::V3: return "SLRH-3";
  }
  return "SLRH-?";
}

namespace {

struct Candidate {
  TaskId task = kInvalidTask;
  VersionKind version = VersionKind::Primary;
  double score = 0.0;
};

/// Build and order the candidate pool U for one machine at the current
/// clock: admissible subtasks with their objective-maximising version,
/// sorted by score descending (ties: smaller task id, for determinism).
std::vector<Candidate> build_pool(const workload::Scenario& scenario,
                                  const sim::Schedule& schedule,
                                  const SlrhParams& params,
                                  const ObjectiveTotals& totals, MachineId machine,
                                  Cycles clock) {
  std::vector<Candidate> pool;
  const auto num_tasks = static_cast<TaskId>(scenario.num_tasks());
  for (TaskId task = 0; task < num_tasks; ++task) {
    // A subtask that has not arrived yet is invisible to the dynamic
    // heuristic (unlike the clairvoyant static baselines, which see the
    // whole application and only respect the release as a start bound).
    if (scenario.release(task) > clock) continue;
    if (!slrh_pool_admissible(scenario, schedule, task, machine)) continue;

    // The pool admission guarantees the secondary version fits; the primary
    // version is only offered to the objective if its own worst-case energy
    // fits too.
    const double secondary_score =
        score_candidate(scenario, schedule, params.weights, totals, task, machine,
                        VersionKind::Secondary, clock, params.aet_sign);
    Candidate cand{task, VersionKind::Secondary, secondary_score};
    if (version_fits_energy(scenario, schedule, task, machine, VersionKind::Primary)) {
      const double primary_score =
          score_candidate(scenario, schedule, params.weights, totals, task, machine,
                          VersionKind::Primary, clock, params.aet_sign);
      if (primary_score >= secondary_score) {
        cand.version = VersionKind::Primary;
        cand.score = primary_score;
      }
    }
    pool.push_back(cand);
  }
  std::sort(pool.begin(), pool.end(), [](const Candidate& a, const Candidate& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.task < b.task;
  });
  return pool;
}

/// Walk the ordered pool and commit the first candidate whose exact
/// earliest start (communication included) falls within the horizon.
/// Returns the index into `pool` of the mapped candidate, or npos.
std::size_t map_first_startable(const workload::Scenario& scenario,
                                sim::Schedule& schedule, const SlrhParams& params,
                                const std::vector<Candidate>& pool, MachineId machine,
                                Cycles clock, std::size_t skip_before = 0) {
  for (std::size_t k = skip_before; k < pool.size(); ++k) {
    const Candidate& cand = pool[k];
    if (schedule.is_assigned(cand.task)) continue;
    // Re-check energy: earlier commits in this timestep (variants 2/3) may
    // have consumed what the pool admission saw.
    VersionKind version = cand.version;
    if (!version_fits_energy(scenario, schedule, cand.task, machine, version)) {
      if (version == VersionKind::Primary &&
          version_fits_energy(scenario, schedule, cand.task, machine,
                              VersionKind::Secondary)) {
        version = VersionKind::Secondary;
      } else {
        continue;
      }
    }
    const PlacementPlan plan =
        plan_placement(scenario, schedule, cand.task, machine, version, clock);
    // The horizon test uses the earliest possible start "given precedence
    // and communication requirements" (paper §IV) — i.e. data readiness on
    // this machine, NOT the machine's queue. For variant 1 the two coincide
    // (the machine is idle at the clock); for variants 2/3 this is what lets
    // them stack a queue of data-ready subtasks onto one machine within a
    // single timestep — and is exactly why SLRH-2 overloads machines and
    // rarely meets the constraints (paper §VII).
    const Cycles data_ready = std::max(clock, plan.arrival);
    if (data_ready <= clock + params.horizon) {
      commit_placement(scenario, schedule, plan);
      return k;
    }
  }
  return static_cast<std::size_t>(-1);
}

}  // namespace

void drive_slrh(const workload::Scenario& scenario, const SlrhParams& params,
                sim::Schedule& schedule, Cycles start_clock, Cycles end_clock,
                MappingResult& result) {
  params.validate();
  AHG_EXPECTS_MSG(start_clock >= 0, "start clock must be non-negative");
  const ObjectiveTotals totals = objective_totals(scenario);
  constexpr auto npos = static_cast<std::size_t>(-1);
  const auto num_machines = static_cast<MachineId>(scenario.num_machines());
  for (Cycles clock = start_clock;
       !schedule.complete() && clock <= scenario.tau && clock < end_clock;
       clock += params.dt) {
    ++result.iterations;
    for (MachineId machine = 0; machine < num_machines; ++machine) {
      if (schedule.complete()) break;
      if (schedule.machine_ready(machine) > clock) continue;  // not available

      switch (params.variant) {
        case SlrhVariant::V1: {
          const auto pool =
              build_pool(scenario, schedule, params, totals, machine, clock);
          ++result.pools_built;
          if (pool.empty()) break;
          map_first_startable(scenario, schedule, params, pool, machine, clock);
          break;
        }
        case SlrhVariant::V2: {
          // One pool per (machine, timestep); keep assigning pairs from it in
          // score order until exhausted or nothing starts within the horizon.
          const auto pool =
              build_pool(scenario, schedule, params, totals, machine, clock);
          ++result.pools_built;
          std::size_t next = 0;
          while (next < pool.size()) {
            const std::size_t mapped = map_first_startable(
                scenario, schedule, params, pool, machine, clock, next);
            if (mapped == npos) break;
            next = mapped + 1;
          }
          break;
        }
        case SlrhVariant::V3: {
          // Rebuild and re-score the pool after every assignment; children of
          // the subtask just mapped become admissible immediately.
          for (;;) {
            const auto pool =
                build_pool(scenario, schedule, params, totals, machine, clock);
            ++result.pools_built;
            if (pool.empty()) break;
            const std::size_t mapped =
                map_first_startable(scenario, schedule, params, pool, machine, clock);
            if (mapped == npos) break;
          }
          break;
        }
      }
    }
  }
}

MappingResult run_slrh(const workload::Scenario& scenario, const SlrhParams& params) {
  params.validate();
  scenario.validate();
  const Stopwatch timer;

  auto schedule = make_schedule(scenario);
  MappingResult result;
  drive_slrh(scenario, params, *schedule, /*start_clock=*/0,
             /*end_clock=*/scenario.tau + 1, result);

  result.wall_seconds = timer.seconds();
  result.complete = schedule->complete();
  result.assigned = schedule->num_assigned();
  result.t100 = schedule->t100();
  result.aet = schedule->aet();
  result.tec = schedule->tec();
  result.within_tau = schedule->aet() <= scenario.tau;
  result.schedule = std::move(schedule);
  return result;
}

}  // namespace ahg::core
