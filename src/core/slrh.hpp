#pragma once
// The Simplified Lagrangian Receding Horizon (SLRH) resource manager
// (paper §IV, Figure 1) and its three variants (paper §V).
//
// SLRH is a clock-driven dynamic heuristic: at each timestep of dT cycles it
// sweeps the machines in numerical order; for each machine that is available
// (its last scheduled computation has finished), it builds a pool U of
// candidate subtasks (parents mapped, secondary version energy-feasible on
// that machine under the worst-case communication rule), picks the version
// of each candidate that maximises the global objective, orders the pool by
// objective value, and maps the first candidate whose exact earliest start
// falls within the receding horizon H of the current clock. "Simplified"
// means the Lagrangian weights (alpha, beta, gamma) are constants for the
// whole run.
//
// Variant 1 maps at most one subtask per machine per timestep. Variant 2
// keeps assigning pairs from the SAME pool (no re-evaluation) until the pool
// is exhausted or nothing more starts within the horizon. Variant 3 rebuilds
// and re-scores the pool after every assignment (newly enabled children join
// immediately) and keeps filling the same machine.

#include <cstdint>

#include "core/objective.hpp"
#include "core/result.hpp"
#include "support/event_log.hpp"
#include "workload/scenario.hpp"

namespace ahg::obs {
class FlightRecorder;
class Heartbeat;
class TaskLedger;
}  // namespace ahg::obs

namespace ahg::core {

class ScenarioCache;
class ReadyFrontier;
struct CandidateBatch;

enum class SlrhVariant : std::uint8_t { V1 = 1, V2 = 2, V3 = 3 };

std::string to_string(SlrhVariant variant);

struct SlrhParams {
  SlrhVariant variant = SlrhVariant::V1;
  Weights weights = Weights::make(0.5, 0.1);
  Cycles dt = 10;       ///< timestep in clock cycles (paper: 10)
  Cycles horizon = 100; ///< receding horizon H in clock cycles (paper: 100)
  AetSign aet_sign = AetSign::Reward;

  /// Optional observability sink (not owned). Null — the default — takes the
  /// exact pre-telemetry code path: no events, no clock reads, bit-identical
  /// schedules (see DESIGN.md "Observability" for the contract). With a sink
  /// attached the run emits run_begin/run_end, per-pool, per-map-decision
  /// (with the weighted objective-term breakdown and skipped-candidate
  /// rejection reasons), and stall events, and feeds phase histograms into
  /// sink->metrics() when present.
  obs::Sink* sink = nullptr;

  /// Optional flight recorder (not owned). Null — the default — takes the
  /// exact pre-recorder code path (one branch per timestep, no clock reads,
  /// bit-identical schedules; same contract as `sink`). With a recorder
  /// attached the driver samples one obs::Frame at the END of every ACTIVE
  /// timestep — idle ticks are decimated per FlightRecorder::Options::
  /// idle_stride (set it to 1 for literally every tick)
  /// (objective-term breakdown, progress, pool/frontier sizes, per-machine
  /// battery fraction and busy-until) and adds a wall-clock span per pool
  /// build; run_slrh wraps the whole run in a span. Recording only observes
  /// — no decision reads recorder state.
  obs::FlightRecorder* recorder = nullptr;

  /// Optional task-major lifecycle ledger (not owned; same null contract as
  /// `recorder`: one branch per instrumentation point, no locks, no
  /// allocations, bit-identical schedules — asserted by
  /// tests/test_determinism.cpp). With a ledger attached the driver records
  /// each subtask's released / frontier-ready / pooled / admitted /
  /// transfer / executing / completed transitions plus the causal input
  /// edges; core/critical_path.hpp consumes the result. Recording only
  /// observes — no decision reads ledger state.
  obs::TaskLedger* ledger = nullptr;

  /// Optional live-run heartbeat tap (not owned; same null contract: one
  /// branch per timestep, relaxed atomic stores only, bit-identical
  /// schedules). With a heartbeat attached the driver publishes the current
  /// clock and assigned-task count at the end of every tick; the heartbeat's
  /// background thread turns them into heartbeat.json progress/ETA fields
  /// and feeds the stall watchdog. See support/runtime_profiler.hpp.
  obs::Heartbeat* heartbeat = nullptr;

  /// Optional precomputed pure-scenario tables (not owned). Null — the
  /// default — makes the driver build its own once per run; supply one to
  /// amortise the build across many runs on the same scenario (the tuner's
  /// solver does, sharing it read-only across its worker threads). Ignored
  /// when legacy_scan is set.
  const ScenarioCache* cache = nullptr;

  /// Diff baseline for tests and benches: force the original
  /// scan-all-|T|-subtasks pool construction with on-demand energy
  /// derivations (no tables, no frontier, no beyond-horizon memo).
  /// Schedules are bit-identical either way — the fast path changes no
  /// decision (asserted by tests/test_determinism.cpp).
  bool legacy_scan = false;

  /// Diff baseline for the batched SoA scoring kernel: keep the frontier
  /// admission sweep but score candidates one at a time through
  /// score_candidate (the previous fast path) instead of
  /// build_candidate_batch + score_batch. Schedules are bit-identical either
  /// way (asserted by tests/test_determinism.cpp). Ignored when legacy_scan
  /// is set (the scan path is already scalar).
  bool scalar_score = false;

  /// Cross-tick pool reuse (core/sweep.hpp): when a (machine, timestep)
  /// scope ends without a commit, remember the smallest beyond-horizon
  /// arrival it proved, tagged with the frontier revision and the machine's
  /// energy epoch; while both epochs stand, a later tick whose clock + H
  /// stays below that arrival skips the machine's pool build outright — the
  /// serial sweep would provably commit nothing there. Schedules are
  /// bit-identical either way (asserted by tests/test_determinism.cpp); only
  /// pool-build counts and their telemetry differ (MappingResult::
  /// pools_reused tallies the skipped scopes). Ignored when legacy_scan is
  /// set.
  bool pool_reuse = true;

  /// Parallel speculative sweep (core/sweep.hpp): build every pending
  /// machine's pool of a tick concurrently on the global work-stealing pool
  /// (ahg::global_pool()), then walk the machines serially in index order,
  /// consuming a speculative pool only when no commit intervened since the
  /// fan-out — otherwise the pool is discarded (MappingResult::spec_aborted)
  /// and rebuilt inline. Decisions are taken in exactly the serial order, so
  /// schedules are bit-identical either way (asserted by
  /// tests/test_determinism.cpp). Engages only when a tick has >= 2 pending
  /// machines and the pool has >= 2 workers. Ignored when legacy_scan is
  /// set.
  bool sweep_parallel = true;

  /// Optional per-task degrade mask (not owned; indexed by TaskId). A task
  /// whose entry is non-zero is only ever offered at its secondary version —
  /// the churn driver's "degrade" recovery policy marks re-mapped orphans so
  /// they finish cheaply instead of competing for primary slots. Null — the
  /// default — changes nothing (bit-identical schedules).
  const std::vector<std::uint8_t>* secondary_only = nullptr;

  void validate() const {
    weights.validate();
    AHG_EXPECTS_MSG(dt >= 1, "dT must be at least one cycle");
    AHG_EXPECTS_MSG(horizon >= 0, "horizon must be non-negative");
  }
};

/// Run SLRH to completion (all subtasks mapped) or until the clock passes
/// tau with work remaining. Deterministic. The returned result owns the
/// final schedule.
MappingResult run_slrh(const workload::Scenario& scenario, const SlrhParams& params);

/// Low-level driver: advance an EXISTING schedule with the SLRH loop from
/// start_clock until completion, the scenario's tau (inclusive), or
/// end_clock (EXCLUSIVE) — whichever comes first. Used by run_slrh (fresh schedule, full window) and by the
/// dynamic machine-loss extension (replayed schedule, resuming at the loss
/// time). Updates stats.iterations / stats.pools_built in place.
void drive_slrh(const workload::Scenario& scenario, const SlrhParams& params,
                sim::Schedule& schedule, Cycles start_clock, Cycles end_clock,
                MappingResult& stats);

// --- pool construction (exposed for micro-benchmarks and invariant tests) --

/// One entry of the ordered candidate pool U: the subtask with its
/// objective-maximising version and that version's score.
struct SlrhPoolCandidate {
  TaskId task = kInvalidTask;
  VersionKind version = VersionKind::Primary;
  double score = 0.0;
};

/// Pool-admission rejection tally for one pool build (telemetry only).
struct SlrhPoolRejects {
  std::size_t unreleased = 0;
  std::size_t assigned = 0;
  std::size_t parents = 0;
  std::size_t energy = 0;

  bool any() const noexcept { return unreleased + assigned + parents + energy > 0; }
};

/// Original pool construction: scan all |T| subtasks, re-deriving admission
/// energies on demand. `rejects` non-null tallies per-task rejection reasons
/// through classify_slrh_admission (the telemetry path). `scoring_histogram`
/// non-null accumulates the scoring share of the build into that histogram.
std::vector<SlrhPoolCandidate> build_slrh_pool_scan(
    const workload::Scenario& scenario, const sim::Schedule& schedule,
    const SlrhParams& params, const ObjectiveTotals& totals, MachineId machine,
    Cycles clock, SlrhPoolRejects* rejects = nullptr,
    obs::Histogram* scoring_histogram = nullptr);

/// Output-sensitive pool construction: iterate only the frontier's ready
/// tasks (released, unassigned, parents assigned — typically << |T|) and
/// apply just the per-machine energy check against the precomputed tables.
/// The frontier must have been advanced to `clock` and notified of every
/// commit. Produces the same pool, in the same order, as the scan — and the
/// same rejection tallies, derived from the frontier's running counters.
std::vector<SlrhPoolCandidate> build_slrh_pool_frontier(
    const workload::Scenario& scenario, const ScenarioCache& cache,
    const ReadyFrontier& frontier, const sim::Schedule& schedule,
    const SlrhParams& params, const ObjectiveTotals& totals, MachineId machine,
    Cycles clock, SlrhPoolRejects* rejects = nullptr,
    obs::Histogram* scoring_histogram = nullptr);

/// Batched pool construction: same membership sweep as the frontier build,
/// but admission, gathering, and scoring run through the structure-of-arrays
/// CandidateBatch + score_batch kernel (core/scoring.hpp) — one parent walk
/// per task, branch-free scores over contiguous columns. Produces the same
/// pool, in the same order, with bit-identical scores (the default driver
/// path; SlrhParams::scalar_score selects the per-candidate build instead).
/// `scratch` non-null reuses that batch's storage across builds
/// (allocation-free steady state); null uses a local.
std::vector<SlrhPoolCandidate> build_slrh_pool_batched(
    const workload::Scenario& scenario, const ScenarioCache& cache,
    const ReadyFrontier& frontier, const sim::Schedule& schedule,
    const SlrhParams& params, const ObjectiveTotals& totals, MachineId machine,
    Cycles clock, SlrhPoolRejects* rejects = nullptr,
    obs::Histogram* scoring_histogram = nullptr,
    CandidateBatch* scratch = nullptr);

}  // namespace ahg::core
