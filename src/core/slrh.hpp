#pragma once
// The Simplified Lagrangian Receding Horizon (SLRH) resource manager
// (paper §IV, Figure 1) and its three variants (paper §V).
//
// SLRH is a clock-driven dynamic heuristic: at each timestep of dT cycles it
// sweeps the machines in numerical order; for each machine that is available
// (its last scheduled computation has finished), it builds a pool U of
// candidate subtasks (parents mapped, secondary version energy-feasible on
// that machine under the worst-case communication rule), picks the version
// of each candidate that maximises the global objective, orders the pool by
// objective value, and maps the first candidate whose exact earliest start
// falls within the receding horizon H of the current clock. "Simplified"
// means the Lagrangian weights (alpha, beta, gamma) are constants for the
// whole run.
//
// Variant 1 maps at most one subtask per machine per timestep. Variant 2
// keeps assigning pairs from the SAME pool (no re-evaluation) until the pool
// is exhausted or nothing more starts within the horizon. Variant 3 rebuilds
// and re-scores the pool after every assignment (newly enabled children join
// immediately) and keeps filling the same machine.

#include <cstdint>

#include "core/objective.hpp"
#include "core/result.hpp"
#include "support/event_log.hpp"
#include "workload/scenario.hpp"

namespace ahg::core {

enum class SlrhVariant : std::uint8_t { V1 = 1, V2 = 2, V3 = 3 };

std::string to_string(SlrhVariant variant);

struct SlrhParams {
  SlrhVariant variant = SlrhVariant::V1;
  Weights weights = Weights::make(0.5, 0.1);
  Cycles dt = 10;       ///< timestep in clock cycles (paper: 10)
  Cycles horizon = 100; ///< receding horizon H in clock cycles (paper: 100)
  AetSign aet_sign = AetSign::Reward;

  /// Optional observability sink (not owned). Null — the default — takes the
  /// exact pre-telemetry code path: no events, no clock reads, bit-identical
  /// schedules (see DESIGN.md "Observability" for the contract). With a sink
  /// attached the run emits run_begin/run_end, per-pool, per-map-decision
  /// (with the weighted objective-term breakdown and skipped-candidate
  /// rejection reasons), and stall events, and feeds phase histograms into
  /// sink->metrics() when present.
  obs::Sink* sink = nullptr;

  void validate() const {
    weights.validate();
    AHG_EXPECTS_MSG(dt >= 1, "dT must be at least one cycle");
    AHG_EXPECTS_MSG(horizon >= 0, "horizon must be non-negative");
  }
};

/// Run SLRH to completion (all subtasks mapped) or until the clock passes
/// tau with work remaining. Deterministic. The returned result owns the
/// final schedule.
MappingResult run_slrh(const workload::Scenario& scenario, const SlrhParams& params);

/// Low-level driver: advance an EXISTING schedule with the SLRH loop from
/// start_clock until completion, the scenario's tau (inclusive), or
/// end_clock (EXCLUSIVE) — whichever comes first. Used by run_slrh (fresh schedule, full window) and by the
/// dynamic machine-loss extension (replayed schedule, resuming at the loss
/// time). Updates stats.iterations / stats.pools_built in place.
void drive_slrh(const workload::Scenario& scenario, const SlrhParams& params,
                sim::Schedule& schedule, Cycles start_clock, Cycles end_clock,
                MappingResult& stats);

}  // namespace ahg::core
