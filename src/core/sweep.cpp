#include "core/sweep.hpp"

#include <algorithm>

namespace ahg::core {

SweepContext::SweepContext(std::size_t num_machines, std::size_t max_chunks) {
  energy_epoch_.assign(num_machines, 0);
  verdicts_.assign(num_machines, Verdict{});
  spec_.resize(num_machines);
  scratches_.resize(std::max<std::size_t>(std::size_t{1}, max_chunks));
}

void SweepContext::note_commit(const PlacementPlan& plan) {
  ++commit_serial_;
  ++energy_epoch_[static_cast<std::size_t>(plan.machine)];
  for (const CommPlan& comm : plan.comms) {
    ++energy_epoch_[static_cast<std::size_t>(comm.from_machine)];
  }
}

}  // namespace ahg::core
