#pragma once
// Sweep accelerator state for the clock-driven SLRH driver (DESIGN.md §4h).
//
// Two independent mechanisms share one epoch scheme:
//
//  * Cross-tick pool reuse. When a (machine, timestep) scope ends without
//    committing anything, the driver records a skip verdict: the smallest
//    beyond-horizon arrival the scope proved, tagged with the frontier
//    revision and the machine's energy epoch. While both epochs stand, the
//    machine's pool membership is unchanged (same ready set, same per-machine
//    energy admission) and plan_placement arrivals are monotone
//    non-decreasing in the probe clock and in channel/compute bookings — so
//    a later tick with clock' + H < min_arrival provably maps nothing, and
//    the whole scope collapses to this O(1) test. Skipping a scope that
//    would commit nothing leaves the schedule bit-identical to the serial
//    sweep; only pool-build counts (and their telemetry) differ.
//
//  * Speculative parallel pool builds. At the start of a tick every pending
//    machine's pool is built read-only in parallel on the global
//    work-stealing pool; the serial machine-order walk consumes a
//    speculative pool only when no commit happened since the fan-out (any
//    commit moves the global t100/tec/aet terms that feed every score),
//    otherwise it discards the pool and rebuilds inline. Decisions are taken
//    strictly in machine-index order either way — bit-identical schedules.
//
// Epochs: commit_serial() counts every commit in the drive window;
// energy_epoch(m) counts the commits that touched machine m's energy ledger
// (the executing machine — exec charge, released-parent hold settles,
// child-edge reservations — plus every transfer's sending machine). A
// SweepContext lives for exactly one drive_slrh window, so churn segment
// boundaries (departures, joins, orphan recovery) drop all cached state
// wholesale; nothing survives a schedule rebuild.

#include <cstdint>
#include <limits>
#include <vector>

#include "core/placement.hpp"
#include "core/scoring.hpp"
#include "core/slrh.hpp"
#include "support/contract.hpp"

namespace ahg::core {

/// Per-drive-window accelerator state. Pure bookkeeping: nothing in here
/// reads the schedule or scenario; the driver feeds it commits and scope
/// outcomes and asks the two O(1) questions (can_skip, commit_serial).
class SweepContext {
 public:
  /// min-arrival sentinel for an empty pool: no candidate exists, so the
  /// skip test passes at every clock while the epochs stand.
  static constexpr Cycles kNoArrival = std::numeric_limits<Cycles>::max();

  /// `max_chunks` sizes the fan-out scratch pool (one CandidateBatch per
  /// worker chunk — a per-machine scratch would cost |M| x O(ready) memory
  /// at scale).
  SweepContext(std::size_t num_machines, std::size_t max_chunks);

  // --- epoch bookkeeping ---------------------------------------------------

  /// Total commits recorded this drive window (speculation staleness check).
  std::uint64_t commit_serial() const noexcept { return commit_serial_; }

  std::uint64_t energy_epoch(MachineId machine) const noexcept {
    return energy_epoch_[static_cast<std::size_t>(machine)];
  }

  /// Record a committed placement: bumps the global serial and the energy
  /// epoch of every machine whose energy ledger the commit touched — the
  /// executing machine and each transfer's sender (commit_placement charges
  /// or settles nothing anywhere else).
  void note_commit(const PlacementPlan& plan);

  // --- cross-tick skip verdicts --------------------------------------------

  /// True when the recorded verdict proves machine `machine` cannot commit
  /// anything at `clock`: both epochs unchanged since the verdict was
  /// recorded and clock + horizon below the proven minimum arrival.
  bool can_skip(MachineId machine, Cycles clock, Cycles horizon,
                std::uint64_t frontier_revision) const noexcept {
    const Verdict& v = verdicts_[static_cast<std::size_t>(machine)];
    if (!v.valid || v.frontier_revision != frontier_revision ||
        v.energy_epoch != energy_epoch_[static_cast<std::size_t>(machine)]) {
      return false;
    }
    return v.min_arrival == kNoArrival || clock + horizon < v.min_arrival;
  }

  /// Record a no-commit scope outcome. `min_arrival` is the smallest
  /// beyond-horizon arrival proven across the scope's walks (kNoArrival for
  /// an empty pool). Only call when the scope's LAST pool was built at the
  /// CURRENT (frontier revision, energy epoch) — a pool predating a
  /// mid-scope commit may be missing commit-enabled candidates, and a
  /// verdict taken from it would skip them forever. Stale verdicts need no
  /// explicit invalidation: every commit bumps the frontier revision, so
  /// the epoch compare in can_skip retires them automatically.
  void record_verdict(MachineId machine, Cycles min_arrival,
                      std::uint64_t frontier_revision) {
    Verdict& v = verdicts_[static_cast<std::size_t>(machine)];
    v.min_arrival = min_arrival;
    v.frontier_revision = frontier_revision;
    v.energy_epoch = energy_epoch_[static_cast<std::size_t>(machine)];
    v.valid = true;
  }

  // --- speculative pools ---------------------------------------------------

  /// One machine's speculative build result. `rejects` is only populated on
  /// the tracing path; `valid` is set by the fan-out and cleared by the
  /// serial walk (consume or abort), so a slot never leaks across ticks.
  struct SpecSlot {
    std::vector<SlrhPoolCandidate> pool;
    SlrhPoolRejects rejects;
    bool valid = false;
  };

  SpecSlot& spec(MachineId machine) {
    return spec_[static_cast<std::size_t>(machine)];
  }

  /// Scratch batch for fan-out chunk `chunk` (< max_chunks). Each chunk runs
  /// its machines sequentially, so one scratch per chunk suffices.
  CandidateBatch& chunk_scratch(std::size_t chunk) {
    AHG_EXPECTS_MSG(chunk < scratches_.size(), "fan-out chunk out of range");
    return scratches_[chunk];
  }

  std::size_t max_chunks() const noexcept { return scratches_.size(); }

 private:
  struct Verdict {
    Cycles min_arrival = 0;
    std::uint64_t frontier_revision = 0;
    std::uint64_t energy_epoch = 0;
    bool valid = false;
  };

  std::uint64_t commit_serial_ = 0;
  std::vector<std::uint64_t> energy_epoch_;
  std::vector<Verdict> verdicts_;
  std::vector<SpecSlot> spec_;
  std::vector<CandidateBatch> scratches_;
};

}  // namespace ahg::core
