#include "core/tuner.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "support/contract.hpp"
#include "support/profile.hpp"
#include "support/thread_pool.hpp"

namespace ahg::core {

namespace {

// Grid coordinates are snapped to 1e-6 to deduplicate coarse/fine overlaps.
long long snap(double value) { return std::llround(value * 1e6); }

struct GridPoint {
  double alpha;
  double beta;
};

std::vector<GridPoint> coarse_grid(double step) {
  std::vector<GridPoint> points;
  const int n = static_cast<int>(std::llround(1.0 / step));
  for (int ia = 0; ia <= n; ++ia) {
    for (int ib = 0; ia + ib <= n; ++ib) {
      points.push_back(GridPoint{static_cast<double>(ia) * step,
                                 static_cast<double>(ib) * step});
    }
  }
  return points;
}

std::vector<GridPoint> fine_grid(double alpha0, double beta0, double coarse,
                                 double fine, std::set<std::pair<long long, long long>>& seen) {
  std::vector<GridPoint> points;
  const int span = static_cast<int>(std::llround(coarse / fine));
  for (int da = -span; da <= span; ++da) {
    for (int db = -span; db <= span; ++db) {
      const double a = alpha0 + static_cast<double>(da) * fine;
      const double b = beta0 + static_cast<double>(db) * fine;
      if (a < -1e-9 || b < -1e-9 || a + b > 1.0 + 1e-9) continue;
      const auto key = std::make_pair(snap(a), snap(b));
      if (!seen.insert(key).second) continue;
      points.push_back(GridPoint{std::max(0.0, a), std::max(0.0, b)});
    }
  }
  return points;
}

struct Evaluation {
  GridPoint point;
  MappingResult result;
};

std::vector<Evaluation> evaluate(const WeightedSolver& solver,
                                 const std::vector<GridPoint>& points, bool parallel) {
  std::vector<Evaluation> evals(points.size());
  const auto run_one = [&](std::size_t k) {
    const Weights w = Weights::make(points[k].alpha, points[k].beta);
    evals[k] = Evaluation{points[k], solver(w)};
  };
  if (parallel && points.size() > 1) {
    global_pool().parallel_for(0, points.size(), run_one);
  } else {
    for (std::size_t k = 0; k < points.size(); ++k) run_one(k);
  }
  return evals;
}

/// True iff `lhs` is a strictly better optimum than `rhs`.
bool better(const Evaluation& lhs, const Evaluation& rhs) {
  if (lhs.result.t100 != rhs.result.t100) return lhs.result.t100 > rhs.result.t100;
  if (lhs.point.alpha != rhs.point.alpha) return lhs.point.alpha < rhs.point.alpha;
  return lhs.point.beta < rhs.point.beta;
}

TuneOutcome::Range range_over(const std::vector<TunedPoint>& evaluated,
                              std::size_t best_t100, std::size_t slack,
                              double TunedPoint::*member) {
  TuneOutcome::Range range;
  std::size_t count = 0;
  double sum = 0.0;
  for (const auto& p : evaluated) {
    if (!p.feasible) continue;
    if (p.t100 + slack < best_t100) continue;
    const double v = p.*member;
    if (count == 0) {
      range.min = v;
      range.max = v;
    } else {
      range.min = std::min(range.min, v);
      range.max = std::max(range.max, v);
    }
    sum += v;
    ++count;
  }
  if (count > 0) range.mean = sum / static_cast<double>(count);
  return range;
}

}  // namespace

TuneOutcome::Range TuneOutcome::alpha_range(std::size_t t100_slack) const {
  return range_over(evaluated, best.t100, t100_slack, &TunedPoint::alpha);
}

TuneOutcome::Range TuneOutcome::beta_range(std::size_t t100_slack) const {
  return range_over(evaluated, best.t100, t100_slack, &TunedPoint::beta);
}

TuneOutcome tune_weights(const WeightedSolver& solver, const TunerParams& params) {
  AHG_EXPECTS_MSG(params.coarse_step > 0.0 && params.coarse_step <= 0.5,
                  "coarse step must be in (0, 0.5]");
  AHG_EXPECTS_MSG(params.fine_step >= 0.0, "fine step must be non-negative");

  TuneOutcome outcome;
  std::set<std::pair<long long, long long>> seen;

  obs::MetricsRegistry* metrics =
      params.sink != nullptr ? params.sink->metrics() : nullptr;
  obs::Histogram* sweep_hist = obs::phase_histogram(metrics, "tuner.sweep_seconds");
  obs::Counter* points_counter =
      metrics != nullptr ? &metrics->counter("tuner.points") : nullptr;
  const bool trace_points =
      params.sink != nullptr && params.sink->wants(obs::EventKind::TunerPoint);

  // Recording runs sequentially after each (possibly parallel) sweep, so the
  // tuner_point events come out in deterministic grid order.
  auto record = [&](const std::vector<Evaluation>& evals) {
    const Evaluation* best = nullptr;
    for (const auto& e : evals) {
      outcome.evaluated.push_back(TunedPoint{e.point.alpha, e.point.beta,
                                             e.result.t100, e.result.feasible(),
                                             e.result.wall_seconds});
      if (points_counter != nullptr) points_counter->add();
      if (trace_points) {
        obs::Event event;
        event.kind = obs::EventKind::TunerPoint;
        event.heuristic = "tuner";
        event.alpha = e.point.alpha;
        event.beta = e.point.beta;
        event.gamma = 1.0 - e.point.alpha - e.point.beta;
        event.t100 = e.result.t100;
        event.assigned = e.result.assigned;
        event.aet = e.result.aet;
        event.feasible = e.result.feasible();
        event.wall_seconds = e.result.wall_seconds;
        params.sink->emit(event);
      }
      if (!e.result.feasible()) continue;
      if (best == nullptr || better(e, *best)) best = &e;
    }
    if (best != nullptr) {
      if (!outcome.found ||
          better(*best, Evaluation{GridPoint{outcome.alpha, outcome.beta},
                                   outcome.best})) {
        outcome.found = true;
        outcome.alpha = best->point.alpha;
        outcome.beta = best->point.beta;
        outcome.best = best->result;
      }
    }
  };

  auto coarse = coarse_grid(params.coarse_step);
  for (const auto& p : coarse) seen.insert({snap(p.alpha), snap(p.beta)});
  {
    obs::ProfileScope sweep(sweep_hist);
    record(evaluate(solver, coarse, params.parallel));
  }

  if (outcome.found && params.fine_step > 0.0 &&
      params.fine_step < params.coarse_step) {
    const auto fine = fine_grid(outcome.alpha, outcome.beta, params.coarse_step,
                                params.fine_step, seen);
    obs::ProfileScope sweep(sweep_hist);
    record(evaluate(solver, fine, params.parallel));
  }

  if (params.sink != nullptr && params.sink->wants(obs::EventKind::TunerBest)) {
    obs::Event event;
    event.kind = obs::EventKind::TunerBest;
    event.heuristic = "tuner";
    event.alpha = outcome.alpha;
    event.beta = outcome.beta;
    event.gamma = outcome.found ? 1.0 - outcome.alpha - outcome.beta : 0.0;
    event.t100 = outcome.best.t100;
    event.assigned = outcome.best.assigned;
    event.aet = outcome.best.aet;
    event.feasible = outcome.found;
    event.note = outcome.found
                     ? std::string()
                     : "no feasible grid point: every probed weight pair left "
                       "subtasks unmapped or overshot the constraints";
    params.sink->emit(event);
  }
  return outcome;
}

}  // namespace ahg::core
