#pragma once
// Objective-weight tuner (paper §VII).
//
// The paper searches (alpha, beta) on a coarse 0.1 grid over [0,1]^2 (with
// alpha + beta <= 1, gamma = 1 - alpha - beta), keeps only combinations for
// which the heuristic successfully maps ALL subtasks within both the energy
// and time constraints, and then refines around the best region in steps of
// 0.02. "Best" means maximum T100.

#include <functional>
#include <vector>

#include "core/objective.hpp"
#include "core/result.hpp"
#include "support/event_log.hpp"

namespace ahg::core {

struct TunerParams {
  double coarse_step = 0.1;
  /// Refinement step; 0 disables the refinement pass.
  double fine_step = 0.02;
  /// Evaluate grid points on the global thread pool.
  bool parallel = true;
  /// Optional observability sink (not owned). Null = no telemetry, exact
  /// pre-telemetry path. With a sink attached, every grid point produces one
  /// tuner_point event and the search ends with a tuner_best event; events
  /// are emitted from the sequential recording pass, so their order is
  /// deterministic even with parallel evaluation. Sweep wall time feeds
  /// "tuner.sweep_seconds" in sink->metrics() when present. The sink is NOT
  /// handed to the solver — attach it there yourself if per-run decision
  /// traces are wanted (beware the volume: the tuner probes ~66 coarse
  /// points).
  obs::Sink* sink = nullptr;
};

struct TunedPoint {
  double alpha = 0.0;
  double beta = 0.0;
  std::size_t t100 = 0;
  bool feasible = false;      ///< complete mapping within energy and tau
  double wall_seconds = 0.0;  ///< heuristic execution time at this point
};

struct TuneOutcome {
  bool found = false;  ///< at least one feasible grid point
  double alpha = 0.0;
  double beta = 0.0;
  MappingResult best;               ///< the run at the optimal point
  std::vector<TunedPoint> evaluated;  ///< every grid point probed

  /// Weight range over FEASIBLE points within `slack` of the best T100
  /// (Figure 3 reports min/avg/max of the optimal region).
  struct Range {
    double min = 0.0;
    double mean = 0.0;
    double max = 0.0;
  };
  Range alpha_range(std::size_t t100_slack = 0) const;
  Range beta_range(std::size_t t100_slack = 0) const;
};

/// The solver maps a weight pair to a full heuristic run.
using WeightedSolver = std::function<MappingResult(const Weights&)>;

/// Search for the (alpha, beta) maximising T100 subject to full feasibility.
/// Deterministic: ties break toward smaller alpha, then smaller beta.
TuneOutcome tune_weights(const WeightedSolver& solver, const TunerParams& params);

}  // namespace ahg::core
