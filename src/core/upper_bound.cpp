#include "core/upper_bound.hpp"

#include <algorithm>
#include <limits>

#include "core/scenario_cache.hpp"
#include "support/contract.hpp"

namespace ahg::core {

std::vector<double> min_ratios(const workload::EtcMatrix& etc) {
  std::vector<double> ratios(etc.num_machines(),
                             std::numeric_limits<double>::infinity());
  for (std::size_t j = 0; j < etc.num_machines(); ++j) {
    for (std::size_t i = 0; i < etc.num_tasks(); ++i) {
      const double r = etc.seconds(static_cast<TaskId>(i), static_cast<MachineId>(j)) /
                       etc.seconds(static_cast<TaskId>(i), 0);
      ratios[j] = std::min(ratios[j], r);
    }
  }
  return ratios;
}

UpperBoundResult compute_upper_bound(const workload::Scenario& scenario,
                                     const ScenarioCache* cache) {
  UpperBoundResult result;
  result.min_ratio = min_ratios(scenario.etc);
  result.tse = scenario.grid.total_system_energy();

  const double tau_seconds = seconds_from_cycles(scenario.tau);
  for (const double mr : result.min_ratio) {
    AHG_ENSURES_MSG(mr > 0.0, "minimum ratio must be positive");
    result.tecc_seconds += tau_seconds / mr;
  }

  // Greedy: each subtask's cheapest-energy machine, consumed in order of
  // increasing energy. The selection key (energy) is independent of the pool
  // levels, so sorting once is equivalent to the paper's repeated
  // minimum-energy search; ties break by task id for determinism.
  struct Pick {
    TaskId task;
    double energy;
    double equiv_seconds;
  };
  std::vector<Pick> picks;
  picks.reserve(scenario.num_tasks());
  for (std::size_t i = 0; i < scenario.num_tasks(); ++i) {
    const auto task = static_cast<TaskId>(i);
    Pick pick{task, std::numeric_limits<double>::infinity(), 0.0};
    for (std::size_t j = 0; j < scenario.num_machines(); ++j) {
      const auto machine = static_cast<MachineId>(j);
      const double secs = scenario.etc.seconds(task, machine);
      const double energy =
          cache != nullptr
              ? cache->primary_compute_energy(task, machine)
              : scenario.grid.machine(machine).compute_power * secs;
      if (energy < pick.energy) {
        pick.energy = energy;
        pick.equiv_seconds = secs / result.min_ratio[j];
      }
    }
    picks.push_back(pick);
  }
  std::sort(picks.begin(), picks.end(), [](const Pick& a, const Pick& b) {
    if (a.energy != b.energy) return a.energy < b.energy;
    return a.task < b.task;
  });

  double cycles_left = result.tecc_seconds;
  double energy_left = result.tse;
  for (const Pick& pick : picks) {
    if (pick.equiv_seconds > cycles_left || pick.energy > energy_left) {
      result.cycle_limited = pick.equiv_seconds > cycles_left;
      result.energy_limited = pick.energy > energy_left;
      break;
    }
    cycles_left -= pick.equiv_seconds;
    energy_left -= pick.energy;
    ++result.bound;
  }
  result.cycles_used_seconds = result.tecc_seconds - cycles_left;
  result.energy_used = result.tse - energy_left;
  return result;
}

}  // namespace ahg::core
