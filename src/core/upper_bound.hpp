#pragma once
// Upper bound on T100 via "equivalent computing cycles" (paper §VI).
//
// Each machine contributes tau / MR(j) equivalent seconds of reference-
// machine (machine 0) compute capacity, where
//
//   MR(j) = min_i  ETC(i, j) / ETC(i, 0)
//
// is the machine's minimum relative execution-time ratio over all subtasks —
// the best case, guaranteeing the result bounds T100 from above. The bound
// then greedily "executes" primary versions in order of increasing energy
// cost (each subtask on its cheapest-energy machine), drawing from the
// pooled equivalent cycles (TECC) and pooled system energy (TSE), and stops
// at the first subtask that no longer fits either pool.

#include <vector>

#include "support/units.hpp"
#include "workload/scenario.hpp"

namespace ahg::core {

class ScenarioCache;

struct UpperBoundResult {
  std::size_t bound = 0;             ///< max number of primary versions
  std::vector<double> min_ratio;     ///< MR(j) per machine (MR(0) == 1)
  double tecc_seconds = 0.0;         ///< total equivalent computing capacity
  double tse = 0.0;                  ///< total system energy
  double cycles_used_seconds = 0.0;  ///< equivalent seconds consumed at stop
  double energy_used = 0.0;          ///< energy consumed at stop
  bool cycle_limited = false;        ///< stopped because TECC ran out
  bool energy_limited = false;       ///< stopped because TSE ran out
};

/// MR(j) for every machine of an ETC matrix (reference: machine 0).
std::vector<double> min_ratios(const workload::EtcMatrix& etc);

/// Compute the upper bound for a scenario (grid + ETC + tau; the DAG plays
/// no role in the bound — precedence is deliberately ignored so the result
/// remains an upper bound). `cache` (not owned, may be null) supplies the
/// precomputed primary compute energies; the table holds the exact
/// power-times-seconds products the uncached path derives, so the bound is
/// identical either way.
UpperBoundResult compute_upper_bound(const workload::Scenario& scenario,
                                     const ScenarioCache* cache = nullptr);

}  // namespace ahg::core
