#include "core/validate.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "sim/comm.hpp"

namespace ahg::core {

namespace {

constexpr double kEnergyEps = 1e-6;

struct Booking {
  Cycles start;
  Cycles end;
  std::string what;
};

void check_no_overlap(std::vector<Booking>& bookings, const std::string& resource,
                      std::vector<std::string>& out) {
  std::sort(bookings.begin(), bookings.end(),
            [](const Booking& a, const Booking& b) { return a.start < b.start; });
  for (std::size_t k = 1; k < bookings.size(); ++k) {
    if (bookings[k].start < bookings[k - 1].end) {
      out.push_back(resource + ": overlap between " + bookings[k - 1].what + " and " +
                    bookings[k].what);
    }
  }
}

std::string task_str(TaskId task) { return "task " + std::to_string(task); }

}  // namespace

std::string ValidationReport::str() const {
  if (ok()) return "valid";
  std::ostringstream oss;
  oss << violations.size() << " violation(s):\n";
  for (const auto& v : violations) oss << "  - " << v << '\n';
  return oss.str();
}

ValidationReport validate_schedule(const workload::Scenario& scenario,
                                   const sim::Schedule& schedule,
                                   const ValidateOptions& options) {
  ValidationReport report;
  auto& out = report.violations;
  const auto num_tasks = static_cast<TaskId>(scenario.num_tasks());
  const auto num_machines = static_cast<MachineId>(scenario.num_machines());

  if (schedule.num_tasks() != scenario.num_tasks() ||
      schedule.num_machines() != scenario.num_machines()) {
    out.push_back("schedule/scenario shape mismatch");
    return report;
  }

  // 1+2: assignment well-formedness and precedence.
  std::size_t assigned = 0;
  std::size_t t100 = 0;
  Cycles aet = 0;
  for (TaskId task = 0; task < num_tasks; ++task) {
    if (!schedule.is_assigned(task)) {
      if (options.require_complete) out.push_back(task_str(task) + " is unassigned");
      continue;
    }
    const auto& a = schedule.assignment(task);
    ++assigned;
    if (a.version == VersionKind::Primary) ++t100;
    aet = std::max(aet, a.finish);
    if (a.machine < 0 || a.machine >= num_machines) {
      out.push_back(task_str(task) + " on invalid machine");
      continue;
    }
    if (a.start < 0) out.push_back(task_str(task) + " starts before time 0");
    if (a.start < scenario.release(task)) {
      out.push_back(task_str(task) + " starts before its release time");
    }
    const Cycles expect = scenario.exec_cycles(task, a.machine, a.version);
    if (a.finish - a.start != expect) {
      out.push_back(task_str(task) + " duration " + std::to_string(a.finish - a.start) +
                    " != prescribed " + std::to_string(expect));
    }
    for (const TaskId parent : scenario.dag.parents(task)) {
      if (!schedule.is_assigned(parent)) {
        out.push_back(task_str(task) + " assigned but parent " + std::to_string(parent) +
                      " is not");
      }
    }
  }

  // 3: machine compute exclusivity (rebuilt from records).
  {
    std::vector<std::vector<Booking>> per_machine(scenario.num_machines());
    for (TaskId task = 0; task < num_tasks; ++task) {
      if (!schedule.is_assigned(task)) continue;
      const auto& a = schedule.assignment(task);
      per_machine[static_cast<std::size_t>(a.machine)].push_back(
          Booking{a.start, a.finish, task_str(task)});
    }
    for (std::size_t j = 0; j < per_machine.size(); ++j) {
      check_no_overlap(per_machine[j], "machine " + std::to_string(j) + " compute", out);
    }
  }

  // 4: channel exclusivity (rebuilt from records).
  {
    std::vector<std::vector<Booking>> tx(scenario.num_machines());
    std::vector<std::vector<Booking>> rx(scenario.num_machines());
    for (const auto& ev : schedule.comm_events()) {
      const std::string what =
          "transfer " + std::to_string(ev.from_task) + "->" + std::to_string(ev.to_task);
      if (ev.from_machine < 0 || ev.from_machine >= num_machines ||
          ev.to_machine < 0 || ev.to_machine >= num_machines) {
        out.push_back(what + " uses an invalid machine");
        continue;
      }
      if (ev.from_machine == ev.to_machine) {
        out.push_back(what + " is a recorded same-machine transfer");
        continue;
      }
      tx[static_cast<std::size_t>(ev.from_machine)].push_back(
          Booking{ev.start, ev.finish, what});
      rx[static_cast<std::size_t>(ev.to_machine)].push_back(
          Booking{ev.start, ev.finish, what});
    }
    for (std::size_t j = 0; j < tx.size(); ++j) {
      check_no_overlap(tx[j], "machine " + std::to_string(j) + " tx", out);
      check_no_overlap(rx[j], "machine " + std::to_string(j) + " rx", out);
    }
  }

  // 5: data routing per DAG edge.
  std::map<std::pair<TaskId, TaskId>, const sim::CommEvent*> transfers;
  for (const auto& ev : schedule.comm_events()) {
    const auto key = std::make_pair(ev.from_task, ev.to_task);
    if (transfers.contains(key)) {
      out.push_back("duplicate transfer for edge " + std::to_string(ev.from_task) +
                    "->" + std::to_string(ev.to_task));
    }
    transfers[key] = &ev;
  }
  for (TaskId parent = 0; parent < num_tasks; ++parent) {
    if (!schedule.is_assigned(parent)) continue;
    const auto& pa = schedule.assignment(parent);
    for (const TaskId child : scenario.dag.children(parent)) {
      if (!schedule.is_assigned(child)) continue;
      const auto& ca = schedule.assignment(child);
      const std::string edge =
          "edge " + std::to_string(parent) + "->" + std::to_string(child);
      const double bits = scenario.edge_bits(parent, child, pa.version);
      const auto it = transfers.find({parent, child});
      if (pa.machine == ca.machine || bits <= 0.0) {
        if (it != transfers.end()) {
          out.push_back(edge + " needs no transfer but one is recorded");
        }
        if (ca.start < pa.finish) {
          out.push_back(edge + ": child starts before parent finishes");
        }
        continue;
      }
      if (it == transfers.end()) {
        out.push_back(edge + ": cross-machine data but no transfer recorded");
        continue;
      }
      const auto& ev = *it->second;
      if (ev.from_machine != pa.machine || ev.to_machine != ca.machine) {
        out.push_back(edge + ": transfer endpoints do not match the assignment");
      }
      if (std::abs(ev.bits - bits) > 1e-6 * std::max(1.0, bits)) {
        out.push_back(edge + ": transfer bit volume mismatch");
      }
      const Cycles expect_dur = sim::transfer_cycles(
          bits, scenario.grid.machine(pa.machine), scenario.grid.machine(ca.machine));
      if (ev.finish - ev.start != expect_dur) {
        out.push_back(edge + ": transfer duration mismatch");
      }
      if (ev.start < pa.finish) out.push_back(edge + ": transfer starts before parent finishes");
      if (ev.finish > ca.start) out.push_back(edge + ": data arrives after child starts");
    }
  }

  // 5b: transfers must avoid link outages on both endpoints.
  for (const auto& ev : schedule.comm_events()) {
    for (const auto& outage : scenario.link_outages) {
      if (outage.machine != ev.from_machine && outage.machine != ev.to_machine) {
        continue;
      }
      const Cycles o_end = outage.start + outage.duration;
      if (ev.start < o_end && outage.start < ev.finish) {
        out.push_back("transfer " + std::to_string(ev.from_task) + "->" +
                      std::to_string(ev.to_task) +
                      " overlaps a link outage on machine " +
                      std::to_string(outage.machine));
      }
    }
  }

  // 5c: machine presence windows (churn) — computations and transfers must
  // fall inside the presence window of every machine they touch.
  if (!scenario.machine_windows.empty()) {
    for (TaskId task = 0; task < num_tasks; ++task) {
      if (!schedule.is_assigned(task)) continue;
      const auto& a = schedule.assignment(task);
      if (a.start < scenario.machine_join(a.machine) ||
          a.finish > scenario.machine_depart(a.machine)) {
        out.push_back(task_str(task) + " runs outside machine " +
                      std::to_string(a.machine) + "'s presence window");
      }
    }
    for (const auto& ev : schedule.comm_events()) {
      for (const MachineId m : {ev.from_machine, ev.to_machine}) {
        if (ev.start < scenario.machine_join(m) ||
            ev.finish > scenario.machine_depart(m)) {
          out.push_back("transfer " + std::to_string(ev.from_task) + "->" +
                        std::to_string(ev.to_task) +
                        " falls outside machine " + std::to_string(m) +
                        "'s presence window");
        }
      }
    }
  }

  // 6: energy, recomputed from records.
  {
    std::vector<double> consumed(scenario.num_machines(), 0.0);
    for (TaskId task = 0; task < num_tasks; ++task) {
      if (!schedule.is_assigned(task)) continue;
      const auto& a = schedule.assignment(task);
      consumed[static_cast<std::size_t>(a.machine)] +=
          scenario.grid.machine(a.machine).compute_energy(a.finish - a.start);
    }
    for (const auto& ev : schedule.comm_events()) {
      consumed[static_cast<std::size_t>(ev.from_machine)] +=
          scenario.grid.machine(ev.from_machine).transmit_energy(ev.finish - ev.start);
    }
    double tec = 0.0;
    for (std::size_t j = 0; j < consumed.size(); ++j) {
      tec += consumed[j];
      const auto m = static_cast<MachineId>(j);
      if (consumed[j] > scenario.grid.machine(m).battery_capacity + kEnergyEps) {
        out.push_back("machine " + std::to_string(j) + " battery overdrawn: " +
                      std::to_string(consumed[j]) + " > " +
                      std::to_string(scenario.grid.machine(m).battery_capacity));
      }
      if (std::abs(consumed[j] - schedule.energy().spent(m)) > kEnergyEps) {
        out.push_back("machine " + std::to_string(j) +
                      " ledger drift: recomputed energy does not match spent()");
      }
    }
    if (std::abs(tec - schedule.tec()) > kEnergyEps) {
      out.push_back("TEC mismatch between records and schedule aggregate");
    }
  }

  // 7: aggregates.
  if (assigned != schedule.num_assigned()) out.push_back("num_assigned mismatch");
  if (t100 != schedule.t100()) out.push_back("t100 mismatch");
  if (schedule.num_assigned() > 0 && aet != schedule.aet()) {
    out.push_back("AET mismatch between records and schedule aggregate");
  }
  if (options.require_within_tau && aet > scenario.tau) {
    out.push_back("AET " + std::to_string(aet) + " exceeds tau " +
                  std::to_string(scenario.tau));
  }

  return report;
}

}  // namespace ahg::core
