#pragma once
// Independent full-schedule validator.
//
// Re-derives every constraint from the Scenario and the Schedule's records
// WITHOUT trusting the Schedule's own bookkeeping (timelines and energy
// totals are rebuilt from the assignment/communication records). Used by the
// test suite as the ground-truth oracle for every heuristic, and by the
// examples to demonstrate that produced mappings are genuinely feasible.

#include <string>
#include <vector>

#include "sim/schedule.hpp"
#include "workload/scenario.hpp"

namespace ahg::core {

struct ValidationReport {
  std::vector<std::string> violations;
  bool ok() const noexcept { return violations.empty(); }
  std::string str() const;
};

struct ValidateOptions {
  /// Require every subtask to be assigned (a complete mapping).
  bool require_complete = true;
  /// Require AET <= tau.
  bool require_within_tau = true;
};

/// Checks performed:
///  1. every assigned task sits on a valid machine with the exact duration
///     the scenario prescribes for its version;
///  2. precedence: every parent of an assigned task is assigned;
///  3. machine exclusivity: no two computations overlap on one machine;
///  4. channel exclusivity: no two transfers overlap on one tx or rx channel;
///  5. data routing: every data-carrying cross-machine edge has exactly one
///     matching transfer with the correct bit volume and duration, starting
///     no earlier than the parent's finish and ending no later than the
///     child's start; same-machine children start no earlier than the parent
///     finishes;
///  6. energy: per-machine recomputed consumption (compute + transmit)
///     stays within B(j) and matches the ledger's spent totals;
///  7. aggregates: T100 / AET / TEC reported by the schedule match the
///     records.
ValidationReport validate_schedule(const workload::Scenario& scenario,
                                   const sim::Schedule& schedule,
                                   const ValidateOptions& options = {});

}  // namespace ahg::core
