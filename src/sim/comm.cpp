#include "sim/comm.hpp"

#include <algorithm>

#include "sim/grid.hpp"
#include "support/contract.hpp"

namespace ahg::sim {

double cmt_seconds_per_bit(const MachineSpec& sender, const MachineSpec& receiver) {
  const double bw = std::min(sender.bandwidth_bps, receiver.bandwidth_bps);
  AHG_EXPECTS_MSG(bw > 0.0, "link bandwidth must be positive");
  return 1.0 / bw;
}

Cycles transfer_cycles(double bits, const MachineSpec& sender,
                       const MachineSpec& receiver) {
  AHG_EXPECTS_MSG(bits >= 0.0, "data volume must be non-negative");
  if (bits == 0.0) return 0;
  const double secs = bits * cmt_seconds_per_bit(sender, receiver);
  const Cycles c = cycles_from_seconds(secs);
  return c > 0 ? c : 1;
}

double transfer_energy(const MachineSpec& sender, Cycles cycles) {
  AHG_EXPECTS_MSG(cycles >= 0, "transfer duration must be non-negative");
  return sender.transmit_energy(cycles);
}

Cycles worst_case_transfer_cycles(double bits, const MachineSpec& sender,
                                  const GridConfig& grid) {
  AHG_EXPECTS_MSG(bits >= 0.0, "data volume must be non-negative");
  if (bits == 0.0) return 0;
  double min_bw = sender.bandwidth_bps;
  for (const auto& machine : grid.machines()) {
    min_bw = std::min(min_bw, machine.bandwidth_bps);
  }
  AHG_EXPECTS_MSG(min_bw > 0.0, "grid bandwidth must be positive");
  const Cycles c = cycles_from_seconds(bits / min_bw);
  return c > 0 ? c : 1;
}

}  // namespace ahg::sim
