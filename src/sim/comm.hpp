#pragma once
// Communication timing model (paper §III).
//
// The time to transmit one bit of a global data item from machine i to
// machine j is CMT(i, j) = 1 / min(BW(i), BW(j)): the link runs at the
// slower endpoint's bandwidth. Transfers between subtasks on the same
// machine take no time and no energy.

#include "sim/grid.hpp"
#include "sim/machine.hpp"
#include "support/units.hpp"

namespace ahg::sim {

/// Seconds per bit over the i -> j link.
double cmt_seconds_per_bit(const MachineSpec& sender, const MachineSpec& receiver);

/// Duration in clock cycles of transferring `bits` over the i -> j link
/// (ceil; a non-empty transfer occupies at least one cycle). Zero bits take
/// zero cycles.
Cycles transfer_cycles(double bits, const MachineSpec& sender,
                       const MachineSpec& receiver);

/// Energy drawn from the SENDER's battery by a transfer of `cycles` cycles
/// (receivers consume no energy — paper assumption (a)).
double transfer_energy(const MachineSpec& sender, Cycles cycles);

/// Worst-case duration of transferring `bits` out of `sender` when the
/// receiver is unknown: assume the lowest-bandwidth link in the grid (the
/// paper's conservative feasibility rule, §IV).
Cycles worst_case_transfer_cycles(double bits, const MachineSpec& sender,
                                  const GridConfig& grid);

}  // namespace ahg::sim
