#include "sim/energy.hpp"

#include "support/contract.hpp"

namespace ahg::sim {

namespace {
// Tolerance for floating-point accumulation when comparing against capacity.
constexpr double kEps = 1e-9;
}  // namespace

EnergyLedger::EnergyLedger(std::vector<double> capacities)
    : capacity_(std::move(capacities)),
      spent_(capacity_.size(), 0.0),
      reserved_(capacity_.size(), 0.0),
      forfeited_(capacity_.size(), 0.0) {
  AHG_EXPECTS_MSG(!capacity_.empty(), "ledger needs at least one machine");
  for (const double cap : capacity_) {
    AHG_EXPECTS_MSG(cap >= 0.0, "battery capacity must be non-negative");
  }
}

void EnergyLedger::check_machine(MachineId machine) const {
  AHG_EXPECTS_MSG(machine >= 0 && static_cast<std::size_t>(machine) < capacity_.size(),
                  "machine id out of range");
}

double EnergyLedger::capacity(MachineId machine) const {
  check_machine(machine);
  return capacity_[static_cast<std::size_t>(machine)];
}

double EnergyLedger::spent(MachineId machine) const {
  check_machine(machine);
  return spent_[static_cast<std::size_t>(machine)];
}

double EnergyLedger::reserved(MachineId machine) const {
  check_machine(machine);
  return reserved_[static_cast<std::size_t>(machine)];
}

double EnergyLedger::available(MachineId machine) const {
  check_machine(machine);
  const auto j = static_cast<std::size_t>(machine);
  return capacity_[j] - spent_[j] - reserved_[j] - forfeited_[j];
}

double EnergyLedger::total_spent() const noexcept {
  double total = 0.0;
  for (const double s : spent_) total += s;
  return total;
}

void EnergyLedger::charge(MachineId machine, double amount) {
  check_machine(machine);
  AHG_EXPECTS_MSG(amount >= 0.0, "charge must be non-negative");
  const auto j = static_cast<std::size_t>(machine);
  AHG_ENSURES_MSG(spent_[j] + reserved_[j] + forfeited_[j] + amount <= capacity_[j] + kEps,
                  "battery overdraw — feasibility check missing before charge");
  spent_[j] += amount;
}

void EnergyLedger::reserve(MachineId machine, ReservationKey key, double amount) {
  check_machine(machine);
  AHG_EXPECTS_MSG(amount >= 0.0, "reservation must be non-negative");
  AHG_EXPECTS_MSG(!reservations_.contains(key), "duplicate reservation key");
  const auto j = static_cast<std::size_t>(machine);
  AHG_ENSURES_MSG(spent_[j] + reserved_[j] + forfeited_[j] + amount <= capacity_[j] + kEps,
                  "battery overdraw — reservation exceeds remaining energy");
  reserved_[j] += amount;
  reservations_.emplace(key, Reservation{machine, amount});
}

bool EnergyLedger::has_reservation(ReservationKey key) const noexcept {
  return reservations_.contains(key);
}

double EnergyLedger::release(ReservationKey key) {
  const auto it = reservations_.find(key);
  AHG_EXPECTS_MSG(it != reservations_.end(), "release of unknown reservation");
  const Reservation res = it->second;
  reservations_.erase(it);
  auto& held = reserved_[static_cast<std::size_t>(res.machine)];
  held -= res.amount;
  if (held < 0.0) held = 0.0;  // clamp fp residue
  return res.amount;
}

double EnergyLedger::settle(ReservationKey key, double actual_amount) {
  const auto it = reservations_.find(key);
  AHG_EXPECTS_MSG(it != reservations_.end(), "settle of unknown reservation");
  const Reservation res = it->second;
  AHG_EXPECTS_MSG(actual_amount <= res.amount + kEps,
                  "actual charge exceeds worst-case reservation");
  const MachineId machine = res.machine;
  release(key);
  if (actual_amount > 0.0) {
    charge(machine, actual_amount);
  }
  return actual_amount;
}

double EnergyLedger::forfeit(MachineId machine) {
  check_machine(machine);
  const auto j = static_cast<std::size_t>(machine);
  double remainder = capacity_[j] - spent_[j] - reserved_[j] - forfeited_[j];
  if (remainder < 0.0) remainder = 0.0;  // clamp fp residue
  forfeited_[j] += remainder;
  return remainder;
}

double EnergyLedger::forfeited(MachineId machine) const {
  check_machine(machine);
  return forfeited_[static_cast<std::size_t>(machine)];
}

}  // namespace ahg::sim
