#pragma once
// Per-machine battery accounting with named worst-case reservations.
//
// The SLRH feasibility check (paper §IV) is conservative: when a subtask is
// mapped, enough of the host's battery must remain to send every output data
// item over the lowest-bandwidth link. We make that rule airtight by HOLDING
// the worst-case amount as a named reservation per outgoing DAG edge and
// converting it to the (never larger) actual charge when the child is mapped.
// A schedule built through this ledger can never overdraw a battery.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "support/units.hpp"

namespace ahg::sim {

class EnergyLedger {
 public:
  /// Opaque reservation name; callers key it by DAG edge.
  using ReservationKey = std::uint64_t;

  explicit EnergyLedger(std::vector<double> capacities);

  std::size_t num_machines() const noexcept { return capacity_.size(); }

  double capacity(MachineId machine) const;
  double spent(MachineId machine) const;
  double reserved(MachineId machine) const;

  /// capacity - spent - reserved: what a new demand may draw on.
  double available(MachineId machine) const;

  /// Total energy actually consumed across the grid (the paper's TEC).
  double total_spent() const noexcept;

  /// Charge actual consumption. Throws InvariantError if the charge would
  /// push spent + reserved past capacity (a heuristic bug, since feasibility
  /// checks must precede every charge).
  void charge(MachineId machine, double amount);

  /// Hold `amount` against `machine` under `key`. A key may be reserved only
  /// once until released.
  void reserve(MachineId machine, ReservationKey key, double amount);

  bool has_reservation(ReservationKey key) const noexcept;

  /// Release the reservation and return the amount that was held.
  double release(ReservationKey key);

  /// Release and charge an actual amount that must not exceed the held
  /// amount plus `slack` (default: exactly covered). Returns actual charged.
  double settle(ReservationKey key, double actual_amount);

  /// Write off a departed machine's remaining battery: everything not yet
  /// spent or reserved becomes permanently unusable (the machine walked away
  /// with its charge). Subsequent charges/reservations against the machine
  /// must fit inside what was already committed — i.e. nothing new fits.
  /// Returns the amount forfeited. Idempotent.
  double forfeit(MachineId machine);

  double forfeited(MachineId machine) const;

 private:
  struct Reservation {
    MachineId machine;
    double amount;
  };
  std::vector<double> capacity_;
  std::vector<double> spent_;
  std::vector<double> reserved_;
  std::vector<double> forfeited_;
  std::unordered_map<ReservationKey, Reservation> reservations_;
  void check_machine(MachineId machine) const;
};

/// Reservation key for a DAG edge parent -> child.
constexpr EnergyLedger::ReservationKey edge_key(TaskId parent, TaskId child) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(parent)) << 32) |
         static_cast<std::uint32_t>(child);
}

}  // namespace ahg::sim
