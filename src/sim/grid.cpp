#include "sim/grid.hpp"

#include "support/contract.hpp"

namespace ahg::sim {

std::string to_string(GridCase grid_case) {
  switch (grid_case) {
    case GridCase::A: return "Case A";
    case GridCase::B: return "Case B";
    case GridCase::C: return "Case C";
  }
  return "Case ?";
}

GridConfig::GridConfig(std::vector<MachineSpec> machines) : machines_(std::move(machines)) {
  AHG_EXPECTS_MSG(!machines_.empty(), "grid needs at least one machine");
}

GridConfig GridConfig::make(std::size_t num_fast, std::size_t num_slow) {
  AHG_EXPECTS_MSG(num_fast + num_slow > 0, "grid needs at least one machine");
  std::vector<MachineSpec> machines;
  machines.reserve(num_fast + num_slow);
  for (std::size_t i = 0; i < num_fast; ++i) machines.push_back(fast_machine_spec());
  for (std::size_t i = 0; i < num_slow; ++i) machines.push_back(slow_machine_spec());
  return GridConfig(std::move(machines));
}

GridConfig GridConfig::make_case(GridCase grid_case) {
  switch (grid_case) {
    case GridCase::A: return make(2, 2);
    case GridCase::B: return make(2, 1);
    case GridCase::C: return make(1, 2);
  }
  return make(2, 2);
}

const MachineSpec& GridConfig::machine(MachineId id) const {
  AHG_EXPECTS_MSG(id >= 0 && static_cast<std::size_t>(id) < machines_.size(),
                  "machine id out of range");
  return machines_[static_cast<std::size_t>(id)];
}

std::size_t GridConfig::count(MachineClass cls) const noexcept {
  std::size_t n = 0;
  for (const auto& m : machines_) {
    if (m.cls == cls) ++n;
  }
  return n;
}

double GridConfig::total_system_energy() const noexcept {
  double total = 0.0;
  for (const auto& m : machines_) total += m.battery_capacity;
  return total;
}

GridConfig GridConfig::with_battery_scale(double factor) const {
  AHG_EXPECTS_MSG(factor > 0.0, "battery scale must be positive");
  std::vector<MachineSpec> scaled = machines_;
  for (auto& m : scaled) m.battery_capacity *= factor;
  return GridConfig(std::move(scaled));
}

GridConfig GridConfig::without_machine(MachineId id) const {
  AHG_EXPECTS_MSG(id >= 0 && static_cast<std::size_t>(id) < machines_.size(),
                  "machine id out of range");
  AHG_EXPECTS_MSG(machines_.size() > 1, "cannot remove the last machine");
  std::vector<MachineSpec> remaining;
  remaining.reserve(machines_.size() - 1);
  for (std::size_t j = 0; j < machines_.size(); ++j) {
    if (static_cast<MachineId>(j) != id) remaining.push_back(machines_[j]);
  }
  return GridConfig(std::move(remaining));
}

}  // namespace ahg::sim
