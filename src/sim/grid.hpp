#pragma once
// Grid configurations (paper §III, Table 1).
//
// Case A: 2 fast + 2 slow machines (baseline, all machines present)
// Case B: 2 fast + 1 slow          (one slow machine lost)
// Case C: 1 fast + 2 slow          (one fast machine lost)

#include <cstddef>
#include <string>
#include <vector>

#include "sim/machine.hpp"
#include "support/units.hpp"

namespace ahg::sim {

enum class GridCase : std::uint8_t { A, B, C };

std::string to_string(GridCase grid_case);

/// The set of machines participating in the grid, ordered by machine id.
/// By convention (matching the paper's upper-bound reference-machine choice)
/// machine 0 is always a fast machine.
class GridConfig {
 public:
  explicit GridConfig(std::vector<MachineSpec> machines);

  static GridConfig make_case(GridCase grid_case);

  /// A custom fast/slow mix; fast machines receive the lower ids.
  static GridConfig make(std::size_t num_fast, std::size_t num_slow);

  std::size_t num_machines() const noexcept { return machines_.size(); }
  const MachineSpec& machine(MachineId id) const;
  const std::vector<MachineSpec>& machines() const noexcept { return machines_; }

  std::size_t count(MachineClass cls) const noexcept;

  /// Total system energy: TSE = sum_j B(j)   (paper §IV).
  double total_system_energy() const noexcept;

  /// Remove one machine by id, producing the degraded grid (used by the
  /// dynamic machine-loss experiments). Remaining machines keep their order.
  GridConfig without_machine(MachineId id) const;

  /// Scale every battery capacity by `factor`. Used by reduced-scale
  /// experiment suites: tau scales with |T|, so batteries must scale too or
  /// the paper's energy pressure (fast machines energy-bound, slow machines
  /// time-bound) disappears at small |T|.
  GridConfig with_battery_scale(double factor) const;

 private:
  std::vector<MachineSpec> machines_;
};

}  // namespace ahg::sim
