#include "sim/machine.hpp"

namespace ahg::sim {

std::string to_string(MachineClass cls) {
  return cls == MachineClass::Fast ? "fast" : "slow";
}

MachineSpec fast_machine_spec() noexcept {
  MachineSpec spec;
  spec.cls = MachineClass::Fast;
  spec.battery_capacity = 580.0;
  spec.compute_power = 0.1;
  spec.transmit_power = 0.2;
  spec.bandwidth_bps = 8.0e6;
  return spec;
}

MachineSpec slow_machine_spec() noexcept {
  MachineSpec spec;
  spec.cls = MachineClass::Slow;
  spec.battery_capacity = 58.0;
  spec.compute_power = 0.001;
  spec.transmit_power = 0.002;
  spec.bandwidth_bps = 4.0e6;
  return spec;
}

}  // namespace ahg::sim
