#pragma once
// Machine model for the ad hoc grid (paper §III, Table 2).
//
// Each machine j is characterised by four parameters:
//   B(j)  — battery energy capacity            [energy units]
//   E(j)  — energy drawn while computing       [energy units / second]
//   C(j)  — energy drawn while transmitting    [energy units / second]
//   BW(j) — communication bandwidth            [bits / second]
// Machines consume no energy when idle or receiving.

#include <cstdint>
#include <string>

#include "support/units.hpp"

namespace ahg::sim {

enum class MachineClass : std::uint8_t { Fast, Slow };

std::string to_string(MachineClass cls);

struct MachineSpec {
  MachineClass cls = MachineClass::Fast;
  double battery_capacity = 0.0;       ///< B(j), energy units
  double compute_power = 0.0;          ///< E(j), energy units per second
  double transmit_power = 0.0;         ///< C(j), energy units per second
  double bandwidth_bps = 0.0;          ///< BW(j), bits per second

  /// Energy consumed by `cycles` of computation on this machine.
  double compute_energy(Cycles cycles) const noexcept {
    return compute_power * seconds_from_cycles(cycles);
  }

  /// Energy consumed by `cycles` of transmission from this machine.
  double transmit_energy(Cycles cycles) const noexcept {
    return transmit_power * seconds_from_cycles(cycles);
  }
};

/// Table 2 "Fast" machine: Dell Precision M60-class notebook.
/// B = 580 energy units, E = 0.1 u/s, C = 0.2 u/s, BW = 8 Mbit/s.
MachineSpec fast_machine_spec() noexcept;

/// Table 2 "Slow" machine: Dell Axim X5-class PDA.
/// B = 58 energy units, E = 0.001 u/s, C = 0.002 u/s, BW = 4 Mbit/s.
MachineSpec slow_machine_spec() noexcept;

}  // namespace ahg::sim
