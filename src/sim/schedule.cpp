#include "sim/schedule.hpp"

#include <algorithm>

#include "support/contract.hpp"

namespace ahg::sim {

namespace {
std::vector<double> capacities(const GridConfig& grid) {
  std::vector<double> caps;
  caps.reserve(grid.num_machines());
  for (const auto& machine : grid.machines()) caps.push_back(machine.battery_capacity);
  return caps;
}
}  // namespace

Schedule::Schedule(const GridConfig& grid, std::size_t num_tasks)
    : compute_(grid.num_machines()),
      tx_(grid.num_machines()),
      rx_(grid.num_machines()),
      assignments_(num_tasks),
      ledger_(capacities(grid)) {
  AHG_EXPECTS_MSG(num_tasks > 0, "schedule needs at least one task");
}

void Schedule::check_machine(MachineId machine) const {
  AHG_EXPECTS_MSG(machine >= 0 && static_cast<std::size_t>(machine) < compute_.size(),
                  "machine id out of range");
}

void Schedule::check_task(TaskId task) const {
  AHG_EXPECTS_MSG(task >= 0 && static_cast<std::size_t>(task) < assignments_.size(),
                  "task id out of range");
}

bool Schedule::is_assigned(TaskId task) const {
  check_task(task);
  return assignments_[static_cast<std::size_t>(task)].valid();
}

const Assignment& Schedule::assignment(TaskId task) const {
  check_task(task);
  const auto& a = assignments_[static_cast<std::size_t>(task)];
  AHG_EXPECTS_MSG(a.valid(), "assignment() on an unassigned task");
  return a;
}

const Timeline& Schedule::compute_timeline(MachineId machine) const {
  check_machine(machine);
  return compute_[static_cast<std::size_t>(machine)];
}

const Timeline& Schedule::tx_timeline(MachineId machine) const {
  check_machine(machine);
  return tx_[static_cast<std::size_t>(machine)];
}

const Timeline& Schedule::rx_timeline(MachineId machine) const {
  check_machine(machine);
  return rx_[static_cast<std::size_t>(machine)];
}

Cycles Schedule::machine_ready(MachineId machine) const {
  check_machine(machine);
  return compute_[static_cast<std::size_t>(machine)].ready_time();
}

void Schedule::add_assignment(TaskId task, MachineId machine, VersionKind version,
                              Cycles start, Cycles duration, double exec_energy) {
  check_task(task);
  check_machine(machine);
  AHG_EXPECTS_MSG(!is_assigned(task), "task already assigned");
  AHG_EXPECTS_MSG(duration > 0, "assignment duration must be positive");
  compute_[static_cast<std::size_t>(machine)].insert(start, duration);
  ledger_.charge(machine, exec_energy);
  auto& a = assignments_[static_cast<std::size_t>(task)];
  a = Assignment{task, machine, version, start, start + duration, exec_energy};
  ++num_assigned_;
  if (version == VersionKind::Primary) ++t100_;
  aet_ = std::max(aet_, a.finish);
  order_.push_back(task);
}

void Schedule::block_channels(MachineId machine, Cycles start, Cycles duration) {
  check_machine(machine);
  AHG_EXPECTS_MSG(duration > 0, "outage duration must be positive");
  tx_[static_cast<std::size_t>(machine)].insert(start, duration);
  rx_[static_cast<std::size_t>(machine)].insert(start, duration);
}

void Schedule::block_compute(MachineId machine, Cycles start, Cycles duration) {
  check_machine(machine);
  AHG_EXPECTS_MSG(duration > 0, "block duration must be positive");
  compute_[static_cast<std::size_t>(machine)].insert(start, duration);
}

void Schedule::add_comm(TaskId from_task, TaskId to_task, MachineId from_machine,
                        MachineId to_machine, Cycles start, Cycles duration,
                        double bits, double energy) {
  check_task(from_task);
  check_task(to_task);
  check_machine(from_machine);
  check_machine(to_machine);
  AHG_EXPECTS_MSG(from_machine != to_machine,
                  "same-machine transfers are free and must not be recorded");
  AHG_EXPECTS_MSG(duration > 0, "transfer duration must be positive");
  tx_[static_cast<std::size_t>(from_machine)].insert(start, duration);
  rx_[static_cast<std::size_t>(to_machine)].insert(start, duration);
  // Energy is charged by the caller through the reservation settle path, or
  // directly here when no reservation exists (e.g. hand-built schedules).
  if (energy > 0.0 && !ledger_.has_reservation(edge_key(from_task, to_task))) {
    ledger_.charge(from_machine, energy);
  } else if (ledger_.has_reservation(edge_key(from_task, to_task))) {
    ledger_.settle(edge_key(from_task, to_task), energy);
  }
  comms_.push_back(CommEvent{from_task, to_task, from_machine, to_machine, start,
                             start + duration, bits, energy});
}

}  // namespace ahg::sim
