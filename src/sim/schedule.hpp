#pragma once
// The evolving mapping state shared by every heuristic: per-machine compute
// and communication timelines, the energy ledger, and the record of all
// assignments and transfers ("a historical record of all critical
// parameters", paper §IV).
//
// Schedule is purely mechanical — it enforces resource exclusivity and
// energy bounds but knows nothing about DAGs, ETC matrices, or versions'
// scaling rules. The placement planner in ahg_core computes durations,
// arrival times, and energies from the Scenario and drives this API.

#include <optional>
#include <span>
#include <vector>

#include "sim/energy.hpp"
#include "sim/grid.hpp"
#include "sim/timeline.hpp"
#include "support/units.hpp"
#include "support/version.hpp"

namespace ahg::sim {

struct Assignment {
  TaskId task = kInvalidTask;
  MachineId machine = kInvalidMachine;
  VersionKind version = VersionKind::Primary;
  Cycles start = 0;
  Cycles finish = 0;  ///< exclusive: the subtask occupies [start, finish)
  double energy = 0.0;

  bool valid() const noexcept { return machine != kInvalidMachine; }
};

struct CommEvent {
  TaskId from_task = kInvalidTask;
  TaskId to_task = kInvalidTask;
  MachineId from_machine = kInvalidMachine;
  MachineId to_machine = kInvalidMachine;
  Cycles start = 0;
  Cycles finish = 0;  ///< exclusive
  double bits = 0.0;
  double energy = 0.0;  ///< drawn from from_machine's battery
};

class Schedule {
 public:
  Schedule(const GridConfig& grid, std::size_t num_tasks);

  std::size_t num_tasks() const noexcept { return assignments_.size(); }
  std::size_t num_machines() const noexcept { return compute_.size(); }

  // --- queries -------------------------------------------------------------

  bool is_assigned(TaskId task) const;
  const Assignment& assignment(TaskId task) const;  ///< requires is_assigned
  std::size_t num_assigned() const noexcept { return num_assigned_; }
  bool complete() const noexcept { return num_assigned_ == assignments_.size(); }

  /// Number of subtasks mapped at their primary version (the paper's T100).
  std::size_t t100() const noexcept { return t100_; }

  /// Application execution time: finish of the last assigned subtask
  /// (0 when nothing is assigned).
  Cycles aet() const noexcept { return aet_; }

  /// Total energy consumed so far (the paper's TEC): all actual charges.
  double tec() const noexcept { return ledger_.total_spent(); }

  const Timeline& compute_timeline(MachineId machine) const;
  const Timeline& tx_timeline(MachineId machine) const;
  const Timeline& rx_timeline(MachineId machine) const;

  /// End of the machine's last scheduled computation.
  Cycles machine_ready(MachineId machine) const;

  const EnergyLedger& energy() const noexcept { return ledger_; }

  std::span<const CommEvent> comm_events() const noexcept { return comms_; }

  /// All assignments made so far, in assignment order (for traces/reports).
  std::span<const TaskId> assignment_order() const noexcept { return order_; }

  // --- mutation (driven by the core placement planner) ----------------------

  /// Record a computation: occupies [start, start+duration) on the machine's
  /// compute timeline and charges exec_energy to its battery.
  void add_assignment(TaskId task, MachineId machine, VersionKind version,
                      Cycles start, Cycles duration, double exec_energy);

  /// Record a transfer: occupies tx(from) and rx(to) over [start,
  /// start+duration) and charges energy to the sender. Same-machine
  /// transfers must not be recorded (they are free and instantaneous).
  void add_comm(TaskId from_task, TaskId to_task, MachineId from_machine,
                MachineId to_machine, Cycles start, Cycles duration, double bits,
                double energy);

  /// Block both communication channels of a machine over [start,
  /// start+duration): a link outage. No energy is drawn and no comm event is
  /// recorded; transfers simply cannot be booked across the window. The
  /// compute unit is unaffected.
  void block_channels(MachineId machine, Cycles start, Cycles duration);

  /// Block a machine's compute unit over [start, start+duration): the
  /// machine has departed the grid (churn). No assignment is recorded and no
  /// energy is drawn; subtasks simply cannot be booked across the window.
  /// Does not affect aet()/t100() — only future placements.
  void block_compute(MachineId machine, Cycles start, Cycles duration);

  /// Named worst-case energy reservations (see EnergyLedger).
  EnergyLedger& ledger() noexcept { return ledger_; }

  /// Heap bytes held by the three timeline arrays (compute + tx + rx across
  /// all machines). Feeds the memory-telemetry gauge memory.timeline_bytes.
  std::size_t timeline_memory_bytes() const noexcept {
    std::size_t bytes = 0;
    for (const auto* lines : {&compute_, &tx_, &rx_}) {
      bytes += lines->capacity() * sizeof(Timeline);
      for (const Timeline& line : *lines) bytes += line.memory_bytes();
    }
    return bytes;
  }

 private:
  void check_machine(MachineId machine) const;
  void check_task(TaskId task) const;

  std::vector<Timeline> compute_;
  std::vector<Timeline> tx_;
  std::vector<Timeline> rx_;
  std::vector<Assignment> assignments_;
  std::vector<CommEvent> comms_;
  std::vector<TaskId> order_;
  EnergyLedger ledger_;
  std::size_t num_assigned_ = 0;
  std::size_t t100_ = 0;
  Cycles aet_ = 0;
};

}  // namespace ahg::sim
