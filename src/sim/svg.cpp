#include "sim/svg.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "support/contract.hpp"

namespace ahg::sim {

namespace {

// Muted, print-friendly palette: primary-version bars, secondary-version
// bars, transfers, outage shading.
constexpr const char* kPrimaryFill = "#4878a8";
constexpr const char* kSecondaryFill = "#a8c4dc";
constexpr const char* kCommFill = "#c88c28";
constexpr const char* kOutageFill = "#d9d9d9";
constexpr const char* kLaneStroke = "#cccccc";
constexpr int kLabelWidth = 64;
constexpr int kTopMargin = 28;

std::string escape_xml(const std::string& text) {
  std::string out;
  for (const char ch : text) {
    switch (ch) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += ch;
    }
  }
  return out;
}

}  // namespace

void render_svg_gantt(std::ostream& os, const Schedule& schedule,
                      const SvgOptions& options) {
  AHG_EXPECTS_MSG(options.width > kLabelWidth + 10, "canvas too narrow");
  AHG_EXPECTS_MSG(options.lane_height >= 8, "lanes too short");

  Cycles horizon = schedule.aet();
  for (std::size_t j = 0; j < schedule.num_machines(); ++j) {
    const auto m = static_cast<MachineId>(j);
    horizon = std::max({horizon, schedule.tx_timeline(m).ready_time(),
                        schedule.rx_timeline(m).ready_time()});
  }
  for (const auto& outage : options.outages) {
    horizon = std::max(horizon, outage.start + outage.duration);
  }
  if (horizon == 0) horizon = 1;

  const int lanes_per_machine = options.show_comm ? 3 : 1;
  const auto num_lanes =
      static_cast<int>(schedule.num_machines()) * lanes_per_machine;
  const int height = kTopMargin + num_lanes * options.lane_height + 8;
  const double plot_width = options.width - kLabelWidth - 8;
  const auto x_of = [&](Cycles t) {
    return static_cast<double>(kLabelWidth) +
           plot_width * static_cast<double>(t) / static_cast<double>(horizon);
  };

  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << options.width
     << "\" height=\"" << height << "\" font-family=\"sans-serif\" font-size=\"10\">\n";
  if (!options.title.empty()) {
    os << "  <text x=\"" << kLabelWidth << "\" y=\"14\" font-size=\"12\">"
       << escape_xml(options.title) << "</text>\n";
  }

  const auto lane_y = [&](std::size_t machine, int sublane) {
    return kTopMargin +
           (static_cast<int>(machine) * lanes_per_machine + sublane) *
               options.lane_height;
  };

  auto bar = [&](double x0, double x1, int y, const char* fill,
                 const std::string& tooltip) {
    const double w = std::max(1.0, x1 - x0);
    os << "  <rect x=\"" << x0 << "\" y=\"" << y + 2 << "\" width=\"" << w
       << "\" height=\"" << options.lane_height - 4 << "\" fill=\"" << fill
       << "\"><title>" << escape_xml(tooltip) << "</title></rect>\n";
  };

  // Lane backgrounds + labels.
  static constexpr const char* kSub[] = {"cpu", "tx", "rx"};
  for (std::size_t j = 0; j < schedule.num_machines(); ++j) {
    for (int sub = 0; sub < lanes_per_machine; ++sub) {
      const int y = lane_y(j, sub);
      os << "  <rect x=\"" << kLabelWidth << "\" y=\"" << y << "\" width=\""
         << plot_width << "\" height=\"" << options.lane_height
         << "\" fill=\"none\" stroke=\"" << kLaneStroke << "\"/>\n";
      os << "  <text x=\"4\" y=\"" << y + options.lane_height - 7 << "\">m" << j
         << ' ' << kSub[sub] << "</text>\n";
    }
  }

  // Outage shading on tx/rx lanes (or the cpu lane when comm lanes hidden).
  for (const auto& outage : options.outages) {
    if (outage.machine < 0 ||
        static_cast<std::size_t>(outage.machine) >= schedule.num_machines()) {
      continue;
    }
    const double x0 = x_of(outage.start);
    const double x1 = x_of(outage.start + outage.duration);
    const int first = options.show_comm ? 1 : 0;
    const int last = options.show_comm ? 2 : 0;
    for (int sub = first; sub <= last; ++sub) {
      bar(x0, x1, lane_y(static_cast<std::size_t>(outage.machine), sub),
          kOutageFill, "link outage");
    }
  }

  // Task bars.
  for (const TaskId task : schedule.assignment_order()) {
    const auto& a = schedule.assignment(task);
    std::ostringstream tip;
    tip << "task " << task << " (" << to_string(a.version) << ") [" << a.start
        << ", " << a.finish << ")";
    bar(x_of(a.start), x_of(a.finish),
        lane_y(static_cast<std::size_t>(a.machine), 0),
        a.version == VersionKind::Primary ? kPrimaryFill : kSecondaryFill,
        tip.str());
  }

  // Transfer bars.
  if (options.show_comm) {
    for (const auto& ev : schedule.comm_events()) {
      std::ostringstream tip;
      tip << "transfer " << ev.from_task << " -> " << ev.to_task << " [" << ev.start
          << ", " << ev.finish << ")";
      bar(x_of(ev.start), x_of(ev.finish),
          lane_y(static_cast<std::size_t>(ev.from_machine), 1), kCommFill, tip.str());
      bar(x_of(ev.start), x_of(ev.finish),
          lane_y(static_cast<std::size_t>(ev.to_machine), 2), kCommFill, tip.str());
    }
  }

  // Time axis caption.
  os << "  <text x=\"" << kLabelWidth << "\" y=\"" << height - 2 << "\">0</text>\n"
     << "  <text x=\"" << options.width - 40 << "\" y=\"" << height - 2 << "\">"
     << seconds_from_cycles(horizon) << " s</text>\n";
  os << "</svg>\n";
}

}  // namespace ahg::sim
