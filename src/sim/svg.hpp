#pragma once
// SVG Gantt-chart export: a self-contained vector rendering of a schedule —
// one lane per machine (compute + communication channels), version-coded
// task bars, transfer bars, and link-outage shading. Complements the ASCII
// Gantt (trace.hpp) for reports and papers.

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/schedule.hpp"

namespace ahg::sim {

struct SvgOptions {
  int width = 1200;          ///< total canvas width in px
  int lane_height = 22;      ///< height of each resource lane
  bool show_comm = true;     ///< include tx/rx lanes
  /// Optional blackout windows to shade (machine, start, duration); callers
  /// typically pass the scenario's link outages.
  struct Outage {
    MachineId machine;
    Cycles start;
    Cycles duration;
  };
  std::vector<Outage> outages;
  std::string title;
};

/// Render the schedule as a standalone SVG document.
void render_svg_gantt(std::ostream& os, const Schedule& schedule,
                      const SvgOptions& options = {});

}  // namespace ahg::sim
