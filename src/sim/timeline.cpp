#include "sim/timeline.hpp"

#include <algorithm>

#include "support/contract.hpp"

namespace ahg::sim {

std::vector<Interval> Timeline::intervals() const {
  std::vector<Interval> out;
  out.reserve(size_);
  for (const Chunk& chunk : chunks_) {
    out.insert(out.end(), chunk.ivs.begin(), chunk.ivs.end());
  }
  return out;
}

Timeline::Pos Timeline::first_end_after(Cycles value) const noexcept {
  // First chunk whose last interval ends after `value`; earlier chunks are
  // entirely in the past.
  const auto chunk_it = std::lower_bound(
      chunks_.begin(), chunks_.end(), value,
      [](const Chunk& chunk, Cycles v) { return chunk.ivs.back().end <= v; });
  if (chunk_it == chunks_.end()) return Pos{chunks_.size(), 0};
  const auto slot_it = std::lower_bound(
      chunk_it->ivs.begin(), chunk_it->ivs.end(), value,
      [](const Interval& iv, Cycles v) { return iv.end <= v; });
  return Pos{static_cast<std::size_t>(chunk_it - chunks_.begin()),
             static_cast<std::size_t>(slot_it - chunk_it->ivs.begin())};
}

void Timeline::recompute_max_gap(std::size_t c) noexcept {
  if (c >= chunks_.size()) return;
  Chunk& chunk = chunks_[c];
  Cycles widest = chunk.ivs[0].start - pred_end(c, 0);
  for (std::size_t i = 1; i < chunk.ivs.size(); ++i) {
    widest = std::max(widest, chunk.ivs[i].start - chunk.ivs[i - 1].end);
  }
  chunk.max_gap = widest;
}

bool Timeline::is_free(Cycles start, Cycles duration) const {
  AHG_EXPECTS_MSG(start >= 0, "interval start must be non-negative");
  AHG_EXPECTS_MSG(duration >= 0, "interval duration must be non-negative");
  if (duration == 0) return true;
  const Pos p = first_end_after(start);
  if (p.chunk == chunks_.size()) return true;
  return chunks_[p.chunk].ivs[p.slot].start >= start + duration;
}

Cycles Timeline::earliest_fit(Cycles not_before, Cycles duration) const {
  AHG_EXPECTS_MSG(not_before >= 0, "not_before must be non-negative");
  AHG_EXPECTS_MSG(duration >= 0, "duration must be non-negative");
  if (duration == 0) return not_before;
  // First busy interval ending after not_before; everything earlier is
  // irrelevant. Its preceding gap is truncated at not_before, so it needs a
  // bespoke check; every later gap has its full indexed length.
  const Pos p = first_end_after(not_before);
  if (p.chunk == chunks_.size()) return not_before;  // past the whole schedule
  const Chunk& lead = chunks_[p.chunk];
  if (lead.ivs[p.slot].start - not_before >= duration) return not_before;
  // Partial leading chunk: its maximum covers gaps at or before p.slot too,
  // so it cannot prove a fit — but max < duration still proves NO gap in the
  // chunk fits (a suffix maximum is bounded by the chunk maximum), which
  // skips the common dense case without scanning.
  if (lead.max_gap >= duration) {
    for (std::size_t i = p.slot + 1; i < lead.ivs.size(); ++i) {
      if (lead.ivs[i].start - lead.ivs[i - 1].end >= duration) {
        return lead.ivs[i - 1].end;
      }
    }
  }
  // Whole chunks: skip via the maxima, then scan the first chunk that fits.
  for (std::size_t c = p.chunk + 1; c < chunks_.size(); ++c) {
    const Chunk& chunk = chunks_[c];
    if (chunk.max_gap < duration) continue;
    if (chunk.ivs[0].start - pred_end(c, 0) >= duration) return pred_end(c, 0);
    for (std::size_t i = 1; i < chunk.ivs.size(); ++i) {
      if (chunk.ivs[i].start - chunk.ivs[i - 1].end >= duration) {
        return chunk.ivs[i - 1].end;
      }
    }
    AHG_EXPECTS_MSG(false, "hole index chunk maximum out of sync with gaps");
  }
  return chunks_.back().ivs.back().end;
}

Cycles Timeline::earliest_fit_walk(Cycles not_before, Cycles duration) const {
  AHG_EXPECTS_MSG(not_before >= 0, "not_before must be non-negative");
  AHG_EXPECTS_MSG(duration >= 0, "duration must be non-negative");
  if (duration == 0) return not_before;
  Cycles candidate = not_before;
  Pos p = first_end_after(candidate);
  for (std::size_t c = p.chunk; c < chunks_.size(); ++c) {
    const Chunk& chunk = chunks_[c];
    for (std::size_t i = (c == p.chunk ? p.slot : 0); i < chunk.ivs.size(); ++i) {
      if (chunk.ivs[i].start - candidate >= duration) return candidate;
      candidate = std::max(candidate, chunk.ivs[i].end);
    }
  }
  return candidate;
}

Cycles Timeline::earliest_fit_pair(const Timeline& a, const Timeline& b,
                                   Cycles not_before, Cycles duration) {
  AHG_EXPECTS_MSG(not_before >= 0, "not_before must be non-negative");
  AHG_EXPECTS_MSG(duration >= 0, "duration must be non-negative");
  if (duration == 0) return not_before;
  Cycles candidate = not_before;
  // Alternate: let each timeline push the candidate forward until both are
  // simultaneously free. Each push moves past at least one busy interval, so
  // this terminates in O(|a| + |b|) probes.
  for (;;) {
    const Cycles fit_a = a.earliest_fit(candidate, duration);
    const Cycles fit_b = b.earliest_fit(fit_a, duration);
    if (fit_a == fit_b && a.is_free(fit_b, duration)) return fit_b;
    candidate = fit_b;
  }
}

void Timeline::split_chunk(std::size_t c) {
  Chunk& chunk = chunks_[c];
  const std::size_t half = chunk.ivs.size() / 2;
  Chunk tail;
  tail.ivs.assign(chunk.ivs.begin() + static_cast<std::ptrdiff_t>(half),
                  chunk.ivs.end());
  chunk.ivs.erase(chunk.ivs.begin() + static_cast<std::ptrdiff_t>(half),
                  chunk.ivs.end());
  chunks_.insert(chunks_.begin() + static_cast<std::ptrdiff_t>(c) + 1,
                 std::move(tail));
  recompute_max_gap(c);
  recompute_max_gap(c + 1);
}

void Timeline::insert(Cycles start, Cycles duration) {
  AHG_EXPECTS_MSG(start >= 0, "interval start must be non-negative");
  AHG_EXPECTS_MSG(duration > 0, "inserted interval must have positive duration");
  AHG_EXPECTS_MSG(is_free(start, duration), "overlapping timeline insertion");
  const Interval iv{start, start + duration};
  ++size_;
  if (chunks_.empty()) {
    chunks_.push_back(Chunk{{iv}, start});
    return;
  }
  // Append fast path (the SLRH workload): the new interval follows the last;
  // the only new gap is its own leading one, so the chunk maximum updates in
  // O(1) and no other chunk is affected.
  if (start >= chunks_.back().ivs.back().end) {
    if (chunks_.back().ivs.size() >= kChunkCap) split_chunk(chunks_.size() - 1);
    Chunk& last = chunks_.back();
    last.max_gap = std::max(last.max_gap, start - last.ivs.back().end);
    last.ivs.push_back(iv);
    return;
  }
  // Interior insert. The target chunk is the first whose last interval
  // starts after `start` (equality is impossible: it would overlap). The
  // append path above handled start past every interval, so one exists.
  std::size_t c = static_cast<std::size_t>(
      std::lower_bound(chunks_.begin(), chunks_.end(), start,
                       [](const Chunk& chunk, Cycles v) {
                         return chunk.ivs.back().start < v;
                       }) -
      chunks_.begin());
  if (chunks_[c].ivs.size() >= kChunkCap) {
    split_chunk(c);
    if (start > chunks_[c].ivs.back().start) ++c;
  }
  Chunk& chunk = chunks_[c];
  const auto slot_it = std::lower_bound(
      chunk.ivs.begin(), chunk.ivs.end(), start,
      [](const Interval& lhs, Cycles v) { return lhs.start < v; });
  chunk.ivs.insert(slot_it, iv);
  // The insertion split one of the chunk's gaps in two; both pieces belong
  // to this chunk (the slot is never past the chunk's last interval), so
  // only this chunk's maximum is stale.
  recompute_max_gap(c);
}

void Timeline::erase(Cycles start, Cycles duration) {
  const Interval iv{start, start + duration};
  // Intervals are disjoint and sorted by start, so an exact match can only
  // sit at the lower bound for `start`.
  const auto chunk_it = std::lower_bound(
      chunks_.begin(), chunks_.end(), start,
      [](const Chunk& chunk, Cycles v) { return chunk.ivs.back().start < v; });
  bool found = false;
  std::size_t c = 0;
  std::size_t slot = 0;
  if (chunk_it != chunks_.end()) {
    const auto slot_it = std::lower_bound(
        chunk_it->ivs.begin(), chunk_it->ivs.end(), start,
        [](const Interval& lhs, Cycles v) { return lhs.start < v; });
    if (slot_it != chunk_it->ivs.end() && *slot_it == iv) {
      found = true;
      c = static_cast<std::size_t>(chunk_it - chunks_.begin());
      slot = static_cast<std::size_t>(slot_it - chunk_it->ivs.begin());
    }
  }
  AHG_EXPECTS_MSG(found, "erase of an interval that was never inserted");
  --size_;
  Chunk& chunk = chunks_[c];
  chunk.ivs.erase(chunk.ivs.begin() + static_cast<std::ptrdiff_t>(slot));
  if (chunk.ivs.empty()) {
    // The chunk dissolved; its neighbour gaps merged into the successor's
    // leading boundary gap.
    chunks_.erase(chunks_.begin() + static_cast<std::ptrdiff_t>(c));
    recompute_max_gap(c);
    return;
  }
  // The two gaps around the removed interval merged. The merged gap belongs
  // to this chunk — unless the chunk's LAST interval was removed, in which
  // case it became the successor's leading boundary gap.
  recompute_max_gap(c);
  if (slot == chunk.ivs.size()) recompute_max_gap(c + 1);
}

Cycles Timeline::busy_cycles() const noexcept {
  Cycles total = 0;
  for (const Chunk& chunk : chunks_) {
    for (const Interval& iv : chunk.ivs) total += iv.duration();
  }
  return total;
}

}  // namespace ahg::sim
