#include "sim/timeline.hpp"

#include <algorithm>

#include "support/contract.hpp"

namespace ahg::sim {

bool Timeline::is_free(Cycles start, Cycles duration) const {
  AHG_EXPECTS_MSG(start >= 0, "interval start must be non-negative");
  AHG_EXPECTS_MSG(duration >= 0, "interval duration must be non-negative");
  if (duration == 0) return true;
  const Cycles end = start + duration;
  // First busy interval with busy.end > start could overlap.
  const auto it = std::lower_bound(
      busy_.begin(), busy_.end(), start,
      [](const Interval& iv, Cycles value) { return iv.end <= value; });
  return it == busy_.end() || it->start >= end;
}

Cycles Timeline::earliest_fit(Cycles not_before, Cycles duration) const {
  AHG_EXPECTS_MSG(not_before >= 0, "not_before must be non-negative");
  AHG_EXPECTS_MSG(duration >= 0, "duration must be non-negative");
  if (duration == 0) return not_before;
  // First busy interval ending after not_before; everything earlier is
  // irrelevant. Its preceding gap is truncated at not_before, so it needs a
  // bespoke check; every later gap has its full indexed length.
  const auto it = std::lower_bound(
      busy_.begin(), busy_.end(), not_before,
      [](const Interval& iv, Cycles value) { return iv.end <= value; });
  if (it == busy_.end()) return not_before;  // past the whole schedule
  if (it->start - not_before >= duration) return not_before;
  const auto first = static_cast<std::size_t>(it - busy_.begin());
  const std::size_t gap = find_first_fitting_gap(first + 1, duration);
  if (gap < busy_.size()) return busy_[gap - 1].end;
  return busy_.back().end;
}

Cycles Timeline::earliest_fit_walk(Cycles not_before, Cycles duration) const {
  AHG_EXPECTS_MSG(not_before >= 0, "not_before must be non-negative");
  AHG_EXPECTS_MSG(duration >= 0, "duration must be non-negative");
  if (duration == 0) return not_before;
  Cycles candidate = not_before;
  auto it = std::lower_bound(
      busy_.begin(), busy_.end(), candidate,
      [](const Interval& iv, Cycles value) { return iv.end <= value; });
  for (; it != busy_.end(); ++it) {
    if (it->start - candidate >= duration) return candidate;  // fits in the gap
    candidate = std::max(candidate, it->end);
  }
  return candidate;
}

std::size_t Timeline::find_first_fitting_gap(std::size_t from,
                                             Cycles duration) const {
  const std::size_t n = busy_.size();
  if (from >= n) return n;
  // Partial leading block: its maximum covers gaps before `from` too, so it
  // cannot prove a fit — but max < duration still proves NO gap in the
  // block fits (a suffix maximum is bounded by the block maximum), which
  // skips the common dense case without scanning. Otherwise scan the suffix.
  std::size_t block = from / kGapBlock;
  if (gap_block_max_[block] >= duration) {
    const std::size_t lead_end = std::min((block + 1) * kGapBlock, n);
    for (std::size_t gap = from; gap < lead_end; ++gap) {
      if (gap_length(gap) >= duration) return gap;
    }
  }
  // Whole blocks: skip via the maxima, then scan the first block that fits.
  const std::size_t num_blocks = gap_block_max_.size();
  for (++block; block < num_blocks; ++block) {
    if (gap_block_max_[block] < duration) continue;
    const std::size_t begin = block * kGapBlock;
    const std::size_t end = std::min(begin + kGapBlock, n);
    for (std::size_t gap = begin; gap < end; ++gap) {
      if (gap_length(gap) >= duration) return gap;
    }
    AHG_EXPECTS_MSG(false, "hole index block maximum out of sync with gaps");
  }
  return n;
}

void Timeline::rebuild_gap_blocks_from(std::size_t gap) {
  const std::size_t n = busy_.size();
  const std::size_t num_blocks = (n + kGapBlock - 1) / kGapBlock;
  gap_block_max_.resize(num_blocks);
  for (std::size_t block = gap / kGapBlock; block < num_blocks; ++block) {
    const std::size_t begin = block * kGapBlock;
    const std::size_t end = std::min(begin + kGapBlock, n);
    Cycles widest = 0;
    for (std::size_t g = begin; g < end; ++g) {
      widest = std::max(widest, gap_length(g));
    }
    gap_block_max_[block] = widest;
  }
}

Cycles Timeline::earliest_fit_pair(const Timeline& a, const Timeline& b,
                                   Cycles not_before, Cycles duration) {
  AHG_EXPECTS_MSG(not_before >= 0, "not_before must be non-negative");
  AHG_EXPECTS_MSG(duration >= 0, "duration must be non-negative");
  if (duration == 0) return not_before;
  Cycles candidate = not_before;
  // Alternate: let each timeline push the candidate forward until both are
  // simultaneously free. Each push moves past at least one busy interval, so
  // this terminates in O(|a| + |b|) probes.
  for (;;) {
    const Cycles fit_a = a.earliest_fit(candidate, duration);
    const Cycles fit_b = b.earliest_fit(fit_a, duration);
    if (fit_a == fit_b && a.is_free(fit_b, duration)) return fit_b;
    candidate = fit_b;
  }
}

void Timeline::insert(Cycles start, Cycles duration) {
  AHG_EXPECTS_MSG(start >= 0, "interval start must be non-negative");
  AHG_EXPECTS_MSG(duration > 0, "inserted interval must have positive duration");
  AHG_EXPECTS_MSG(is_free(start, duration), "overlapping timeline insertion");
  const Interval iv{start, start + duration};
  const auto it = std::lower_bound(
      busy_.begin(), busy_.end(), iv,
      [](const Interval& lhs, const Interval& rhs) { return lhs.start < rhs.start; });
  const auto at = static_cast<std::size_t>(it - busy_.begin());
  busy_.insert(it, iv);
  // The insertion split gap `at` around the new interval; gaps to its right
  // shifted by one. Appends touch only the final block.
  rebuild_gap_blocks_from(at);
}

void Timeline::erase(Cycles start, Cycles duration) {
  const Interval iv{start, start + duration};
  // Intervals are disjoint and sorted by start, so an exact match can only
  // sit at the lower bound for `start`.
  const auto it = std::lower_bound(
      busy_.begin(), busy_.end(), start,
      [](const Interval& lhs, Cycles value) { return lhs.start < value; });
  AHG_EXPECTS_MSG(it != busy_.end() && *it == iv,
                  "erase of an interval that was never inserted");
  const auto at = static_cast<std::size_t>(it - busy_.begin());
  busy_.erase(it);
  // The gaps around the removed interval merged into one; later gaps shifted.
  rebuild_gap_blocks_from(at);
}

Cycles Timeline::busy_cycles() const noexcept {
  Cycles total = 0;
  for (const auto& iv : busy_) total += iv.duration();
  return total;
}

}  // namespace ahg::sim
