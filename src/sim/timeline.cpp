#include "sim/timeline.hpp"

#include <algorithm>

#include "support/contract.hpp"

namespace ahg::sim {

bool Timeline::is_free(Cycles start, Cycles duration) const {
  AHG_EXPECTS_MSG(start >= 0, "interval start must be non-negative");
  AHG_EXPECTS_MSG(duration >= 0, "interval duration must be non-negative");
  if (duration == 0) return true;
  const Cycles end = start + duration;
  // First busy interval with busy.end > start could overlap.
  const auto it = std::lower_bound(
      busy_.begin(), busy_.end(), start,
      [](const Interval& iv, Cycles value) { return iv.end <= value; });
  return it == busy_.end() || it->start >= end;
}

Cycles Timeline::earliest_fit(Cycles not_before, Cycles duration) const {
  AHG_EXPECTS_MSG(not_before >= 0, "not_before must be non-negative");
  AHG_EXPECTS_MSG(duration >= 0, "duration must be non-negative");
  if (duration == 0) return not_before;
  Cycles candidate = not_before;
  auto it = std::lower_bound(
      busy_.begin(), busy_.end(), candidate,
      [](const Interval& iv, Cycles value) { return iv.end <= value; });
  for (; it != busy_.end(); ++it) {
    if (it->start - candidate >= duration) return candidate;  // fits in the gap
    candidate = std::max(candidate, it->end);
  }
  return candidate;
}

Cycles Timeline::earliest_fit_pair(const Timeline& a, const Timeline& b,
                                   Cycles not_before, Cycles duration) {
  AHG_EXPECTS_MSG(not_before >= 0, "not_before must be non-negative");
  AHG_EXPECTS_MSG(duration >= 0, "duration must be non-negative");
  if (duration == 0) return not_before;
  Cycles candidate = not_before;
  // Alternate: let each timeline push the candidate forward until both are
  // simultaneously free. Each push moves past at least one busy interval, so
  // this terminates in O(|a| + |b|) probes.
  for (;;) {
    const Cycles fit_a = a.earliest_fit(candidate, duration);
    const Cycles fit_b = b.earliest_fit(fit_a, duration);
    if (fit_a == fit_b && a.is_free(fit_b, duration)) return fit_b;
    candidate = fit_b;
  }
}

void Timeline::insert(Cycles start, Cycles duration) {
  AHG_EXPECTS_MSG(start >= 0, "interval start must be non-negative");
  AHG_EXPECTS_MSG(duration > 0, "inserted interval must have positive duration");
  AHG_EXPECTS_MSG(is_free(start, duration), "overlapping timeline insertion");
  const Interval iv{start, start + duration};
  const auto it = std::lower_bound(
      busy_.begin(), busy_.end(), iv,
      [](const Interval& lhs, const Interval& rhs) { return lhs.start < rhs.start; });
  busy_.insert(it, iv);
}

void Timeline::erase(Cycles start, Cycles duration) {
  const Interval iv{start, start + duration};
  const auto it = std::find(busy_.begin(), busy_.end(), iv);
  AHG_EXPECTS_MSG(it != busy_.end(), "erase of an interval that was never inserted");
  busy_.erase(it);
}

Cycles Timeline::busy_cycles() const noexcept {
  Cycles total = 0;
  for (const auto& iv : busy_) total += iv.duration();
  return total;
}

}  // namespace ahg::sim
