#pragma once
// Busy-interval timeline for a single serial resource (a machine's compute
// unit, its outgoing transmission channel, or its incoming reception
// channel — the paper's assumptions (b)/(c): one subtask at a time, one
// outgoing and one incoming transfer at a time).
//
// Intervals are half-open [start, end) in integer clock cycles, kept sorted
// and non-overlapping. The structure supports both the SLRH append-mostly
// workload and Max-Max hole-filling ("a sufficiently large hole in the
// existing schedule", paper §V) through earliest_fit().
//
// Hole index: earliest_fit() answers "first free gap of length >= d at or
// after p" through an ordered gap index instead of walking the busy list.
// Gap j is the free space immediately before busy_[j] (gap 0 runs from cycle
// 0; the open gap after the last interval is implicit), so the gaps — keyed
// by start order — tile the free space exactly, with no adjacent-gap
// fragmentation: every maximal free range is exactly one gap. The index
// stores the per-block maximum gap length (blocks of kGapBlock gaps) and is
// maintained incrementally by insert()/erase(): an insertion splits one gap
// in two, an erasure merges the two gaps around the removed interval, and
// only blocks at or after the mutation point are recomputed — O(1) amortised
// for the append-mostly SLRH workload. A probe scans at most one partial
// block, then block maxima, then one final block: O(n / kGapBlock +
// kGapBlock) instead of O(n). earliest_fit_walk() keeps the original linear
// scan as the reference/diff baseline; the two are asserted equal under
// randomized insert/erase churn by tests/test_timeline.cpp.

#include <cstddef>
#include <span>
#include <vector>

#include "support/units.hpp"

namespace ahg::sim {

struct Interval {
  Cycles start = 0;
  Cycles end = 0;  ///< exclusive
  Cycles duration() const noexcept { return end - start; }
  friend bool operator==(const Interval&, const Interval&) = default;
};

class Timeline {
 public:
  bool empty() const noexcept { return busy_.empty(); }
  std::size_t size() const noexcept { return busy_.size(); }
  std::span<const Interval> intervals() const noexcept { return busy_; }

  /// End of the last busy interval (0 when empty): the earliest time at
  /// which an append-only scheduler may start new work.
  Cycles ready_time() const noexcept { return busy_.empty() ? 0 : busy_.back().end; }

  /// True iff [start, start+duration) does not overlap any busy interval.
  /// Zero-duration queries are always free.
  bool is_free(Cycles start, Cycles duration) const;

  /// Earliest s >= not_before such that [s, s+duration) is free. May land in
  /// an interior hole (Max-Max backfill) or after ready_time(). A zero
  /// duration fits anywhere: returns not_before. Served by the ordered hole
  /// index (see the header comment); identical results to
  /// earliest_fit_walk() by construction.
  Cycles earliest_fit(Cycles not_before, Cycles duration) const;

  /// Reference implementation: the original linear walk over the busy list.
  /// Kept as the diff baseline for the hole index (tests assert equality
  /// under churn; BM_EarliestFit_Walk measures the gap).
  Cycles earliest_fit_walk(Cycles not_before, Cycles duration) const;

  /// Earliest s >= not_before such that [s, s+duration) is simultaneously
  /// free on both timelines (pairing a sender's tx channel with a receiver's
  /// rx channel).
  static Cycles earliest_fit_pair(const Timeline& a, const Timeline& b,
                                  Cycles not_before, Cycles duration);

  /// Insert a busy interval; throws PreconditionError on overlap, negative
  /// start, or non-positive duration.
  void insert(Cycles start, Cycles duration);

  /// Remove an exact previously-inserted interval (used by the dynamic
  /// machine-loss extension to un-schedule work from a lost machine).
  /// Throws if no exact match exists.
  void erase(Cycles start, Cycles duration);

  /// Total busy cycles.
  Cycles busy_cycles() const noexcept;

 private:
  /// Gaps per index block. 64 keeps a block's gap lengths within one or two
  /// cache lines of Interval data while dividing the block-maxima scan by 64.
  static constexpr std::size_t kGapBlock = 64;

  /// Free cycles immediately before busy_[gap] (from cycle 0 for gap 0).
  Cycles gap_length(std::size_t gap) const noexcept {
    return gap == 0 ? busy_[0].start : busy_[gap].start - busy_[gap - 1].end;
  }

  /// Recompute block maxima for every block containing a gap >= `gap`
  /// (mutations shift all later gaps, so everything to the right is stale).
  void rebuild_gap_blocks_from(std::size_t gap);

  /// First gap index >= `from` whose length fits `duration`, or size().
  std::size_t find_first_fitting_gap(std::size_t from, Cycles duration) const;

  std::vector<Interval> busy_;        // sorted by start, disjoint
  std::vector<Cycles> gap_block_max_; // per-block max gap length
};

}  // namespace ahg::sim
