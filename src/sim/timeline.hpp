#pragma once
// Busy-interval timeline for a single serial resource (a machine's compute
// unit, its outgoing transmission channel, or its incoming reception
// channel — the paper's assumptions (b)/(c): one subtask at a time, one
// outgoing and one incoming transfer at a time).
//
// Intervals are half-open [start, end) in integer clock cycles, kept sorted
// and non-overlapping. The structure supports both the SLRH append-mostly
// workload and Max-Max hole-filling ("a sufficiently large hole in the
// existing schedule", paper §V) through earliest_fit().

#include <cstddef>
#include <span>
#include <vector>

#include "support/units.hpp"

namespace ahg::sim {

struct Interval {
  Cycles start = 0;
  Cycles end = 0;  ///< exclusive
  Cycles duration() const noexcept { return end - start; }
  friend bool operator==(const Interval&, const Interval&) = default;
};

class Timeline {
 public:
  bool empty() const noexcept { return busy_.empty(); }
  std::size_t size() const noexcept { return busy_.size(); }
  std::span<const Interval> intervals() const noexcept { return busy_; }

  /// End of the last busy interval (0 when empty): the earliest time at
  /// which an append-only scheduler may start new work.
  Cycles ready_time() const noexcept { return busy_.empty() ? 0 : busy_.back().end; }

  /// True iff [start, start+duration) does not overlap any busy interval.
  /// Zero-duration queries are always free.
  bool is_free(Cycles start, Cycles duration) const;

  /// Earliest s >= not_before such that [s, s+duration) is free. May land in
  /// an interior hole (Max-Max backfill) or after ready_time(). A zero
  /// duration fits anywhere: returns not_before.
  Cycles earliest_fit(Cycles not_before, Cycles duration) const;

  /// Earliest s >= not_before such that [s, s+duration) is simultaneously
  /// free on both timelines (pairing a sender's tx channel with a receiver's
  /// rx channel).
  static Cycles earliest_fit_pair(const Timeline& a, const Timeline& b,
                                  Cycles not_before, Cycles duration);

  /// Insert a busy interval; throws PreconditionError on overlap, negative
  /// start, or non-positive duration.
  void insert(Cycles start, Cycles duration);

  /// Remove an exact previously-inserted interval (used by the dynamic
  /// machine-loss extension to un-schedule work from a lost machine).
  /// Throws if no exact match exists.
  void erase(Cycles start, Cycles duration);

  /// Total busy cycles.
  Cycles busy_cycles() const noexcept;

 private:
  std::vector<Interval> busy_;  // sorted by start, disjoint
};

}  // namespace ahg::sim
