#pragma once
// Busy-interval timeline for a single serial resource (a machine's compute
// unit, its outgoing transmission channel, or its incoming reception
// channel — the paper's assumptions (b)/(c): one subtask at a time, one
// outgoing and one incoming transfer at a time).
//
// Intervals are half-open [start, end) in integer clock cycles, kept sorted
// and non-overlapping. The structure supports both the SLRH append-mostly
// workload and Max-Max hole-filling ("a sufficiently large hole in the
// existing schedule", paper §V) through earliest_fit().
//
// Storage is CHUNKED: the sorted interval sequence is partitioned into
// consecutive chunks of at most kChunkCap intervals, each carrying the
// maximum length of the gaps it owns. A gap is the free space immediately
// before an interval (the chunk's first interval owns the boundary gap from
// the previous chunk's last end; the global first interval's gap runs from
// cycle 0; the open gap after the last interval is implicit). Keyed by start
// order, the gaps tile the free space exactly with no adjacent-gap
// fragmentation: every maximal free range is exactly one gap.
//
// Why chunks instead of the earlier flat vector + block maxima: a flat
// array makes EVERY mid-timeline mutation O(n) twice over — the vector
// memmove of the interval suffix and the rebuild of every gap block after
// the mutation point (gap indices shift, so all later block maxima are
// stale). Chunked storage confines both costs to one chunk: a mutation
// memmoves at most kChunkCap intervals and recomputes at most two chunk
// maxima (the mutated chunk and its successor, whose leading boundary gap
// may have changed), independent of n. Appends — the SLRH hot path — update
// the last chunk's maximum in O(1). Queries skip whole chunks via their
// maxima exactly as the flat index skipped blocks: O(n / kChunkCap +
// kChunkCap) probes. earliest_fit_walk() keeps the original linear scan as
// the reference/diff baseline; the two are asserted equal under randomized
// insert/erase churn by tests/test_timeline.cpp.

#include <cstddef>
#include <vector>

#include "support/units.hpp"

namespace ahg::sim {

struct Interval {
  Cycles start = 0;
  Cycles end = 0;  ///< exclusive
  Cycles duration() const noexcept { return end - start; }
  friend bool operator==(const Interval&, const Interval&) = default;
};

class Timeline {
 public:
  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  /// The busy intervals in start order, materialized into one flat vector
  /// (the storage itself is chunked). Consumers iterate for rendering and
  /// test oracles; none sit on a hot path.
  std::vector<Interval> intervals() const;

  /// End of the last busy interval (0 when empty): the earliest time at
  /// which an append-only scheduler may start new work.
  Cycles ready_time() const noexcept {
    return chunks_.empty() ? 0 : chunks_.back().ivs.back().end;
  }

  /// True iff [start, start+duration) does not overlap any busy interval.
  /// Zero-duration queries are always free.
  bool is_free(Cycles start, Cycles duration) const;

  /// Earliest s >= not_before such that [s, s+duration) is free. May land in
  /// an interior hole (Max-Max backfill) or after ready_time(). A zero
  /// duration fits anywhere: returns not_before. Served by the chunked hole
  /// index (see the header comment); identical results to
  /// earliest_fit_walk() by construction.
  Cycles earliest_fit(Cycles not_before, Cycles duration) const;

  /// Reference implementation: a linear walk over the busy list. Kept as
  /// the diff baseline for the hole index (tests assert equality under
  /// churn; BM_EarliestFit_Walk measures the gap).
  Cycles earliest_fit_walk(Cycles not_before, Cycles duration) const;

  /// Earliest s >= not_before such that [s, s+duration) is simultaneously
  /// free on both timelines (pairing a sender's tx channel with a receiver's
  /// rx channel).
  static Cycles earliest_fit_pair(const Timeline& a, const Timeline& b,
                                  Cycles not_before, Cycles duration);

  /// Insert a busy interval; throws PreconditionError on overlap, negative
  /// start, or non-positive duration.
  void insert(Cycles start, Cycles duration);

  /// Remove an exact previously-inserted interval (used by the dynamic
  /// machine-loss extension to un-schedule work from a lost machine).
  /// Throws if no exact match exists.
  void erase(Cycles start, Cycles duration);

  /// Total busy cycles.
  Cycles busy_cycles() const noexcept;

  /// Heap bytes held by the chunked storage (interval capacity plus chunk
  /// directory). Feeds the memory-telemetry gauge memory.timeline_bytes.
  std::size_t memory_bytes() const noexcept {
    std::size_t bytes = chunks_.capacity() * sizeof(Chunk);
    for (const Chunk& chunk : chunks_) {
      bytes += chunk.ivs.capacity() * sizeof(Interval);
    }
    return bytes;
  }

 private:
  /// Split threshold. 256 intervals (4 KiB) keep a chunk's memmove and
  /// max-gap recompute within a few cache lines of work while dividing the
  /// chunk-maxima scan of a 64k-interval timeline into ~256-512 chunks.
  static constexpr std::size_t kChunkCap = 256;

  /// One run of consecutive intervals plus the widest gap it owns.
  struct Chunk {
    std::vector<Interval> ivs;  ///< sorted, disjoint, never empty
    Cycles max_gap = 0;         ///< max over the gaps before each interval
  };

  struct Pos {
    std::size_t chunk = 0;  ///< == chunks_.size() when past the end
    std::size_t slot = 0;
  };

  /// End of the interval preceding slot (c, i) in global order (0 at the
  /// global front). The chunk's first slot reaches into the previous chunk.
  Cycles pred_end(std::size_t c, std::size_t i) const noexcept {
    if (i > 0) return chunks_[c].ivs[i - 1].end;
    return c > 0 ? chunks_[c - 1].ivs.back().end : 0;
  }

  /// Recompute chunks_[c].max_gap from its gaps (no-op past the end).
  void recompute_max_gap(std::size_t c) noexcept;

  /// First interval (in global order) whose end > value, or a past-the-end
  /// Pos. Binary search over the chunk directory, then within the chunk.
  Pos first_end_after(Cycles value) const noexcept;

  /// Split chunks_[c] into two halves (directory insert + max recompute).
  void split_chunk(std::size_t c);

  std::vector<Chunk> chunks_;  ///< start-ordered, non-empty chunks
  std::size_t size_ = 0;       ///< total interval count across chunks
};

}  // namespace ahg::sim
