#include "sim/trace.hpp"

#include <algorithm>
#include <ostream>
#include <vector>

#include "support/csv.hpp"
#include "support/jsonl.hpp"

namespace ahg::sim {

namespace {

char task_glyph(TaskId task) {
  static constexpr char kHex[] = "0123456789abcdef";
  return kHex[static_cast<std::size_t>(task) % 16];
}

void render_row(std::ostream& os, const std::string& label, const Timeline& timeline,
                const std::vector<TaskId>& owners, Cycles horizon, std::size_t width) {
  std::string row(width, '.');
  const auto ivs = timeline.intervals();
  for (std::size_t k = 0; k < ivs.size(); ++k) {
    const auto& iv = ivs[k];
    const auto lo = static_cast<std::size_t>(
        iv.start * static_cast<Cycles>(width) / std::max<Cycles>(1, horizon));
    auto hi = static_cast<std::size_t>(
        iv.end * static_cast<Cycles>(width) / std::max<Cycles>(1, horizon));
    hi = std::max(hi, lo + 1);
    for (std::size_t c = lo; c < std::min(hi, width); ++c) {
      row[c] = k < owners.size() ? task_glyph(owners[k]) : '#';
    }
  }
  os << label << " |" << row << "|\n";
}

}  // namespace

void render_gantt(std::ostream& os, const Schedule& schedule, const GanttOptions& options) {
  Cycles horizon = schedule.aet();
  for (std::size_t j = 0; j < schedule.num_machines(); ++j) {
    const auto m = static_cast<MachineId>(j);
    horizon = std::max({horizon, schedule.tx_timeline(m).ready_time(),
                        schedule.rx_timeline(m).ready_time()});
  }
  if (horizon == 0) {
    os << "(empty schedule)\n";
    return;
  }
  os << "time horizon: " << horizon << " cycles (" << seconds_from_cycles(horizon)
     << " s)\n";

  // Owner lookup per machine: tasks in interval order on the compute timeline.
  for (std::size_t j = 0; j < schedule.num_machines(); ++j) {
    const auto m = static_cast<MachineId>(j);
    const auto& tl = schedule.compute_timeline(m);

    std::vector<std::pair<Cycles, TaskId>> started;
    for (const TaskId task : schedule.assignment_order()) {
      const auto& a = schedule.assignment(task);
      if (a.machine == m) started.emplace_back(a.start, task);
    }
    std::sort(started.begin(), started.end());
    std::vector<TaskId> owners;
    owners.reserve(started.size());
    for (const auto& [start, task] : started) owners.push_back(task);

    render_row(os, "m" + std::to_string(j) + " cpu", tl, owners, horizon, options.width);
    if (options.show_comm) {
      std::vector<std::pair<Cycles, TaskId>> tx_started;
      std::vector<std::pair<Cycles, TaskId>> rx_started;
      for (const auto& ev : schedule.comm_events()) {
        if (ev.from_machine == m) tx_started.emplace_back(ev.start, ev.from_task);
        if (ev.to_machine == m) rx_started.emplace_back(ev.start, ev.to_task);
      }
      std::sort(tx_started.begin(), tx_started.end());
      std::sort(rx_started.begin(), rx_started.end());
      std::vector<TaskId> tx_owners;
      std::vector<TaskId> rx_owners;
      for (const auto& [s, t] : tx_started) tx_owners.push_back(t);
      for (const auto& [s, t] : rx_started) rx_owners.push_back(t);
      render_row(os, "m" + std::to_string(j) + " tx ", schedule.tx_timeline(m), tx_owners,
                 horizon, options.width);
      render_row(os, "m" + std::to_string(j) + " rx ", schedule.rx_timeline(m), rx_owners,
                 horizon, options.width);
    }
  }
}

void write_assignment_csv(std::ostream& os, const Schedule& schedule) {
  CsvWriter csv(os, {"task", "machine", "version", "start_cycles", "finish_cycles",
                     "energy"});
  for (const TaskId task : schedule.assignment_order()) {
    const auto& a = schedule.assignment(task);
    csv.begin_row();
    csv.field(static_cast<long long>(a.task));
    csv.field(static_cast<long long>(a.machine));
    csv.field(to_string(a.version));
    csv.field(static_cast<long long>(a.start));
    csv.field(static_cast<long long>(a.finish));
    csv.field(a.energy);
    csv.end_row();
  }
}

void write_comm_csv(std::ostream& os, const Schedule& schedule) {
  CsvWriter csv(os, {"from_task", "to_task", "from_machine", "to_machine",
                     "start_cycles", "finish_cycles", "bits", "energy"});
  for (const auto& ev : schedule.comm_events()) {
    csv.begin_row();
    csv.field(static_cast<long long>(ev.from_task));
    csv.field(static_cast<long long>(ev.to_task));
    csv.field(static_cast<long long>(ev.from_machine));
    csv.field(static_cast<long long>(ev.to_machine));
    csv.field(static_cast<long long>(ev.start));
    csv.field(static_cast<long long>(ev.finish));
    csv.field(ev.bits);
    csv.field(ev.energy);
    csv.end_row();
  }
}

void write_assignment_jsonl(std::ostream& os, const Schedule& schedule) {
  for (const TaskId task : schedule.assignment_order()) {
    const auto& a = schedule.assignment(task);
    obs::JsonWriter json;
    json.begin_object();
    json.field("type", "assignment");
    json.field("task", static_cast<std::int64_t>(a.task));
    json.field("machine", static_cast<std::int64_t>(a.machine));
    json.field("version", to_string(a.version));
    json.field("start_cycles", static_cast<std::int64_t>(a.start));
    json.field("finish_cycles", static_cast<std::int64_t>(a.finish));
    json.field("energy", a.energy);
    json.end_object();
    os << json.str() << '\n';
  }
}

void write_comm_jsonl(std::ostream& os, const Schedule& schedule) {
  for (const auto& ev : schedule.comm_events()) {
    obs::JsonWriter json;
    json.begin_object();
    json.field("type", "comm");
    json.field("from_task", static_cast<std::int64_t>(ev.from_task));
    json.field("to_task", static_cast<std::int64_t>(ev.to_task));
    json.field("from_machine", static_cast<std::int64_t>(ev.from_machine));
    json.field("to_machine", static_cast<std::int64_t>(ev.to_machine));
    json.field("start_cycles", static_cast<std::int64_t>(ev.start));
    json.field("finish_cycles", static_cast<std::int64_t>(ev.finish));
    json.field("bits", ev.bits);
    json.field("energy", ev.energy);
    json.end_object();
    os << json.str() << '\n';
  }
}

}  // namespace ahg::sim
