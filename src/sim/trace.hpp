#pragma once
// Schedule introspection: ASCII Gantt charts and CSV event dumps for the
// examples and for offline analysis of mapping behaviour.

#include <iosfwd>
#include <string>

#include "sim/schedule.hpp"

namespace ahg::sim {

struct GanttOptions {
  /// Total character width of the time axis.
  std::size_t width = 100;
  /// Include tx/rx channel rows in addition to compute rows.
  bool show_comm = true;
};

/// Render an ASCII Gantt chart of the schedule: one row per machine compute
/// unit (plus optional tx/rx rows), time scaled to fit `options.width`
/// columns. Busy cells show the last hex digit of the occupying task id so
/// adjacent tasks are visually distinguishable.
void render_gantt(std::ostream& os, const Schedule& schedule,
                  const GanttOptions& options = {});

/// Dump all assignments as CSV: task, machine, version, start_cycles,
/// finish_cycles, energy.
void write_assignment_csv(std::ostream& os, const Schedule& schedule);

/// Dump all communication events as CSV: from_task, to_task, from_machine,
/// to_machine, start_cycles, finish_cycles, bits, energy.
void write_comm_csv(std::ostream& os, const Schedule& schedule);

/// Dump all assignments as JSONL, one object per line with the same fields
/// as write_assignment_csv plus "type":"assignment" — the schedule-side
/// companion of the obs decision trace, so a single JSONL stream can hold
/// both decisions and the resulting placements.
void write_assignment_jsonl(std::ostream& os, const Schedule& schedule);

/// Dump all communication events as JSONL ("type":"comm").
void write_comm_jsonl(std::ostream& os, const Schedule& schedule);

}  // namespace ahg::sim
