#include "support/args.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace ahg {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_string(const std::string& name, std::string default_value,
                           std::string help) {
  AHG_EXPECTS_MSG(!options_.contains(name), "duplicate option");
  options_.emplace(name, Option{Kind::String, std::move(help), std::move(default_value)});
}

void ArgParser::add_int(const std::string& name, std::int64_t default_value,
                        std::string help) {
  AHG_EXPECTS_MSG(!options_.contains(name), "duplicate option");
  options_.emplace(name,
                   Option{Kind::Int, std::move(help), std::to_string(default_value)});
}

void ArgParser::add_double(const std::string& name, double default_value,
                           std::string help) {
  AHG_EXPECTS_MSG(!options_.contains(name), "duplicate option");
  std::ostringstream oss;
  oss << default_value;
  options_.emplace(name, Option{Kind::Double, std::move(help), oss.str()});
}

void ArgParser::add_flag(const std::string& name, std::string help) {
  AHG_EXPECTS_MSG(!options_.contains(name), "duplicate option");
  options_.emplace(name, Option{Kind::Flag, std::move(help), "false"});
}

void ArgParser::add_positional(const std::string& name, std::string help,
                               std::optional<std::string> default_value) {
  positionals_.push_back(Positional{name, std::move(help), std::move(default_value)});
}

bool ArgParser::parse(int argc, const char* const* argv) {
  std::size_t next_positional = 0;
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token == "--help" || token == "-h") {
      std::cout << usage();
      return false;
    }
    if (token.rfind("--", 0) == 0) {
      std::string name = token.substr(2);
      std::string value;
      bool has_value = false;
      if (const auto eq = name.find('='); eq != std::string::npos) {
        value = name.substr(eq + 1);
        name = name.substr(0, eq);
        has_value = true;
      }
      const auto it = options_.find(name);
      if (it == options_.end()) {
        std::cerr << program_ << ": unknown option --" << name << "\n" << usage();
        error_ = true;
        return false;
      }
      Option& opt = it->second;
      if (opt.kind == Kind::Flag) {
        if (has_value) {
          std::cerr << program_ << ": flag --" << name << " takes no value\n";
          error_ = true;
          return false;
        }
        opt.value = "true";
        opt.flag_set = true;
        continue;
      }
      if (!has_value) {
        if (i + 1 >= argc) {
          std::cerr << program_ << ": option --" << name << " needs a value\n";
          error_ = true;
          return false;
        }
        value = argv[++i];
      }
      if (opt.kind == Kind::Int) {
        char* end = nullptr;
        (void)std::strtoll(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0') {
          std::cerr << program_ << ": --" << name << " expects an integer, got '"
                    << value << "'\n";
          error_ = true;
          return false;
        }
      } else if (opt.kind == Kind::Double) {
        char* end = nullptr;
        (void)std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0') {
          std::cerr << program_ << ": --" << name << " expects a number, got '"
                    << value << "'\n";
          error_ = true;
          return false;
        }
      }
      opt.value = value;
      continue;
    }
    if (next_positional >= positionals_.size()) {
      std::cerr << program_ << ": unexpected argument '" << token << "'\n" << usage();
      error_ = true;
      return false;
    }
    positionals_[next_positional++].value = token;
  }
  for (const auto& pos : positionals_) {
    if (!pos.value.has_value()) {
      std::cerr << program_ << ": missing argument <" << pos.name << ">\n" << usage();
      error_ = true;
      return false;
    }
  }
  return true;
}

const ArgParser::Option& ArgParser::find(const std::string& name, Kind kind) const {
  // Positionals are exposed through get_string too.
  const auto it = options_.find(name);
  if (it == options_.end()) {
    for (const auto& pos : positionals_) {
      if (pos.name == name) {
        AHG_EXPECTS_MSG(kind == Kind::String, "positionals are strings");
        static thread_local Option scratch{Kind::String, "", ""};
        scratch.value = pos.value.value_or("");
        return scratch;
      }
    }
    throw PreconditionError("unknown option: " + name);
  }
  AHG_EXPECTS_MSG(it->second.kind == kind, "option accessed with the wrong type");
  return it->second;
}

std::string ArgParser::get_string(const std::string& name) const {
  return find(name, Kind::String).value;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  return std::strtoll(find(name, Kind::Int).value.c_str(), nullptr, 10);
}

double ArgParser::get_double(const std::string& name) const {
  return std::strtod(find(name, Kind::Double).value.c_str(), nullptr);
}

bool ArgParser::get_flag(const std::string& name) const {
  return find(name, Kind::Flag).value == "true";
}

std::string ArgParser::usage() const {
  std::ostringstream oss;
  oss << program_ << " — " << description_ << "\n\nusage: " << program_;
  for (const auto& pos : positionals_) {
    oss << (pos.value.has_value() ? " [" : " <") << pos.name
        << (pos.value.has_value() ? "]" : ">");
  }
  if (!options_.empty()) oss << " [options]";
  oss << "\n";
  if (!positionals_.empty()) {
    oss << "\narguments:\n";
    for (const auto& pos : positionals_) {
      oss << "  " << pos.name << "  " << pos.help << "\n";
    }
  }
  if (!options_.empty()) {
    oss << "\noptions:\n";
    for (const auto& [name, opt] : options_) {
      oss << "  --" << name;
      if (opt.kind != Kind::Flag) oss << " <" << opt.value << ">";
      oss << "  " << opt.help << "\n";
    }
  }
  return oss.str();
}

}  // namespace ahg
