#pragma once
// Minimal declarative command-line parser for the CLI tools and examples.
//
// Supports --name value, --name=value, --flag (boolean), positional
// arguments, defaults, and generated --help text. Deliberately tiny: no
// subcommands, no repeated options.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "support/contract.hpp"

namespace ahg {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Declare options (call before parse()).
  void add_string(const std::string& name, std::string default_value,
                  std::string help);
  void add_int(const std::string& name, std::int64_t default_value, std::string help);
  void add_double(const std::string& name, double default_value, std::string help);
  void add_flag(const std::string& name, std::string help);
  void add_positional(const std::string& name, std::string help,
                      std::optional<std::string> default_value = std::nullopt);

  /// Parse argv. Returns false (after printing usage) on --help or error;
  /// the caller should exit. error() tells the two cases apart.
  bool parse(int argc, const char* const* argv);

  bool error() const noexcept { return error_; }

  std::string get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  std::string usage() const;

 private:
  enum class Kind { String, Int, Double, Flag };
  struct Option {
    Kind kind;
    std::string help;
    std::string value;  // current (default until parsed)
    bool flag_set = false;
  };
  struct Positional {
    std::string name;
    std::string help;
    std::optional<std::string> value;
  };

  const Option& find(const std::string& name, Kind kind) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<Positional> positionals_;
  bool error_ = false;
};

}  // namespace ahg
