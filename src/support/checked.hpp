#pragma once
// Overflow-checked size arithmetic for table sizing.
//
// The |T|x|M|x2 tables (ScenarioCache, CandidateBatch columns, ledger
// capacities) size themselves with products that exceed 2^31 elements well
// before the 1M-task tier — narrow `int`/`uint32` arithmetic would wrap
// silently into an undersized (or wildly oversized) allocation and corrupt
// every subsequent indexed access. All sizing products route through
// checked_mul: the math stays in std::size_t end to end, and a product that
// cannot be represented throws PreconditionError at construction instead of
// wrapping.

#include <cstddef>
#include <limits>
#include <string>

#include "support/contract.hpp"

namespace ahg {

/// a * b in std::size_t, throwing PreconditionError (with `what` naming the
/// table being sized) instead of wrapping on overflow.
inline std::size_t checked_mul(std::size_t a, std::size_t b, const char* what) {
  if (b != 0 && a > std::numeric_limits<std::size_t>::max() / b) {
    throw PreconditionError(std::string("size overflow sizing ") + what + ": " +
                            std::to_string(a) + " * " + std::to_string(b) +
                            " exceeds SIZE_MAX");
  }
  return a * b;
}

inline std::size_t checked_mul(std::size_t a, std::size_t b, std::size_t c,
                               const char* what) {
  return checked_mul(checked_mul(a, b, what), c, what);
}

}  // namespace ahg
