#include "support/chrome_trace.hpp"

#include <ostream>
#include <string>

#include "support/flight_recorder.hpp"
#include "support/jsonl.hpp"

namespace ahg::obs {

namespace {

constexpr int kPid = 1;
constexpr int kTid = 1;

double to_micros(double seconds) { return seconds * 1e6; }

/// One metadata event naming the process or thread track.
void write_name_event(std::ostream& os, bool& first, std::string_view kind,
                      std::string_view name) {
  JsonWriter json;
  json.begin_object();
  json.field("name", kind).field("ph", "M").field("pid", kPid).field("tid", kTid);
  json.key("args").begin_object().field("name", name).end_object();
  json.end_object();
  if (!first) os << ",\n";
  first = false;
  os << json.str();
}

/// One counter event: a named track with one or more series in args.
class CounterEvent {
 public:
  CounterEvent(std::string_view track, double ts_micros) {
    json_.begin_object();
    json_.field("name", track).field("ph", "C").field("pid", kPid);
    json_.field("ts", ts_micros);
    json_.key("args").begin_object();
  }

  CounterEvent& series(std::string_view name, double value) {
    json_.field(name, value);
    return *this;
  }

  void flush(std::ostream& os, bool& first) {
    json_.end_object().end_object();
    if (!first) os << ",\n";
    first = false;
    os << json_.str();
  }

 private:
  JsonWriter json_;
};

}  // namespace

void write_chrome_trace(std::ostream& os, const FlightRecorder& recorder,
                        std::string_view process_name) {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  write_name_event(os, first, "process_name", process_name);
  write_name_event(os, first, "thread_name", "heuristic");

  for (const Span& span : recorder.spans()) {
    JsonWriter json;
    json.begin_object();
    json.field("name", span.name).field("ph", "X").field("pid", kPid);
    json.field("tid", kTid);
    json.field("ts", to_micros(span.start_seconds));
    json.field("dur", to_micros(span.duration_seconds));
    json.key("args").begin_object();
    if (span.clock >= 0) json.field("clock", static_cast<std::int64_t>(span.clock));
    if (span.machine != kInvalidMachine) {
      json.field("machine", static_cast<std::int64_t>(span.machine));
    }
    json.end_object().end_object();
    if (!first) os << ",\n";
    first = false;
    os << json.str();
  }

  for (const Frame& frame : recorder.frames()) {
    const double ts = to_micros(frame.wall_seconds);
    CounterEvent objective("objective", ts);
    objective.series("t100_term", frame.term_t100)
        .series("tec_term", frame.term_tec)
        .series("aet_term", frame.term_aet)
        .series("value", frame.objective);
    objective.flush(os, first);

    CounterEvent progress("progress", ts);
    progress.series("assigned", static_cast<double>(frame.assigned))
        .series("t100", static_cast<double>(frame.t100));
    progress.flush(os, first);

    CounterEvent pool("pool", ts);
    pool.series("pools_built", static_cast<double>(frame.pools_built))
        .series("maps", static_cast<double>(frame.maps))
        .series("pool_size", static_cast<double>(frame.last_pool_size))
        .series("frontier_ready", static_cast<double>(frame.frontier_ready));
    pool.flush(os, first);

    if (!frame.battery_fraction.empty()) {
      CounterEvent battery("battery", ts);
      for (std::size_t m = 0; m < frame.battery_fraction.size(); ++m) {
        std::string label = "m";
        label += std::to_string(m);
        battery.series(label, frame.battery_fraction[m]);
      }
      battery.flush(os, first);
    }

    if (frame.departures > 0 || frame.orphaned > 0 || frame.invalidated > 0) {
      CounterEvent churn("churn", ts);
      churn.series("departures", static_cast<double>(frame.departures))
          .series("orphaned", static_cast<double>(frame.orphaned))
          .series("invalidated", static_cast<double>(frame.invalidated));
      churn.flush(os, first);
    }
  }

  os << "\n]}\n";
}

}  // namespace ahg::obs
