#include "support/chrome_trace.hpp"

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "support/flight_recorder.hpp"
#include "support/jsonl.hpp"
#include "support/runtime_profiler.hpp"
#include "support/task_ledger.hpp"

namespace ahg::obs {

namespace {

/// pid 1: the heuristic process (wall-clock micros). pid 2: the simulated
/// schedule (1 cycle == 1 trace microsecond). pid 3: the thread pool's
/// wall-clock worker timeline (RuntimeProfiler).
constexpr int kHeuristicPid = 1;
constexpr int kHeuristicTid = 1;
constexpr int kSchedulePid = 2;
constexpr int kRuntimePid = 3;
/// pid-3 rows: tid 0 is the region track, worker/helper slot i sits at i+1.
constexpr int kRuntimeRegionTid = 0;

double to_micros(double seconds) { return seconds * 1e6; }

/// pid-2 thread rows: two per machine, compute above its net lane.
int compute_tid(MachineId machine) { return 2 * machine + 1; }
int net_tid(MachineId machine) { return 2 * machine + 2; }

/// One metadata event naming the process or thread track.
void write_name_event(std::ostream& os, bool& first, std::string_view kind,
                      std::string_view name, int pid, int tid) {
  JsonWriter json;
  json.begin_object();
  json.field("name", kind).field("ph", "M").field("pid", pid).field("tid", tid);
  json.key("args").begin_object().field("name", name).end_object();
  json.end_object();
  if (!first) os << ",\n";
  first = false;
  os << json.str();
}

/// One counter event: a named track with one or more series in args.
class CounterEvent {
 public:
  CounterEvent(std::string_view track, double ts_micros) {
    json_.begin_object();
    json_.field("name", track).field("ph", "C").field("pid", kHeuristicPid);
    json_.field("ts", ts_micros);
    json_.key("args").begin_object();
  }

  CounterEvent& series(std::string_view name, double value) {
    json_.field(name, value);
    return *this;
  }

  void flush(std::ostream& os, bool& first) {
    json_.end_object().end_object();
    if (!first) os << ",\n";
    first = false;
    os << json_.str();
  }

 private:
  JsonWriter json_;
};

void write_recorder_events(std::ostream& os, bool& first,
                           const FlightRecorder& recorder,
                           std::string_view process_name) {
  write_name_event(os, first, "process_name", process_name, kHeuristicPid,
                   kHeuristicTid);
  write_name_event(os, first, "thread_name", "heuristic", kHeuristicPid,
                   kHeuristicTid);

  for (const Span& span : recorder.spans()) {
    JsonWriter json;
    json.begin_object();
    json.field("name", span.name).field("ph", "X").field("pid", kHeuristicPid);
    json.field("tid", kHeuristicTid);
    json.field("ts", to_micros(span.start_seconds));
    json.field("dur", to_micros(span.duration_seconds));
    json.key("args").begin_object();
    if (span.clock >= 0) json.field("clock", static_cast<std::int64_t>(span.clock));
    if (span.machine != kInvalidMachine) {
      json.field("machine", static_cast<std::int64_t>(span.machine));
    }
    json.end_object().end_object();
    if (!first) os << ",\n";
    first = false;
    os << json.str();
  }

  for (const Frame& frame : recorder.frames()) {
    const double ts = to_micros(frame.wall_seconds);
    CounterEvent objective("objective", ts);
    objective.series("t100_term", frame.term_t100)
        .series("tec_term", frame.term_tec)
        .series("aet_term", frame.term_aet)
        .series("value", frame.objective);
    objective.flush(os, first);

    CounterEvent progress("progress", ts);
    progress.series("assigned", static_cast<double>(frame.assigned))
        .series("t100", static_cast<double>(frame.t100));
    progress.flush(os, first);

    CounterEvent pool("pool", ts);
    pool.series("pools_built", static_cast<double>(frame.pools_built))
        .series("maps", static_cast<double>(frame.maps))
        .series("pool_size", static_cast<double>(frame.last_pool_size))
        .series("frontier_ready", static_cast<double>(frame.frontier_ready));
    pool.flush(os, first);

    if (!frame.battery_fraction.empty()) {
      CounterEvent battery("battery", ts);
      for (std::size_t m = 0; m < frame.battery_fraction.size(); ++m) {
        std::string label = "m";
        label += std::to_string(m);
        battery.series(label, frame.battery_fraction[m]);
      }
      battery.flush(os, first);
    }

    if (frame.departures > 0 || frame.orphaned > 0 || frame.invalidated > 0) {
      CounterEvent churn("churn", ts);
      churn.series("departures", static_cast<double>(frame.departures))
          .series("orphaned", static_cast<double>(frame.orphaned))
          .series("invalidated", static_cast<double>(frame.invalidated));
      churn.flush(os, first);
    }
  }
}

/// One ph-X slice on a pid-2 row.
void write_slice(std::ostream& os, bool& first, std::string_view name, int tid,
                 double ts, double dur,
                 const std::vector<std::pair<std::string_view, std::int64_t>>& args) {
  JsonWriter json;
  json.begin_object();
  json.field("name", name).field("ph", "X").field("pid", kSchedulePid);
  json.field("tid", tid).field("ts", ts).field("dur", dur);
  json.key("args").begin_object();
  for (const auto& [key, value] : args) json.field(key, value);
  json.end_object().end_object();
  if (!first) os << ",\n";
  first = false;
  os << json.str();
}

/// One flow event (ph s/t/f) binding parent→child across rows. Flow events
/// attach to whatever slice encloses (tid, ts), so callers nudge ts half a
/// microsecond inside the slice.
void write_flow(std::ostream& os, bool& first, char phase, std::int64_t id,
                std::string_view name, int tid, double ts, bool bind_enclosing) {
  JsonWriter json;
  json.begin_object();
  const char ph[2] = {phase, '\0'};
  json.field("name", name).field("cat", "dataflow").field("ph", ph);
  json.field("id", id).field("pid", kSchedulePid).field("tid", tid);
  json.field("ts", ts);
  if (bind_enclosing) json.field("bp", "e");
  json.end_object();
  if (!first) os << ",\n";
  first = false;
  os << json.str();
}

void write_ledger_events(std::ostream& os, bool& first, const TaskLedger& ledger) {
  const std::vector<TaskRecord> records = ledger.records();

  // Rows only for machines that actually host work or relay data.
  std::vector<MachineId> machines;
  for (const TaskRecord& r : records) {
    if (r.machine != kInvalidMachine) machines.push_back(r.machine);
    for (const TaskInputEdge& e : r.inputs) {
      if (e.from_machine != kInvalidMachine) machines.push_back(e.from_machine);
    }
  }
  std::sort(machines.begin(), machines.end());
  machines.erase(std::unique(machines.begin(), machines.end()), machines.end());
  if (machines.empty()) return;

  write_name_event(os, first, "process_name", "schedule (sim cycles)",
                   kSchedulePid, 0);
  for (const MachineId m : machines) {
    const std::string base = "m" + std::to_string(m);
    write_name_event(os, first, "thread_name", base + " compute", kSchedulePid,
                     compute_tid(m));
    write_name_event(os, first, "thread_name", base + " net", kSchedulePid,
                     net_tid(m));
  }

  // Execution slices.
  for (const TaskRecord& r : records) {
    if (r.attempts == 0 || r.exec_start < 0 || r.machine == kInvalidMachine) {
      continue;
    }
    std::vector<std::pair<std::string_view, std::int64_t>> args = {
        {"task", r.task},
        {"version", r.version},
        {"attempt", r.attempts},
        {"admitted", r.admitted_clock},
    };
    write_slice(os, first, "t" + std::to_string(r.task), compute_tid(r.machine),
                static_cast<double>(r.exec_start),
                static_cast<double>(r.exec_finish - r.exec_start), args);
  }

  // Transfer slices and parent→child flow arrows. Flow ids must be unique
  // per edge; (parent, child) packed into 64 bits is.
  const auto flow_id = [](TaskId parent, TaskId child) {
    return (static_cast<std::int64_t>(parent) << 32) |
           static_cast<std::int64_t>(static_cast<std::uint32_t>(child));
  };
  for (const TaskRecord& r : records) {
    if (r.attempts == 0 || r.exec_start < 0 || r.machine == kInvalidMachine) {
      continue;
    }
    for (const TaskInputEdge& e : r.inputs) {
      if (e.parent == kInvalidTask) continue;
      const TaskRecord& parent = records[static_cast<std::size_t>(e.parent)];
      const std::string name =
          "t" + std::to_string(e.parent) + "->t" + std::to_string(r.task);
      const std::int64_t id = flow_id(e.parent, r.task);
      const bool timed = e.finish > e.start;
      if (timed) {
        write_slice(os, first, name, net_tid(r.machine),
                    static_cast<double>(e.start),
                    static_cast<double>(e.finish - e.start),
                    {{"parent", e.parent},
                     {"task", r.task},
                     {"from_machine", e.from_machine}});
      }
      const bool parent_placed =
          parent.exec_start >= 0 && parent.exec_finish > parent.exec_start;
      if (parent_placed) {
        write_flow(os, first, 's', id, name, compute_tid(parent.machine),
                   static_cast<double>(parent.exec_finish) - 0.5, false);
        if (timed) {
          write_flow(os, first, 't', id, name, net_tid(r.machine),
                     static_cast<double>(e.start) + 0.5, false);
        }
        if (r.exec_finish > r.exec_start) {
          write_flow(os, first, 'f', id, name, compute_tid(r.machine),
                     static_cast<double>(r.exec_start) + 0.5, true);
        }
      }
    }
  }
}

void write_runtime_events(std::ostream& os, bool& first,
                          const RuntimeProfiler& profiler) {
  write_name_event(os, first, "process_name", "runtime (workers)", kRuntimePid,
                   kRuntimeRegionTid);
  write_name_event(os, first, "thread_name", "regions", kRuntimePid,
                   kRuntimeRegionTid);

  const std::vector<std::string> names = profiler.region_names();
  const double now = profiler.now_seconds();

  // Region windows: one slice per recorded parallel_for window on the shared
  // region row. Still-open regions (snapshot taken mid-run) extend to "now".
  for (const RuntimeProfiler::RegionRecord& region : profiler.snapshot_regions()) {
    const double dur = region.duration_seconds >= 0.0
                           ? region.duration_seconds
                           : now - region.start_seconds;
    JsonWriter json;
    json.begin_object();
    json.field("name", region.name).field("ph", "X").field("pid", kRuntimePid);
    json.field("tid", kRuntimeRegionTid);
    json.field("ts", to_micros(region.start_seconds));
    json.field("dur", to_micros(dur));
    json.end_object();
    if (!first) os << ",\n";
    first = false;
    os << json.str();
  }

  const std::vector<RuntimeProfiler::WorkerSnapshot> workers =
      profiler.snapshot_workers();
  for (std::size_t slot = 0; slot < workers.size(); ++slot) {
    const RuntimeProfiler::WorkerSnapshot& worker = workers[slot];
    const int tid = static_cast<int>(slot) + 1;
    write_name_event(os, first, "thread_name", worker.label, kRuntimePid, tid);

    for (const RuntimeProfiler::WorkerEvent& event : worker.events) {
      const bool idle = event.kind == RuntimeProfiler::EventKind::Idle;
      // Run slices carry the region that was open when the task started, as
      // both the slice name (visual grouping) and an arg (machine parsing).
      const std::string_view region =
          event.region > 0 && event.region <= names.size()
              ? std::string_view(names[event.region - 1])
              : std::string_view();
      JsonWriter json;
      json.begin_object();
      json.field("name", idle ? std::string_view("idle")
                              : (region.empty() ? std::string_view("task") : region));
      json.field("ph", "X").field("pid", kRuntimePid).field("tid", tid);
      json.field("ts", to_micros(event.start_seconds));
      json.field("dur", to_micros(event.duration_seconds));
      if (!idle) {
        json.key("args").begin_object();
        if (!region.empty()) json.field("region", region);
        json.field("stolen", event.stolen);
        json.end_object();
      }
      json.end_object();
      if (!first) os << ",\n";
      first = false;
      os << json.str();
    }

    // Accumulated counters as one instant event per slot — the machine-
    // readable summary run_report --workers consumes (ring slices only cover
    // the newest window; these cover the whole run).
    JsonWriter json;
    json.begin_object();
    json.field("name", "worker_counters").field("ph", "i").field("s", "t");
    json.field("pid", kRuntimePid).field("tid", tid);
    json.field("ts", to_micros(now));
    json.key("args").begin_object();
    json.field("label", worker.label);
    json.field("tasks", worker.counters.tasks);
    json.field("steals", worker.counters.steals);
    json.field("steal_attempts", worker.counters.steal_attempts);
    json.field("parks", worker.counters.parks);
    json.field("busy_seconds", worker.counters.busy_seconds);
    json.field("idle_seconds", worker.counters.idle_seconds);
    json.end_object().end_object();
    if (!first) os << ",\n";
    first = false;
    os << json.str();
  }
}

}  // namespace

void write_chrome_trace(std::ostream& os, const FlightRecorder& recorder,
                        std::string_view process_name) {
  write_chrome_trace(os, &recorder, nullptr, process_name);
}

void write_chrome_trace(std::ostream& os, const FlightRecorder* recorder,
                        const TaskLedger* ledger, std::string_view process_name) {
  write_chrome_trace(os, recorder, ledger, nullptr, process_name);
}

void write_chrome_trace(std::ostream& os, const FlightRecorder* recorder,
                        const TaskLedger* ledger, const RuntimeProfiler* profiler,
                        std::string_view process_name) {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  if (recorder != nullptr) {
    write_recorder_events(os, first, *recorder, process_name);
  } else {
    write_name_event(os, first, "process_name", process_name, kHeuristicPid,
                     kHeuristicTid);
  }
  if (ledger != nullptr) write_ledger_events(os, first, *ledger);
  if (profiler != nullptr) write_runtime_events(os, first, *profiler);
  os << "\n]}\n";
}

}  // namespace ahg::obs
