#pragma once
// Chrome trace_event exporter (ahg::obs): renders a FlightRecorder's spans
// and frames as one `{"traceEvents":[...]}` JSON document loadable in
// chrome://tracing or Perfetto (legacy JSON mode).
//
// Mapping:
//  - every Span becomes a complete duration event (ph "X", ts/dur in
//    microseconds from recorder start) on the heuristic thread, with the
//    simulation clock and machine as args;
//  - every Frame becomes a set of counter events (ph "C") at its capture
//    time: an "objective" track with the weighted term breakdown, a
//    "progress" track (assigned / T100), a "pool" track (re-plans, maps,
//    pool and frontier sizes), a "battery" track with one series per machine
//    (available/capacity fraction), and — only when churn has occurred — a
//    "churn" track with the cumulative tallies;
//  - process / thread name metadata events label the tracks.

#include <iosfwd>
#include <string_view>

namespace ahg::obs {

class FlightRecorder;

/// Write the complete trace document. `process_name` labels the process
/// track in the viewer (e.g. the CLI invocation or scenario name).
void write_chrome_trace(std::ostream& os, const FlightRecorder& recorder,
                        std::string_view process_name = "ahg");

}  // namespace ahg::obs
