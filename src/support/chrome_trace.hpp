#pragma once
// Chrome trace_event exporter (ahg::obs): renders a FlightRecorder's spans
// and frames as one `{"traceEvents":[...]}` JSON document loadable in
// chrome://tracing or Perfetto (legacy JSON mode).
//
// Mapping:
//  - every Span becomes a complete duration event (ph "X", ts/dur in
//    microseconds from recorder start) on the heuristic thread, with the
//    simulation clock and machine as args;
//  - every Frame becomes a set of counter events (ph "C") at its capture
//    time: an "objective" track with the weighted term breakdown, a
//    "progress" track (assigned / T100), a "pool" track (re-plans, maps,
//    pool and frontier sizes), a "battery" track with one series per machine
//    (available/capacity fraction), and — only when churn has occurred — a
//    "churn" track with the cumulative tallies;
//  - process / thread name metadata events label the tracks.
//
// With a TaskLedger attached, a second process (pid 2, "schedule") renders
// the task-major view in SIMULATION time (1 cycle == 1 trace microsecond):
// two thread rows per machine — "mN compute" carrying one ph-X slice per
// executed task and "mN net" carrying one slice per timed input transfer —
// plus flow events (ph "s"/"t"/"f", cat "dataflow") drawing the parent→child
// causal arrows from the producer's exec slice through the transfer slice to
// the consumer's exec slice across rows.
//
// With a RuntimeProfiler attached, a third process (pid 3, "runtime
// (workers)", wall-clock micros) renders what the thread pool actually did:
// a "regions" row (tid 0) with one slice per named parallel_for window
// (sweep_fanout, cache_build, matrix_cells, ...), one row per worker/helper
// slot carrying its run slices (named by the region that was open, args
// {region, stolen}) and coalesced "idle" intervals, and one ph-"i" instant
// ("worker_counters") per slot whose args carry the accumulated counters —
// tasks, steals, steal_attempts, parks, busy/idle seconds — which
// `run_report --workers` parses back for the utilization summary.

#include <iosfwd>
#include <string_view>

namespace ahg::obs {

class FlightRecorder;
class RuntimeProfiler;
class TaskLedger;

/// Write the complete trace document. `process_name` labels the process
/// track in the viewer (e.g. the CLI invocation or scenario name).
void write_chrome_trace(std::ostream& os, const FlightRecorder& recorder,
                        std::string_view process_name = "ahg");

/// Pointer overload combining recorder + ledger; either may be null (a
/// document with only the available tracks is written). Equivalent to the
/// reference overload when `ledger` is null.
void write_chrome_trace(std::ostream& os, const FlightRecorder* recorder,
                        const TaskLedger* ledger,
                        std::string_view process_name = "ahg");

/// All-sources overload: recorder + ledger + runtime profiler; any may be
/// null. The profiler contributes the pid-3 wall-clock worker process.
void write_chrome_trace(std::ostream& os, const FlightRecorder* recorder,
                        const TaskLedger* ledger,
                        const RuntimeProfiler* profiler,
                        std::string_view process_name = "ahg");

}  // namespace ahg::obs
