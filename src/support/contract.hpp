#pragma once
// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.6/I.8, GSL Expects/Ensures). Violations throw rather than abort so the
// simulator, tuner, and test harness can observe and report them.

#include <stdexcept>
#include <string>

namespace ahg {

/// Thrown when a precondition (caller bug) is violated.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a postcondition or internal invariant (library bug) is violated.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void fail_expects(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  throw PreconditionError(std::string("precondition failed: ") + expr + " at " + file + ":" +
                          std::to_string(line) + (msg.empty() ? "" : (" — " + msg)));
}
[[noreturn]] inline void fail_ensures(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  throw InvariantError(std::string("invariant failed: ") + expr + " at " + file + ":" +
                       std::to_string(line) + (msg.empty() ? "" : (" — " + msg)));
}
}  // namespace detail

}  // namespace ahg

#define AHG_EXPECTS(cond)                                                   \
  do {                                                                      \
    if (!(cond)) ::ahg::detail::fail_expects(#cond, __FILE__, __LINE__, ""); \
  } while (false)

#define AHG_EXPECTS_MSG(cond, msg)                                             \
  do {                                                                         \
    if (!(cond)) ::ahg::detail::fail_expects(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#define AHG_ENSURES(cond)                                                   \
  do {                                                                      \
    if (!(cond)) ::ahg::detail::fail_ensures(#cond, __FILE__, __LINE__, ""); \
  } while (false)

#define AHG_ENSURES_MSG(cond, msg)                                             \
  do {                                                                         \
    if (!(cond)) ::ahg::detail::fail_ensures(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)
