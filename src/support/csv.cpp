#include "support/csv.hpp"

#include <ostream>
#include <sstream>

#include "support/contract.hpp"

namespace ahg {

CsvWriter::CsvWriter(std::ostream& os, std::vector<std::string> headers)
    : os_(os), columns_(headers.size()) {
  AHG_EXPECTS_MSG(columns_ > 0, "csv needs at least one column");
  write_raw_row(headers);
}

void CsvWriter::write_raw_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
}

void CsvWriter::begin_row() {
  AHG_EXPECTS_MSG(!in_row_, "begin_row while a row is open");
  in_row_ = true;
  fields_in_row_ = 0;
}

void CsvWriter::field(const std::string& text) {
  AHG_EXPECTS_MSG(in_row_, "field() outside a row");
  AHG_EXPECTS_MSG(fields_in_row_ < columns_, "too many fields in csv row");
  if (fields_in_row_ > 0) os_ << ',';
  os_ << escape(text);
  ++fields_in_row_;
}

void CsvWriter::field(double value) {
  std::ostringstream oss;
  oss << value;
  field(oss.str());
}

void CsvWriter::field(long long value) { field(std::to_string(value)); }
void CsvWriter::field(unsigned long long value) { field(std::to_string(value)); }

void CsvWriter::end_row() {
  AHG_EXPECTS_MSG(in_row_, "end_row without begin_row");
  AHG_EXPECTS_MSG(fields_in_row_ == columns_, "csv row is missing fields");
  os_ << '\n';
  in_row_ = false;
  ++rows_;
}

std::string CsvWriter::escape(const std::string& text) {
  const bool needs_quotes =
      text.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return text;
  std::string out = "\"";
  for (const char ch : text) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

}  // namespace ahg
