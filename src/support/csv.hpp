#pragma once
// Minimal RFC-4180-ish CSV writer for trace/series export (Gantt data,
// figure series for external plotting).

#include <iosfwd>
#include <string>
#include <vector>

namespace ahg {

class CsvWriter {
 public:
  /// Writes the header row immediately.
  CsvWriter(std::ostream& os, std::vector<std::string> headers);

  void begin_row();
  void field(const std::string& text);
  void field(double value);
  void field(long long value);
  void field(unsigned long long value);
  void field(int value) { field(static_cast<long long>(value)); }
  void field(std::size_t value) { field(static_cast<unsigned long long>(value)); }
  void end_row();

  std::size_t rows_written() const noexcept { return rows_; }

  /// Quote a field per RFC 4180 (only when it contains comma/quote/newline).
  static std::string escape(const std::string& text);

 private:
  std::ostream& os_;
  std::size_t columns_;
  std::size_t fields_in_row_ = 0;
  std::size_t rows_ = 0;
  bool in_row_ = false;
  void write_raw_row(const std::vector<std::string>& cells);
};

}  // namespace ahg
