#include "support/distributions.hpp"

#include <cmath>

namespace ahg {

namespace {

// Marsaglia–Tsang (2000) for shape >= 1.
double sample_mt(Rng& rng, double shape) {
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = rng.normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.next_double();
    if (u < 1.0 - 0.0331 * (x * x) * (x * x)) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

}  // namespace

double GammaDist::sample(Rng& rng) const {
  if (shape_ >= 1.0) {
    return scale_ * sample_mt(rng, shape_);
  }
  // Boost for shape < 1: X ~ Gamma(k+1) * U^{1/k}.
  const double g = sample_mt(rng, shape_ + 1.0);
  double u = rng.next_double();
  while (u <= 0.0) u = rng.next_double();  // avoid log(0)/pow(0,...) underflow to 0
  return scale_ * g * std::pow(u, 1.0 / shape_);
}

double sample_truncated_gamma(Rng& rng, const GammaDist& dist, double lo, double hi) {
  AHG_EXPECTS_MSG(lo < hi, "truncation bounds must satisfy lo < hi");
  for (;;) {
    const double x = dist.sample(rng);
    if (x >= lo && x <= hi) return x;
  }
}

}  // namespace ahg
