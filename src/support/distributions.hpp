#pragma once
// Sampling distributions used by the workload generators.
//
// The paper generates ETC matrices with the Gamma-based "coefficient of
// variation" (CVB) method of Ali et al. [AlS00]; that method parameterises
// Gamma distributions by (mean, CV) rather than (shape, scale), so the
// GammaDist here exposes both constructions.

#include "support/contract.hpp"
#include "support/rng.hpp"

namespace ahg {

/// Gamma(shape k, scale theta) sampler using the Marsaglia–Tsang squeeze
/// method, with the standard k<1 boost (sample at k+1 and scale by U^{1/k}).
class GammaDist {
 public:
  GammaDist(double shape, double scale) : shape_(shape), scale_(scale) {
    AHG_EXPECTS_MSG(shape > 0.0, "gamma shape must be positive");
    AHG_EXPECTS_MSG(scale > 0.0, "gamma scale must be positive");
  }

  /// CVB parameterisation: mean = k*theta, CV = 1/sqrt(k).
  static GammaDist from_mean_cv(double mean, double cv) {
    AHG_EXPECTS_MSG(mean > 0.0, "gamma mean must be positive");
    AHG_EXPECTS_MSG(cv > 0.0, "gamma cv must be positive");
    const double shape = 1.0 / (cv * cv);
    return GammaDist(shape, mean / shape);
  }

  double shape() const noexcept { return shape_; }
  double scale() const noexcept { return scale_; }
  double mean() const noexcept { return shape_ * scale_; }
  double variance() const noexcept { return shape_ * scale_ * scale_; }

  double sample(Rng& rng) const;

 private:
  double shape_;
  double scale_;
};

/// Truncated gamma: resamples until the draw falls in [lo, hi]. Used where a
/// generator needs gamma-shaped values with hard physical bounds (e.g. the
/// per-subtask slow/fast speed ratio). `lo`/`hi` must bracket a region of
/// non-trivial probability mass or sampling will be slow; generators in this
/// library keep the truncation mild.
double sample_truncated_gamma(Rng& rng, const GammaDist& dist, double lo, double hi);

}  // namespace ahg
