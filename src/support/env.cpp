#include "support/env.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <string>

#include "support/contract.hpp"

namespace ahg {

ReproScale repro_scale_from_env() {
  const char* raw = std::getenv("REPRO_SCALE");
  if (raw == nullptr) return ReproScale::Default;
  const std::string value(raw);
  if (value == "smoke") return ReproScale::Smoke;
  if (value == "paper" || value == "full") return ReproScale::Paper;
  if (value == "large") return ReproScale::Large;
  return ReproScale::Default;
}

std::string to_string(ReproScale scale) {
  switch (scale) {
    case ReproScale::Smoke: return "smoke";
    case ReproScale::Default: return "default";
    case ReproScale::Paper: return "paper";
    case ReproScale::Large: return "large";
  }
  return "default";
}

ScaleParams scale_params(ReproScale scale) {
  const auto seed = static_cast<std::uint64_t>(env_int("REPRO_SEED", 20040426));
  switch (scale) {
    case ReproScale::Smoke:
      return ScaleParams{64, 2, 2, 0.2, 0.0, seed};
    case ReproScale::Default:
      return ScaleParams{256, 3, 3, 0.1, 0.0, seed};
    case ReproScale::Paper:
    case ReproScale::Large:  // figure benches have no larger grid to run
      return ScaleParams{1024, 10, 10, 0.1, 0.02, seed};
  }
  return ScaleParams{256, 3, 3, 0.1, 0.0, seed};
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(raw, &end, 10);
  if (end == raw || (end != nullptr && *end != '\0')) return fallback;
  return value;
}

std::int64_t env_int_checked(const char* name, std::int64_t fallback,
                             std::int64_t min, std::int64_t max) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(raw, &end, 10);
  // Whole-string decimal only: no leading whitespace (strtoll would skip
  // it), no trailing junk, no out-of-long-long values.
  const bool parsed = !std::isspace(static_cast<unsigned char>(*raw)) &&
                      end != raw && end != nullptr && *end == '\0' &&
                      errno == 0;
  AHG_EXPECTS_MSG(parsed && value >= min && value <= max,
                  std::string(name) + "='" + raw +
                      "' is not an integer in [" + std::to_string(min) + ", " +
                      std::to_string(max) + "]");
  return static_cast<std::int64_t>(value);
}

}  // namespace ahg
