#pragma once
// Environment-variable knobs shared by the bench executables.
//
// REPRO_SCALE selects how much of the paper's full experimental grid a bench
// runs: "smoke" (seconds, CI), "default" (about a core-minute per bench),
// "paper" (the full 10 ETC x 10 DAG grid at |T| = 1024 — hours on one core).

#include <cstdint>
#include <string>

namespace ahg {

enum class ReproScale { Smoke, Default, Paper };

/// Parse REPRO_SCALE from the environment; unknown values fall back to
/// Default (and the bench prints the scale it resolved, so a typo is visible).
ReproScale repro_scale_from_env();

std::string to_string(ReproScale scale);

/// Scale parameters common to the figure benches.
struct ScaleParams {
  std::size_t num_subtasks;   ///< |T|
  std::size_t num_etc;        ///< ETC matrices in the grid
  std::size_t num_dag;        ///< DAGs in the grid
  double tune_coarse_step;    ///< coarse weight-grid step (paper: 0.1)
  double tune_fine_step;      ///< refinement step (paper: 0.02); 0 disables
  std::uint64_t master_seed;  ///< scenario-suite master seed
};

ScaleParams scale_params(ReproScale scale);

/// Integer env knob with default (e.g. REPRO_SEED); returns `fallback` when
/// unset or unparsable.
std::int64_t env_int(const char* name, std::int64_t fallback);

}  // namespace ahg
