#pragma once
// Environment-variable knobs shared by the bench executables.
//
// REPRO_SCALE selects how much of the paper's full experimental grid a bench
// runs: "smoke" (seconds, CI), "default" (about a core-minute per bench),
// "paper" (the full 10 ETC x 10 DAG grid at |T| = 1024 — hours on one core),
// "large" (bench_scale only: the 262144-task scaling shape; figure benches
// treat it as "paper").

#include <cstdint>
#include <string>

namespace ahg {

enum class ReproScale { Smoke, Default, Paper, Large };

/// Parse REPRO_SCALE from the environment; unknown values fall back to
/// Default (and the bench prints the scale it resolved, so a typo is visible).
ReproScale repro_scale_from_env();

std::string to_string(ReproScale scale);

/// Scale parameters common to the figure benches.
struct ScaleParams {
  std::size_t num_subtasks;   ///< |T|
  std::size_t num_etc;        ///< ETC matrices in the grid
  std::size_t num_dag;        ///< DAGs in the grid
  double tune_coarse_step;    ///< coarse weight-grid step (paper: 0.1)
  double tune_fine_step;      ///< refinement step (paper: 0.02); 0 disables
  std::uint64_t master_seed;  ///< scenario-suite master seed
};

ScaleParams scale_params(ReproScale scale);

/// Integer env knob with default (e.g. REPRO_SEED); returns `fallback` when
/// unset or unparsable.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Strict integer env knob for values that silently falling back would
/// corrupt (bench shapes, baselines): unset returns `fallback` untouched,
/// but a SET value must parse completely as a decimal integer and land in
/// [min, max] — anything else throws PreconditionError naming the variable
/// and the accepted range, so a typo'd AHG_SCALE_TASKS=10000000000 or
/// AHG_SCALE_MACHINES=64k fails loudly instead of benchmarking the wrong
/// shape.
std::int64_t env_int_checked(const char* name, std::int64_t fallback,
                             std::int64_t min, std::int64_t max);

}  // namespace ahg
