#include "support/event_log.hpp"

#include <ostream>

#include "support/jsonl.hpp"

namespace ahg::obs {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::RunBegin: return "run_begin";
    case EventKind::RunEnd: return "run_end";
    case EventKind::PoolBuilt: return "pool";
    case EventKind::MapDecision: return "map";
    case EventKind::Stall: return "stall";
    case EventKind::TunerPoint: return "tuner_point";
    case EventKind::TunerBest: return "tuner_best";
    case EventKind::MachineDeparture: return "departure";
    case EventKind::MachineJoin: return "join";
    case EventKind::OrphanReturn: return "orphan";
  }
  return "?";
}

namespace {

void write_terms(JsonWriter& json, const TermBreakdown& terms) {
  json.key("terms").begin_object();
  json.field("t100", terms.t100)
      .field("tec", terms.tec)
      .field("aet", terms.aet)
      .field("value", terms.value);
  json.end_object();
}

void write_weights(JsonWriter& json, const Event& event) {
  json.field("alpha", event.alpha)
      .field("beta", event.beta)
      .field("gamma", event.gamma);
}

}  // namespace

void Event::write_json(JsonWriter& json) const {
  json.begin_object();
  json.field("type", to_string(kind));
  if (!heuristic.empty()) json.field("heuristic", heuristic);

  switch (kind) {
    case EventKind::RunBegin:
      write_weights(json, *this);
      break;

    case EventKind::RunEnd:
      write_weights(json, *this);
      json.field("t100", t100)
          .field("assigned", assigned)
          .field("aet_cycles", static_cast<std::int64_t>(aet))
          .field("feasible", feasible)
          .field("wall_seconds", wall_seconds);
      break;

    case EventKind::PoolBuilt:
      json.field("clock", static_cast<std::int64_t>(clock))
          .field("machine", static_cast<std::int64_t>(machine))
          .field("pool_size", pool_size);
      if (rejected_unreleased > 0) json.field("rejected_unreleased", rejected_unreleased);
      if (rejected_assigned > 0) json.field("rejected_assigned", rejected_assigned);
      if (rejected_parents > 0) json.field("rejected_parents", rejected_parents);
      if (rejected_energy > 0) json.field("rejected_energy", rejected_energy);
      break;

    case EventKind::MapDecision:
    case EventKind::Stall:
      json.field("clock", static_cast<std::int64_t>(clock))
          .field("machine", static_cast<std::int64_t>(machine))
          .field("pool_size", pool_size);
      if (kind == EventKind::MapDecision) {
        json.field("task", static_cast<std::int64_t>(task))
            .field("version", ahg::to_string(version))
            .field("score", score)
            .field("start_cycles", static_cast<std::int64_t>(start))
            .field("finish_cycles", static_cast<std::int64_t>(finish));
        write_terms(json, terms);
      }
      if (!candidates.empty()) {
        json.key("candidates").begin_array();
        for (const auto& cand : candidates) {
          json.begin_object();
          json.field("task", static_cast<std::int64_t>(cand.task))
              .field("version", ahg::to_string(cand.version))
              .field("score", cand.score);
          if (!cand.reject.empty()) json.field("reject", cand.reject);
          json.end_object();
        }
        json.end_array();
      }
      break;

    case EventKind::TunerPoint:
      write_weights(json, *this);
      json.field("t100", t100)
          .field("feasible", feasible)
          .field("wall_seconds", wall_seconds);
      break;

    case EventKind::TunerBest:
      write_weights(json, *this);
      json.field("t100", t100).field("feasible", feasible);
      break;

    case EventKind::MachineDeparture:
      json.field("clock", static_cast<std::int64_t>(clock))
          .field("machine", static_cast<std::int64_t>(machine))
          .field("orphaned", orphaned)
          .field("invalidated", invalidated)
          .field("energy_forfeited", energy_forfeited);
      write_terms(json, terms);
      break;

    case EventKind::MachineJoin:
      json.field("clock", static_cast<std::int64_t>(clock))
          .field("machine", static_cast<std::int64_t>(machine));
      break;

    case EventKind::OrphanReturn:
      json.field("clock", static_cast<std::int64_t>(clock))
          .field("machine", static_cast<std::int64_t>(machine))
          .field("task", static_cast<std::int64_t>(task));
      break;
  }

  if (!note.empty()) json.field("note", note);
  json.end_object();
}

void JsonlSink::emit(const Event& event) {
  JsonWriter json;
  event.write_json(json);
  std::lock_guard lock(mutex_);
  os_ << json.str() << '\n';
  ++count_;
}

std::size_t JsonlSink::events_written() const noexcept {
  std::lock_guard lock(mutex_);
  return count_;
}

void CollectSink::emit(const Event& event) {
  std::lock_guard lock(mutex_);
  events_.push_back(event);
}

std::vector<Event> CollectSink::events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

std::size_t CollectSink::count(EventKind kind) const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

}  // namespace ahg::obs
