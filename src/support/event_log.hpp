#pragma once
// Structured decision-event log for the observability layer (ahg::obs).
//
// Heuristics emit typed Events through an opt-in Sink: every SLRH / Max-Max
// mapping decision carries the chosen (task, version), its objective score
// with the per-term breakdown (alpha*T100/|T|, beta*TEC/TSE, gamma*AET/tau),
// the candidate-pool context, and the rejection reasons of higher-ranked
// candidates — enough to answer "why was task t mapped to machine j" from
// the trace alone (see examples/trace_inspect.cpp).
//
// The null-sink contract: every emission site is guarded by a null check;
// with no sink attached, heuristics take the exact pre-telemetry code path
// and schedules are bit-identical (guarded by test_event_log.cpp).
//
// Sinks must be thread-safe: the weight tuner runs solvers on the global
// thread pool and events from concurrent runs interleave (each JSONL line is
// written atomically; use Event::alpha/beta to attribute lines to runs).

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "support/metrics.hpp"
#include "support/units.hpp"
#include "support/version.hpp"

namespace ahg::obs {

class JsonWriter;

enum class EventKind : std::uint8_t {
  RunBegin,    ///< heuristic run started (weights, scenario shape)
  RunEnd,      ///< heuristic run finished (T100, AET, feasibility, wall time)
  PoolBuilt,   ///< candidate pool constructed for (machine, timestep)
  MapDecision, ///< a subtask was committed to a machine
  Stall,       ///< pool non-empty but nothing could start within the horizon
  TunerPoint,  ///< one (alpha, beta) grid point evaluated
  TunerBest,   ///< tuner finished; the optimal point
  MachineDeparture,  ///< a machine left the grid mid-run (churn)
  MachineJoin,       ///< a late machine became available (churn)
  OrphanReturn,      ///< an orphaned subtask was returned to the pool
};

/// Stable wire names ("run_begin", "map", ...) used as the JSONL "type" field.
const char* to_string(EventKind kind);

/// Weighted objective terms: value = t100 - tec + aet (AET term carries the
/// sign chosen by AetSign).
struct TermBreakdown {
  double t100 = 0.0;
  double tec = 0.0;
  double aet = 0.0;
  double value = 0.0;
};

/// One pool entry as the decision saw it: its score and, when it ranked
/// above the chosen candidate but was passed over, why.
struct CandidateTrace {
  TaskId task = kInvalidTask;
  VersionKind version = VersionKind::Secondary;
  double score = 0.0;
  /// Empty = chosen (or not reached); otherwise "already_assigned",
  /// "energy_exhausted", "beyond_horizon", ...
  std::string reject;
};

/// A single telemetry record. Which fields are meaningful depends on `kind`;
/// serialization writes only the populated ones.
struct Event {
  EventKind kind = EventKind::MapDecision;
  std::string heuristic;  ///< "SLRH-1", "Max-Max", "tuner", ...

  // Decision context.
  Cycles clock = -1;      ///< SLRH timestep clock; Max-Max selection round
  MachineId machine = kInvalidMachine;
  TaskId task = kInvalidTask;
  VersionKind version = VersionKind::Secondary;
  double score = 0.0;
  TermBreakdown terms;
  Cycles start = -1;   ///< committed start cycle (MapDecision)
  Cycles finish = -1;  ///< committed finish cycle (MapDecision)
  std::size_t pool_size = 0;
  std::vector<CandidateTrace> candidates;

  // Pool-admission rejection counts (PoolBuilt), by feasibility reason.
  std::size_t rejected_unreleased = 0;
  std::size_t rejected_assigned = 0;
  std::size_t rejected_parents = 0;
  std::size_t rejected_energy = 0;

  // Churn payload (MachineDeparture / OrphanReturn). `terms` carries the
  // objective delta across the departure when populated.
  std::size_t orphaned = 0;     ///< unfinished subtasks returned to the pool
  std::size_t invalidated = 0;  ///< completed subtasks whose outputs were lost
  double energy_forfeited = 0.0;

  // Run / tuner payload (RunBegin, RunEnd, TunerPoint, TunerBest).
  double alpha = 0.0;
  double beta = 0.0;
  double gamma = 0.0;
  std::size_t t100 = 0;
  std::size_t assigned = 0;
  Cycles aet = -1;
  bool feasible = false;
  double wall_seconds = 0.0;

  std::string note;  ///< free-form annotation (stall reasons, scenario shape)

  /// Serialize as a single JSON object (no trailing newline).
  void write_json(JsonWriter& json) const;
};

/// Event consumer + optional metrics destination. The registry is NOT owned;
/// it may be null (events only) and the sink pointer itself may be null
/// everywhere in the heuristic API (no telemetry at all).
class Sink {
 public:
  explicit Sink(MetricsRegistry* metrics = nullptr) noexcept : metrics_(metrics) {}
  virtual ~Sink() = default;

  Sink(const Sink&) = delete;
  Sink& operator=(const Sink&) = delete;

  /// Consume one event. Must be thread-safe.
  virtual void emit(const Event& event) = 0;

  /// Cheap pre-filter so hot loops can skip assembling bulky events nobody
  /// wants (e.g. per-pool events). Defaults to "everything".
  virtual bool wants(EventKind) const noexcept { return true; }

  MetricsRegistry* metrics() const noexcept { return metrics_; }

 protected:
  MetricsRegistry* metrics_;
};

/// Writes each event as one JSON object per line. Thread-safe (one mutex
/// around the stream); lines are atomic.
class JsonlSink final : public Sink {
 public:
  struct Options {
    /// Suppress per-pool events (they dominate line counts on long runs).
    bool pool_events;
    Options() noexcept : pool_events(true) {}  // (not a default member
    // initializer: those may not feed a default argument of the enclosing
    // class — GCC rejects it)
  };

  explicit JsonlSink(std::ostream& os, MetricsRegistry* metrics = nullptr,
                     Options options = Options()) noexcept
      : Sink(metrics), os_(os), options_(options) {}

  void emit(const Event& event) override;
  bool wants(EventKind kind) const noexcept override {
    return options_.pool_events || kind != EventKind::PoolBuilt;
  }

  std::size_t events_written() const noexcept;

 private:
  mutable std::mutex mutex_;
  std::ostream& os_;
  Options options_;
  std::size_t count_ = 0;
};

/// Buffers events in memory — for tests and in-process inspection.
class CollectSink final : public Sink {
 public:
  explicit CollectSink(MetricsRegistry* metrics = nullptr) noexcept
      : Sink(metrics) {}

  void emit(const Event& event) override;

  /// Snapshot of everything collected so far.
  std::vector<Event> events() const;
  std::size_t count(EventKind kind) const;

 private:
  mutable std::mutex mutex_;
  std::vector<Event> events_;
};

/// Forwards events to an optional downstream sink while exposing its own
/// metrics registry — how the evaluation runner collects per-case phase
/// metrics without requiring callers to attach a sink.
class ForwardSink final : public Sink {
 public:
  ForwardSink(MetricsRegistry* metrics, Sink* downstream) noexcept
      : Sink(metrics), downstream_(downstream) {}

  void emit(const Event& event) override {
    if (downstream_ != nullptr) downstream_->emit(event);
  }
  bool wants(EventKind kind) const noexcept override {
    return downstream_ != nullptr && downstream_->wants(kind);
  }

 private:
  Sink* downstream_;
};

}  // namespace ahg::obs
