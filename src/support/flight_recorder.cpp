#include "support/flight_recorder.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <utility>

#include "support/contract.hpp"
#include "support/jsonl.hpp"

namespace ahg::obs {

FlightRecorder::FlightRecorder(Options options)
    : options_(options), start_(std::chrono::steady_clock::now()) {
  AHG_EXPECTS_MSG(options_.max_frames > 0 && options_.max_spans > 0,
                  "flight recorder rings must hold at least one entry");
  frames_.reserve(std::min<std::size_t>(options_.max_frames, 1024));
  spans_.reserve(std::min<std::size_t>(options_.max_spans, 1024));
}

double FlightRecorder::now_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
      .count();
}

void FlightRecorder::record(const Frame& frame) {
  std::lock_guard lock(mutex_);
  ++frames_recorded_;
  Frame* slot = nullptr;
  if (frames_.size() < options_.max_frames) {
    frames_.push_back(frame);
    slot = &frames_.back();
  } else {
    // Copy-assign so the slot's vectors and string keep their capacity —
    // a wrapped ring records without touching the allocator.
    frames_[frames_head_] = frame;
    slot = &frames_[frames_head_];
    frames_head_ = (frames_head_ + 1) % options_.max_frames;
  }
  slot->departures = churn_departures_;
  slot->orphaned = churn_orphaned_;
  slot->invalidated = churn_invalidated_;
  slot->energy_forfeited = churn_energy_forfeited_;
}

void FlightRecorder::add_span(std::string_view name, double start_seconds,
                              double duration_seconds, Cycles clock,
                              MachineId machine) {
  Span span{std::string(name), start_seconds, duration_seconds, clock, machine};
  std::lock_guard lock(mutex_);
  ++spans_recorded_;
  if (spans_.size() < options_.max_spans) {
    spans_.push_back(std::move(span));
  } else {
    spans_[spans_head_] = std::move(span);
    spans_head_ = (spans_head_ + 1) % options_.max_spans;
  }
}

void FlightRecorder::set_churn_context(std::uint64_t departures,
                                       std::uint64_t orphaned,
                                       std::uint64_t invalidated,
                                       double energy_forfeited) {
  std::lock_guard lock(mutex_);
  churn_departures_ = departures;
  churn_orphaned_ = orphaned;
  churn_invalidated_ = invalidated;
  churn_energy_forfeited_ = energy_forfeited;
}

std::vector<Frame> FlightRecorder::frames() const {
  std::lock_guard lock(mutex_);
  std::vector<Frame> out;
  out.reserve(frames_.size());
  for (std::size_t i = 0; i < frames_.size(); ++i) {
    out.push_back(frames_[(frames_head_ + i) % frames_.size()]);
  }
  return out;
}

std::vector<Span> FlightRecorder::spans() const {
  std::lock_guard lock(mutex_);
  std::vector<Span> out;
  out.reserve(spans_.size());
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    out.push_back(spans_[(spans_head_ + i) % spans_.size()]);
  }
  return out;
}

std::uint64_t FlightRecorder::frames_recorded() const {
  std::lock_guard lock(mutex_);
  return frames_recorded_;
}

std::uint64_t FlightRecorder::frames_dropped() const {
  std::lock_guard lock(mutex_);
  return frames_recorded_ - frames_.size();
}

std::uint64_t FlightRecorder::spans_recorded() const {
  std::lock_guard lock(mutex_);
  return spans_recorded_;
}

std::uint64_t FlightRecorder::spans_dropped() const {
  std::lock_guard lock(mutex_);
  return spans_recorded_ - spans_.size();
}

std::size_t FlightRecorder::memory_bound_bytes(
    std::size_t num_machines) const noexcept {
  // Per frame: the struct itself plus one double + one Cycles per machine.
  // Per span: the struct plus a generous 64-byte name allowance. Heuristic
  // names live in SSO storage, so they carry no extra heap.
  const std::size_t per_frame =
      sizeof(Frame) + num_machines * (sizeof(double) + sizeof(Cycles));
  const std::size_t per_span = sizeof(Span) + 64;
  return options_.max_frames * per_frame + options_.max_spans * per_span;
}

void write_frame_json(std::ostream& os, const Frame& f) {
  JsonWriter json;
  json.begin_object();
  json.field("heuristic", f.heuristic)
      .field("clock", static_cast<std::int64_t>(f.clock))
      .field("wall", f.wall_seconds)
      .field("term_t100", f.term_t100)
      .field("term_tec", f.term_tec)
      .field("term_aet", f.term_aet)
      .field("objective", f.objective)
      .field("assigned", f.assigned)
      .field("t100", f.t100)
      .field("tec", f.tec)
      .field("aet", static_cast<std::int64_t>(f.aet))
      .field("pools", f.pools_built)
      .field("maps", f.maps)
      .field("pool_size", f.last_pool_size)
      .field("reused", f.pools_reused)
      .field("spec_aborts", f.spec_aborts)
      .field("ready", f.frontier_ready)
      .field("unreleased", f.frontier_unreleased)
      .field("pool_seconds", f.pool_build_seconds)
      .field("sweep_seconds", f.sweep_seconds)
      .field("step_seconds", f.timestep_seconds)
      .field("departures", f.departures)
      .field("orphaned", f.orphaned)
      .field("invalidated", f.invalidated)
      .field("energy_forfeited", f.energy_forfeited);
  json.key("battery").begin_array();
  for (const double b : f.battery_fraction) json.value(b);
  json.end_array();
  json.key("busy_until").begin_array();
  for (const Cycles c : f.busy_until) json.value(static_cast<std::int64_t>(c));
  json.end_array();
  json.end_object();
  os << json.str();
}

void FlightRecorder::write_frames_jsonl(std::ostream& os) const {
  for (const Frame& frame : frames()) {
    write_frame_json(os, frame);
    os << "\n";
  }
}

Frame frame_from_json(const JsonValue& value) {
  AHG_EXPECTS_MSG(value.is_object(), "frame JSON must be an object");
  Frame f;
  f.heuristic = value.get_string("heuristic");
  f.clock = value.get_int("clock");
  f.wall_seconds = value.get_double("wall");
  f.term_t100 = value.get_double("term_t100");
  f.term_tec = value.get_double("term_tec");
  f.term_aet = value.get_double("term_aet");
  f.objective = value.get_double("objective");
  f.assigned = static_cast<std::uint64_t>(value.get_int("assigned"));
  f.t100 = static_cast<std::uint64_t>(value.get_int("t100"));
  f.tec = value.get_double("tec");
  f.aet = value.get_int("aet");
  f.pools_built = static_cast<std::uint64_t>(value.get_int("pools"));
  f.maps = static_cast<std::uint64_t>(value.get_int("maps"));
  f.last_pool_size = static_cast<std::uint64_t>(value.get_int("pool_size"));
  // Absent in pre-sweep-accelerator recordings; the getter fallbacks keep
  // old .frames.jsonl files parseable.
  f.pools_reused = static_cast<std::uint64_t>(value.get_int("reused"));
  f.spec_aborts = static_cast<std::uint64_t>(value.get_int("spec_aborts"));
  f.frontier_ready = static_cast<std::uint64_t>(value.get_int("ready"));
  f.frontier_unreleased = static_cast<std::uint64_t>(value.get_int("unreleased"));
  f.pool_build_seconds = value.get_double("pool_seconds");
  f.sweep_seconds = value.get_double("sweep_seconds");
  f.timestep_seconds = value.get_double("step_seconds");
  f.departures = static_cast<std::uint64_t>(value.get_int("departures"));
  f.orphaned = static_cast<std::uint64_t>(value.get_int("orphaned"));
  f.invalidated = static_cast<std::uint64_t>(value.get_int("invalidated"));
  f.energy_forfeited = value.get_double("energy_forfeited");
  if (const JsonValue* battery = value.find("battery");
      battery != nullptr && battery->is_array()) {
    for (const auto& b : battery->as_array()) {
      f.battery_fraction.push_back(b.as_double());
    }
  }
  if (const JsonValue* busy = value.find("busy_until");
      busy != nullptr && busy->is_array()) {
    for (const auto& b : busy->as_array()) f.busy_until.push_back(b.as_int());
  }
  return f;
}

std::vector<Frame> read_frames_jsonl(std::istream& in) {
  std::vector<Frame> frames;
  for (const JsonValue& line : parse_jsonl(in)) {
    frames.push_back(frame_from_json(line));
  }
  return frames;
}

}  // namespace ahg::obs
