#pragma once
// Flight recorder for the observability layer (ahg::obs): a bounded ring of
// fixed per-timestep Frames sampled at every SLRH / Max-Max clock tick, plus
// a bounded ring of named wall-clock Spans (pool builds, whole runs, churn
// recoveries).
//
// The null-recorder contract mirrors SlrhParams::sink: a driver holding a
// null FlightRecorder* pays one predictable branch per instrumentation point
// — no clock read, no allocation, bit-identical schedules (asserted by
// tests/test_determinism.cpp). With a recorder attached the drivers only
// OBSERVE schedule state; nothing feeds back into a decision.
//
// Memory bound: the recorder never holds more than
//   max_frames * (sizeof(Frame) + num_machines * 16 bytes)
// + max_spans  * (sizeof(Span) + span name)
// — see memory_bound_bytes(). When a ring fills, the OLDEST entry is
// overwritten and frames_dropped()/spans_dropped() count the loss, so a
// pathological million-timestep run records its tail instead of dying.
//
// This header lives in ahg_support and must not depend on sim/ or core/:
// Frame carries plain scalars and vectors; the drivers assemble them (the
// same layering rule obs::Event follows).

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "support/units.hpp"

namespace ahg::obs {

class JsonValue;

/// One per-timestep sample of everything the paper's trajectory plots need:
/// the weighted objective-term breakdown, mapping progress, pool / frontier
/// activity, per-machine battery and availability, and the cumulative churn
/// tallies. All fields are plain data; "this timestep" fields reset each
/// tick, "cumulative" fields are monotone over the run.
struct Frame {
  std::string heuristic;     ///< "SLRH-1".."SLRH-3", "Max-Max"
  Cycles clock = 0;          ///< SLRH: simulation clock; Max-Max: round index
  double wall_seconds = 0.0; ///< capture time relative to recorder start

  // Objective-term breakdown at end of tick (see core::objective_terms):
  // value = term_t100 - term_tec + term_aet.
  double term_t100 = 0.0;  ///< alpha * T100 / |T|
  double term_tec = 0.0;   ///< beta * TEC / TSE (enters negatively)
  double term_aet = 0.0;   ///< gamma * (tau - AET) / tau (sign per AetSign)
  double objective = 0.0;

  // Mapping progress.
  std::uint64_t assigned = 0;  ///< subtasks mapped so far
  std::uint64_t t100 = 0;      ///< of those, at the primary (100%) version
  double tec = 0.0;            ///< total energy consumed (committed)
  Cycles aet = 0;              ///< application end time so far

  // Re-plan activity this timestep.
  std::uint64_t pools_built = 0;    ///< pool (re)builds this tick
  std::uint64_t maps = 0;           ///< placements committed this tick
  std::uint64_t last_pool_size = 0; ///< size of the last pool built this tick
  std::uint64_t pools_reused = 0;   ///< machine scopes skipped via cached verdicts
  std::uint64_t spec_aborts = 0;    ///< speculative pools discarded this tick
  std::uint64_t frontier_ready = 0; ///< ready set size at end of tick
  std::uint64_t frontier_unreleased = 0; ///< tasks not yet arrived
  double pool_build_seconds = 0.0;  ///< wall time inside pool builds this tick
  double sweep_seconds = 0.0;       ///< speculative fan-out wall time this tick
  double timestep_seconds = 0.0;    ///< wall time of the whole tick

  // Cumulative churn context (zero on churn-free runs).
  std::uint64_t departures = 0;
  std::uint64_t orphaned = 0;
  std::uint64_t invalidated = 0;
  double energy_forfeited = 0.0;

  // Per-machine state at end of tick, indexed by MachineId.
  std::vector<double> battery_fraction;  ///< available / capacity, in [0, 1]
  std::vector<Cycles> busy_until;        ///< machine_ready clock
};

/// One named wall-clock interval (a pool build, a whole run, a churn
/// recovery). Times are seconds relative to recorder start, matching
/// Frame::wall_seconds so exporters can interleave the two streams.
struct Span {
  std::string name;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  Cycles clock = -1;                     ///< -1 when not tied to a tick
  MachineId machine = kInvalidMachine;   ///< kInvalidMachine when global
};

/// Bounded-memory recorder. record()/add_span() are thread-safe; the
/// snapshot accessors return entries oldest-first.
class FlightRecorder {
 public:
  struct Options {
    /// Ring capacities. The defaults are sized for the overhead budget, not
    /// just for memory: record() cycles through the ring, so its footprint
    /// is cache working set — a 4096-frame ring measurably slows the SLRH
    /// loop purely through eviction. Analysis runs that want full history
    /// should use dense_options().
    std::size_t max_frames = 1024;
    std::size_t max_spans = 4096;
    /// Idle-tick decimation for the ≤3% overhead budget: ticks that COMMIT a
    /// mapping are always sampled; a tick that only polled (built pools but
    /// mapped nothing — the overwhelming majority of a long SLRH run) is
    /// sampled once per `idle_stride` such ticks. Recording every poll tick
    /// would cost more than the scheduling itself while adding frames that
    /// differ only in `clock`. Set 1 to sample literally every tick.
    std::uint64_t idle_stride = 256;
    /// Pool-build span sampling, same budget: one build in `span_stride` is
    /// wall-clock timed and emitted as a "pool_build" span (an untimed build
    /// still counts in Frame::pools_built). Empty polls are ~100 ns on the
    /// frontier fast path — timing each one would double its cost. Set 1 to
    /// time every build.
    std::uint64_t span_stride = 256;
  };

  /// Full-fidelity configuration for analysis runs (the CLI exporters use
  /// it): every tick sampled, every pool build timed, deep rings. Overhead
  /// is paid — don't benchmark with this.
  static Options dense_options() {
    Options options;
    options.max_frames = 1 << 16;
    options.max_spans = 1 << 17;
    options.idle_stride = 1;
    options.span_stride = 1;
    return options;
  }

  FlightRecorder() : FlightRecorder(Options{}) {}
  explicit FlightRecorder(Options options);

  const Options& options() const noexcept { return options_; }

  /// Monotonic seconds since the recorder was constructed — the time base
  /// for Frame::wall_seconds and Span::start_seconds.
  double now_seconds() const;

  /// Append a copy of `frame` (overwriting the oldest when the ring is
  /// full). Taking a const reference lets drivers reuse one scratch Frame
  /// across ticks — after the ring warms up, a record() is allocation-free
  /// on both sides. The recorder stamps the cumulative churn context
  /// (set_churn_context) into the stored copy, so segment drivers need not
  /// thread it through.
  void record(const Frame& frame);

  void add_span(std::string_view name, double start_seconds,
                double duration_seconds, Cycles clock = -1,
                MachineId machine = kInvalidMachine);

  /// Cumulative churn tallies stamped into every subsequently recorded
  /// frame. The churn driver updates these after each recovery batch.
  void set_churn_context(std::uint64_t departures, std::uint64_t orphaned,
                         std::uint64_t invalidated, double energy_forfeited);

  std::vector<Frame> frames() const;  ///< oldest-first
  std::vector<Span> spans() const;    ///< oldest-first

  std::uint64_t frames_recorded() const;  ///< total record() calls
  std::uint64_t frames_dropped() const;   ///< overwritten by ring wrap
  std::uint64_t spans_recorded() const;
  std::uint64_t spans_dropped() const;

  /// Documented worst-case heap footprint of the rings for runs over
  /// `num_machines` machines (frame payload + per-machine vectors + spans).
  std::size_t memory_bound_bytes(std::size_t num_machines) const noexcept;

  /// One frame per line in JsonWriter form — the `.frames.jsonl` format
  /// consumed by examples/run_report and examples/run_diff.
  void write_frames_jsonl(std::ostream& os) const;

 private:
  Options options_;
  std::chrono::steady_clock::time_point start_;

  mutable std::mutex mutex_;
  std::vector<Frame> frames_;  ///< ring storage, frames_head_ = oldest
  std::size_t frames_head_ = 0;
  std::uint64_t frames_recorded_ = 0;
  std::vector<Span> spans_;
  std::size_t spans_head_ = 0;
  std::uint64_t spans_recorded_ = 0;

  std::uint64_t churn_departures_ = 0;
  std::uint64_t churn_orphaned_ = 0;
  std::uint64_t churn_invalidated_ = 0;
  double churn_energy_forfeited_ = 0.0;
};

/// Rebuild one frame from its write_frames_jsonl line.
Frame frame_from_json(const JsonValue& value);

/// Parse a whole .frames.jsonl stream (oldest-first, as written).
std::vector<Frame> read_frames_jsonl(std::istream& in);

/// Serialize one frame as a single JSON object (no trailing newline).
void write_frame_json(std::ostream& os, const Frame& frame);

}  // namespace ahg::obs
