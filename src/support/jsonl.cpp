#include "support/jsonl.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <istream>

#include "support/contract.hpp"

namespace ahg::obs {

// --- JsonWriter --------------------------------------------------------------

namespace {

void append_escaped_code_point(std::string& out, char32_t cp) {
  char buf[16];
  if (cp <= 0xFFFF) {
    std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(cp));
  } else {
    // Astral plane: UTF-16 surrogate pair (the parser's append_utf8 inverse).
    const char32_t v = cp - 0x10000;
    std::snprintf(buf, sizeof(buf), "\\u%04x\\u%04x",
                  static_cast<unsigned>(0xD800 + (v >> 10)),
                  static_cast<unsigned>(0xDC00 + (v & 0x3FF)));
  }
  out += buf;
}

/// Decode one UTF-8 sequence starting at text[i]; returns the code point and
/// advances i past it, or returns U+FFFD (advancing one byte) on malformed
/// input so hostile bytes can never leak into the JSON output raw.
char32_t decode_utf8(std::string_view text, std::size_t& i) {
  const auto byte = [&](std::size_t k) {
    return static_cast<unsigned char>(text[k]);
  };
  const unsigned char lead = byte(i);
  std::size_t len = 0;
  char32_t cp = 0;
  if (lead < 0xC0) {
    ++i;  // lone continuation byte (0x80..0xBF) or invalid lead
    return 0xFFFD;
  } else if (lead < 0xE0) {
    len = 2;
    cp = lead & 0x1F;
  } else if (lead < 0xF0) {
    len = 3;
    cp = lead & 0x0F;
  } else if (lead < 0xF8) {
    len = 4;
    cp = lead & 0x07;
  } else {
    ++i;
    return 0xFFFD;
  }
  if (i + len > text.size()) {
    ++i;
    return 0xFFFD;
  }
  for (std::size_t k = 1; k < len; ++k) {
    const unsigned char c = byte(i + k);
    if ((c & 0xC0) != 0x80) {
      ++i;
      return 0xFFFD;
    }
    cp = (cp << 6) | (c & 0x3F);
  }
  // Reject overlong encodings and surrogate code points.
  static constexpr char32_t kMin[5] = {0, 0, 0x80, 0x800, 0x10000};
  if (cp < kMin[len] || cp > 0x10FFFF || (cp >= 0xD800 && cp <= 0xDFFF)) {
    ++i;
    return 0xFFFD;
  }
  i += len;
  return cp;
}

}  // namespace

std::string JsonWriter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size();) {
    const char c = text[i];
    switch (c) {
      case '"': out += "\\\""; ++i; continue;
      case '\\': out += "\\\\"; ++i; continue;
      case '\b': out += "\\b"; ++i; continue;
      case '\f': out += "\\f"; ++i; continue;
      case '\n': out += "\\n"; ++i; continue;
      case '\r': out += "\\r"; ++i; continue;
      case '\t': out += "\\t"; ++i; continue;
      default: break;
    }
    const unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x20 || u == 0x7F) {
      // Remaining control characters (incl. DEL, which trace viewers choke
      // on in event names).
      append_escaped_code_point(out, u);
      ++i;
    } else if (u < 0x80) {
      out += c;
      ++i;
    } else {
      // Non-ASCII: \u-encode so the output is pure printable ASCII however
      // hostile the input — malformed UTF-8 degrades to U+FFFD instead of
      // emitting raw bytes. parse_json's \uXXXX decoding round-trips this.
      append_escaped_code_point(out, decode_utf8(text, i));
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (stack_.empty()) {
    AHG_EXPECTS_MSG(out_.empty(), "JsonWriter: only one top-level value");
    return;
  }
  const char top = stack_.back();
  AHG_EXPECTS_MSG(top != 'o', "JsonWriter: object member needs key() first");
  if (top == 'a') {
    if (has_member_.back()) out_ += ',';
    has_member_.back() = true;
  } else {  // 'v': key already written
    stack_.back() = 'o';
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_ += 'o';
  has_member_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  AHG_EXPECTS_MSG(!stack_.empty() && stack_.back() == 'o',
                  "JsonWriter: end_object outside object");
  out_ += '}';
  stack_.pop_back();
  has_member_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_ += 'a';
  has_member_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  AHG_EXPECTS_MSG(!stack_.empty() && stack_.back() == 'a',
                  "JsonWriter: end_array outside array");
  out_ += ']';
  stack_.pop_back();
  has_member_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  AHG_EXPECTS_MSG(!stack_.empty() && stack_.back() == 'o',
                  "JsonWriter: key() outside object");
  if (has_member_.back()) out_ += ',';
  has_member_.back() = true;
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  stack_.back() = 'v';
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  out_ += '"';
  out_ += escape(text);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  before_value();
  if (!std::isfinite(number)) {  // JSON has no inf/nan; null is the convention
    out_ += "null";
    return *this;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), number);
  AHG_ENSURES(ec == std::errc());
  out_.append(buf, ptr);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  before_value();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  before_value();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value();
  out_ += flag ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

const std::string& JsonWriter::str() const {
  AHG_EXPECTS_MSG(stack_.empty(), "JsonWriter: unclosed object/array");
  return out_;
}

// --- JsonValue ---------------------------------------------------------------

bool JsonValue::as_bool() const {
  AHG_EXPECTS_MSG(is_bool(), "JsonValue: not a bool");
  return bool_;
}

double JsonValue::as_double() const {
  AHG_EXPECTS_MSG(is_number(), "JsonValue: not a number");
  return number_;
}

std::int64_t JsonValue::as_int() const {
  return static_cast<std::int64_t>(std::llround(as_double()));
}

const std::string& JsonValue::as_string() const {
  AHG_EXPECTS_MSG(is_string(), "JsonValue: not a string");
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  AHG_EXPECTS_MSG(is_array(), "JsonValue: not an array");
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  AHG_EXPECTS_MSG(is_object(), "JsonValue: not an object");
  return object_;
}

const JsonValue* JsonValue::find(std::string_view name) const noexcept {
  if (!is_object()) return nullptr;
  const auto it = object_.find(std::string(name));
  return it == object_.end() ? nullptr : &it->second;
}

double JsonValue::get_double(std::string_view name, double fallback) const noexcept {
  const JsonValue* v = find(name);
  return (v != nullptr && v->is_number()) ? v->number_ : fallback;
}

std::int64_t JsonValue::get_int(std::string_view name, std::int64_t fallback) const noexcept {
  const JsonValue* v = find(name);
  return (v != nullptr && v->is_number())
             ? static_cast<std::int64_t>(std::llround(v->number_))
             : fallback;
}

std::string JsonValue::get_string(std::string_view name, std::string fallback) const {
  const JsonValue* v = find(name);
  return (v != nullptr && v->is_string()) ? v->string_ : std::move(fallback);
}

bool JsonValue::get_bool(std::string_view name, bool fallback) const noexcept {
  const JsonValue* v = find(name);
  return (v != nullptr && v->is_bool()) ? v->bool_ : fallback;
}

// --- parser ------------------------------------------------------------------

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value(0);
    skip_ws();
    expect(pos_ == text_.size(), "trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw PreconditionError("JSON parse error at byte " + std::to_string(pos_) + ": " +
                            what);
  }

  void expect(bool cond, const char* what) const {
    if (!cond) fail(what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue(parse_string());
      case 't':
        expect(consume_literal("true"), "invalid literal");
        return JsonValue(true);
      case 'f':
        expect(consume_literal("false"), "invalid literal");
        return JsonValue(false);
      case 'n':
        expect(consume_literal("null"), "invalid literal");
        return JsonValue();
      default: return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    next();  // '{'
    JsonValue::Object members;
    skip_ws();
    if (peek() == '}') {
      next();
      return JsonValue(std::move(members));
    }
    for (;;) {
      skip_ws();
      expect(peek() == '"', "expected object key");
      std::string name = parse_string();
      skip_ws();
      expect(next() == ':', "expected ':' after object key");
      members.insert_or_assign(std::move(name), parse_value(depth + 1));
      skip_ws();
      const char sep = next();
      if (sep == '}') break;
      expect(sep == ',', "expected ',' or '}' in object");
    }
    return JsonValue(std::move(members));
  }

  JsonValue parse_array(int depth) {
    next();  // '['
    JsonValue::Array items;
    skip_ws();
    if (peek() == ']') {
      next();
      return JsonValue(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value(depth + 1));
      skip_ws();
      const char sep = next();
      if (sep == ']') break;
      expect(sep == ',', "expected ',' or ']' in array");
    }
    return JsonValue(std::move(items));
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    return code;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string parse_string() {
    next();  // '"'
    std::string out;
    for (;;) {
      const char c = next();
      if (c == '"') break;
      if (c == '\\') {
        const char esc = next();
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned cp = parse_hex4();
            if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
              expect(next() == '\\' && next() == 'u', "expected low surrogate");
              const unsigned lo = parse_hex4();
              expect(lo >= 0xDC00 && lo <= 0xDFFF, "invalid low surrogate");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            }
            append_utf8(out, cp);
            break;
          }
          default: fail("invalid escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      } else {
        out += c;
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.' || c == 'e' ||
          c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    double out = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, out);
    if (ec != std::errc() || ptr != text_.data() + pos_) fail("invalid number");
    return JsonValue(out);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) { return Parser(text).parse(); }

std::vector<JsonValue> parse_jsonl(std::istream& in) {
  std::vector<JsonValue> records;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    records.push_back(parse_json(line));
  }
  return records;
}

}  // namespace ahg::obs
