#pragma once
// Minimal JSON building and parsing for the observability layer (ahg::obs).
//
// JsonWriter builds one JSON value into a string with explicit begin/end
// calls — enough for event and metric serialization without pulling in a
// third-party library. JsonValue + parse_json() is the matching reader used
// by trace_inspect and the round-trip tests. One JSON object per line
// ("JSONL") is the on-disk format for decision traces: append-friendly,
// greppable, and streamable.
//
// The parser accepts the full JSON grammar (RFC 8259) with the usual
// practical limits: numbers are stored as double, \uXXXX escapes outside the
// BMP (surrogate pairs) are combined, and input depth is bounded to keep
// malformed files from recursing away the stack.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ahg::obs {

/// Incremental writer for a single JSON value (normally one JSONL record).
/// Commas and key/value separators are inserted automatically; nesting is
/// tracked so str() can assert the value is complete.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Write the key of the next member (inside an object only).
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(int number) { return value(static_cast<std::int64_t>(number)); }
  JsonWriter& value(unsigned number) {
    return value(static_cast<std::uint64_t>(number));
  }
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& field(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  /// The completed JSON text. Requires all begin_*() calls to be closed.
  const std::string& str() const;

  /// Escape a string body per RFC 8259 (no surrounding quotes).
  static std::string escape(std::string_view text);

 private:
  void before_value();

  std::string out_;
  /// Nesting stack: 'o' = object (expecting key), 'v' = object (expecting
  /// value after key), 'a' = array.
  std::string stack_;
  /// Whether the current container already holds a member.
  std::vector<bool> has_member_;
};

/// Parsed JSON value: a tagged union over the seven JSON shapes.
class JsonValue {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() = default;  // null
  explicit JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
  explicit JsonValue(double n) : kind_(Kind::Number), number_(n) {}
  explicit JsonValue(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
  explicit JsonValue(Array a) : kind_(Kind::Array), array_(std::move(a)) {}
  explicit JsonValue(Object o) : kind_(Kind::Object), object_(std::move(o)) {}

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::Null; }
  bool is_bool() const noexcept { return kind_ == Kind::Bool; }
  bool is_number() const noexcept { return kind_ == Kind::Number; }
  bool is_string() const noexcept { return kind_ == Kind::String; }
  bool is_array() const noexcept { return kind_ == Kind::Array; }
  bool is_object() const noexcept { return kind_ == Kind::Object; }

  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;  ///< as_double rounded; requires is_number
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; returns nullptr when absent or not an object.
  const JsonValue* find(std::string_view name) const noexcept;

  /// Convenience typed lookups with defaults (for flat event records).
  double get_double(std::string_view name, double fallback = 0.0) const noexcept;
  std::int64_t get_int(std::string_view name, std::int64_t fallback = 0) const noexcept;
  std::string get_string(std::string_view name, std::string fallback = "") const;
  bool get_bool(std::string_view name, bool fallback = false) const noexcept;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parse one complete JSON document. Throws PreconditionError on malformed
/// input (with byte offset in the message).
JsonValue parse_json(std::string_view text);

/// Parse a JSONL stream: one JSON value per non-empty line.
std::vector<JsonValue> parse_jsonl(std::istream& in);

}  // namespace ahg::obs
