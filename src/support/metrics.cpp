#include "support/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "support/contract.hpp"
#include "support/jsonl.hpp"

namespace ahg::obs {

namespace detail {

std::size_t shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double candidate) noexcept {
  double expected = target.load(std::memory_order_relaxed);
  while (candidate < expected &&
         !target.compare_exchange_weak(expected, candidate,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double candidate) noexcept {
  double expected = target.load(std::memory_order_relaxed);
  while (candidate > expected &&
         !target.compare_exchange_weak(expected, candidate,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace detail

// --- Counter -----------------------------------------------------------------

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  AHG_EXPECTS_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                  "histogram bounds must be ascending");
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(double x) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, x);
  detail::atomic_min(min_, x);
  detail::atomic_max(max_, x);
}

std::uint64_t Histogram::count() const noexcept {
  return count_.load(std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.buckets.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  if (snap.count > 0) {
    snap.min = min_.load(std::memory_order_relaxed);
    snap.max = max_.load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  AHG_EXPECTS_MSG(other.bounds == bounds_,
                  "histogram merge requires identical bucket bounds");
  for (std::size_t i = 0; i < other.buckets.size(); ++i) {
    buckets_[i].fetch_add(other.buckets[i], std::memory_order_relaxed);
  }
  count_.fetch_add(other.count, std::memory_order_relaxed);
  detail::atomic_add(sum_, other.sum);
  detail::atomic_min(min_, other.min);
  detail::atomic_max(max_, other.max);
}

double HistogramSnapshot::percentile(double p) const noexcept {
  if (count == 0) return 0.0;  // empty: defined zero, never NaN
  if (std::isnan(p)) p = 0.0;  // NaN p clamps like any out-of-range query
  p = std::clamp(p, 0.0, 100.0);
  // Sanitize the observed extremes: a torn snapshot (count is incremented
  // before min/max settle, all relaxed atomics) or a hand-assembled snapshot
  // can carry non-finite or inverted min/max, which would poison the
  // interpolation with NaN. Fall back to the bucket bounds in that case.
  double lo_obs = min;
  double hi_obs = max;
  if (!std::isfinite(lo_obs) || !std::isfinite(hi_obs) || lo_obs > hi_obs) {
    lo_obs = bounds.empty() ? 0.0 : bounds.front();
    hi_obs = bounds.empty() ? 0.0 : bounds.back();
  }
  if (p <= 0.0) return lo_obs;
  if (p >= 100.0) return hi_obs;
  const double rank = p / 100.0 * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= rank) {
      // Interpolate within [lo, hi) of this bucket, clamped to observations.
      const double lo = i == 0 ? lo_obs : std::max(lo_obs, bounds[i - 1]);
      const double hi = i < bounds.size() ? std::min(hi_obs, bounds[i]) : hi_obs;
      const double into =
          (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return std::clamp(lo + (hi - lo) * std::clamp(into, 0.0, 1.0), lo_obs,
                        hi_obs);
    }
    seen += in_bucket;
  }
  return hi_obs;
}

// --- MetricsSnapshot ---------------------------------------------------------

const CounterSnapshot* MetricsSnapshot::find_counter(
    std::string_view name) const noexcept {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::find_histogram(
    std::string_view name) const noexcept {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

void MetricsSnapshot::write_json(std::ostream& os) const {
  JsonWriter json;
  json.begin_object();
  json.key("counters").begin_object();
  for (const auto& c : counters) json.field(c.name, c.value);
  json.end_object();
  json.key("gauges").begin_object();
  for (const auto& g : gauges) json.field(g.name, g.value);
  json.end_object();
  json.key("histograms").begin_object();
  for (const auto& h : histograms) {
    json.key(h.name).begin_object();
    json.field("count", h.count)
        .field("sum", h.sum)
        .field("mean", h.mean())
        .field("min", h.min)
        .field("max", h.max)
        .field("p50", h.percentile(50.0))
        .field("p95", h.percentile(95.0))
        .field("p99", h.percentile(99.0));
    json.key("bounds").begin_array();
    for (const double b : h.bounds) json.value(b);
    json.end_array();
    json.key("buckets").begin_array();
    for (const std::uint64_t b : h.buckets) json.value(b);
    json.end_array();
    json.end_object();
  }
  json.end_object();
  json.end_object();
  os << json.str();
}

MetricsSnapshot snapshot_from_json(const JsonValue& value) {
  AHG_EXPECTS_MSG(value.is_object(), "metrics snapshot JSON must be an object");
  MetricsSnapshot snap;
  if (const JsonValue* counters = value.find("counters")) {
    AHG_EXPECTS_MSG(counters->is_object(), "\"counters\" must be an object");
    for (const auto& [name, v] : counters->as_object()) {
      snap.counters.push_back(
          CounterSnapshot{name, static_cast<std::uint64_t>(v.as_int())});
    }
  }
  if (const JsonValue* gauges = value.find("gauges")) {
    AHG_EXPECTS_MSG(gauges->is_object(), "\"gauges\" must be an object");
    for (const auto& [name, v] : gauges->as_object()) {
      snap.gauges.push_back(GaugeSnapshot{name, v.as_double()});
    }
  }
  if (const JsonValue* histograms = value.find("histograms")) {
    AHG_EXPECTS_MSG(histograms->is_object(), "\"histograms\" must be an object");
    for (const auto& [name, v] : histograms->as_object()) {
      AHG_EXPECTS_MSG(v.is_object(), "histogram entry must be an object");
      HistogramSnapshot h;
      h.name = name;
      h.count = static_cast<std::uint64_t>(v.get_int("count"));
      h.sum = v.get_double("sum");
      h.min = v.get_double("min");
      h.max = v.get_double("max");
      const JsonValue* bounds = v.find("bounds");
      const JsonValue* buckets = v.find("buckets");
      AHG_EXPECTS_MSG(bounds != nullptr && bounds->is_array() &&
                          buckets != nullptr && buckets->is_array(),
                      "histogram entry needs bounds + buckets arrays");
      for (const auto& b : bounds->as_array()) h.bounds.push_back(b.as_double());
      for (const auto& b : buckets->as_array()) {
        h.buckets.push_back(static_cast<std::uint64_t>(b.as_int()));
      }
      AHG_EXPECTS_MSG(h.buckets.size() == h.bounds.size() + 1,
                      "histogram buckets must be bounds + overflow");
      snap.histograms.push_back(std::move(h));
    }
  }
  // std::map iteration already yields name order, matching write_json.
  return snap;
}

// --- MetricsRegistry ---------------------------------------------------------

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> bounds) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(
                          std::vector<double>(bounds.begin(), bounds.end())))
             .first;
  } else {
    AHG_EXPECTS_MSG(std::equal(bounds.begin(), bounds.end(),
                               it->second->bounds().begin(),
                               it->second->bounds().end()),
                    "histogram re-registered with different bounds");
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back(CounterSnapshot{name, counter->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back(GaugeSnapshot{name, gauge->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h = histogram->snapshot();
    h.name = name;
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void MetricsRegistry::merge(const MetricsSnapshot& other) {
  std::uint64_t conflicts = 0;
  {
    std::lock_guard lock(mutex_);
    for (const auto& c : other.counters) {
      if (gauges_.find(c.name) != gauges_.end() ||
          histograms_.find(c.name) != histograms_.end()) {
        ++conflicts;
        continue;
      }
      auto it = counters_.find(c.name);
      if (it == counters_.end()) {
        it = counters_.emplace(c.name, std::make_unique<Counter>()).first;
      }
      it->second->add(c.value);
    }
    for (const auto& g : other.gauges) {
      if (counters_.find(g.name) != counters_.end() ||
          histograms_.find(g.name) != histograms_.end()) {
        ++conflicts;
        continue;
      }
      auto it = gauges_.find(g.name);
      if (it == gauges_.end()) {
        it = gauges_.emplace(g.name, std::make_unique<Gauge>()).first;
      }
      it->second->set(g.value);
    }
    for (const auto& h : other.histograms) {
      if (counters_.find(h.name) != counters_.end() ||
          gauges_.find(h.name) != gauges_.end()) {
        ++conflicts;
        continue;
      }
      auto it = histograms_.find(h.name);
      if (it == histograms_.end()) {
        it = histograms_.emplace(h.name, std::make_unique<Histogram>(h.bounds))
                 .first;
      } else if (!std::equal(h.bounds.begin(), h.bounds.end(),
                             it->second->bounds().begin(),
                             it->second->bounds().end())) {
        ++conflicts;
        continue;
      }
      it->second->merge(h);
    }
  }
  if (conflicts > 0) counter("obs.merge_conflicts").add(conflicts);
}

}  // namespace ahg::obs
