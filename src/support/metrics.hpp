#pragma once
// Metrics registry for the observability layer (ahg::obs): counters, gauges,
// and fixed-bucket histograms.
//
// Design constraints (see DESIGN.md "Observability"):
//  - cheap when disabled: heuristics hold nullable handles; a null handle
//    costs one branch and no clock read, so an un-instrumented run is
//    indistinguishable from the pre-telemetry code path;
//  - thread-safe on the hot path without contention: counters shard their
//    storage across cache-line-padded atomic slots (thread_pool workers land
//    on different shards), histograms use relaxed atomics per bucket;
//  - reducible: registries merge() like `Accumulator`, so per-case or
//    per-worker registries can be folded into a session-wide one;
//  - deterministic outputs untouched: metrics only observe, never steer.
//
// Name lookup (registry map + mutex) is NOT hot-path: resolve handles once
// per run, then add()/observe() through them.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ahg::obs {

class JsonValue;

namespace detail {
/// Sharded-slot count; a power of two so the thread index wraps cheaply.
inline constexpr std::size_t kShards = 16;

/// Small dense per-thread index (0, 1, 2, ...) for shard selection.
std::size_t shard_index() noexcept;

/// Lock-free add/min/max on atomic<double> via CAS (portable to libstdc++
/// versions without atomic<double>::fetch_add).
void atomic_add(std::atomic<double>& target, double delta) noexcept;
void atomic_min(std::atomic<double>& target, double candidate) noexcept;
void atomic_max(std::atomic<double>& target, double candidate) noexcept;
}  // namespace detail

/// Monotonic counter with cache-line-padded shards.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    shards_[detail::shard_index() % detail::kShards].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  Shard shards_[detail::kShards];
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Copyable point-in-time view of a histogram (also the merge/report unit).
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;          ///< ascending bucket upper bounds
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (last = overflow)
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< meaningful only when count > 0
  double max = 0.0;

  double mean() const noexcept {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }

  /// Bucket-interpolated percentile. Never returns NaN: p is clamped to
  /// [0, 100] (NaN p clamps to 0), an empty histogram returns 0, and
  /// non-finite/inverted min/max (a torn relaxed-atomics snapshot) fall back
  /// to the bucket bounds. p<=0 returns the observed min, p>=100 the max.
  double percentile(double p) const noexcept;
};

/// Fixed-bucket histogram: values <= bounds[i] land in bucket i, larger ones
/// in the overflow bucket. observe() is wait-free (relaxed atomics).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double x) noexcept;

  std::span<const double> bounds() const noexcept { return bounds_; }
  std::uint64_t count() const noexcept;
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

  HistogramSnapshot snapshot() const;  ///< name field left empty

  /// Fold another histogram's observations into this one. Requires
  /// identical bucket bounds.
  void merge(const HistogramSnapshot& other);

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};

/// Copyable registry snapshot: what summaries and benches carry around.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;    ///< sorted by name
  std::vector<GaugeSnapshot> gauges;        ///< sorted by name
  std::vector<HistogramSnapshot> histograms;  ///< sorted by name

  bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  const CounterSnapshot* find_counter(std::string_view name) const noexcept;
  const HistogramSnapshot* find_histogram(std::string_view name) const noexcept;

  /// Serialize as one JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{count,sum,mean,min,max,p50,p95,buckets:[...]}}}.
  void write_json(std::ostream& os) const;
};

/// Rebuild a snapshot from its write_json form — the inverse used by the
/// bench result cache to restore persisted phase metrics. Doubles survive
/// exactly (write_json emits shortest-round-trip std::to_chars), bounds and
/// buckets are restored verbatim, so the result merges back into live
/// registries like any fresh snapshot. Throws PreconditionError when the
/// shape is not a metrics object.
MetricsSnapshot snapshot_from_json(const JsonValue& value);

/// Named-metric registry. counter()/gauge()/histogram() create on first use
/// and return stable references (safe to cache across threads); all methods
/// are thread-safe.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` is consulted only on first creation; later calls for the same
  /// name must pass identical bounds (contract-checked).
  Histogram& histogram(std::string_view name, std::span<const double> bounds);

  MetricsSnapshot snapshot() const;

  /// Fold a snapshot into this registry (counters add, gauges last-write,
  /// histograms merge bucket-wise). The reduction mirror of Accumulator::merge.
  /// Conflicting entries — a name registered here as a different metric kind,
  /// or a histogram arriving with different bucket bounds — are SKIPPED
  /// instead of silently clobbering or aborting, and each skip increments the
  /// "obs.merge_conflicts" counter so the loss is visible in snapshots.
  void merge(const MetricsSnapshot& other);
  void merge(const MetricsRegistry& other) { merge(other.snapshot()); }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace ahg::obs
