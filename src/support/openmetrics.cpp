#include "support/openmetrics.hpp"

#include <array>
#include <charconv>
#include <cmath>
#include <ostream>

#include "support/metrics.hpp"
#include "support/runtime_profiler.hpp"
#include "support/task_ledger.hpp"
#include "support/units.hpp"

namespace ahg::obs {

namespace {

/// Shortest-round-trip decimal, same strategy as JsonWriter::value(double),
/// plus the non-finite spellings OpenMetrics allows in sample values.
std::string format_double(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  return ec == std::errc() ? std::string(buf, ptr) : "0";
}

bool name_char_ok(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

}  // namespace

std::string openmetrics_name(std::string_view prefix, std::string_view name) {
  std::string out;
  out.reserve(prefix.size() + name.size() + 1);
  for (const char c : prefix) out.push_back(name_char_ok(c) ? c : '_');
  if (!out.empty() && !name.empty()) out.push_back('_');
  for (const char c : name) out.push_back(name_char_ok(c) ? c : '_');
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(out.begin(), '_');
  return out;
}

void write_openmetrics(std::ostream& os, const MetricsSnapshot& snapshot,
                       std::string_view prefix) {
  for (const auto& c : snapshot.counters) {
    const std::string name = openmetrics_name(prefix, c.name);
    os << "# TYPE " << name << " counter\n"
       << name << "_total " << c.value << "\n";
  }
  for (const auto& g : snapshot.gauges) {
    const std::string name = openmetrics_name(prefix, g.name);
    os << "# TYPE " << name << " gauge\n"
       << name << " " << format_double(g.value) << "\n";
  }
  for (const auto& h : snapshot.histograms) {
    const std::string name = openmetrics_name(prefix, h.name);
    os << "# TYPE " << name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      const std::string le =
          i < h.bounds.size() ? format_double(h.bounds[i]) : "+Inf";
      os << name << "_bucket{le=\"" << le << "\"} " << cumulative << "\n";
    }
    os << name << "_sum " << format_double(h.sum) << "\n"
       << name << "_count " << h.count << "\n";
  }
  os << "# EOF\n";
}

MetricsSnapshot ledger_metrics_snapshot(const TaskLedger& ledger) {
  // Simulation-seconds buckets (1 cycle = 0.1 s): sub-timestep up to several
  // horizons.
  static constexpr std::array<double, 10> kBounds = {
      0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0};

  MetricsRegistry registry;
  Histogram& released = registry.histogram("ledger.dwell_released_seconds", kBounds);
  Histogram& ready = registry.histogram("ledger.dwell_ready_seconds", kBounds);
  Histogram& pooled = registry.histogram("ledger.dwell_pooled_seconds", kBounds);
  Histogram& admitted = registry.histogram("ledger.dwell_admitted_seconds", kBounds);
  Histogram& input = registry.histogram("ledger.input_transfer_seconds", kBounds);
  Histogram& exec = registry.histogram("ledger.exec_seconds", kBounds);

  const auto observe_delta = [](Histogram& h, Cycles from, Cycles to) {
    if (from < 0 || to < from) return;  // unobserved, or round-index clocks
    h.observe(seconds_from_cycles(to - from));
  };

  std::uint64_t n_released = 0, n_completed = 0, n_orphaned = 0;
  std::uint64_t n_invalidated = 0, n_remapped = 0, n_degraded = 0;
  for (const TaskRecord& r : ledger.records()) {
    if (r.released >= 0) ++n_released;
    if (r.frontier_ready >= 0) observe_delta(released, r.released, r.frontier_ready);
    if (r.first_pooled >= 0) observe_delta(ready, r.frontier_ready, r.first_pooled);
    if (r.admitted_clock >= 0) observe_delta(pooled, r.first_pooled, r.admitted_clock);
    if (r.exec_start >= 0) {
      observe_delta(admitted, r.admitted_clock, r.exec_start);
      observe_delta(exec, r.exec_start, r.exec_finish);
    }
    if (r.attempts > 0 && r.state == TaskState::Completed) ++n_completed;
    if (r.attempts > 1) ++n_remapped;
    n_orphaned += r.orphan_count;
    n_invalidated += r.invalidated_count;
    if (r.degraded) ++n_degraded;
    for (const TaskInputEdge& e : r.inputs) {
      if (e.finish > e.start) observe_delta(input, e.start, e.finish);
    }
  }
  registry.counter("ledger.tasks_released").add(n_released);
  registry.counter("ledger.tasks_completed").add(n_completed);
  registry.counter("ledger.tasks_orphaned").add(n_orphaned);
  registry.counter("ledger.tasks_invalidated").add(n_invalidated);
  registry.counter("ledger.tasks_remapped").add(n_remapped);
  registry.counter("ledger.tasks_degraded").add(n_degraded);
  registry.counter("ledger.transitions_recorded").add(ledger.transitions_recorded());
  registry.counter("ledger.transitions_dropped").add(ledger.transitions_dropped());
  return registry.snapshot();
}

void write_ledger_openmetrics(std::ostream& os, const TaskLedger& ledger,
                              std::string_view prefix) {
  write_openmetrics(os, ledger_metrics_snapshot(ledger), prefix);
}

MetricsSnapshot runtime_metrics_snapshot(const RuntimeProfiler& profiler) {
  // Wall-seconds buckets: parallel_for windows span ~10 µs chunk fan-outs to
  // multi-second 262k-task cache builds.
  static constexpr std::array<double, 10> kBounds = {
      1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 1.0};

  MetricsRegistry registry;
  const RuntimeProfiler::Totals totals = profiler.totals();
  registry.counter("runtime.tasks").add(totals.tasks);
  registry.counter("runtime.steals").add(totals.steals);
  registry.counter("runtime.steal_attempts").add(totals.steal_attempts);
  registry.counter("runtime.parks").add(totals.parks);
  registry.counter("runtime.events_dropped").add(totals.events_dropped);
  registry.gauge("runtime.workers")
      .set(static_cast<double>(profiler.num_workers()));
  registry.gauge("runtime.busy_seconds").set(totals.busy_seconds);
  registry.gauge("runtime.idle_seconds").set(totals.idle_seconds);
  registry.gauge("runtime.rss_bytes")
      .set(static_cast<double>(process_rss_bytes()));
  registry.gauge("runtime.peak_rss_bytes")
      .set(static_cast<double>(process_peak_rss_bytes()));
  registry.gauge("runtime.profiler_bound_bytes")
      .set(static_cast<double>(profiler.memory_bound_bytes()));

  for (const RuntimeProfiler::RegionRecord& region : profiler.snapshot_regions()) {
    if (region.duration_seconds < 0.0) continue;  // still open: no duration yet
    registry.histogram("runtime.region_" + region.name + "_seconds", kBounds)
        .observe(region.duration_seconds);
  }
  return registry.snapshot();
}

void write_runtime_openmetrics(std::ostream& os, const RuntimeProfiler& profiler,
                               std::string_view prefix) {
  write_openmetrics(os, runtime_metrics_snapshot(profiler), prefix);
}

}  // namespace ahg::obs
