#include "support/openmetrics.hpp"

#include <charconv>
#include <cmath>
#include <ostream>

#include "support/metrics.hpp"

namespace ahg::obs {

namespace {

/// Shortest-round-trip decimal, same strategy as JsonWriter::value(double),
/// plus the non-finite spellings OpenMetrics allows in sample values.
std::string format_double(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  return ec == std::errc() ? std::string(buf, ptr) : "0";
}

bool name_char_ok(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

}  // namespace

std::string openmetrics_name(std::string_view prefix, std::string_view name) {
  std::string out;
  out.reserve(prefix.size() + name.size() + 1);
  for (const char c : prefix) out.push_back(name_char_ok(c) ? c : '_');
  if (!out.empty() && !name.empty()) out.push_back('_');
  for (const char c : name) out.push_back(name_char_ok(c) ? c : '_');
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(out.begin(), '_');
  return out;
}

void write_openmetrics(std::ostream& os, const MetricsSnapshot& snapshot,
                       std::string_view prefix) {
  for (const auto& c : snapshot.counters) {
    const std::string name = openmetrics_name(prefix, c.name);
    os << "# TYPE " << name << " counter\n"
       << name << "_total " << c.value << "\n";
  }
  for (const auto& g : snapshot.gauges) {
    const std::string name = openmetrics_name(prefix, g.name);
    os << "# TYPE " << name << " gauge\n"
       << name << " " << format_double(g.value) << "\n";
  }
  for (const auto& h : snapshot.histograms) {
    const std::string name = openmetrics_name(prefix, h.name);
    os << "# TYPE " << name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      const std::string le =
          i < h.bounds.size() ? format_double(h.bounds[i]) : "+Inf";
      os << name << "_bucket{le=\"" << le << "\"} " << cumulative << "\n";
    }
    os << name << "_sum " << format_double(h.sum) << "\n"
       << name << "_count " << h.count << "\n";
  }
  os << "# EOF\n";
}

}  // namespace ahg::obs
