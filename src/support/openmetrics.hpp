#pragma once
// OpenMetrics text-exposition exporter (ahg::obs): renders any
// MetricsSnapshot in the OpenMetrics 1.0 text format, scrapable by
// Prometheus-compatible collectors or diffable as plain text.
//
// Mapping:
//  - Counter   -> `# TYPE <name> counter` + `<name>_total <value>`;
//  - Gauge     -> `# TYPE <name> gauge` + `<name> <value>`;
//  - Histogram -> `# TYPE <name> histogram` with cumulative
//                 `<name>_bucket{le="..."}` series (the registry's fixed
//                 upper bounds plus `+Inf`), `<name>_sum`, `<name>_count`;
//  - the exposition ends with the mandatory `# EOF` line.
//
// Metric names are sanitized to the OpenMetrics charset: every character
// outside [a-zA-Z0-9_:] becomes '_' (so "slrh.pool_build_seconds" exports as
// "ahg_slrh_pool_build_seconds" under the default prefix).

#include <iosfwd>
#include <string>
#include <string_view>

namespace ahg::obs {

struct MetricsSnapshot;

/// Sanitized `<prefix>_<name>` exposition name (exposed for tests).
std::string openmetrics_name(std::string_view prefix, std::string_view name);

/// Write the full exposition, `# EOF` terminator included.
void write_openmetrics(std::ostream& os, const MetricsSnapshot& snapshot,
                       std::string_view prefix = "ahg");

}  // namespace ahg::obs
