#pragma once
// OpenMetrics text-exposition exporter (ahg::obs): renders any
// MetricsSnapshot in the OpenMetrics 1.0 text format, scrapable by
// Prometheus-compatible collectors or diffable as plain text.
//
// Mapping:
//  - Counter   -> `# TYPE <name> counter` + `<name>_total <value>`;
//  - Gauge     -> `# TYPE <name> gauge` + `<name> <value>`;
//  - Histogram -> `# TYPE <name> histogram` with cumulative
//                 `<name>_bucket{le="..."}` series (the registry's fixed
//                 upper bounds plus `+Inf`), `<name>_sum`, `<name>_count`;
//  - the exposition ends with the mandatory `# EOF` line.
//
// Metric names are sanitized to the OpenMetrics charset: every character
// outside [a-zA-Z0-9_:] becomes '_' (so "slrh.pool_build_seconds" exports as
// "ahg_slrh_pool_build_seconds" under the default prefix).

#include <iosfwd>
#include <string>
#include <string_view>

namespace ahg::obs {

struct MetricsSnapshot;
class TaskLedger;

/// Sanitized `<prefix>_<name>` exposition name (exposed for tests).
std::string openmetrics_name(std::string_view prefix, std::string_view name);

/// Write the full exposition, `# EOF` terminator included.
void write_openmetrics(std::ostream& os, const MetricsSnapshot& snapshot,
                       std::string_view prefix = "ahg");

/// Distill a TaskLedger into a metrics snapshot: per-state dwell-time
/// histograms in SIMULATION seconds (`ledger.dwell_released_seconds`
/// release→ready, `ledger.dwell_ready_seconds` ready→first pool,
/// `ledger.dwell_pooled_seconds` pool→admission, `ledger.dwell_admitted_seconds`
/// admission→exec start, `ledger.input_transfer_seconds` per timed input edge,
/// `ledger.exec_seconds` the execution window) plus lifecycle counters
/// (`ledger.tasks_released/_completed/_orphaned/_invalidated/_remapped/
/// _degraded`, `ledger.transitions_recorded/_dropped`). Negative deltas —
/// possible when a driver stamps round indices rather than sim cycles
/// (Max-Max) — are skipped, never folded into a histogram.
MetricsSnapshot ledger_metrics_snapshot(const TaskLedger& ledger);

/// write_openmetrics(os, ledger_metrics_snapshot(ledger), prefix).
void write_ledger_openmetrics(std::ostream& os, const TaskLedger& ledger,
                              std::string_view prefix = "ahg");

class RuntimeProfiler;

/// Distill a RuntimeProfiler into a metrics snapshot: wall-clock work-
/// stealing counters (`runtime.tasks/_steals/_steal_attempts/_parks/
/// _events_dropped`), pool-shape gauges (`runtime.workers`,
/// `runtime.busy_seconds`, `runtime.idle_seconds`, `runtime.rss_bytes`,
/// `runtime.peak_rss_bytes`, `runtime.profiler_bound_bytes`), and one
/// wall-seconds duration histogram per named parallel_for region
/// (`runtime.region_<name>_seconds` over the recorded ring — newest windows
/// when the ring wrapped; still-open regions are skipped).
MetricsSnapshot runtime_metrics_snapshot(const RuntimeProfiler& profiler);

/// write_openmetrics(os, runtime_metrics_snapshot(profiler), prefix).
void write_runtime_openmetrics(std::ostream& os, const RuntimeProfiler& profiler,
                               std::string_view prefix = "ahg");

}  // namespace ahg::obs
