#include "support/profile.hpp"

#include <array>

namespace ahg::obs {

std::span<const double> latency_bounds_seconds() noexcept {
  static constexpr std::array<double, 22> kBounds = {
      1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3,
      5e-3, 1e-2, 2e-2, 5e-2, 0.1,  0.2,  0.5,  1.0,  2.0,  5.0,  10.0};
  return kBounds;
}

}  // namespace ahg::obs
