#pragma once
// RAII profiling scopes feeding named latency histograms (ahg::obs).
//
// The null-handle contract: a ProfileScope built on a nullptr histogram does
// NOTHING — no clock read, no store — so un-instrumented hot loops pay one
// predictable branch. Callers resolve Histogram handles once (outside the
// loop) via phase_histogram(), which itself accepts a null registry.

#include <chrono>

#include "support/metrics.hpp"

namespace ahg::obs {

/// Default bucket upper bounds for phase latencies, in seconds: roughly
/// 1-2-5 decades from 1 microsecond to 10 seconds. Shared by every phase
/// histogram so snapshots from different runs always merge.
std::span<const double> latency_bounds_seconds() noexcept;

/// Resolve (create on first use) a latency histogram; null registry -> null.
inline Histogram* phase_histogram(MetricsRegistry* registry, std::string_view name) {
  return registry == nullptr
             ? nullptr
             : &registry->histogram(name, latency_bounds_seconds());
}

/// Times its lifetime into a histogram (seconds). Null histogram = no-op.
class ProfileScope {
 public:
  explicit ProfileScope(Histogram* histogram) noexcept : histogram_(histogram) {
    if (histogram_ != nullptr) start_ = Clock::now();
  }

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

  ~ProfileScope() {
    if (histogram_ != nullptr) {
      histogram_->observe(
          std::chrono::duration<double>(Clock::now() - start_).count());
    }
  }

 private:
  using Clock = std::chrono::steady_clock;
  Histogram* histogram_;
  Clock::time_point start_;
};

/// Time a callable into `histogram` and return its result. Convenience for
/// one-shot phases (tuner sweeps, bench sections).
template <typename F>
auto profiled(Histogram* histogram, F&& fn) {
  ProfileScope scope(histogram);
  return std::forward<F>(fn)();
}

}  // namespace ahg::obs
