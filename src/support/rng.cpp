#include "support/rng.hpp"

#include <cmath>

namespace ahg {

double Rng::normal() noexcept {
  // Polar Box–Muller; discards the spare to keep the draw sequence simple.
  for (;;) {
    const double u = 2.0 * next_double() - 1.0;
    const double v = 2.0 * next_double() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

}  // namespace ahg
