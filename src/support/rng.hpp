#pragma once
// Deterministic, splittable pseudo-random number generation.
//
// Every stochastic component in the library (workload generators, data-size
// sampling) takes an explicit 64-bit seed so that a scenario is fully
// reproducible from (master_seed, etc_index, dag_index). The engine is
// xoshiro256++ seeded through splitmix64, which is the recommended seeding
// procedure for the xoshiro family and is both fast and statistically strong
// for simulation workloads.

#include <array>
#include <cstdint>
#include <limits>

namespace ahg {

/// splitmix64: used for seed expansion and for deriving independent child
/// seeds from a parent seed plus a stream index.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Derive an independent child seed from a parent seed and a stream index.
/// Used to give each ETC matrix / DAG / data-size table its own stream.
constexpr std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t stream) noexcept {
  SplitMix64 sm(parent ^ (0xa0761d6478bd642fULL * (stream + 1)));
  sm.next();
  return sm.next();
}

/// xoshiro256++ engine. Satisfies the essentials of UniformRandomBitGenerator
/// so it can also be plugged into <random> distributions if ever needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next_u64(); }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection-free
  /// reduction (bias is negligible for n << 2^64, and we additionally reject
  /// to make it exact).
  std::uint64_t uniform_below(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    if (hi <= lo) return lo;
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_below(span));
  }

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) noexcept { return next_double() < p; }

  /// Standard normal via the polar Box–Muller method (no cached spare so the
  /// generator state is a pure function of the draw count).
  double normal() noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace ahg
