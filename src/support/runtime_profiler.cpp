#include "support/runtime_profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "support/contract.hpp"
#include "support/jsonl.hpp"

#if defined(__linux__)
#include <unistd.h>
#endif
#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <sys/time.h>
#endif

namespace ahg::obs {

namespace {

/// /proc/self/status "VmRSS:	  1234 kB" → bytes; 0 on any failure.
std::uint64_t proc_status_kb(std::string_view key) noexcept {
#if defined(__linux__)
  try {
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
      if (line.rfind(key, 0) != 0) continue;
      std::uint64_t kb = 0;
      std::size_t i = key.size();
      while (i < line.size() && (line[i] == ':' || line[i] == ' ' || line[i] == '\t')) ++i;
      while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
        kb = kb * 10 + static_cast<std::uint64_t>(line[i] - '0');
        ++i;
      }
      return kb * 1024;
    }
  } catch (...) {
  }
#else
  static_cast<void>(key);
#endif
  return 0;
}

std::uint64_t nanos(double seconds) noexcept {
  return seconds > 0.0 ? static_cast<std::uint64_t>(seconds * 1e9) : 0;
}

/// Coalesce threshold for adjacent idle intervals: a parallel_for waiter
/// wakes every 200 µs, so anything under 1 ms of separation is the same
/// logical idle stretch.
constexpr double kIdleCoalesceSeconds = 1e-3;

std::atomic<std::uint64_t> profiler_serial{0};

/// Helper-slot lease of the current thread (one profiler at a time; a new
/// profiler's serial invalidates stale leases).
struct HelperLease {
  std::uint64_t serial = 0;
  std::size_t slot = 0;  ///< absolute index into slots_, or npos
};
thread_local HelperLease tls_lease;

}  // namespace

std::uint64_t process_rss_bytes() noexcept { return proc_status_kb("VmRSS"); }

std::uint64_t process_peak_rss_bytes() noexcept { return proc_status_kb("VmHWM"); }

double process_cpu_seconds() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  const auto seconds = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) + static_cast<double>(tv.tv_usec) * 1e-6;
  };
  return seconds(usage.ru_utime) + seconds(usage.ru_stime);
#else
  return 0.0;
#endif
}

RuntimeProfiler::RuntimeProfiler(std::size_t num_workers)
    : RuntimeProfiler(num_workers, Options{}) {}

RuntimeProfiler::RuntimeProfiler(std::size_t num_workers, Options options)
    : num_workers_(num_workers),
      options_(options),
      serial_(profiler_serial.fetch_add(1, std::memory_order_relaxed) + 1),
      start_(std::chrono::steady_clock::now()) {
  AHG_EXPECTS_MSG(options_.max_events_per_worker > 0,
                  "profiler ring capacity must be positive");
  const std::size_t slots = num_workers_ + options_.helper_slots;
  slots_.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    auto slot = std::make_unique<Slot>();
    slot->ring.reserve(options_.max_events_per_worker);
    slots_.push_back(std::move(slot));
  }
  region_names_.reserve(16);
  region_ring_.reserve(options_.max_regions);
  region_tokens_.reserve(options_.max_regions);
}

double RuntimeProfiler::now_seconds() const noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
      .count();
}

RuntimeProfiler::Slot* RuntimeProfiler::slot_for(std::size_t worker) {
  if (worker < num_workers_) return slots_[worker].get();
  if (tls_lease.serial != serial_) {
    const std::size_t next = next_helper_.fetch_add(1, std::memory_order_relaxed);
    tls_lease.serial = serial_;
    tls_lease.slot = next < options_.helper_slots
                         ? num_workers_ + next
                         : static_cast<std::size_t>(-1);
  }
  if (tls_lease.slot == static_cast<std::size_t>(-1)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Slot* slot = slots_[tls_lease.slot].get();
  slot->used.store(true, std::memory_order_relaxed);
  return slot;
}

void RuntimeProfiler::push_event(Slot& slot, const WorkerEvent& event) {
  std::lock_guard lock(slot.mutex);
  // Coalesce back-to-back idles so a long imbalanced wait is one ring entry
  // instead of thousands of 200 µs wait ticks evicting the run slices.
  if (event.kind == EventKind::Idle && slot.recorded > 0) {
    const std::size_t last =
        (slot.head + slot.ring.size() - 1) % std::max<std::size_t>(1, slot.ring.size());
    if (!slot.ring.empty() && slot.ring[last].kind == EventKind::Idle) {
      WorkerEvent& prev = slot.ring[last];
      const double prev_end = prev.start_seconds + prev.duration_seconds;
      if (event.start_seconds - prev_end < kIdleCoalesceSeconds &&
          event.start_seconds >= prev.start_seconds) {
        prev.duration_seconds =
            event.start_seconds + event.duration_seconds - prev.start_seconds;
        return;
      }
    }
  }
  if (slot.ring.size() < options_.max_events_per_worker) {
    slot.ring.push_back(event);
  } else {
    slot.ring[slot.head] = event;
    slot.head = (slot.head + 1) % slot.ring.size();
  }
  ++slot.recorded;
}

void RuntimeProfiler::on_task(std::size_t worker, double start_seconds,
                              double end_seconds, bool stolen) {
  Slot* slot = slot_for(worker);
  if (slot == nullptr) return;
  slot->tasks.fetch_add(1, std::memory_order_relaxed);
  if (stolen) slot->steals.fetch_add(1, std::memory_order_relaxed);
  slot->busy_nanos.fetch_add(nanos(end_seconds - start_seconds),
                             std::memory_order_relaxed);
  WorkerEvent event;
  event.kind = EventKind::Run;
  event.stolen = stolen;
  event.region = current_region_.load(std::memory_order_relaxed);
  event.start_seconds = start_seconds;
  event.duration_seconds = end_seconds - start_seconds;
  push_event(*slot, event);
}

void RuntimeProfiler::on_idle(std::size_t worker, double start_seconds,
                              double end_seconds) {
  Slot* slot = slot_for(worker);
  if (slot == nullptr) return;
  slot->parks.fetch_add(1, std::memory_order_relaxed);
  slot->idle_nanos.fetch_add(nanos(end_seconds - start_seconds),
                             std::memory_order_relaxed);
  WorkerEvent event;
  event.kind = EventKind::Idle;
  event.region = current_region_.load(std::memory_order_relaxed);
  event.start_seconds = start_seconds;
  event.duration_seconds = end_seconds - start_seconds;
  push_event(*slot, event);
}

void RuntimeProfiler::on_steal_attempt(std::size_t worker) noexcept {
  Slot* slot = slot_for(worker);
  if (slot == nullptr) return;
  slot->steal_attempts.fetch_add(1, std::memory_order_relaxed);
}

std::uint32_t RuntimeProfiler::region_begin(std::string_view name) {
  std::lock_guard lock(region_mutex_);
  std::uint32_t name_idx = 0;
  for (std::size_t i = 0; i < region_names_.size(); ++i) {
    if (region_names_[i] == name) {
      name_idx = static_cast<std::uint32_t>(i + 1);
      break;
    }
  }
  if (name_idx == 0) {
    region_names_.emplace_back(name);
    name_idx = static_cast<std::uint32_t>(region_names_.size());
  }

  const std::uint32_t token = ++region_serial_;
  RegionRecord record;
  record.name.assign(name);
  record.start_seconds = now_seconds();
  record.duration_seconds = -1.0;

  std::size_t pos = 0;
  if (region_ring_.size() < options_.max_regions) {
    pos = region_ring_.size();
    region_ring_.push_back(std::move(record));
    region_tokens_.push_back(token);
  } else {
    pos = region_head_;
    region_ring_[pos] = std::move(record);
    region_tokens_[pos] = token;
    region_head_ = (region_head_ + 1) % region_ring_.size();
  }
  ++regions_recorded_;

  OpenRegion open;
  open.token = token;
  open.ring_pos = pos;
  open.outer = current_region_.load(std::memory_order_relaxed);
  open_regions_.push_back(open);
  current_region_.store(name_idx, std::memory_order_relaxed);
  return token;
}

void RuntimeProfiler::region_end(std::uint32_t token) {
  std::lock_guard lock(region_mutex_);
  // Unwind to the matching open region (tolerates a mismatched/missed end —
  // the inner records are simply closed with it).
  while (!open_regions_.empty()) {
    const OpenRegion open = open_regions_.back();
    open_regions_.pop_back();
    current_region_.store(open.outer, std::memory_order_relaxed);
    if (open.ring_pos < region_ring_.size() &&
        region_tokens_[open.ring_pos] == open.token) {
      region_ring_[open.ring_pos].duration_seconds =
          now_seconds() - region_ring_[open.ring_pos].start_seconds;
    }
    if (open.token == token) break;
  }
}

RuntimeProfiler::Totals RuntimeProfiler::totals() const {
  Totals totals;
  for (const auto& slot : slots_) {
    totals.tasks += slot->tasks.load(std::memory_order_relaxed);
    totals.steals += slot->steals.load(std::memory_order_relaxed);
    totals.steal_attempts += slot->steal_attempts.load(std::memory_order_relaxed);
    totals.parks += slot->parks.load(std::memory_order_relaxed);
    totals.busy_seconds +=
        static_cast<double>(slot->busy_nanos.load(std::memory_order_relaxed)) * 1e-9;
    totals.idle_seconds +=
        static_cast<double>(slot->idle_nanos.load(std::memory_order_relaxed)) * 1e-9;
  }
  totals.events_dropped = dropped_.load(std::memory_order_relaxed);
  return totals;
}

std::vector<RuntimeProfiler::WorkerSnapshot> RuntimeProfiler::snapshot_workers()
    const {
  std::vector<WorkerSnapshot> out;
  out.reserve(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& slot = *slots_[i];
    const bool helper = i >= num_workers_;
    // Worker slots always appear (one trace row per worker, busy or not);
    // helper slots only when a thread actually leased them.
    if (helper && !slot.used.load(std::memory_order_relaxed)) continue;
    WorkerSnapshot snapshot;
    snapshot.helper = helper;
    snapshot.label = helper ? "helper " + std::to_string(i - num_workers_)
                            : "worker " + std::to_string(i);
    snapshot.counters.tasks = slot.tasks.load(std::memory_order_relaxed);
    snapshot.counters.steals = slot.steals.load(std::memory_order_relaxed);
    snapshot.counters.steal_attempts =
        slot.steal_attempts.load(std::memory_order_relaxed);
    snapshot.counters.parks = slot.parks.load(std::memory_order_relaxed);
    snapshot.counters.busy_seconds =
        static_cast<double>(slot.busy_nanos.load(std::memory_order_relaxed)) * 1e-9;
    snapshot.counters.idle_seconds =
        static_cast<double>(slot.idle_nanos.load(std::memory_order_relaxed)) * 1e-9;
    {
      std::lock_guard lock(slot.mutex);
      snapshot.events.reserve(slot.ring.size());
      for (std::size_t k = 0; k < slot.ring.size(); ++k) {
        snapshot.events.push_back(slot.ring[(slot.head + k) % slot.ring.size()]);
      }
    }
    out.push_back(std::move(snapshot));
  }
  return out;
}

std::vector<RuntimeProfiler::RegionRecord> RuntimeProfiler::snapshot_regions()
    const {
  std::lock_guard lock(region_mutex_);
  std::vector<RegionRecord> out;
  out.reserve(region_ring_.size());
  for (std::size_t k = 0; k < region_ring_.size(); ++k) {
    out.push_back(region_ring_[(region_head_ + k) % region_ring_.size()]);
  }
  return out;
}

std::vector<std::string> RuntimeProfiler::region_names() const {
  std::lock_guard lock(region_mutex_);
  return region_names_;
}

std::size_t RuntimeProfiler::memory_bound_bytes() const noexcept {
  return slots_.size() *
             (sizeof(Slot) + options_.max_events_per_worker * sizeof(WorkerEvent)) +
         options_.max_regions * (sizeof(RegionRecord) + sizeof(std::uint32_t));
}

// --- heartbeat -------------------------------------------------------------

void write_heartbeat_json(std::ostream& os, const HeartbeatSample& sample) {
  JsonWriter json;
  json.begin_object();
  json.field("uptime_seconds", sample.uptime_seconds);
  json.field("beats", sample.beats);
  json.field("phase", sample.phase);
  json.field("clock", sample.clock);
  json.field("clock_limit", sample.clock_limit);
  json.field("tasks_done", sample.tasks_done);
  json.field("tasks_total", sample.tasks_total);
  json.field("progress", sample.progress);
  json.field("eta_seconds", sample.eta_seconds);
  json.field("rss_bytes", sample.rss_bytes);
  json.field("peak_rss_bytes", sample.peak_rss_bytes);
  json.field("stalled", sample.stalled);
  json.key("workers").begin_array();
  for (const auto& worker : sample.workers) {
    json.begin_object();
    json.field("label", worker.label);
    json.field("tasks", worker.tasks);
    json.field("steals", worker.steals);
    json.field("steal_attempts", worker.steal_attempts);
    json.field("parks", worker.parks);
    json.field("busy_seconds", worker.busy_seconds);
    json.field("idle_seconds", worker.idle_seconds);
    json.field("busy_fraction", worker.busy_fraction);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  os << json.str() << "\n";
}

HeartbeatSample parse_heartbeat(const JsonValue& root) {
  AHG_EXPECTS_MSG(root.is_object(), "heartbeat sample must be a JSON object");
  HeartbeatSample sample;
  sample.uptime_seconds = root.get_double("uptime_seconds");
  sample.beats = static_cast<std::uint64_t>(root.get_int("beats"));
  sample.phase = root.get_string("phase");
  sample.clock = root.get_int("clock");
  sample.clock_limit = root.get_int("clock_limit");
  sample.tasks_done = static_cast<std::uint64_t>(root.get_int("tasks_done"));
  sample.tasks_total = static_cast<std::uint64_t>(root.get_int("tasks_total"));
  sample.progress = root.get_double("progress");
  sample.eta_seconds = root.get_double("eta_seconds", -1.0);
  sample.rss_bytes = static_cast<std::uint64_t>(root.get_int("rss_bytes"));
  sample.peak_rss_bytes = static_cast<std::uint64_t>(root.get_int("peak_rss_bytes"));
  sample.stalled = root.get_bool("stalled");
  if (const JsonValue* workers = root.find("workers");
      workers != nullptr && workers->is_array()) {
    for (const JsonValue& entry : workers->as_array()) {
      HeartbeatSample::Worker worker;
      worker.label = entry.get_string("label");
      worker.tasks = static_cast<std::uint64_t>(entry.get_int("tasks"));
      worker.steals = static_cast<std::uint64_t>(entry.get_int("steals"));
      worker.steal_attempts =
          static_cast<std::uint64_t>(entry.get_int("steal_attempts"));
      worker.parks = static_cast<std::uint64_t>(entry.get_int("parks"));
      worker.busy_seconds = entry.get_double("busy_seconds");
      worker.idle_seconds = entry.get_double("idle_seconds");
      worker.busy_fraction = entry.get_double("busy_fraction");
      sample.workers.push_back(std::move(worker));
    }
  }
  return sample;
}

Heartbeat::Heartbeat(Options options, const RuntimeProfiler* profiler)
    : options_(std::move(options)),
      profiler_(profiler),
      start_(std::chrono::steady_clock::now()) {
  AHG_EXPECTS_MSG(!options_.path.empty(), "heartbeat needs an output path");
  if (options_.interval_seconds > 0.0) {
    thread_ = std::thread([this] { run(); });
  }
}

Heartbeat::~Heartbeat() {
  if (thread_.joinable()) {
    {
      std::lock_guard lock(stop_mutex_);
      stop_ = true;
    }
    stop_cv_.notify_all();
    thread_.join();
  }
  beat_now();  // final sample so the file reflects the finished run
}

void Heartbeat::set_phase(std::string_view phase) {
  std::lock_guard lock(phase_mutex_);
  phase_.assign(phase);
}

HeartbeatSample Heartbeat::sample() const {
  HeartbeatSample sample;
  sample.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  sample.beats = beats_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(phase_mutex_);
    sample.phase = phase_;
  }
  sample.clock = clock_.load(std::memory_order_relaxed);
  sample.clock_limit = clock_limit_.load(std::memory_order_relaxed);
  sample.tasks_done = tasks_done_.load(std::memory_order_relaxed);
  sample.tasks_total = tasks_total_.load(std::memory_order_relaxed);
  if (sample.clock_limit > 0) {
    sample.progress = std::min(
        1.0, static_cast<double>(sample.clock) / static_cast<double>(sample.clock_limit));
  } else if (sample.tasks_total > 0) {
    sample.progress =
        std::min(1.0, static_cast<double>(sample.tasks_done) /
                          static_cast<double>(sample.tasks_total));
  }
  sample.eta_seconds =
      sample.progress > 1e-9
          ? sample.uptime_seconds * (1.0 - sample.progress) / sample.progress
          : -1.0;
  sample.rss_bytes = process_rss_bytes();
  sample.peak_rss_bytes = process_peak_rss_bytes();
  sample.stalled = stalled_.load(std::memory_order_relaxed);
  if (profiler_ != nullptr) {
    for (const auto& worker : profiler_->snapshot_workers()) {
      HeartbeatSample::Worker out;
      out.label = worker.label;
      out.tasks = worker.counters.tasks;
      out.steals = worker.counters.steals;
      out.steal_attempts = worker.counters.steal_attempts;
      out.parks = worker.counters.parks;
      out.busy_seconds = worker.counters.busy_seconds;
      out.idle_seconds = worker.counters.idle_seconds;
      out.busy_fraction = sample.uptime_seconds > 0.0
                              ? worker.counters.busy_seconds / sample.uptime_seconds
                              : 0.0;
      sample.workers.push_back(std::move(out));
    }
  }
  return sample;
}

void Heartbeat::stall_check(const HeartbeatSample& sample) {
  const std::uint64_t profiler_tasks =
      profiler_ != nullptr ? profiler_->totals().tasks : 0;
  if (sample.tasks_done != last_key_done_ || sample.clock != last_key_clock_ ||
      profiler_tasks != last_key_tasks_) {
    last_key_done_ = sample.tasks_done;
    last_key_clock_ = sample.clock;
    last_key_tasks_ = profiler_tasks;
    last_change_seconds_ = sample.uptime_seconds;
    stall_warned_ = false;
    stalled_.store(false, std::memory_order_relaxed);
    return;
  }
  if (options_.stall_warn_seconds <= 0.0) return;
  if (sample.uptime_seconds - last_change_seconds_ < options_.stall_warn_seconds) {
    return;
  }
  stalled_.store(true, std::memory_order_relaxed);
  if (stall_warned_) return;
  stall_warned_ = true;
  std::ostringstream msg;
  msg << "heartbeat: no progress for "
      << (sample.uptime_seconds - last_change_seconds_) << " s (phase \""
      << sample.phase << "\", clock " << sample.clock << ", " << sample.tasks_done
      << " task(s) done)";
  for (const auto& worker : sample.workers) {
    msg << "\n  " << worker.label << ": tasks " << worker.tasks << ", steals "
        << worker.steals << "/" << worker.steal_attempts << " attempt(s), parks "
        << worker.parks << ", busy " << worker.busy_seconds << " s, idle "
        << worker.idle_seconds << " s";
  }
  std::cerr << msg.str() << "\n";
}

void Heartbeat::beat_now() {
  std::lock_guard beat_lock(beat_mutex_);
  HeartbeatSample snapshot = sample();
  stall_check(snapshot);
  snapshot.stalled = stalled_.load(std::memory_order_relaxed);
  beats_.fetch_add(1, std::memory_order_relaxed);
  ++snapshot.beats;
  const std::string tmp = options_.path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) return;  // an unwritable heartbeat never fails the run
    write_heartbeat_json(os, snapshot);
  }
  std::rename(tmp.c_str(), options_.path.c_str());
}

void Heartbeat::run() {
  const auto interval = std::chrono::duration<double>(options_.interval_seconds);
  std::unique_lock lock(stop_mutex_);
  while (!stop_) {
    lock.unlock();
    beat_now();
    lock.lock();
    stop_cv_.wait_for(lock, interval, [this] { return stop_; });
  }
}

}  // namespace ahg::obs
