#pragma once
// Wall-clock runtime profiler for the parallel engine (ahg::obs), plus the
// live-run heartbeat. See DESIGN.md §4i.
//
// The observability layer so far (Sink / FlightRecorder / TaskLedger) sees
// only SIMULATED time. RuntimeProfiler is its wall-clock sibling: attached
// to a ThreadPool (ThreadPool::set_profiler) it records, per worker, what
// the workers actually did — task run slices (with steal provenance), idle
// and park intervals, steal-attempt counters — and, per instrumented call
// site, named parallel_for region windows (the SLRH sweep fan-out, the
// ScenarioCache build, the evaluation-matrix cell fan-out).
//
// Storage follows the FlightRecorder idiom: fixed-capacity rings that keep
// the NEWEST entries, so memory is bounded regardless of run length —
// memory_bound_bytes() states the bound. Each worker slot's ring has a
// single writer (that worker's thread); a per-slot mutex makes concurrent
// snapshot reads (heartbeat thread, exporters) ThreadSanitizer-clean, and
// monotone per-slot counters are relaxed atomics so the heartbeat can read
// them without touching the rings. Non-worker threads that help the pool
// (a parallel_for caller) lease one of a few "helper" slots on first use.
//
// Null contract (same as the other observability handles): the profiler is
// attached via a nullable pointer; null — the default — costs one relaxed
// load and branch per instrumentation point, no clock reads, and schedules
// are bit-identical (asserted by tests/test_determinism.cpp). Attached,
// the overhead budget is <= 1.05x on run_slrh at |T|=1024, pinned by the
// bench gate (bench.profiler_overhead_ratio).
//
// Lifetime: detach (set_profiler(nullptr)) before destroying the profiler,
// and only at a quiescent point — no tasks queued or running in the pool.
// Workers re-check the attached pointer after a park and drop the record if
// it changed, but a task that was popped while the profiler was attached
// will stamp its run slice into it.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace ahg::obs {

class JsonValue;

/// Process resident-set size right now (VmRSS from /proc/self/status), in
/// bytes. 0 when unavailable (non-Linux).
std::uint64_t process_rss_bytes() noexcept;

/// Process peak resident-set size (VmHWM from /proc/self/status), in bytes.
/// 0 when unavailable (non-Linux).
std::uint64_t process_peak_rss_bytes() noexcept;

/// Total user+system CPU seconds consumed by the process (getrusage). 0
/// when unavailable. cpu_seconds / wall_seconds is the parallel-efficiency
/// numerator the bench meta block records.
double process_cpu_seconds() noexcept;

class RuntimeProfiler {
 public:
  /// Callers that are not pool workers (parallel_for helpers, the main
  /// thread) pass kNoWorker; the profiler leases them a helper slot.
  static constexpr std::size_t kNoWorker = static_cast<std::size_t>(-1);

  enum class EventKind : std::uint8_t { Run, Idle };

  /// One ring entry: a run slice (one pool task, with steal provenance) or
  /// an idle interval (a park or a parallel_for wait). `region` is the
  /// interned region-name index + 1 that was open when the slice began
  /// (0 = none); resolve through region_names().
  struct WorkerEvent {
    EventKind kind = EventKind::Run;
    bool stolen = false;       ///< Run only: popped from another worker's deque
    std::uint32_t region = 0;  ///< region_names() index + 1; 0 = no open region
    double start_seconds = 0.0;
    double duration_seconds = 0.0;
  };

  /// Monotone per-slot totals, readable while the run is live (heartbeat).
  struct WorkerCounters {
    std::uint64_t tasks = 0;           ///< run slices (includes stolen)
    std::uint64_t steals = 0;          ///< run slices with stolen provenance
    std::uint64_t steal_attempts = 0;  ///< empty-handed victim-queue probes
    std::uint64_t parks = 0;           ///< cv parks + timed parallel_for waits
    double busy_seconds = 0.0;
    double idle_seconds = 0.0;
  };

  struct WorkerSnapshot {
    std::string label;  ///< "worker N" or "helper N"
    bool helper = false;
    WorkerCounters counters;
    std::vector<WorkerEvent> events;  ///< oldest-first, newest kept on wrap
  };

  /// One named parallel_for region window (a sweep fan-out tick, a cache
  /// build, a matrix cell fan-out). Rings like everything else.
  struct RegionRecord {
    std::string name;
    double start_seconds = 0.0;
    double duration_seconds = -1.0;  ///< < 0: still open at snapshot time
  };

  struct Totals {
    std::uint64_t tasks = 0;
    std::uint64_t steals = 0;
    std::uint64_t steal_attempts = 0;
    std::uint64_t parks = 0;
    std::uint64_t events_dropped = 0;  ///< helper-slot exhaustion only
    double busy_seconds = 0.0;
    double idle_seconds = 0.0;
  };

  struct Options {
    std::size_t max_events_per_worker = 4096;
    std::size_t max_regions = 2048;
    std::size_t helper_slots = 4;  ///< non-worker threads that may record
  };

  // Two overloads (not one defaulted argument): the nested Options' default
  // member initializers are only parsed once the enclosing class is
  // complete, so `Options options = {}` would not compile here.
  explicit RuntimeProfiler(std::size_t num_workers);
  RuntimeProfiler(std::size_t num_workers, Options options);

  std::size_t num_workers() const noexcept { return num_workers_; }

  /// Monotonic seconds since construction — the trace timebase.
  double now_seconds() const noexcept;

  // --- hot-path hooks (ThreadPool + instrumented call sites) ---------------

  /// One executed pool task. `worker` is the pool worker index or kNoWorker.
  void on_task(std::size_t worker, double start_seconds, double end_seconds,
               bool stolen);

  /// One idle interval (a cv park or a parallel_for timed wait). Adjacent
  /// intervals on the same slot are coalesced so 200 µs wait ticks don't
  /// flush the ring.
  void on_idle(std::size_t worker, double start_seconds, double end_seconds);

  /// One empty-handed pass over the victim queues (counter only — failed
  /// probes are far too frequent to ring-record).
  void on_steal_attempt(std::size_t worker) noexcept;

  /// Open a named region; returns a token for region_end. Regions nest
  /// (the inner name stamps slices until its end restores the outer).
  std::uint32_t region_begin(std::string_view name);
  void region_end(std::uint32_t token);

  /// Interned region-name index + 1 currently open, 0 when none. ThreadPool
  /// uses this to label un-instrumented parallel_for calls.
  std::uint32_t current_region() const noexcept {
    return current_region_.load(std::memory_order_relaxed);
  }

  // --- read side (exporters, heartbeat; safe while the run is live) --------

  Totals totals() const;
  std::vector<WorkerSnapshot> snapshot_workers() const;
  std::vector<RegionRecord> snapshot_regions() const;  ///< oldest-first
  std::vector<std::string> region_names() const;       ///< interned, by index

  /// Upper bound on the profiler's own heap footprint (rings + regions).
  std::size_t memory_bound_bytes() const noexcept;

 private:
  struct Slot {
    mutable std::mutex mutex;        // guards ring fields below
    std::vector<WorkerEvent> ring;   // capacity-fixed at construction
    std::size_t head = 0;            // next write position
    std::uint64_t recorded = 0;      // events ever written
    // Monotone counters: one writer (the slot's thread), relaxed readers.
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> steal_attempts{0};
    std::atomic<std::uint64_t> parks{0};
    std::atomic<std::uint64_t> busy_nanos{0};
    std::atomic<std::uint64_t> idle_nanos{0};
    std::atomic<bool> used{false};   // helper slots: leased at least once
  };

  /// Map a caller to its slot: worker i -> slot i, non-workers lease helper
  /// slots via a thread-local cache. Returns nullptr when helper slots are
  /// exhausted (the event is dropped and counted).
  Slot* slot_for(std::size_t worker);

  void push_event(Slot& slot, const WorkerEvent& event);

  std::size_t num_workers_ = 0;
  Options options_;
  std::vector<std::unique_ptr<Slot>> slots_;  // workers, then helper slots
  std::atomic<std::size_t> next_helper_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::uint64_t serial_ = 0;  ///< distinguishes profilers for the TLS lease

  // Region state: interned names + a ring of records + the open stack.
  mutable std::mutex region_mutex_;
  std::vector<std::string> region_names_;
  std::vector<RegionRecord> region_ring_;
  std::vector<std::uint32_t> region_tokens_;  // parallel to region_ring_
  std::size_t region_head_ = 0;
  std::uint64_t regions_recorded_ = 0;
  std::uint32_t region_serial_ = 0;
  struct OpenRegion {
    std::uint32_t token = 0;
    std::size_t ring_pos = 0;
    std::uint32_t outer = 0;  ///< current_region_ to restore on end
  };
  std::vector<OpenRegion> open_regions_;
  std::atomic<std::uint32_t> current_region_{0};

  std::chrono::steady_clock::time_point start_;
};

/// RAII region marker; a null profiler makes both ends a no-op.
class RuntimeRegion {
 public:
  RuntimeRegion(RuntimeProfiler* profiler, std::string_view name)
      : profiler_(profiler),
        token_(profiler != nullptr ? profiler->region_begin(name) : 0) {}
  ~RuntimeRegion() {
    if (profiler_ != nullptr) profiler_->region_end(token_);
  }
  RuntimeRegion(const RuntimeRegion&) = delete;
  RuntimeRegion& operator=(const RuntimeRegion&) = delete;

 private:
  RuntimeProfiler* profiler_;
  std::uint32_t token_;
};

/// One parsed/parseable heartbeat.json sample (also the round-trip test
/// vehicle). All fields mirror the JSON keys one to one.
struct HeartbeatSample {
  double uptime_seconds = 0.0;
  std::uint64_t beats = 0;
  std::string phase;
  std::int64_t clock = 0;
  std::int64_t clock_limit = 0;
  std::uint64_t tasks_done = 0;
  std::uint64_t tasks_total = 0;
  double progress = 0.0;     ///< [0, 1]; prefers clock/clock_limit when set
  double eta_seconds = -1.0; ///< < 0: unknown (no progress yet)
  std::uint64_t rss_bytes = 0;
  std::uint64_t peak_rss_bytes = 0;
  bool stalled = false;
  struct Worker {
    std::string label;
    std::uint64_t tasks = 0;
    std::uint64_t steals = 0;
    std::uint64_t steal_attempts = 0;
    std::uint64_t parks = 0;
    double busy_seconds = 0.0;
    double idle_seconds = 0.0;
    double busy_fraction = 0.0;
  };
  std::vector<Worker> workers;
};

void write_heartbeat_json(std::ostream& os, const HeartbeatSample& sample);
HeartbeatSample parse_heartbeat(const JsonValue& root);

/// Live-run heartbeat: a background thread periodically rewrites a small
/// heartbeat.json (atomically: tmp + rename) with the current phase, clock
/// tick, tasks placed, per-worker busy fractions, RSS, and an ETA projected
/// from progress — so a multi-hour 262k/1M bench run is monitorable with
/// `watch cat heartbeat.json` instead of silent. A stall watchdog warns on
/// stderr (with the accumulated per-worker counters) when no progress is
/// observed for `stall_warn_seconds`.
///
/// The writers (drivers call set_clock / set_progress per tick, benches call
/// set_phase per section) only store relaxed atomics — attaching a heartbeat
/// never changes schedules. Drivers take it through the same nullable-handle
/// pattern as the other observability taps (SlrhParams::heartbeat).
class Heartbeat {
 public:
  struct Options {
    std::string path = "heartbeat.json";
    /// <= 0: no background thread — tests drive beat_now() by hand.
    double interval_seconds = 5.0;
    /// <= 0: watchdog off.
    double stall_warn_seconds = 120.0;
  };

  explicit Heartbeat(Options options, const RuntimeProfiler* profiler = nullptr);
  ~Heartbeat();  ///< stops the thread and writes one final sample

  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

  void set_phase(std::string_view phase);
  void set_clock(std::int64_t clock, std::int64_t clock_limit) noexcept {
    clock_.store(clock, std::memory_order_relaxed);
    clock_limit_.store(clock_limit, std::memory_order_relaxed);
  }
  void set_progress(std::uint64_t done, std::uint64_t total) noexcept {
    tasks_done_.store(done, std::memory_order_relaxed);
    tasks_total_.store(total, std::memory_order_relaxed);
  }

  /// Sample and rewrite the file now (also runs the stall check).
  void beat_now();

  std::uint64_t beats() const noexcept {
    return beats_.load(std::memory_order_relaxed);
  }

  HeartbeatSample sample() const;

 private:
  void run();
  void stall_check(const HeartbeatSample& sample);

  Options options_;
  const RuntimeProfiler* profiler_;
  std::chrono::steady_clock::time_point start_;

  std::atomic<std::int64_t> clock_{0};
  std::atomic<std::int64_t> clock_limit_{0};
  std::atomic<std::uint64_t> tasks_done_{0};
  std::atomic<std::uint64_t> tasks_total_{0};
  std::atomic<std::uint64_t> beats_{0};
  std::atomic<bool> stalled_{false};
  mutable std::mutex phase_mutex_;
  std::string phase_ = "start";

  // Watchdog state (beat-serialised: touched under beat_mutex_).
  std::mutex beat_mutex_;
  std::uint64_t last_key_done_ = 0;
  std::int64_t last_key_clock_ = 0;
  std::uint64_t last_key_tasks_ = 0;
  double last_change_seconds_ = 0.0;
  bool stall_warned_ = false;

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace ahg::obs
