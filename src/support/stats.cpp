#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/contract.hpp"

namespace ahg {

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Summary summarize(const Accumulator& acc) noexcept {
  return Summary{acc.count(), acc.mean(), acc.stddev(), acc.min(), acc.max()};
}

Summary summarize(std::span<const double> values) noexcept {
  Accumulator acc;
  for (const double v : values) acc.add(v);
  return summarize(acc);
}

double percentile(std::span<const double> values, double p) {
  AHG_EXPECTS_MSG(!values.empty(), "percentile of empty sample");
  AHG_EXPECTS_MSG(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace ahg
