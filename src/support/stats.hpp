#pragma once
// Streaming and batch statistics used by the experiment harness and the
// Table 3 / Figure 3 reports (which quote mean, standard deviation, min, max).

#include <cstddef>
#include <span>
#include <vector>

namespace ahg {

/// Welford streaming accumulator: numerically stable mean/variance plus
/// min/max tracking. Sample (n-1) variance, matching how the paper quotes
/// standard deviations over its ten ETC matrices.
class Accumulator {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  double variance() const noexcept;  ///< sample variance, 0 when n < 2
  double stddev() const noexcept;
  double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// Merge another accumulator (parallel reduction support).
  void merge(const Accumulator& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Summary snapshot of an Accumulator, convenient for tabular reports.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

Summary summarize(const Accumulator& acc) noexcept;
Summary summarize(std::span<const double> values) noexcept;

/// Linear-interpolated percentile (p in [0,100]) of an unsorted sample.
/// Copies and sorts; intended for report generation, not hot paths.
double percentile(std::span<const double> values, double p);

}  // namespace ahg
