#pragma once
// Wall-clock stopwatch for measuring heuristic execution time (Figures 6/7).

#include <chrono>

namespace ahg {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ahg
