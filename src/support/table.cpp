#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/contract.hpp"

namespace ahg {

TextTable::TextTable(std::vector<std::string> headers, std::vector<Align> aligns)
    : headers_(std::move(headers)), aligns_(std::move(aligns)) {
  AHG_EXPECTS_MSG(!headers_.empty(), "table needs at least one column");
  if (aligns_.empty()) {
    aligns_.assign(headers_.size(), Align::Right);
    aligns_.front() = Align::Left;
  }
  AHG_EXPECTS_MSG(aligns_.size() == headers_.size(), "one alignment per column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  AHG_EXPECTS_MSG(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
}

void TextTable::begin_row() {
  flush_pending();
  building_ = true;
}

void TextTable::flush_pending() {
  if (building_) {
    add_row(std::move(pending_));
    pending_.clear();
    building_ = false;
  }
}

void TextTable::cell(std::string text) {
  AHG_EXPECTS_MSG(building_, "cell() outside begin_row()");
  AHG_EXPECTS_MSG(pending_.size() < headers_.size(), "too many cells in row");
  pending_.push_back(std::move(text));
}

void TextTable::cell(double value, int precision) { cell(format_fixed(value, precision)); }

void TextTable::cell(long long value) { cell(std::to_string(value)); }

void TextTable::cell(unsigned long long value) { cell(std::to_string(value)); }

void TextTable::render(std::ostream& os) const {
  // NOTE: render() is const; finish any pending row through a const_cast-free
  // path by requiring callers to have completed rows. We flush lazily in
  // begin_row()/str(); here we just assert balance.
  AHG_EXPECTS_MSG(!building_ || pending_.size() == headers_.size(),
                  "render() with an incomplete row in progress");
  std::vector<std::vector<std::string>> rows = rows_;
  if (building_ && pending_.size() == headers_.size()) rows.push_back(pending_);

  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << " | ";
      const auto pad = widths[c] - row[c].size();
      if (aligns_[c] == Align::Right) os << std::string(pad, ' ') << row[c];
      else os << row[c] << std::string(pad, ' ');
    }
    os << '\n';
  };

  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) os << "-+-";
    os << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& row : rows) emit(row);
}

std::string TextTable::str() const {
  std::ostringstream oss;
  render(oss);
  return oss.str();
}

std::string format_fixed(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

std::string format_mean_sd(double mean, double sd, int precision) {
  return format_fixed(mean, precision) + " (" + format_fixed(sd, precision) + ")";
}

}  // namespace ahg
