#pragma once
// ASCII table rendering for the bench harness: every table/figure bench
// prints a paper-style table of rows/series to stdout.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ahg {

enum class Align { Left, Right };

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// fixed precision. Rendered with a header rule and column separators:
///
///   Configuration | # Fast | # Slow
///   --------------+--------+-------
///   Case A        |      2 |      2
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers,
                     std::vector<Align> aligns = {});

  std::size_t columns() const noexcept { return headers_.size(); }
  std::size_t rows() const noexcept { return rows_.size(); }

  /// Append a fully-specified row; must match the column count.
  void add_row(std::vector<std::string> cells);

  /// Row-builder interface: begin_row, then cell(...) per column.
  void begin_row();
  void cell(std::string text);
  void cell(double value, int precision = 2);
  void cell(long long value);
  void cell(unsigned long long value);
  void cell(int value) { cell(static_cast<long long>(value)); }
  void cell(std::size_t value) { cell(static_cast<unsigned long long>(value)); }

  void render(std::ostream& os) const;
  std::string str() const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> pending_;
  bool building_ = false;
  void flush_pending();
};

/// Format a double with fixed precision (report helper).
std::string format_fixed(double value, int precision);

/// Format "mean (sd)" the way the paper's Table 3 quotes statistics.
std::string format_mean_sd(double mean, double sd, int precision = 2);

}  // namespace ahg
