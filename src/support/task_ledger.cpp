#include "support/task_ledger.hpp"

#include <algorithm>
#include <istream>
#include <ostream>

#include "support/checked.hpp"
#include "support/contract.hpp"
#include "support/jsonl.hpp"

namespace ahg::obs {

const char* to_string(TaskState state) noexcept {
  switch (state) {
    case TaskState::None: return "none";
    case TaskState::Released: return "released";
    case TaskState::FrontierReady: return "frontier_ready";
    case TaskState::Pooled: return "pooled";
    case TaskState::Admitted: return "admitted";
    case TaskState::InputTransfer: return "input_transfer";
    case TaskState::Executing: return "executing";
    case TaskState::OutputTransfer: return "output_transfer";
    case TaskState::Completed: return "completed";
    case TaskState::Orphaned: return "orphaned";
    case TaskState::Invalidated: return "invalidated";
    case TaskState::Degraded: return "degraded";
    case TaskState::Remapped: return "remapped";
  }
  return "?";
}

TaskLedger::TaskLedger(std::size_t num_tasks, Options options)
    : options_(options), num_tasks_(num_tasks) {
  AHG_EXPECTS_MSG(options_.max_transitions >= 1,
                  "ledger needs at least one transition slot per task");
  records_.resize(num_tasks);
  for (std::size_t t = 0; t < num_tasks; ++t) {
    records_[t].task = static_cast<TaskId>(t);
    // The history cap is charged by memory_bound_bytes() either way; paying
    // it here keeps push() allocation-free on the recording path.
    records_[t].history.reserve(options_.max_transitions);
  }
  pooled_ = std::make_unique<std::atomic<std::uint8_t>[]>(num_tasks);
  for (std::size_t t = 0; t < num_tasks; ++t) {
    pooled_[t].store(0, std::memory_order_relaxed);
  }
}

TaskRecord& TaskLedger::rec(TaskId task) {
  const auto i = static_cast<std::size_t>(task);
  AHG_EXPECTS_MSG(task >= 0 && i < records_.size(), "ledger task id out of range");
  return records_[i];
}

const TaskRecord& TaskLedger::rec(TaskId task) const {
  const auto i = static_cast<std::size_t>(task);
  AHG_EXPECTS_MSG(task >= 0 && i < records_.size(), "ledger task id out of range");
  return records_[i];
}

void TaskLedger::push(TaskRecord& record, TaskState state, Cycles clock,
                      MachineId machine, std::int8_t version) {
  record.state = state;
  ++transitions_recorded_;
  if (record.history.size() >= options_.max_transitions) {
    ++transitions_dropped_;
    return;
  }
  TaskTransition t;
  t.state = state;
  t.clock = clock;
  t.machine = machine;
  t.version = version;
  t.attempt = record.attempts;
  record.history.push_back(t);
}

void TaskLedger::on_released(TaskId task, Cycles clock) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TaskRecord& r = rec(task);
  if (r.released >= 0) return;
  r.released = clock;
  if (r.state == TaskState::None) {
    push(r, TaskState::Released, clock, kInvalidMachine, -1);
  }
}

void TaskLedger::on_frontier_ready(TaskId task, Cycles clock) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TaskRecord& r = rec(task);
  // First-seen per life: churn (orphaned/invalidated/degraded) re-opens the
  // task, so a recovery segment's frontier re-fires record a fresh entry;
  // a plain drive_slrh resume re-firing for an already-ready task does not.
  switch (r.state) {
    case TaskState::None:
    case TaskState::Released:
    case TaskState::Orphaned:
    case TaskState::Invalidated:
    case TaskState::Degraded:
      break;
    default:
      return;
  }
  if (r.frontier_ready < 0) r.frontier_ready = clock;
  push(r, TaskState::FrontierReady, clock, kInvalidMachine, -1);
}

void TaskLedger::on_pooled_slow(TaskId task, Cycles clock, MachineId machine) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TaskRecord& r = rec(task);
  if (pooled_[static_cast<std::size_t>(task)].load(std::memory_order_relaxed) != 0) {
    return;  // lost the race to another machine's sweep
  }
  pooled_[static_cast<std::size_t>(task)].store(1, std::memory_order_relaxed);
  if (r.first_pooled < 0) r.first_pooled = clock;
  push(r, TaskState::Pooled, clock, machine, -1);
}

void TaskLedger::on_placement(TaskPlacementSample sample) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TaskRecord& r = rec(sample.task);
  // Assigned tasks never re-enter a pool; saturating the flag keeps the
  // fast path fast without a per-pool re-check.
  pooled_[static_cast<std::size_t>(sample.task)].store(1, std::memory_order_relaxed);
  ++r.attempts;
  if (r.attempts > 1) {
    push(r, TaskState::Remapped, sample.decision_clock, sample.machine,
         sample.version);
  }
  r.machine = sample.machine;
  r.version = sample.version;
  r.admitted_clock = sample.decision_clock;
  r.arrival = sample.arrival;
  r.exec_start = sample.start;
  r.exec_finish = sample.finish;
  push(r, TaskState::Admitted, sample.decision_clock, sample.machine,
       sample.version);

  Cycles first_transfer = -1;
  for (const TaskInputEdge& edge : sample.inputs) {
    const bool timed = edge.finish > edge.start;
    if (timed && (first_transfer < 0 || edge.start < first_transfer)) {
      first_transfer = edge.start;
    }
    // The parent's side of a cross-machine edge: its output departs
    // from_machine at edge.start. Pure history on an already-completed
    // record — milestone fields AND the terminal `state` stay untouched
    // (the parent is still Completed, not demoted to OutputTransfer).
    if (timed && edge.parent != kInvalidTask) {
      TaskRecord& parent = rec(edge.parent);
      const TaskState parent_state = parent.state;
      push(parent, TaskState::OutputTransfer, edge.start, edge.from_machine, -1);
      if (parent_state == TaskState::Completed) parent.state = parent_state;
    }
  }
  if (first_transfer >= 0) {
    push(r, TaskState::InputTransfer, first_transfer, sample.machine,
         sample.version);
  }
  push(r, TaskState::Executing, sample.start, sample.machine, sample.version);
  push(r, TaskState::Completed, sample.finish, sample.machine, sample.version);
  r.inputs = std::move(sample.inputs);
}

void TaskLedger::on_orphaned(TaskId task, Cycles clock) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TaskRecord& r = rec(task);
  ++r.orphan_count;
  pooled_[static_cast<std::size_t>(task)].store(0, std::memory_order_relaxed);
  push(r, TaskState::Orphaned, clock, r.machine, r.version);
}

void TaskLedger::on_invalidated(TaskId task, Cycles clock) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TaskRecord& r = rec(task);
  ++r.invalidated_count;
  pooled_[static_cast<std::size_t>(task)].store(0, std::memory_order_relaxed);
  push(r, TaskState::Invalidated, clock, r.machine, r.version);
}

void TaskLedger::on_degraded(TaskId task, Cycles clock) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TaskRecord& r = rec(task);
  r.degraded = true;
  push(r, TaskState::Degraded, clock, r.machine, r.version);
}

std::vector<TaskRecord> TaskLedger::records() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

TaskRecord TaskLedger::record(TaskId task) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return rec(task);
}

std::uint64_t TaskLedger::transitions_recorded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return transitions_recorded_;
}

std::uint64_t TaskLedger::transitions_dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return transitions_dropped_;
}

std::size_t TaskLedger::memory_bound_bytes() const {
  return checked_mul(num_tasks_,
                     sizeof(TaskRecord) +
                         checked_mul(options_.max_transitions,
                                     sizeof(TaskTransition),
                                     "ledger transition history") +
                         sizeof(std::atomic<std::uint8_t>),
                     "ledger capacity");
}

std::vector<TaskSpan> TaskLedger::spans() const {
  std::vector<TaskRecord> snapshot = records();
  std::vector<TaskSpan> out;
  for (const TaskRecord& r : snapshot) {
    if (r.exec_start < 0) continue;
    // Ready→start wait: from the moment the task could have run (ready, or
    // release when the frontier milestone is missing) to its actual start.
    const Cycles ready = r.frontier_ready >= 0 ? r.frontier_ready : r.released;
    if (ready >= 0 && r.exec_start > ready) {
      TaskSpan wait;
      wait.task = r.task;
      wait.kind = "wait";
      wait.machine = r.machine;
      wait.version = r.version;
      wait.attempt = r.attempts;
      wait.start = ready;
      wait.finish = r.exec_start;
      out.push_back(std::move(wait));
    }
    for (const TaskInputEdge& edge : r.inputs) {
      if (edge.finish <= edge.start) continue;  // free same-machine handoff
      TaskSpan input;
      input.task = r.task;
      input.parent = edge.parent;
      input.kind = "input";
      input.machine = r.machine;
      input.version = r.version;
      input.attempt = r.attempts;
      input.start = edge.start;
      input.finish = edge.finish;
      out.push_back(std::move(input));
    }
    TaskSpan exec;
    exec.task = r.task;
    exec.kind = "exec";
    exec.machine = r.machine;
    exec.version = r.version;
    exec.attempt = r.attempts;
    exec.start = r.exec_start;
    exec.finish = r.exec_finish;
    out.push_back(std::move(exec));
  }
  return out;
}

void write_task_span_json(std::ostream& os, const TaskSpan& span) {
  JsonWriter json;
  json.begin_object();
  json.field("task", static_cast<std::int64_t>(span.task));
  json.field("kind", span.kind);
  if (span.parent != kInvalidTask) {
    json.field("parent", static_cast<std::int64_t>(span.parent));
  }
  json.field("machine", static_cast<std::int64_t>(span.machine));
  if (span.version >= 0) {
    json.field("version", span.version == 0 ? "primary" : "secondary");
  }
  json.field("attempt", static_cast<std::uint64_t>(span.attempt));
  json.field("start", static_cast<std::int64_t>(span.start));
  json.field("finish", static_cast<std::int64_t>(span.finish));
  json.end_object();
  os << json.str();
}

void TaskLedger::write_spans_jsonl(std::ostream& os) const {
  for (const TaskSpan& span : spans()) {
    write_task_span_json(os, span);
    os << '\n';
  }
}

std::vector<TaskSpan> read_task_spans_jsonl(std::istream& in) {
  std::vector<TaskSpan> out;
  for (const JsonValue& value : parse_jsonl(in)) {
    TaskSpan span;
    span.task = static_cast<TaskId>(value.get_int("task", kInvalidTask));
    span.kind = value.get_string("kind", "");
    span.parent = static_cast<TaskId>(value.get_int("parent", kInvalidTask));
    span.machine = static_cast<MachineId>(value.get_int("machine", kInvalidMachine));
    const std::string version = value.get_string("version", "");
    span.version = version == "primary" ? std::int8_t{0}
                   : version == "secondary" ? std::int8_t{1}
                                            : std::int8_t{-1};
    span.attempt = static_cast<std::uint32_t>(value.get_int("attempt", 0));
    span.start = value.get_int("start", 0);
    span.finish = value.get_int("finish", 0);
    out.push_back(std::move(span));
  }
  return out;
}

}  // namespace ahg::obs
