#pragma once
// Task-major lifecycle ledger for the observability layer (ahg::obs): one
// bounded record per subtask capturing its state transitions —
//   released → frontier-ready → pooled → admitted(primary|secondary) →
//   input-transfer → executing → output-transfer → completed
//   | orphaned | invalidated | degraded | remapped
// — with machine id, version, clock, and the parent→child causal edges the
// critical-path analyzer (core/critical_path.hpp) walks.
//
// The null-ledger contract mirrors obs::FlightRecorder: a driver holding a
// null TaskLedger* pays one predictable branch per instrumentation point —
// no lock, no allocation, bit-identical schedules (asserted by
// tests/test_determinism.cpp Determinism.*LedgerOnMatchesLedgerOff). With a
// ledger attached the drivers only OBSERVE; nothing feeds back.
//
// Memory bound: exactly num_tasks records allocated up front, each with a
// per-task transition history capped at Options::max_transitions (overflow
// counted by transitions_dropped(), never reallocated past the cap) plus the
// task's input-edge list (bounded by its in-degree). See
// memory_bound_bytes().
//
// Overhead budget (bench_micro_kernels pins ≤1.05x at |T|=1024 via
// bench.ledger_overhead_ratio): the hot on_pooled() call — fired for every
// pool candidate on every machine sweep — takes a relaxed atomic pre-check
// and skips the mutex entirely after a task's first sighting; everything
// else fires at most a handful of times per task per life.
//
// This header lives in ahg_support and must not depend on sim/ or core/:
// records carry plain scalars; the drivers assemble TaskPlacementSample from
// their PlacementPlan equivalents (the same layering rule obs::Frame
// follows).

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/units.hpp"
#include "support/version.hpp"

namespace ahg::obs {

/// Lifecycle states in paper order. A task's `state` field holds the LATEST
/// state; the per-task history lists every transition in recording order.
enum class TaskState : std::uint8_t {
  None = 0,        ///< never observed
  Released,       ///< arrival time reached (scenario release)
  FrontierReady,  ///< released, unassigned, all parents assigned
  Pooled,         ///< entered some machine's candidate pool
  Admitted,       ///< placement committed (machine/version chosen)
  InputTransfer,  ///< first incoming cross-machine transfer departs
  Executing,      ///< execution window starts
  OutputTransfer, ///< an outgoing transfer to a child departs
  Completed,      ///< execution window ends
  Orphaned,       ///< unfinished work lost to a machine departure
  Invalidated,    ///< completed/queued work lost to the churn cascade
  Degraded,       ///< pinned to the secondary version by churn recovery
  Remapped,       ///< re-admitted after an orphan/invalidation
};

const char* to_string(TaskState state) noexcept;

/// One recorded transition. `version` is kInvalidVersion when the state is
/// version-free (released/ready/orphaned/...).
struct TaskTransition {
  TaskState state = TaskState::None;
  Cycles clock = -1;                    ///< SLRH: sim clock; Max-Max: round
  MachineId machine = kInvalidMachine;
  std::int8_t version = -1;             ///< 0 primary, 1 secondary, -1 n/a
  std::uint32_t attempt = 0;            ///< admission count when recorded
};

/// One causal input edge of a placed task: parent produced the data on
/// `from_machine`, and it lands on the task's machine over [start, finish)
/// (start == finish for free same-machine handoffs at the parent's finish).
struct TaskInputEdge {
  TaskId parent = kInvalidTask;
  MachineId from_machine = kInvalidMachine;
  Cycles start = 0;
  Cycles finish = 0;
};

/// Everything a driver knows at commit time, in plain scalars (the support
/// layer cannot see core::PlacementPlan).
struct TaskPlacementSample {
  TaskId task = kInvalidTask;
  MachineId machine = kInvalidMachine;
  std::int8_t version = 0;        ///< 0 primary, 1 secondary
  Cycles decision_clock = -1;     ///< clock/round the commit happened at
  Cycles arrival = 0;             ///< when the last input lands
  Cycles start = 0;               ///< execution window [start, finish)
  Cycles finish = 0;
  std::vector<TaskInputEdge> inputs;
};

/// Full per-task record: first-seen milestones, the (last) committed
/// placement, churn tallies, causal inputs, and the bounded history.
struct TaskRecord {
  TaskId task = kInvalidTask;
  TaskState state = TaskState::None;

  Cycles released = -1;        ///< scenario release time (first on_released)
  Cycles frontier_ready = -1;  ///< first time all parents were assigned
  Cycles first_pooled = -1;    ///< first candidate-pool entry
  Cycles admitted_clock = -1;  ///< decision clock of the LAST commit

  MachineId machine = kInvalidMachine;  ///< last committed placement
  std::int8_t version = -1;             ///< 0 primary, 1 secondary, -1 none
  Cycles arrival = -1;
  Cycles exec_start = -1;
  Cycles exec_finish = -1;

  std::uint32_t attempts = 0;      ///< commits (>1 means remapped)
  std::uint32_t orphan_count = 0;
  std::uint32_t invalidated_count = 0;
  bool degraded = false;

  std::vector<TaskInputEdge> inputs;      ///< last placement's causal edges
  std::vector<TaskTransition> history;    ///< bounded, in recording order
};

/// One derived task-major span for the `.spans.jsonl` export: the execution
/// window ("exec"), each timed input transfer ("input", parent set), and the
/// ready→start wait ("wait"). Times are integer simulation cycles.
struct TaskSpan {
  TaskId task = kInvalidTask;
  TaskId parent = kInvalidTask;  ///< input spans only
  std::string kind;              ///< "exec" | "input" | "wait"
  MachineId machine = kInvalidMachine;
  std::int8_t version = -1;
  std::uint32_t attempt = 0;
  Cycles start = 0;
  Cycles finish = 0;
};

/// Bounded-memory, thread-safe per-subtask lifecycle recorder. All on_*
/// recorders are thread-safe; the snapshot accessors copy under the lock.
class TaskLedger {
 public:
  struct Options {
    /// Per-task transition-history cap. A churn-free life needs at most 8
    /// entries (released..completed); the default leaves headroom for two
    /// full orphan→remap cycles. Overflow drops the NEWEST transition (the
    /// milestone fields still update) and counts it in transitions_dropped().
    std::size_t max_transitions = 16;
  };

  explicit TaskLedger(std::size_t num_tasks) : TaskLedger(num_tasks, Options{}) {}
  TaskLedger(std::size_t num_tasks, Options options);

  const Options& options() const noexcept { return options_; }
  std::size_t num_tasks() const noexcept { return num_tasks_; }

  // --- recorders (drivers call these; first-seen milestones only) -----------

  /// Task's release time reached. `clock` is the RELEASE time, not the
  /// observation time; recorded once.
  void on_released(TaskId task, Cycles clock);

  /// All parents assigned. Recorded once per life — re-recorded only after
  /// an orphan/invalidation re-opened the task.
  void on_frontier_ready(TaskId task, Cycles clock);

  /// Entered `machine`'s candidate pool. Hot path: after the first sighting
  /// this is a single relaxed atomic load. Re-armed by orphan/invalidation.
  void on_pooled(TaskId task, Cycles clock, MachineId machine) {
    if (pooled_[static_cast<std::size_t>(task)].load(std::memory_order_relaxed) != 0) {
      return;
    }
    on_pooled_slow(task, clock, machine);
  }

  /// Placement committed. Pushes admitted / input-transfer / executing /
  /// completed transitions for the task (and a remapped transition when this
  /// is a re-admission), plus an output-transfer transition onto each parent
  /// that feeds it across machines.
  void on_placement(TaskPlacementSample sample);

  void on_orphaned(TaskId task, Cycles clock);     ///< unfinished work lost
  void on_invalidated(TaskId task, Cycles clock);  ///< cascade loss
  void on_degraded(TaskId task, Cycles clock);     ///< pinned to secondary

  // --- snapshots ------------------------------------------------------------

  std::vector<TaskRecord> records() const;  ///< indexed by TaskId
  TaskRecord record(TaskId task) const;

  std::uint64_t transitions_recorded() const;
  std::uint64_t transitions_dropped() const;

  /// Documented worst-case heap footprint of the record table (input-edge
  /// lists are additionally bounded by the DAG's total in-degree).
  std::size_t memory_bound_bytes() const;  ///< throws on size overflow

  /// Derived task-major spans (exec / input / wait), ordered by task id.
  std::vector<TaskSpan> spans() const;

  /// One span per line in JsonWriter form — the `.spans.jsonl` format
  /// consumed by examples/run_report.
  void write_spans_jsonl(std::ostream& os) const;

 private:
  void on_pooled_slow(TaskId task, Cycles clock, MachineId machine);
  TaskRecord& rec(TaskId task);
  const TaskRecord& rec(TaskId task) const;
  void push(TaskRecord& record, TaskState state, Cycles clock, MachineId machine,
            std::int8_t version);

  Options options_;
  std::size_t num_tasks_ = 0;

  mutable std::mutex mutex_;
  std::vector<TaskRecord> records_;
  /// Pool-membership sighting flags: the on_pooled fast path. Cleared (under
  /// the lock) when churn re-opens a task.
  std::unique_ptr<std::atomic<std::uint8_t>[]> pooled_;
  std::uint64_t transitions_recorded_ = 0;
  std::uint64_t transitions_dropped_ = 0;
};

/// Serialize one span as a single JSON object (no trailing newline).
void write_task_span_json(std::ostream& os, const TaskSpan& span);

/// Parse a whole `.spans.jsonl` stream, as written by write_spans_jsonl.
std::vector<TaskSpan> read_task_spans_jsonl(std::istream& in);

}  // namespace ahg::obs
