#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

#include "support/runtime_profiler.hpp"

namespace ahg {

namespace {

/// Worker identity of the current thread: which pool (if any) it belongs to
/// and its index there. A thread is a worker of at most one pool.
struct WorkerIdentity {
  const ThreadPool* pool = nullptr;
  std::size_t index = 0;
};
thread_local WorkerIdentity tls_identity;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(shutdown_mutex_);
    if (joined_) return;
    joined_ = true;
  }
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard lock(sleep_mutex_);
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::set_profiler(obs::RuntimeProfiler* profiler) noexcept {
  obs::RuntimeProfiler* prev =
      profiler_.exchange(profiler, std::memory_order_seq_cst);
  if (prev == nullptr || prev == profiler) return;
  // Quiesce before returning: a worker that loaded `prev` just before the
  // exchange holds a pin until its call into it returns, so once the count
  // reads zero no thread can touch the old profiler again and the caller is
  // free to destroy it. Sequential consistency makes the pin visible: a
  // pinned use increments BEFORE its load of profiler_, so any use that saw
  // `prev` is counted here.
  while (profiler_users_.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
}

obs::RuntimeProfiler* ThreadPool::acquire_profiler() noexcept {
  // Cheap null path first — the detached pool pays one relaxed load.
  if (profiler_.load(std::memory_order_relaxed) == nullptr) return nullptr;
  profiler_users_.fetch_add(1, std::memory_order_seq_cst);
  obs::RuntimeProfiler* prof = profiler_.load(std::memory_order_seq_cst);
  if (prof == nullptr) {
    // Lost the race with a detach: drop the pin, report nothing attached.
    profiler_users_.fetch_sub(1, std::memory_order_seq_cst);
  }
  return prof;
}

void ThreadPool::release_profiler() noexcept {
  profiler_users_.fetch_sub(1, std::memory_order_seq_cst);
}

bool ThreadPool::on_worker_thread() const noexcept {
  return tls_identity.pool == this;
}

std::size_t ThreadPool::self_index() const noexcept {
  return tls_identity.pool == this ? tls_identity.index : npos;
}

std::size_t ThreadPool::approx_queued() const {
  return pending_.load(std::memory_order_relaxed);
}

void ThreadPool::push_task(Task task) {
  AHG_EXPECTS_MSG(!stopping_.load(std::memory_order_acquire),
                  "submit on a stopped ThreadPool");
  // Increment BEFORE enqueueing so pending_ never undercounts (a popper
  // decrements only after actually taking a task); a waker that sees the
  // count early simply retries until the enqueue lands.
  pending_.fetch_add(1, std::memory_order_release);
  const std::size_t self = self_index();
  WorkerQueue& queue = self != npos ? *queues_[self] : external_;
  {
    std::lock_guard lock(queue.mutex);
    queue.tasks.push_back(std::move(task));
  }
  {
    std::lock_guard lock(sleep_mutex_);
  }
  cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, Task& out, bool& stolen) {
  // Workers: own back (LIFO — the deepest nested work, cache-warm), then
  // steal siblings' fronts (FIFO — the oldest fan-out, typically a nested
  // sweep's chunks), then the external queue. Non-worker helpers start at
  // the external queue (their own submissions) and then steal.
  stolen = false;
  if (self != npos) {
    WorkerQueue& own = *queues_[self];
    std::lock_guard lock(own.mutex);
    if (!own.tasks.empty()) {
      out = std::move(own.tasks.back());
      own.tasks.pop_back();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  } else {
    std::lock_guard lock(external_.mutex);
    if (!external_.tasks.empty()) {
      out = std::move(external_.tasks.front());
      external_.tasks.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  const std::size_t n = queues_.size();
  for (std::size_t offset = 1; offset <= n; ++offset) {
    const std::size_t victim = self != npos ? (self + offset) % n : offset - 1;
    if (victim == self) continue;
    WorkerQueue& queue = *queues_[victim];
    std::lock_guard lock(queue.mutex);
    if (!queue.tasks.empty()) {
      out = std::move(queue.tasks.front());
      queue.tasks.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      stolen = true;
      return true;
    }
  }
  if (self != npos) {
    std::lock_guard lock(external_.mutex);
    if (!external_.tasks.empty()) {
      out = std::move(external_.tasks.front());
      external_.tasks.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  if (obs::RuntimeProfiler* prof = acquire_profiler()) {
    // Came up empty after probing every victim queue: a failed steal.
    prof->on_steal_attempt(self);
    release_profiler();
  }
  return false;
}

bool ThreadPool::try_run_one(std::size_t self) {
  Task task;
  bool stolen = false;
  if (!try_pop(self, task, stolen)) return false;
  obs::RuntimeProfiler* prof = acquire_profiler();
  if (prof != nullptr) {
    // Pinned across the task so the end stamp lands in the same profiler:
    // a detach issued mid-task blocks until the slice is recorded.
    const double start = prof->now_seconds();
    task();
    prof->on_task(self, start, prof->now_seconds(), stolen);
    release_profiler();
  } else {
    task();
  }
  return true;
}

void ThreadPool::worker_loop(std::size_t index) {
  tls_identity = WorkerIdentity{this, index};
  for (;;) {
    if (try_run_one(index)) continue;
    // Work appeared between the failed pop and here (or we lost a claiming
    // race): retry the pop directly instead of taking the sleep lock — and,
    // when a profiler is attached, instead of stamping a zero-length idle.
    if (pending_.load(std::memory_order_acquire) > 0) continue;
    // Stamp the park start under a pin, then DROP the pin for the wait —
    // holding it would make a concurrent detach spin for the whole park.
    obs::RuntimeProfiler* prof = acquire_profiler();
    double park_start = 0.0;
    if (prof != nullptr) {
      park_start = prof->now_seconds();
      release_profiler();
    }
    {
      std::unique_lock lock(sleep_mutex_);
      cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) ||
               pending_.load(std::memory_order_acquire) > 0;
      });
    }
    // Re-pin after the park: the profiler may have been detached (and
    // destroyed) while we slept — record the interval only if the SAME one
    // is still attached, dereferencing only the freshly pinned pointer.
    if (prof != nullptr) {
      if (obs::RuntimeProfiler* cur = acquire_profiler()) {
        if (cur == prof) cur->on_idle(index, park_start, cur->now_seconds());
        release_profiler();
      }
    }
    if (stopping_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  // Chunk to limit queue churn: at most 4 chunks per worker.
  const std::size_t chunks = std::min(n, std::max<std::size_t>(1, size() * 4));
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  const std::size_t actual_chunks = (n + chunk_size - 1) / chunk_size;

  // Shared by the caller and every chunk task; shared_ptr because the last
  // finishing chunk touches the group (decrement + notify) possibly after
  // the caller has already observed completion and returned.
  struct Group {
    std::atomic<std::size_t> remaining;
    /// Lowest iteration index that has thrown so far; iterations above it
    /// are skipped, iterations below it still run (so the final winner is
    /// the lowest throwing index — deterministic, matching serial order).
    std::atomic<std::size_t> first_fail{npos};
    std::mutex error_mutex;
    std::size_t error_index = npos;
    std::exception_ptr error;
    std::mutex done_mutex;
    std::condition_variable done_cv;
  };
  auto group = std::make_shared<Group>();
  group->remaining.store(actual_chunks, std::memory_order_relaxed);

  for (std::size_t c = 0; c < actual_chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    push_task([&fn, group, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) {
        if (i > group->first_fail.load(std::memory_order_relaxed)) break;
        try {
          fn(i);
        } catch (...) {
          std::size_t cur = group->first_fail.load(std::memory_order_relaxed);
          while (i < cur &&
                 !group->first_fail.compare_exchange_weak(cur, i)) {
          }
          std::lock_guard lock(group->error_mutex);
          if (i < group->error_index) {
            group->error_index = i;
            group->error = std::current_exception();
          }
          break;  // everything after i in this chunk has a higher index
        }
      }
      if (group->remaining.fetch_sub(1) == 1) {
        std::lock_guard lock(group->done_mutex);
        group->done_cv.notify_all();
      }
    });
  }

  // Help while waiting: run our own chunks first (they sit at the back of
  // our deque when we are a worker), then any other queued work, so a
  // nested parallel_for never parks a thread the pool needs. The timed
  // re-check covers the window where our chunks run on other workers while
  // new helpable tasks appear elsewhere.
  const std::size_t self = self_index();
  // Pinned for the whole fan-out (released after the region closes below):
  // a detach issued mid-fan-out spins until the group completes, which is
  // finite — the chunks drain regardless of the detaching thread.
  obs::RuntimeProfiler* prof = acquire_profiler();
  // Instrumented call sites open a named region around their fan-out; when
  // none is open (a bare parallel_for, e.g. the tuner's sweep), mark the
  // region boundary generically so the trace still shows the fan-out window.
  std::uint32_t region_token = 0;
  if (prof != nullptr && prof->current_region() == 0) {
    region_token = prof->region_begin("parallel_for");
  }
  while (group->remaining.load(std::memory_order_acquire) > 0) {
    if (try_run_one(self)) continue;
    // The last chunk finished on another worker between the loop check and
    // the failed pop: exit without timing a zero-length wait.
    if (group->remaining.load(std::memory_order_acquire) == 0) break;
    const double wait_start = prof != nullptr ? prof->now_seconds() : 0.0;
    {
      std::unique_lock lock(group->done_mutex);
      group->done_cv.wait_for(lock, std::chrono::microseconds(200), [&] {
        return group->remaining.load(std::memory_order_acquire) == 0;
      });
    }
    if (prof != nullptr) {
      prof->on_idle(self, wait_start, prof->now_seconds());
    }
  }
  if (region_token != 0) prof->region_end(region_token);
  if (prof != nullptr) release_profiler();
  if (group->error) std::rethrow_exception(group->error);
}

namespace {
std::atomic<std::size_t> global_pool_config{0};
std::atomic<bool> global_pool_built{false};
}  // namespace

void configure_global_pool(std::size_t threads) {
  AHG_EXPECTS_MSG(!global_pool_built.load(std::memory_order_acquire),
                  "configure_global_pool after the global pool was built");
  global_pool_config.store(threads, std::memory_order_release);
}

std::size_t global_pool_jobs() {
  const std::size_t configured = global_pool_config.load(std::memory_order_acquire);
  if (configured != 0) return configured;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool& global_pool() {
  static ThreadPool pool(global_pool_jobs());
  global_pool_built.store(true, std::memory_order_release);
  return pool;
}

}  // namespace ahg
