#pragma once
// Fixed-size thread pool with a parallel_for helper.
//
// The weight tuner and the figure benches sweep many independent
// (scenario, alpha, beta) combinations; this pool lets those sweeps scale
// with available cores while keeping results deterministic (work items are
// indexed, outputs are written to pre-sized slots, no ordering dependence).

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "support/contract.hpp"

namespace ahg {

class ThreadPool {
 public:
  /// threads == 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F&>> {
    using R = std::invoke_result_t<F&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      AHG_EXPECTS_MSG(!stopping_, "submit on a stopped ThreadPool");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [begin, end). Blocks until all iterations finish.
  /// Exceptions from iterations are rethrown (first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Convenience: a process-wide pool sized to the hardware. Constructed on
/// first use; suitable for benches and the tuner.
ThreadPool& global_pool();

}  // namespace ahg
