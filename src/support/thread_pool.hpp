#pragma once
// Nesting-safe work-stealing thread pool with a help-while-waiting
// parallel_for.
//
// The evaluation campaign runs the tuner's weight sweep INSIDE a
// parallelized (grid case x heuristic) matrix cell, so the pool must
// tolerate parallel_for calls issued from its own worker threads without
// deadlock or oversubscription. Two mechanisms provide that:
//
//  - per-worker deques with work stealing: a worker pushes tasks it spawns
//    onto its own deque (back, LIFO — cache-warm depth-first descent) and,
//    when empty, steals from other workers' fronts (FIFO — oldest work
//    first, which is where a nested sweep's siblings live) or drains the
//    external submission queue;
//  - help-while-waiting: parallel_for never parks its caller while child
//    iterations are pending — the caller executes its own chunks and then
//    keeps pulling queued tasks (its own, stolen, or external) until the
//    group completes, so every blocked "waiter" is itself a worker.
//
// Determinism: work items are indexed and outputs go to caller-pre-sized
// slots, so scheduling order never affects results. Exceptions are
// deterministic too: the surviving exception is the one thrown by the
// LOWEST iteration index (iterations above the lowest failure are skipped,
// iterations below it still run — exactly the serial-semantics winner).

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "support/contract.hpp"

namespace ahg {

namespace obs {
class RuntimeProfiler;
}  // namespace obs

class ThreadPool {
 public:
  /// threads == 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Drain and join all workers. Idempotent; called by the destructor.
  /// Tasks already queued still run to completion; submit() afterwards is a
  /// contract violation.
  void shutdown();

  /// True when the calling thread is one of THIS pool's workers (used to
  /// route spawned tasks onto the worker's own deque).
  bool on_worker_thread() const noexcept;

  /// Tasks currently queued (all deques + external queue). Approximate —
  /// other threads keep mutating the queues — but good enough for the
  /// utilization gauge.
  std::size_t approx_queued() const;

  /// Attach a wall-clock runtime profiler (not owned; nullptr detaches —
  /// the default). Null costs one relaxed load and branch per pop/park and
  /// changes no schedule (the usual observability contract, asserted by
  /// tests/test_determinism.cpp). Attached, every executed task becomes a
  /// timed run slice with steal provenance, parks and parallel_for waits
  /// become idle intervals, and empty-handed steal probes are counted.
  /// Replacing a non-null profiler QUIESCES: the call returns only once no
  /// worker is still inside a call into the old profiler, so the caller may
  /// destroy it immediately afterwards. (Workers pin the handle around each
  /// use; an idle worker that loaded it just before the swap can otherwise
  /// be preempted and dereference a destroyed profiler minutes later.)
  /// Never call from inside a pool task — the quiesce spin would wait on
  /// the calling task's own pin.
  void set_profiler(obs::RuntimeProfiler* profiler) noexcept;
  obs::RuntimeProfiler* profiler() const noexcept {
    return profiler_.load(std::memory_order_acquire);
  }

  /// Enqueue a task; returns a future for its result. Note that waiting on
  /// the future from inside a pool task can idle a worker — prefer
  /// parallel_for (which helps while waiting) for fork/join shapes.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F&>> {
    using R = std::invoke_result_t<F&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    push_task([task] { (*task)(); });
    return fut;
  }

  /// Run fn(i) for i in [begin, end). Returns when all iterations finished;
  /// the caller participates (runs chunks, then steals other queued work),
  /// so nested calls from worker threads complete without deadlock. If
  /// iterations throw, the exception from the lowest throwing index is
  /// rethrown and iterations with higher indices are skipped (lower ones
  /// still run, so the winner is deterministic).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

 private:
  using Task = std::function<void()>;

  /// One worker's deque. A plain mutex per deque (not a lock-free Chase-Lev
  /// deque): tasks here are coarse — whole matrix cells or tuner-sweep
  /// chunks — so queue traffic is far off the critical path and the simple
  /// structure is trivially ThreadSanitizer-clean.
  struct WorkerQueue {
    mutable std::mutex mutex;
    std::deque<Task> tasks;
  };

  void worker_loop(std::size_t index);
  void push_task(Task task);
  /// Pop one task (own back, external front, steal others' fronts) and run
  /// it. `self` is the calling worker's index, or npos for non-workers.
  bool try_run_one(std::size_t self);
  /// `stolen` reports provenance: true when the task came off ANOTHER
  /// worker's deque (telemetry only — external-queue pops are submissions,
  /// not steals).
  bool try_pop(std::size_t self, Task& out, bool& stolen);

  /// Pin the attached profiler for use on this thread: returns nullptr (no
  /// pin taken) when none is attached, else a pointer that stays valid until
  /// the matching release_profiler(). set_profiler spins on the pin count,
  /// which is what makes destroy-after-detach safe. The null path is a
  /// single relaxed load + branch.
  obs::RuntimeProfiler* acquire_profiler() noexcept;
  void release_profiler() noexcept;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  /// This thread's worker index in this pool, or npos.
  std::size_t self_index() const noexcept;

  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;  // one per worker
  WorkerQueue external_;                              // non-worker submissions

  /// Sleep/wake coordination: pending_ counts queued (not yet started)
  /// tasks; workers park on cv_ when it is zero.
  std::atomic<std::size_t> pending_{0};
  mutable std::mutex sleep_mutex_;
  std::condition_variable cv_;
  std::atomic<bool> stopping_{false};
  bool joined_ = false;
  std::mutex shutdown_mutex_;

  /// Nullable observability handle (see set_profiler) plus the count of
  /// threads currently inside a call into it (the detach-quiesce pin).
  std::atomic<obs::RuntimeProfiler*> profiler_{nullptr};
  std::atomic<std::size_t> profiler_users_{0};
};

/// Set the worker count the process-wide pool is built with. Must be called
/// before the first global_pool() use (contract-checked); 0 restores the
/// hardware default. Benches plumb --jobs / AHG_JOBS through this.
void configure_global_pool(std::size_t threads);

/// The worker count global_pool() has (or will be built with): the
/// configured override when set, hardware_concurrency otherwise. Does not
/// construct the pool.
std::size_t global_pool_jobs();

/// Convenience: a process-wide pool sized by configure_global_pool (default:
/// the hardware). Constructed on first use; suitable for benches, the
/// tuner, and the evaluation-matrix fan-out.
ThreadPool& global_pool();

}  // namespace ahg
