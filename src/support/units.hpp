#pragma once
// Time and identifier units shared across the simulator and heuristics.
//
// The paper's simulation is clock-driven with one clock cycle = 0.1 s; all
// scheduling arithmetic in this library is done in integer cycles so the
// discrete-event core is exact (no floating-point drift in start/finish
// times). Energy is a double in abstract "energy units" (Table 2).

#include <cstdint>

namespace ahg {

/// Discrete simulation time, in clock cycles.
using Cycles = std::int64_t;

/// Clock cycles per simulated second (paper: one cycle = 0.1 s).
inline constexpr Cycles kCyclesPerSecond = 10;

/// Convert seconds to cycles, rounding up so durations never shrink: a task
/// that needs 1.01 s occupies 11 cycles, not 10. Ceil keeps every feasibility
/// check conservative.
constexpr Cycles cycles_from_seconds(double seconds) noexcept {
  const double scaled = seconds * static_cast<double>(kCyclesPerSecond);
  const auto floor_cycles = static_cast<Cycles>(scaled);
  return (static_cast<double>(floor_cycles) < scaled) ? floor_cycles + 1 : floor_cycles;
}

constexpr double seconds_from_cycles(Cycles cycles) noexcept {
  return static_cast<double>(cycles) / static_cast<double>(kCyclesPerSecond);
}

/// Index of a subtask within the application DAG.
using TaskId = std::int32_t;

/// Index of a machine within the grid.
using MachineId = std::int32_t;

inline constexpr TaskId kInvalidTask = -1;
inline constexpr MachineId kInvalidMachine = -1;

}  // namespace ahg
