#pragma once
// Two kinds of "version" live here.
//
// 1. VersionKind — the subtask version tag (paper §III): each subtask has a
//    full-capability "primary" version and a reduced "secondary" version.
//    Shared by the simulator (schedule records) and the workload model
//    (scaling rules live in workload::VersionModel).
//
// 2. Build/tooling identity — what `--version` prints from every bench
//    binary and slrh_cli, what BENCH_*.json meta blocks embed, and the
//    schema constants that key the content-addressed bench result cache
//    (.bench_cache/). Bump kBenchCacheSchema whenever a change alters what
//    any cached cell would contain (heuristic behaviour, tuner semantics,
//    scenario generation) so stale entries can never be served.

#include <cstdint>
#include <string>
#include <thread>

namespace ahg {

enum class VersionKind : std::uint8_t { Primary, Secondary };

inline std::string to_string(VersionKind kind) {
  return kind == VersionKind::Primary ? "primary" : "secondary";
}

// --- build identity ----------------------------------------------------------

inline constexpr const char* kProjectName = "adhoc-grid-slrh";
inline constexpr const char* kProjectVersion = "0.4.0";

/// Layout version of the BENCH_*.json dumps (the meta block counts from 2;
/// version 1 was the pre-meta {"bench","metrics"} shape).
inline constexpr int kBenchSchemaVersion = 2;

/// Content-address schema of the bench result cache. Part of every cache
/// key: bumping it invalidates the whole cache. MUST be bumped when solver
/// or generator behaviour changes in any way that affects cell results.
inline constexpr int kBenchCacheSchema = 1;

/// CMake's CMAKE_BUILD_TYPE, threaded through as a compile definition;
/// falls back to what NDEBUG implies when built outside CMake.
inline std::string build_type() {
#ifdef AHG_BUILD_TYPE
  return AHG_BUILD_TYPE;
#elif defined(NDEBUG)
  return "Release";
#else
  return "Debug";
#endif
}

/// One-line identity for --version output: name, version, build type, and
/// the hardware concurrency the process sees.
inline std::string build_description() {
  return std::string(kProjectName) + " " + kProjectVersion + " (" + build_type() +
         ", " + std::to_string(std::thread::hardware_concurrency()) +
         " hardware threads)";
}

}  // namespace ahg
