#pragma once
// Subtask version tag (paper §III): each subtask has a full-capability
// "primary" version and a reduced "secondary" version. The tag itself is
// shared by the simulator (schedule records) and the workload model (version
// scaling rules live in workload::VersionModel).

#include <cstdint>
#include <string>

namespace ahg {

enum class VersionKind : std::uint8_t { Primary, Secondary };

inline std::string to_string(VersionKind kind) {
  return kind == VersionKind::Primary ? "primary" : "secondary";
}

}  // namespace ahg
