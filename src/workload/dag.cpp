#include "workload/dag.hpp"

#include <algorithm>
#include <queue>

#include "support/contract.hpp"

namespace ahg::workload {

Dag::Dag(std::size_t num_nodes)
    : num_nodes_(num_nodes), parents_(num_nodes), children_(num_nodes) {
  AHG_EXPECTS_MSG(num_nodes > 0, "DAG needs at least one node");
}

Dag::Dag(std::size_t num_nodes, std::span<const DagEdge> edges)
    : num_nodes_(num_nodes), num_edges_(edges.size()), bulk_(true) {
  AHG_EXPECTS_MSG(num_nodes > 0, "DAG needs at least one node");
  for (const DagEdge& e : edges) {
    check_node(e.parent);
    check_node(e.child);
    AHG_EXPECTS_MSG(e.parent != e.child, "self-loop");
  }
  // Counting-sort the stream into CSR arenas: degree pass, exclusive scan,
  // then a stable fill — each bucket keeps its edges in stream order, which
  // is exactly the adjacency order an incremental build would produce.
  parent_off_.assign(num_nodes_ + 1, 0);
  child_off_.assign(num_nodes_ + 1, 0);
  for (const DagEdge& e : edges) {
    ++parent_off_[static_cast<std::size_t>(e.child) + 1];
    ++child_off_[static_cast<std::size_t>(e.parent) + 1];
  }
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    parent_off_[i + 1] += parent_off_[i];
    child_off_[i + 1] += child_off_[i];
  }
  parent_arena_.resize(num_edges_);
  child_arena_.resize(num_edges_);
  std::vector<std::size_t> parent_cur(parent_off_.begin(),
                                      parent_off_.end() - 1);
  std::vector<std::size_t> child_cur(child_off_.begin(), child_off_.end() - 1);
  for (const DagEdge& e : edges) {
    parent_arena_[parent_cur[static_cast<std::size_t>(e.child)]++] = e.parent;
    child_arena_[child_cur[static_cast<std::size_t>(e.parent)]++] = e.child;
  }
  // Duplicate check over the parent lists (fan-in is small; the child lists
  // mirror the same edge set, so checking one side covers both).
  for (std::size_t node = 0; node < num_nodes_; ++node) {
    const auto list = parents(static_cast<TaskId>(node));
    for (std::size_t i = 0; i < list.size(); ++i) {
      for (std::size_t j = i + 1; j < list.size(); ++j) {
        AHG_EXPECTS_MSG(list[i] != list[j], "duplicate edge");
      }
    }
  }
}

void Dag::check_node(TaskId node) const {
  AHG_EXPECTS_MSG(node >= 0 && static_cast<std::size_t>(node) < num_nodes(),
                  "node id out of range");
}

void Dag::add_edge(TaskId parent, TaskId child) {
  AHG_EXPECTS_MSG(!bulk_, "add_edge on a bulk-built DAG");
  check_node(parent);
  check_node(child);
  AHG_EXPECTS_MSG(parent != child, "self-loop");
  AHG_EXPECTS_MSG(!has_edge(parent, child), "duplicate edge");
  parents_[static_cast<std::size_t>(child)].push_back(parent);
  children_[static_cast<std::size_t>(parent)].push_back(child);
  ++num_edges_;
}

bool Dag::has_edge(TaskId parent, TaskId child) const {
  check_node(parent);
  check_node(child);
  const auto kids = children(parent);
  return std::find(kids.begin(), kids.end(), child) != kids.end();
}

std::span<const TaskId> Dag::parents(TaskId node) const {
  check_node(node);
  const auto i = static_cast<std::size_t>(node);
  if (bulk_) {
    return {parent_arena_.data() + parent_off_[i],
            parent_off_[i + 1] - parent_off_[i]};
  }
  return parents_[i];
}

std::span<const TaskId> Dag::children(TaskId node) const {
  check_node(node);
  const auto i = static_cast<std::size_t>(node);
  if (bulk_) {
    return {child_arena_.data() + child_off_[i],
            child_off_[i + 1] - child_off_[i]};
  }
  return children_[i];
}

std::vector<TaskId> Dag::roots() const {
  std::vector<TaskId> out;
  for (std::size_t i = 0; i < num_nodes(); ++i) {
    if (parents(static_cast<TaskId>(i)).empty()) {
      out.push_back(static_cast<TaskId>(i));
    }
  }
  return out;
}

std::vector<TaskId> Dag::leaves() const {
  std::vector<TaskId> out;
  for (std::size_t i = 0; i < num_nodes(); ++i) {
    if (children(static_cast<TaskId>(i)).empty()) {
      out.push_back(static_cast<TaskId>(i));
    }
  }
  return out;
}

bool Dag::is_acyclic() const {
  std::vector<std::size_t> indegree(num_nodes());
  for (std::size_t i = 0; i < num_nodes(); ++i) {
    indegree[i] = parents(static_cast<TaskId>(i)).size();
  }
  std::queue<TaskId> ready;
  for (std::size_t i = 0; i < num_nodes(); ++i) {
    if (indegree[i] == 0) ready.push(static_cast<TaskId>(i));
  }
  std::size_t visited = 0;
  while (!ready.empty()) {
    const TaskId node = ready.front();
    ready.pop();
    ++visited;
    for (const TaskId child : children(node)) {
      if (--indegree[static_cast<std::size_t>(child)] == 0) ready.push(child);
    }
  }
  return visited == num_nodes();
}

std::vector<TaskId> Dag::topological_order() const {
  std::vector<std::size_t> indegree(num_nodes());
  for (std::size_t i = 0; i < num_nodes(); ++i) {
    indegree[i] = parents(static_cast<TaskId>(i)).size();
  }
  // min-heap on node id for a deterministic order
  std::priority_queue<TaskId, std::vector<TaskId>, std::greater<>> ready;
  for (std::size_t i = 0; i < num_nodes(); ++i) {
    if (indegree[i] == 0) ready.push(static_cast<TaskId>(i));
  }
  std::vector<TaskId> order;
  order.reserve(num_nodes());
  while (!ready.empty()) {
    const TaskId node = ready.top();
    ready.pop();
    order.push_back(node);
    for (const TaskId child : children(node)) {
      if (--indegree[static_cast<std::size_t>(child)] == 0) ready.push(child);
    }
  }
  AHG_ENSURES_MSG(order.size() == num_nodes(), "topological_order on a cyclic graph");
  return order;
}

std::size_t Dag::depth() const {
  const auto order = topological_order();
  std::vector<std::size_t> level(num_nodes(), 1);
  std::size_t best = 1;
  for (const TaskId node : order) {
    for (const TaskId child : children(node)) {
      auto& lc = level[static_cast<std::size_t>(child)];
      lc = std::max(lc, level[static_cast<std::size_t>(node)] + 1);
      best = std::max(best, lc);
    }
  }
  return best;
}

}  // namespace ahg::workload
