#include "workload/dag.hpp"

#include <algorithm>
#include <queue>

#include "support/contract.hpp"

namespace ahg::workload {

Dag::Dag(std::size_t num_nodes) : parents_(num_nodes), children_(num_nodes) {
  AHG_EXPECTS_MSG(num_nodes > 0, "DAG needs at least one node");
}

void Dag::check_node(TaskId node) const {
  AHG_EXPECTS_MSG(node >= 0 && static_cast<std::size_t>(node) < num_nodes(),
                  "node id out of range");
}

void Dag::add_edge(TaskId parent, TaskId child) {
  check_node(parent);
  check_node(child);
  AHG_EXPECTS_MSG(parent != child, "self-loop");
  AHG_EXPECTS_MSG(!has_edge(parent, child), "duplicate edge");
  parents_[static_cast<std::size_t>(child)].push_back(parent);
  children_[static_cast<std::size_t>(parent)].push_back(child);
  ++num_edges_;
}

bool Dag::has_edge(TaskId parent, TaskId child) const {
  check_node(parent);
  check_node(child);
  const auto& kids = children_[static_cast<std::size_t>(parent)];
  return std::find(kids.begin(), kids.end(), child) != kids.end();
}

std::span<const TaskId> Dag::parents(TaskId node) const {
  check_node(node);
  return parents_[static_cast<std::size_t>(node)];
}

std::span<const TaskId> Dag::children(TaskId node) const {
  check_node(node);
  return children_[static_cast<std::size_t>(node)];
}

std::vector<TaskId> Dag::roots() const {
  std::vector<TaskId> out;
  for (std::size_t i = 0; i < num_nodes(); ++i) {
    if (parents_[i].empty()) out.push_back(static_cast<TaskId>(i));
  }
  return out;
}

std::vector<TaskId> Dag::leaves() const {
  std::vector<TaskId> out;
  for (std::size_t i = 0; i < num_nodes(); ++i) {
    if (children_[i].empty()) out.push_back(static_cast<TaskId>(i));
  }
  return out;
}

bool Dag::is_acyclic() const {
  std::vector<std::size_t> indegree(num_nodes());
  for (std::size_t i = 0; i < num_nodes(); ++i) indegree[i] = parents_[i].size();
  std::queue<TaskId> ready;
  for (std::size_t i = 0; i < num_nodes(); ++i) {
    if (indegree[i] == 0) ready.push(static_cast<TaskId>(i));
  }
  std::size_t visited = 0;
  while (!ready.empty()) {
    const TaskId node = ready.front();
    ready.pop();
    ++visited;
    for (const TaskId child : children_[static_cast<std::size_t>(node)]) {
      if (--indegree[static_cast<std::size_t>(child)] == 0) ready.push(child);
    }
  }
  return visited == num_nodes();
}

std::vector<TaskId> Dag::topological_order() const {
  std::vector<std::size_t> indegree(num_nodes());
  for (std::size_t i = 0; i < num_nodes(); ++i) indegree[i] = parents_[i].size();
  // min-heap on node id for a deterministic order
  std::priority_queue<TaskId, std::vector<TaskId>, std::greater<>> ready;
  for (std::size_t i = 0; i < num_nodes(); ++i) {
    if (indegree[i] == 0) ready.push(static_cast<TaskId>(i));
  }
  std::vector<TaskId> order;
  order.reserve(num_nodes());
  while (!ready.empty()) {
    const TaskId node = ready.top();
    ready.pop();
    order.push_back(node);
    for (const TaskId child : children_[static_cast<std::size_t>(node)]) {
      if (--indegree[static_cast<std::size_t>(child)] == 0) ready.push(child);
    }
  }
  AHG_ENSURES_MSG(order.size() == num_nodes(), "topological_order on a cyclic graph");
  return order;
}

std::size_t Dag::depth() const {
  const auto order = topological_order();
  std::vector<std::size_t> level(num_nodes(), 1);
  std::size_t best = 1;
  for (const TaskId node : order) {
    for (const TaskId child : children_[static_cast<std::size_t>(node)]) {
      auto& lc = level[static_cast<std::size_t>(child)];
      lc = std::max(lc, level[static_cast<std::size_t>(node)] + 1);
      best = std::max(best, lc);
    }
  }
  return best;
}

}  // namespace ahg::workload
