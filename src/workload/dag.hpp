#pragma once
// Directed acyclic graph of subtask precedence constraints.
//
// The application in the paper is a single task of |T| = 1024 communicating
// subtasks whose dependencies form a DAG; a subtask becomes schedulable when
// all of its parents are mapped, and can start once all parent outputs have
// arrived at its machine.

#include <cstddef>
#include <span>
#include <vector>

#include "support/units.hpp"

namespace ahg::workload {

/// One precedence edge parent -> child (bulk-construction input).
struct DagEdge {
  TaskId parent = 0;
  TaskId child = 0;
};

/// Immutable-after-build DAG with O(1) parent/child adjacency.
///
/// Two builds share one query interface:
///  - incremental: Dag(n) + add_edge() per edge — per-node vectors, used by
///    hand-built fixtures and the scenario file reader;
///  - bulk: Dag(n, edges) — a single pass over the edge stream into flat
///    CSR arenas sized up front (two counting passes, no per-node vector
///    growth), the O(|T|)-allocation path the streaming generator uses at
///    the 1M-task tier. Adjacency ORDER matches the incremental build fed
///    the same stream: each node's parents appear in stream order, each
///    node's children in stream order — so downstream consumers that
///    iterate adjacency (e.g. the data-size generator's RNG draws) see
///    identical sequences whichever build produced the DAG.
class Dag {
 public:
  /// An empty DAG over `num_nodes` isolated nodes (incremental build).
  explicit Dag(std::size_t num_nodes);

  /// Bulk build from an edge stream. Rejects self-loops, out-of-range ids,
  /// and duplicate edges (same contract as add_edge); cycle detection is
  /// deferred to is_acyclic() as with the incremental build.
  Dag(std::size_t num_nodes, std::span<const DagEdge> edges);

  std::size_t num_nodes() const noexcept { return num_nodes_; }
  std::size_t num_edges() const noexcept { return num_edges_; }

  /// Add edge parent -> child. Rejects self-loops, out-of-range ids, and
  /// duplicate edges. Cycle detection is deferred to validate() (adding edges
  /// in generator order is always forward, but hand-built DAGs are checked).
  /// Incremental builds only — a bulk-built DAG's arenas are immutable.
  void add_edge(TaskId parent, TaskId child);

  bool has_edge(TaskId parent, TaskId child) const;

  std::span<const TaskId> parents(TaskId node) const;
  std::span<const TaskId> children(TaskId node) const;

  /// Nodes with no parents / no children.
  std::vector<TaskId> roots() const;
  std::vector<TaskId> leaves() const;

  /// True iff the edge set is acyclic (Kahn's algorithm).
  bool is_acyclic() const;

  /// A topological order; requires is_acyclic(). Deterministic: smallest node
  /// id first among ready nodes.
  std::vector<TaskId> topological_order() const;

  /// Length (in nodes) of the longest path; requires is_acyclic().
  std::size_t depth() const;

 private:
  void check_node(TaskId node) const;

  std::size_t num_nodes_ = 0;
  std::size_t num_edges_ = 0;

  // Incremental storage (empty when bulk_).
  std::vector<std::vector<TaskId>> parents_;
  std::vector<std::vector<TaskId>> children_;

  // Bulk CSR storage: node i's parents live at
  // parent_arena_[parent_off_[i] .. parent_off_[i+1]), children likewise.
  bool bulk_ = false;
  std::vector<std::size_t> parent_off_, child_off_;  ///< num_nodes_ + 1 each
  std::vector<TaskId> parent_arena_, child_arena_;   ///< num_edges_ each
};

}  // namespace ahg::workload
