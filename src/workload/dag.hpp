#pragma once
// Directed acyclic graph of subtask precedence constraints.
//
// The application in the paper is a single task of |T| = 1024 communicating
// subtasks whose dependencies form a DAG; a subtask becomes schedulable when
// all of its parents are mapped, and can start once all parent outputs have
// arrived at its machine.

#include <cstddef>
#include <span>
#include <vector>

#include "support/units.hpp"

namespace ahg::workload {

/// Immutable-after-build DAG with O(1) parent/child adjacency.
class Dag {
 public:
  /// An empty DAG over `num_nodes` isolated nodes.
  explicit Dag(std::size_t num_nodes);

  std::size_t num_nodes() const noexcept { return parents_.size(); }
  std::size_t num_edges() const noexcept { return num_edges_; }

  /// Add edge parent -> child. Rejects self-loops, out-of-range ids, and
  /// duplicate edges. Cycle detection is deferred to validate() (adding edges
  /// in generator order is always forward, but hand-built DAGs are checked).
  void add_edge(TaskId parent, TaskId child);

  bool has_edge(TaskId parent, TaskId child) const;

  std::span<const TaskId> parents(TaskId node) const;
  std::span<const TaskId> children(TaskId node) const;

  /// Nodes with no parents / no children.
  std::vector<TaskId> roots() const;
  std::vector<TaskId> leaves() const;

  /// True iff the edge set is acyclic (Kahn's algorithm).
  bool is_acyclic() const;

  /// A topological order; requires is_acyclic(). Deterministic: smallest node
  /// id first among ready nodes.
  std::vector<TaskId> topological_order() const;

  /// Length (in nodes) of the longest path; requires is_acyclic().
  std::size_t depth() const;

 private:
  void check_node(TaskId node) const;
  std::vector<std::vector<TaskId>> parents_;
  std::vector<std::vector<TaskId>> children_;
  std::size_t num_edges_ = 0;
};

}  // namespace ahg::workload
