#include "workload/dag_generator.hpp"

#include <algorithm>
#include <vector>

#include "support/contract.hpp"
#include "support/rng.hpp"

namespace ahg::workload {

Dag generate_dag(const DagGeneratorParams& params, std::uint64_t seed) {
  AHG_EXPECTS_MSG(params.num_nodes >= 1, "need at least one node");
  AHG_EXPECTS_MSG(params.mean_level_width >= 1, "level width must be positive");
  AHG_EXPECTS_MSG(params.max_fan_in >= 1, "fan-in bound must be positive");
  AHG_EXPECTS_MSG(params.extra_parent_prob >= 0.0 && params.extra_parent_prob <= 1.0,
                  "probability out of range");
  AHG_EXPECTS_MSG(params.long_edge_prob >= 0.0 && params.long_edge_prob <= 1.0,
                  "probability out of range");

  Rng rng(seed);

  // Partition the node ids [0, N) into consecutive layers. Node ids increase
  // with layer index, so every generated edge points forward and the result
  // is acyclic by construction.
  std::vector<std::pair<TaskId, TaskId>> layers;  // [begin, end) per layer
  {
    const auto mean = static_cast<std::int64_t>(params.mean_level_width);
    TaskId next = 0;
    const auto total = static_cast<TaskId>(params.num_nodes);
    while (next < total) {
      const std::int64_t lo = std::max<std::int64_t>(1, mean / 2);
      const std::int64_t hi = std::max<std::int64_t>(lo, (3 * mean) / 2);
      auto width = static_cast<TaskId>(rng.uniform_int(lo, hi));
      width = std::min<TaskId>(width, total - next);
      layers.emplace_back(next, next + width);
      next += width;
    }
  }

  // Connect each non-first-layer node to parents from earlier layers,
  // streaming the edges into one pre-sized arena; the DAG is bulk-built from
  // the stream in a single counting-sort pass (no per-node vector growth).
  // The RNG draw sequence is identical to the old incremental build, and the
  // dedup is too: every edge targets the CURRENT node, so "has_edge(parent,
  // node)" can only see parents drawn in this node's own loop — a scan of
  // the node's drawn parents is the same predicate.
  std::vector<DagEdge> edges;
  edges.reserve(params.num_nodes * params.max_fan_in);
  std::vector<TaskId> drawn;
  drawn.reserve(params.max_fan_in);
  for (std::size_t layer = 1; layer < layers.size(); ++layer) {
    const auto [begin, end] = layers[layer];
    for (TaskId node = begin; node < end; ++node) {
      std::size_t fan_in = 1;
      while (fan_in < params.max_fan_in && rng.bernoulli(params.extra_parent_prob)) {
        ++fan_in;
      }
      drawn.clear();
      for (std::size_t k = 0; k < fan_in; ++k) {
        // Pick the source layer: usually the previous one, occasionally a
        // uniformly chosen earlier layer (long-range edge).
        std::size_t src_layer = layer - 1;
        if (layer >= 2 && rng.bernoulli(params.long_edge_prob)) {
          src_layer = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(layer) - 1));
        }
        const auto [sb, se] = layers[src_layer];
        const auto parent = static_cast<TaskId>(rng.uniform_int(sb, se - 1));
        if (std::find(drawn.begin(), drawn.end(), parent) == drawn.end()) {
          drawn.push_back(parent);
          edges.push_back(DagEdge{parent, node});
        }
      }
    }
  }

  Dag dag(params.num_nodes, edges);
  AHG_ENSURES_MSG(dag.is_acyclic(), "generated DAG must be acyclic");
  return dag;
}

}  // namespace ahg::workload
