#pragma once
// Random layered DAG generator.
//
// The paper draws its ten DAGs with the method of Shivle et al. [ShC04]
// (HCW 2004), which is not publicly specified in the paper; we substitute a
// layered random generator with the same structural knobs that family of
// generators exposes (node count, level width, fan-in/out bounds). See
// DESIGN.md §3 — only the precedence structure matters to the heuristics, so
// any layered random DAG with comparable depth/width exercises identical
// code paths.

#include <cstdint>

#include "workload/dag.hpp"

namespace ahg::workload {

struct DagGeneratorParams {
  std::size_t num_nodes = 1024;
  /// Mean number of nodes per level; actual widths are uniform in
  /// [max(1, mean/2), 3*mean/2].
  std::size_t mean_level_width = 32;
  /// Upper bound on parents per node (fan-in). Every non-root gets >= 1.
  std::size_t max_fan_in = 4;
  /// Probability that a node links to an extra parent beyond the first.
  double extra_parent_prob = 0.35;
  /// Probability that a parent is drawn from a level further back than the
  /// immediately preceding one (long-range dependence).
  double long_edge_prob = 0.15;
};

/// Generate a connected, acyclic, layered DAG. Deterministic in `seed`.
/// Guarantees: node 0 is a root; every non-root node has at least one
/// parent in an earlier layer; fan-in <= params.max_fan_in.
Dag generate_dag(const DagGeneratorParams& params, std::uint64_t seed);

}  // namespace ahg::workload
