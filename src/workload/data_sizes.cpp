#include "workload/data_sizes.hpp"

#include <algorithm>

#include "support/contract.hpp"
#include "support/distributions.hpp"
#include "support/rng.hpp"

namespace ahg::workload {

void DataSizes::set_bits(TaskId parent, TaskId child, double bits) {
  AHG_EXPECTS_MSG(bits >= 0.0, "data size must be non-negative");
  bits_[key(parent, child)] = bits;
}

double DataSizes::bits(TaskId parent, TaskId child) const noexcept {
  const auto it = bits_.find(key(parent, child));
  return it == bits_.end() ? 0.0 : it->second;
}

DataSizes generate_data_sizes(const DataSizeParams& params, const Dag& dag,
                              std::uint64_t seed) {
  AHG_EXPECTS_MSG(params.mean_bits > 0.0, "mean data size must be positive");
  Rng rng(seed);
  const GammaDist dist = GammaDist::from_mean_cv(params.mean_bits, params.cv);
  DataSizes sizes;
  sizes.reserve(dag.num_edges());
  for (std::size_t node = 0; node < dag.num_nodes(); ++node) {
    const auto parent = static_cast<TaskId>(node);
    for (const TaskId child : dag.children(parent)) {
      sizes.set_bits(parent, child, std::max(params.min_bits, dist.sample(rng)));
    }
  }
  return sizes;
}

}  // namespace ahg::workload
