#pragma once
// Sizes of the global data items g(p, c) communicated along DAG edges
// (paper §III). The paper draws these with the method of [ShC04], which is
// not publicly specified; we substitute Gamma-distributed sizes whose mean
// keeps transfer time well below compute time, matching the paper's
// observation that "the communications energy proved to be a negligible
// factor" (see DESIGN.md §3).

#include <cstdint>
#include <unordered_map>

#include "support/units.hpp"
#include "workload/dag.hpp"

namespace ahg::workload {

/// Per-edge data volumes (bits of PRIMARY-version output along each edge).
class DataSizes {
 public:
  DataSizes() = default;

  void set_bits(TaskId parent, TaskId child, double bits);

  /// Pre-size the edge map (the generator knows dag.num_edges() up front, so
  /// the fill never rehashes).
  void reserve(std::size_t num_edges) { bits_.reserve(num_edges); }

  /// Bits transferred parent -> child when the parent ran its primary
  /// version. Zero if the edge carries no data (or does not exist).
  double bits(TaskId parent, TaskId child) const noexcept;

  std::size_t num_entries() const noexcept { return bits_.size(); }

 private:
  static std::uint64_t key(TaskId parent, TaskId child) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(parent)) << 32) |
           static_cast<std::uint32_t>(child);
  }
  std::unordered_map<std::uint64_t, double> bits_;
};

struct DataSizeParams {
  double mean_bits = 4.0e6;  ///< ~4 Mbit: ~0.5-1 s per hop at 4-8 Mbit/s links
  double cv = 0.5;
  double min_bits = 1.0e4;
};

/// Draw one size per DAG edge. Deterministic in `seed`.
DataSizes generate_data_sizes(const DataSizeParams& params, const Dag& dag,
                              std::uint64_t seed);

}  // namespace ahg::workload
