#include "workload/dynamics.hpp"

#include <algorithm>
#include <cmath>

#include "support/contract.hpp"
#include "support/distributions.hpp"
#include "support/rng.hpp"

namespace ahg::workload {

std::vector<Cycles> generate_release_times(const ReleaseParams& params, const Dag& dag,
                                           Cycles tau, std::uint64_t seed) {
  AHG_EXPECTS_MSG(params.spread_fraction >= 0.0 && params.spread_fraction <= 1.0,
                  "spread fraction must be in [0, 1]");
  AHG_EXPECTS_MSG(tau > 0, "tau must be positive");

  Rng rng(seed);
  std::vector<Cycles> releases(dag.num_nodes(), 0);
  if (params.spread_fraction == 0.0) return releases;

  const auto horizon =
      static_cast<Cycles>(params.spread_fraction * static_cast<double>(tau));
  // Topological order guarantees parents are drawn before children, so
  // monotonicity is enforced by lower-bounding at the parents' maximum.
  for (const TaskId task : dag.topological_order()) {
    Cycles lower = 0;
    for (const TaskId parent : dag.parents(task)) {
      lower = std::max(lower, releases[static_cast<std::size_t>(parent)]);
    }
    releases[static_cast<std::size_t>(task)] =
        lower >= horizon ? lower : rng.uniform_int(lower, horizon);
  }
  return releases;
}

std::vector<Scenario::LinkOutage> generate_link_outages(const OutageParams& params,
                                                        std::size_t num_machines,
                                                        Cycles tau,
                                                        std::uint64_t seed) {
  AHG_EXPECTS_MSG(params.outages_per_machine >= 0.0, "outage count must be >= 0");
  AHG_EXPECTS_MSG(params.mean_duration_seconds > 0.0, "outage duration must be > 0");
  AHG_EXPECTS_MSG(num_machines > 0, "need at least one machine");
  AHG_EXPECTS_MSG(tau > 0, "tau must be positive");

  Rng rng(seed);
  const GammaDist duration_dist =
      GammaDist::from_mean_cv(params.mean_duration_seconds, params.duration_cv);

  std::vector<Scenario::LinkOutage> outages;
  for (std::size_t j = 0; j < num_machines; ++j) {
    const auto count = static_cast<std::size_t>(params.outages_per_machine);
    // Draw starts, then resolve overlaps by sorting and clipping.
    std::vector<std::pair<Cycles, Cycles>> windows;  // (start, duration)
    for (std::size_t k = 0; k < count; ++k) {
      const Cycles start = rng.uniform_int(0, tau - 1);
      Cycles duration = cycles_from_seconds(duration_dist.sample(rng));
      if (duration < 1) duration = 1;
      windows.emplace_back(start, duration);
    }
    std::sort(windows.begin(), windows.end());
    Cycles cursor = 0;
    for (auto [start, duration] : windows) {
      start = std::max(start, cursor);       // push past the previous outage
      if (start >= tau) break;               // no room left in the window
      duration = std::min<Cycles>(duration, tau - start);
      outages.push_back(
          Scenario::LinkOutage{static_cast<MachineId>(j), start, duration});
      cursor = start + duration;
    }
  }
  return outages;
}

const char* to_string(DepartureCause cause) noexcept {
  switch (cause) {
    case DepartureCause::None: return "none";
    case DepartureCause::WalkOut: return "walk_out";
    case DepartureCause::BatteryDeath: return "battery_death";
  }
  return "unknown";
}

ChurnTrace generate_machine_churn(const ChurnParams& params, std::size_t num_machines,
                                  Cycles tau, std::uint64_t seed) {
  AHG_EXPECTS_MSG(params.departures_per_machine >= 0.0, "departure rate must be >= 0");
  AHG_EXPECTS_MSG(params.battery_death_fraction >= 0.0 &&
                      params.battery_death_fraction <= 1.0,
                  "battery death fraction must be in [0, 1]");
  AHG_EXPECTS_MSG(params.battery_death_mean_fraction > 0.0,
                  "battery death mean fraction must be > 0");
  AHG_EXPECTS_MSG(params.late_join_fraction >= 0.0 && params.late_join_fraction <= 1.0,
                  "late join fraction must be in [0, 1]");
  AHG_EXPECTS_MSG(params.max_join_fraction >= 0.0 && params.max_join_fraction <= 1.0,
                  "max join fraction must be in [0, 1]");
  AHG_EXPECTS_MSG(num_machines > 0, "need at least one machine");
  AHG_EXPECTS_MSG(tau > 0, "tau must be positive");

  Rng rng(seed);
  const GammaDist lifetime_dist = GammaDist::from_mean_cv(
      params.battery_death_mean_fraction * static_cast<double>(tau),
      params.battery_death_cv);

  ChurnTrace trace;
  trace.windows.assign(num_machines, Scenario::MachineWindow{});
  trace.causes.assign(num_machines, DepartureCause::None);

  for (std::size_t j = 0; j < num_machines; ++j) {
    // Fixed draw order per machine (join, walk-out, battery) keeps the trace
    // stable under parameter tweaks that only disable individual mechanisms.
    Cycles join = 0;
    if (rng.bernoulli(params.late_join_fraction)) {
      const auto latest = static_cast<Cycles>(params.max_join_fraction *
                                              static_cast<double>(tau));
      if (latest >= 1) join = rng.uniform_int(1, latest);
    }

    Cycles depart = Scenario::kNoDeparture;
    DepartureCause cause = DepartureCause::None;
    if (params.departures_per_machine > 0.0) {
      // First event of a Poisson process with the given expected count over
      // [0, tau]: exponential with mean tau / rate, measured from the join.
      const double mean =
          static_cast<double>(tau) / params.departures_per_machine;
      const double wait = -mean * std::log(1.0 - rng.next_double());
      const auto walk_out = join + static_cast<Cycles>(wait);
      if (walk_out < depart) {
        depart = walk_out;
        cause = DepartureCause::WalkOut;
      }
    }
    if (rng.bernoulli(params.battery_death_fraction)) {
      const auto lifetime = static_cast<Cycles>(lifetime_dist.sample(rng));
      const Cycles death = join + std::max<Cycles>(lifetime, 1);
      if (death < depart) {
        depart = death;
        cause = DepartureCause::BatteryDeath;
      }
    }
    if (depart >= tau) {  // outlives the deadline window: effectively stays
      depart = Scenario::kNoDeparture;
      cause = DepartureCause::None;
    }
    if (depart != Scenario::kNoDeparture && depart <= join) depart = join + 1;

    if (params.pin_first_machine && j == 0) {
      join = 0;
      depart = Scenario::kNoDeparture;
      cause = DepartureCause::None;
    }
    trace.windows[j] = Scenario::MachineWindow{join, depart};
    trace.causes[j] = cause;
  }
  return trace;
}

}  // namespace ahg::workload
