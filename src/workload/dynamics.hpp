#pragma once
// Generators for the dynamic-environment extensions (DESIGN.md §8): subtask
// arrival (release) times and communication-link outages. Both model the ad
// hoc grid behaviours the paper's introduction motivates but its initial
// study simplifies away.

#include <cstdint>
#include <vector>

#include "workload/scenario.hpp"

namespace ahg::workload {

struct ReleaseParams {
  /// Fraction of tau over which arrivals spread: a subtask's release is
  /// uniform in [release(parents), spread_fraction * tau], so releases stay
  /// monotone along DAG edges. 0 reproduces the paper's all-at-once study.
  double spread_fraction = 0.25;
};

/// Draw monotone release times for every subtask. Deterministic in `seed`.
std::vector<Cycles> generate_release_times(const ReleaseParams& params, const Dag& dag,
                                           Cycles tau, std::uint64_t seed);

struct OutageParams {
  /// Expected number of outages per machine over the whole window.
  double outages_per_machine = 4.0;
  /// Outage durations are Gamma-distributed with this mean (seconds).
  double mean_duration_seconds = 60.0;
  double duration_cv = 0.7;
};

/// Draw link outages (tx+rx blackout windows) per machine, non-overlapping
/// within a machine. Deterministic in `seed`.
std::vector<Scenario::LinkOutage> generate_link_outages(const OutageParams& params,
                                                        std::size_t num_machines,
                                                        Cycles tau,
                                                        std::uint64_t seed);

/// Why a machine leaves the grid mid-run.
enum class DepartureCause : std::uint8_t {
  None = 0,      ///< machine stays for the whole window
  WalkOut,       ///< owner wanders out of wireless range (Poisson process)
  BatteryDeath,  ///< battery drains below usable charge (Gamma lifetime)
};

const char* to_string(DepartureCause cause) noexcept;

struct ChurnParams {
  /// Rate of the walk-out Poisson process, expressed as the expected number
  /// of walk-outs per machine over the whole [0, tau] window; the first
  /// event past tau means the machine stays. 0 disables walk-outs.
  double departures_per_machine = 1.0;
  /// Fraction of machines whose battery independently dies mid-run.
  double battery_death_fraction = 0.25;
  /// Battery lifetimes are Gamma(mean = this fraction of tau, cv below).
  double battery_death_mean_fraction = 0.6;
  double battery_death_cv = 0.4;
  /// Fraction of machines that arrive late instead of at time 0; a late
  /// join is uniform in [1, max_join_fraction * tau].
  double late_join_fraction = 0.0;
  double max_join_fraction = 0.25;
  /// Keep machine 0 present for the whole run so a completing schedule
  /// always exists (someone must be left to finish the work).
  bool pin_first_machine = true;
};

/// One generated churn trace: a presence window plus the departure cause for
/// every machine. `windows` plugs directly into Scenario::machine_windows.
struct ChurnTrace {
  std::vector<Scenario::MachineWindow> windows;
  std::vector<DepartureCause> causes;

  std::size_t num_departures() const noexcept {
    std::size_t n = 0;
    for (const auto& w : windows) {
      if (w.depart != Scenario::kNoDeparture) ++n;
    }
    return n;
  }
};

/// Draw a presence window per machine: join (possibly late), then departure
/// as the earlier of a Poisson walk-out and an optional Gamma battery death,
/// both measured from the join. Departures at or past tau are dropped (the
/// machine outlives the deadline window). Deterministic in `seed`.
ChurnTrace generate_machine_churn(const ChurnParams& params, std::size_t num_machines,
                                  Cycles tau, std::uint64_t seed);

}  // namespace ahg::workload
