#pragma once
// Generators for the dynamic-environment extensions (DESIGN.md §8): subtask
// arrival (release) times and communication-link outages. Both model the ad
// hoc grid behaviours the paper's introduction motivates but its initial
// study simplifies away.

#include <cstdint>
#include <vector>

#include "workload/scenario.hpp"

namespace ahg::workload {

struct ReleaseParams {
  /// Fraction of tau over which arrivals spread: a subtask's release is
  /// uniform in [release(parents), spread_fraction * tau], so releases stay
  /// monotone along DAG edges. 0 reproduces the paper's all-at-once study.
  double spread_fraction = 0.25;
};

/// Draw monotone release times for every subtask. Deterministic in `seed`.
std::vector<Cycles> generate_release_times(const ReleaseParams& params, const Dag& dag,
                                           Cycles tau, std::uint64_t seed);

struct OutageParams {
  /// Expected number of outages per machine over the whole window.
  double outages_per_machine = 4.0;
  /// Outage durations are Gamma-distributed with this mean (seconds).
  double mean_duration_seconds = 60.0;
  double duration_cv = 0.7;
};

/// Draw link outages (tx+rx blackout windows) per machine, non-overlapping
/// within a machine. Deterministic in `seed`.
std::vector<Scenario::LinkOutage> generate_link_outages(const OutageParams& params,
                                                        std::size_t num_machines,
                                                        Cycles tau,
                                                        std::uint64_t seed);

}  // namespace ahg::workload
