#include "workload/etc_generator.hpp"

#include <algorithm>

#include "support/checked.hpp"
#include "support/contract.hpp"
#include "support/distributions.hpp"
#include "support/rng.hpp"

namespace ahg::workload {

EtcMatrix generate_etc(const EtcGeneratorParams& params,
                       std::size_t num_tasks,
                       const std::vector<sim::MachineClass>& machine_classes,
                       std::uint64_t seed) {
  AHG_EXPECTS_MSG(num_tasks > 0, "need at least one task");
  AHG_EXPECTS_MSG(!machine_classes.empty(), "need at least one machine");
  AHG_EXPECTS_MSG(params.task_mean_seconds > 0.0, "task mean must be positive");
  AHG_EXPECTS_MSG(params.speed_ratio_min > 0.0 &&
                      params.speed_ratio_min < params.speed_ratio_max,
                  "speed ratio truncation must be a valid positive interval");

  Rng rng(seed);
  const GammaDist task_dist =
      GammaDist::from_mean_cv(params.task_mean_seconds, params.task_cv);
  const GammaDist machine_dist = GammaDist::from_mean_cv(1.0, params.machine_cv);
  const GammaDist ratio_dist =
      GammaDist::from_mean_cv(params.speed_ratio_mean, params.speed_ratio_cv);

  // Stream the samples into one pre-sized row-major arena (identical draw
  // order and values to per-cell stores) and bulk-adopt it.
  const std::size_t num_machines = machine_classes.size();
  std::vector<double> seconds(
      checked_mul(num_tasks, num_machines, "ETC matrix"));
  std::size_t cell = 0;
  for (std::size_t i = 0; i < num_tasks; ++i) {
    const double nominal = std::max(params.min_task_seconds, task_dist.sample(rng));
    const double ratio = sample_truncated_gamma(rng, ratio_dist, params.speed_ratio_min,
                                                params.speed_ratio_max);
    for (std::size_t j = 0; j < num_machines; ++j) {
      const double noise = machine_dist.sample(rng);
      const double base =
          machine_classes[j] == sim::MachineClass::Fast ? nominal / ratio : nominal;
      seconds[cell++] = std::max(params.min_task_seconds, base * noise);
    }
  }
  return EtcMatrix(num_tasks, num_machines, std::move(seconds));
}

std::vector<sim::MachineClass> machine_classes(const sim::GridConfig& grid) {
  std::vector<sim::MachineClass> classes;
  classes.reserve(grid.num_machines());
  for (const auto& machine : grid.machines()) classes.push_back(machine.cls);
  return classes;
}

}  // namespace ahg::workload
