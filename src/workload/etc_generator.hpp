#pragma once
// ETC matrix generation following the Gamma-distribution (CVB) method of
// Ali et al. [AlS00], specialised to the paper's two machine classes.
//
// Model (see DESIGN.md §3/§4 for calibration rationale):
//   q_i        ~ Gamma(mean = task_mean_seconds, CV = task_cv)
//                 — the nominal execution time of subtask i on a SLOW machine
//   r_i        ~ truncated Gamma(mean = speed_ratio_mean, CV = speed_ratio_cv)
//                 — the fast/slow speed ratio for subtask i ("the exact ratio
//                   was determined randomly for each subtask")
//   g_{i,j}    ~ Gamma(mean = 1, CV = machine_cv)
//                 — per-entry machine heterogeneity noise
//
//   ETC(i, j) = q_i           * g_{i,j}    if machine j is slow
//   ETC(i, j) = (q_i / r_i)   * g_{i,j}    if machine j is fast
//
// Calibration: task_mean_seconds = 131 s is the paper's quoted per-subtask
// mean; identifying it with the slow-machine nominal time is the only
// interpretation consistent with the paper's Table 4 (upper bound = 1024 for
// Cases A/B, cycle-limited ~650-900 for Case C) and with tau = 34 075 s
// forcing load balancing (fast machines energy-bound near 440 primaries,
// slow machines time-bound near 260).

#include <cstdint>
#include <vector>

#include "sim/grid.hpp"
#include "sim/machine.hpp"
#include "workload/etc_matrix.hpp"

namespace ahg::workload {

struct EtcGeneratorParams {
  /// Mean NOMINAL (slow-machine) execution time. The default is derived from
  /// the paper's "mean estimated execution time for a single subtask of
  /// 131 seconds", read as the mean over all Case-A ETC entries: with 2 fast
  /// and 2 slow machines and a fast/slow ratio near 10, nominal = 131 * 2 /
  /// (1 + E[1/ratio]*...) ~ 238 s (fast entries then average ~26 s, slow
  /// ~238 s, grand mean ~131 s). This reading is the only one under which
  /// tau = 34 075 s "forces load balancing" as the paper states: all-primary
  /// capacity in Case A is ~773 of 1024 subtasks (fast machines energy-bound
  /// near 243 primaries each, slow machines time-bound near 143 each), so
  /// heuristics must mix versions — which is exactly the regime Figures 4-5
  /// report (T100 near 60 % of the upper bound).
  double task_mean_seconds = 238.0;
  /// Heterogeneity knobs, calibrated so the Table-3 minimum-ratio statistics
  /// at |T| = 1024 land in the paper's band (second fast machine MR near
  /// 0.26-0.28, slow machines near 1.55-1.74); see tests/test_calibration.
  double task_cv = 0.5;              ///< task heterogeneity
  double machine_cv = 0.27;          ///< per-entry machine heterogeneity
  double speed_ratio_mean = 10.0;    ///< fast machines ~10x faster on average
  double speed_ratio_cv = 0.3;       ///< spread of the per-subtask ratio
  double speed_ratio_min = 3.5;      ///< physical truncation of the ratio
  double speed_ratio_max = 30.0;
  double min_task_seconds = 1.0;     ///< floor on any generated ETC entry
};

/// Generate ETC for `num_tasks` subtasks over the given machine classes.
/// Deterministic in `seed`. The machine-class vector normally comes from a
/// GridConfig (Case A ordering: fast, fast, slow, slow).
EtcMatrix generate_etc(const EtcGeneratorParams& params,
                       std::size_t num_tasks,
                       const std::vector<sim::MachineClass>& machine_classes,
                       std::uint64_t seed);

/// Machine-class vector of a grid, in machine-id order.
std::vector<sim::MachineClass> machine_classes(const sim::GridConfig& grid);

}  // namespace ahg::workload
