#include "workload/etc_matrix.hpp"

#include "support/checked.hpp"
#include "support/contract.hpp"

namespace ahg::workload {

EtcMatrix::EtcMatrix(std::size_t num_tasks, std::size_t num_machines)
    : num_tasks_(num_tasks),
      num_machines_(num_machines),
      seconds_(checked_mul(num_tasks, num_machines, "ETC matrix"), 0.0) {
  AHG_EXPECTS_MSG(num_tasks > 0, "ETC needs at least one task");
  AHG_EXPECTS_MSG(num_machines > 0, "ETC needs at least one machine");
}

EtcMatrix::EtcMatrix(std::size_t num_tasks, std::size_t num_machines,
                     std::vector<double> seconds)
    : num_tasks_(num_tasks),
      num_machines_(num_machines),
      seconds_(std::move(seconds)) {
  AHG_EXPECTS_MSG(num_tasks > 0, "ETC needs at least one task");
  AHG_EXPECTS_MSG(num_machines > 0, "ETC needs at least one machine");
  AHG_EXPECTS_MSG(
      seconds_.size() == checked_mul(num_tasks, num_machines, "ETC matrix"),
      "ETC table size must be num_tasks * num_machines");
  for (const double secs : seconds_) {
    AHG_EXPECTS_MSG(secs > 0.0, "execution time must be positive");
  }
}

std::size_t EtcMatrix::index(TaskId task, MachineId machine) const {
  AHG_EXPECTS_MSG(task >= 0 && static_cast<std::size_t>(task) < num_tasks_,
                  "task id out of range");
  AHG_EXPECTS_MSG(machine >= 0 && static_cast<std::size_t>(machine) < num_machines_,
                  "machine id out of range");
  return static_cast<std::size_t>(task) * num_machines_ + static_cast<std::size_t>(machine);
}

double EtcMatrix::seconds(TaskId task, MachineId machine) const {
  return seconds_[index(task, machine)];
}

void EtcMatrix::set_seconds(TaskId task, MachineId machine, double secs) {
  AHG_EXPECTS_MSG(secs > 0.0, "execution time must be positive");
  seconds_[index(task, machine)] = secs;
}

Cycles EtcMatrix::cycles(TaskId task, MachineId machine) const {
  return cycles_from_seconds(seconds(task, machine));
}

EtcMatrix EtcMatrix::without_machine(MachineId machine) const {
  AHG_EXPECTS_MSG(machine >= 0 && static_cast<std::size_t>(machine) < num_machines_,
                  "machine id out of range");
  AHG_EXPECTS_MSG(num_machines_ > 1, "cannot drop the last machine");
  EtcMatrix out(num_tasks_, num_machines_ - 1);
  for (std::size_t i = 0; i < num_tasks_; ++i) {
    MachineId dst = 0;
    for (std::size_t j = 0; j < num_machines_; ++j) {
      if (static_cast<MachineId>(j) == machine) continue;
      out.set_seconds(static_cast<TaskId>(i), dst,
                      seconds(static_cast<TaskId>(i), static_cast<MachineId>(j)));
      ++dst;
    }
  }
  return out;
}

double EtcMatrix::mean() const noexcept {
  double total = 0.0;
  for (const double v : seconds_) total += v;
  return total / static_cast<double>(seconds_.size());
}

}  // namespace ahg::workload
