#pragma once
// Estimated-time-to-compute matrix: ETC(i, j) is the estimated execution
// time in seconds of subtask i's PRIMARY version on machine j (paper §III).
// Secondary-version times are derived via the VersionModel (10 % of primary).

#include <cstddef>
#include <vector>

#include "support/units.hpp"

namespace ahg::workload {

class EtcMatrix {
 public:
  EtcMatrix(std::size_t num_tasks, std::size_t num_machines);

  /// Bulk build from a pre-filled row-major [task][machine] table (the
  /// generator's streaming path: one positivity sweep instead of per-cell
  /// bounds-checked stores). The vector is adopted, not copied.
  EtcMatrix(std::size_t num_tasks, std::size_t num_machines,
            std::vector<double> seconds);

  std::size_t num_tasks() const noexcept { return num_tasks_; }
  std::size_t num_machines() const noexcept { return num_machines_; }

  /// Primary-version execution time of task i on machine j, seconds.
  double seconds(TaskId task, MachineId machine) const;
  void set_seconds(TaskId task, MachineId machine, double secs);

  /// Primary-version execution time in integer clock cycles (ceil).
  Cycles cycles(TaskId task, MachineId machine) const;

  /// Drop one machine column (grid degradation); remaining columns keep
  /// their relative order, mirroring GridConfig::without_machine.
  EtcMatrix without_machine(MachineId machine) const;

  /// Mean over all entries (diagnostics / calibration tests).
  double mean() const noexcept;

 private:
  std::size_t index(TaskId task, MachineId machine) const;
  std::size_t num_tasks_;
  std::size_t num_machines_;
  std::vector<double> seconds_;  // row-major [task][machine]
};

}  // namespace ahg::workload
