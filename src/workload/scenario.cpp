#include "workload/scenario.hpp"

#include <algorithm>

#include "support/contract.hpp"
#include "support/rng.hpp"

namespace ahg::workload {

namespace {
// Independent seed streams per artifact family.
constexpr std::uint64_t kEtcStream = 0x45544300;   // "ETC"
constexpr std::uint64_t kDagStream = 0x44414700;   // "DAG"
constexpr std::uint64_t kDataStream = 0x44415400;  // "DAT"
}  // namespace

void Scenario::validate() const {
  versions.validate();
  AHG_EXPECTS_MSG(tau > 0, "tau must be positive");
  AHG_EXPECTS_MSG(etc.num_tasks() == dag.num_nodes(), "ETC/DAG task count mismatch");
  AHG_EXPECTS_MSG(etc.num_machines() == grid.num_machines(),
                  "ETC/grid machine count mismatch");
  AHG_EXPECTS_MSG(dag.is_acyclic(), "scenario DAG must be acyclic");
  AHG_EXPECTS_MSG(releases.empty() || releases.size() == dag.num_nodes(),
                  "releases must be empty or one per subtask");
  if (!releases.empty()) {
    for (std::size_t i = 0; i < releases.size(); ++i) {
      AHG_EXPECTS_MSG(releases[i] >= 0, "release times must be non-negative");
      const auto child = static_cast<TaskId>(i);
      for (const TaskId parent : dag.parents(child)) {
        AHG_EXPECTS_MSG(releases[static_cast<std::size_t>(parent)] <= releases[i],
                        "release times must be monotone along DAG edges");
      }
    }
  }
  for (const auto& outage : link_outages) {
    AHG_EXPECTS_MSG(outage.machine >= 0 &&
                        static_cast<std::size_t>(outage.machine) < grid.num_machines(),
                    "outage machine id out of range");
    AHG_EXPECTS_MSG(outage.start >= 0 && outage.duration > 0,
                    "outage interval must be positive");
  }
  AHG_EXPECTS_MSG(machine_windows.empty() || machine_windows.size() == grid.num_machines(),
                  "machine windows must be empty or one per machine");
  for (const auto& window : machine_windows) {
    AHG_EXPECTS_MSG(window.join >= 0, "machine join time must be non-negative");
    AHG_EXPECTS_MSG(window.depart > window.join,
                    "machine departure must come after its join");
  }
}

ScenarioSuite::ScenarioSuite(SuiteParams params) : params_(std::move(params)) {
  AHG_EXPECTS_MSG(params_.num_tasks > 0, "suite needs tasks");
  AHG_EXPECTS_MSG(params_.num_etc > 0 && params_.num_dag > 0,
                  "suite needs at least one ETC and one DAG");
  dag_params_.num_nodes = params_.num_tasks;
  // Keep the paper's per-level width (~32): tau scales with |T| but the
  // critical path scales with DAG depth, so holding the WIDTH constant keeps
  // the critical-path-to-tau pressure scale-invariant (~20 % at every |T|).
  // Scaling width with |T| instead would make reduced-scale DAGs relatively
  // far deeper than the paper's and strangle every deadline-aware mapping.
  dag_params_.mean_level_width = 32;
}

MachineId ScenarioSuite::removed_machine(sim::GridCase grid_case) noexcept {
  switch (grid_case) {
    case sim::GridCase::A: return kInvalidMachine;
    case sim::GridCase::B: return 3;  // second slow machine
    case sim::GridCase::C: return 1;  // second fast machine
  }
  return kInvalidMachine;
}

EtcMatrix ScenarioSuite::make_etc(std::size_t etc_index) const {
  AHG_EXPECTS_MSG(etc_index < params_.num_etc, "etc index out of range");
  const auto grid = sim::GridConfig::make_case(sim::GridCase::A);
  return generate_etc(params_.etc_params, params_.num_tasks, machine_classes(grid),
                      derive_seed(params_.master_seed, kEtcStream + etc_index));
}

Dag ScenarioSuite::make_dag(std::size_t dag_index) const {
  AHG_EXPECTS_MSG(dag_index < params_.num_dag, "dag index out of range");
  return generate_dag(dag_params_, derive_seed(params_.master_seed, kDagStream + dag_index));
}

DataSizes ScenarioSuite::make_data_sizes(std::size_t dag_index) const {
  AHG_EXPECTS_MSG(dag_index < params_.num_dag, "dag index out of range");
  const Dag dag = make_dag(dag_index);
  return generate_data_sizes(params_.data_params, dag,
                             derive_seed(params_.master_seed, kDataStream + dag_index));
}

Scenario ScenarioSuite::make(sim::GridCase grid_case, std::size_t etc_index,
                             std::size_t dag_index) const {
  EtcMatrix etc = make_etc(etc_index);
  sim::GridConfig grid = sim::GridConfig::make_case(sim::GridCase::A);
  if (params_.scale_batteries_with_tasks && params_.num_tasks != 1024) {
    grid = grid.with_battery_scale(params_.scale_factor());
  }
  const MachineId removed = removed_machine(grid_case);
  if (removed != kInvalidMachine) {
    etc = etc.without_machine(removed);
    grid = grid.without_machine(removed);
  }
  Scenario scenario{std::move(grid), make_dag(dag_index), std::move(etc),
                    make_data_sizes(dag_index), VersionModel{}, params_.tau_cycles()};
  scenario.validate();
  return scenario;
}

}  // namespace ahg::workload
