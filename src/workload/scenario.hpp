#pragma once
// A Scenario bundles everything a resource manager needs to produce a
// mapping: the grid, the subtask DAG, the ETC matrix, per-edge data sizes,
// the version model, and the hard constraint tau on application execution
// time. A ScenarioSuite reproduces the paper's experimental grid: 10 ETC
// matrices x 10 DAGs = 100 unique (ETC, DAG) combinations, shared across the
// three grid cases (B and C are derived from A's ETC by dropping a machine
// column, exactly as the paper "eliminates" a machine).

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/grid.hpp"
#include "support/units.hpp"
#include "workload/dag.hpp"
#include "workload/dag_generator.hpp"
#include "workload/data_sizes.hpp"
#include "workload/etc_generator.hpp"
#include "workload/etc_matrix.hpp"
#include "workload/versions.hpp"

namespace ahg::workload {

struct Scenario {
  sim::GridConfig grid;
  Dag dag;
  EtcMatrix etc;
  DataSizes data;
  VersionModel versions;
  Cycles tau = 0;  ///< hard AET constraint in clock cycles

  /// Optional per-subtask release (arrival) times — the paper's §IV notes
  /// that "in a truly dynamic environment, each subtask would arrive at some
  /// non-deterministic time" and simplifies them away; this extension keeps
  /// them. Empty = every subtask available from time 0 (the paper's study).
  /// A subtask may not START executing before its release; dynamic
  /// heuristics additionally cannot SEE it before then. Monotone along DAG
  /// edges (child release >= parent release) by generator construction.
  std::vector<Cycles> releases = {};

  /// Optional communication-link outages — the introduction's "spurious
  /// failures" of links. During an outage the machine can neither transmit
  /// nor receive (its compute unit is unaffected); heuristics pre-book
  /// outages on the tx/rx channels so placement plans around them.
  struct LinkOutage {
    MachineId machine = kInvalidMachine;
    Cycles start = 0;
    Cycles duration = 0;
  };
  std::vector<LinkOutage> link_outages = {};

  /// Sentinel for "the machine never departs".
  static constexpr Cycles kNoDeparture = std::numeric_limits<Cycles>::max();

  /// Optional per-machine presence window — the introduction's machines that
  /// "wander in and out of range" or die when batteries drain. A machine is
  /// part of the grid over [join, depart); outside the window it can neither
  /// compute nor communicate. Empty = every machine present for the whole
  /// run (the paper's study). Dynamic heuristics observe only the CURRENT
  /// presence (a departure is discovered at the next timestep, never
  /// anticipated); static heuristics ignore windows entirely and their
  /// schedules are judged by replaying against them (core/churn.hpp).
  struct MachineWindow {
    Cycles join = 0;               ///< present from here (0 = from the start)
    Cycles depart = kNoDeparture;  ///< exclusive; kNoDeparture = stays forever
  };
  std::vector<MachineWindow> machine_windows = {};

  /// Presence of a machine at an instant (always true when windows are unset).
  bool machine_available(MachineId machine, Cycles time) const {
    if (machine_windows.empty()) return true;
    const auto& w = machine_windows[static_cast<std::size_t>(machine)];
    return w.join <= time && time < w.depart;
  }

  Cycles machine_join(MachineId machine) const {
    return machine_windows.empty()
               ? 0
               : machine_windows[static_cast<std::size_t>(machine)].join;
  }

  Cycles machine_depart(MachineId machine) const {
    return machine_windows.empty()
               ? kNoDeparture
               : machine_windows[static_cast<std::size_t>(machine)].depart;
  }

  std::size_t num_tasks() const noexcept { return dag.num_nodes(); }
  std::size_t num_machines() const noexcept { return grid.num_machines(); }

  /// Release time of a subtask (0 when releases are unset).
  Cycles release(TaskId task) const {
    if (releases.empty()) return 0;
    AHG_EXPECTS_MSG(task >= 0 && static_cast<std::size_t>(task) < releases.size(),
                    "task id out of range");
    return releases[static_cast<std::size_t>(task)];
  }

  /// Execution duration of (task, version) on a machine, in cycles.
  Cycles exec_cycles(TaskId task, MachineId machine, VersionKind kind) const {
    return versions.exec_cycles(etc.seconds(task, machine), kind);
  }

  /// Bits sent parent -> child given the version the PARENT executed.
  double edge_bits(TaskId parent, TaskId child, VersionKind parent_kind) const {
    return versions.output_bits(data.bits(parent, child), parent_kind);
  }

  /// Basic cross-component consistency checks (sizes line up, tau positive).
  void validate() const;
};

struct SuiteParams {
  std::size_t num_tasks = 1024;
  std::size_t num_etc = 10;
  std::size_t num_dag = 10;
  std::uint64_t master_seed = 20040426;
  EtcGeneratorParams etc_params{};
  DataSizeParams data_params{};
  /// tau for |T| = 1024 (paper: 34 075 s); scaled proportionally for other
  /// task counts so the per-subtask scheduling pressure is preserved.
  double tau_seconds_at_1024 = 34075.0;
  /// Scale battery capacities by |T|/1024 along with tau. Without this,
  /// reduced-scale suites would be energy-rich and the paper's balancing
  /// pressure (fast machines energy-bound, slow machines time-bound) would
  /// vanish. Has no effect at |T| = 1024.
  bool scale_batteries_with_tasks = true;

  double scale_factor() const noexcept {
    return static_cast<double>(num_tasks) / 1024.0;
  }

  Cycles tau_cycles() const noexcept {
    return cycles_from_seconds(tau_seconds_at_1024 * scale_factor());
  }
};

/// Deterministic factory over the (ETC index, DAG index, grid case) grid.
/// ETC matrices are generated once for Case A's machine set; Case B drops
/// slow machine id 3, Case C drops fast machine id 1.
class ScenarioSuite {
 public:
  explicit ScenarioSuite(SuiteParams params);

  const SuiteParams& params() const noexcept { return params_; }
  std::size_t num_etc() const noexcept { return params_.num_etc; }
  std::size_t num_dag() const noexcept { return params_.num_dag; }

  /// Machine id removed from Case A to form the degraded case; kInvalidMachine
  /// for Case A itself.
  static MachineId removed_machine(sim::GridCase grid_case) noexcept;

  /// Build scenario (grid_case, etc_index, dag_index). Deterministic.
  Scenario make(sim::GridCase grid_case, std::size_t etc_index,
                std::size_t dag_index) const;

  /// The Case-A (full machine set) ETC matrix for a given index.
  EtcMatrix make_etc(std::size_t etc_index) const;

  Dag make_dag(std::size_t dag_index) const;
  DataSizes make_data_sizes(std::size_t dag_index) const;

 private:
  SuiteParams params_;
  DagGeneratorParams dag_params_;
};

}  // namespace ahg::workload
