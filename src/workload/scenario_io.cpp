#include "workload/scenario_io.hpp"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "support/contract.hpp"

namespace ahg::workload {

namespace {

constexpr const char* kHeader = "adhoc-grid-scenario v1";

[[noreturn]] void parse_fail(std::size_t line, const std::string& message) {
  throw PreconditionError("scenario parse error at line " + std::to_string(line) +
                          ": " + message);
}

}  // namespace

void write_scenario(std::ostream& os, const Scenario& scenario) {
  scenario.validate();
  os << kHeader << '\n';
  os << std::setprecision(17);

  os << "machines " << scenario.num_machines() << '\n';
  for (const auto& m : scenario.grid.machines()) {
    os << "machine " << sim::to_string(m.cls) << ' ' << m.battery_capacity << ' '
       << m.compute_power << ' ' << m.transmit_power << ' ' << m.bandwidth_bps
       << '\n';
  }

  os << "tasks " << scenario.num_tasks() << '\n';
  os << "tau " << scenario.tau << '\n';
  os << "versions " << scenario.versions.secondary_time_factor << ' '
     << scenario.versions.secondary_data_factor << '\n';

  for (std::size_t i = 0; i < scenario.num_tasks(); ++i) {
    for (std::size_t j = 0; j < scenario.num_machines(); ++j) {
      os << "etc " << i << ' ' << j << ' '
         << scenario.etc.seconds(static_cast<TaskId>(i), static_cast<MachineId>(j))
         << '\n';
    }
  }
  for (std::size_t i = 0; i < scenario.num_tasks(); ++i) {
    const auto parent = static_cast<TaskId>(i);
    for (const TaskId child : scenario.dag.children(parent)) {
      os << "edge " << parent << ' ' << child << ' '
         << scenario.data.bits(parent, child) << '\n';
    }
  }
  if (!scenario.releases.empty()) {
    for (std::size_t i = 0; i < scenario.releases.size(); ++i) {
      if (scenario.releases[i] > 0) {
        os << "release " << i << ' ' << scenario.releases[i] << '\n';
      }
    }
  }
  for (const auto& outage : scenario.link_outages) {
    os << "outage " << outage.machine << ' ' << outage.start << ' '
       << outage.duration << '\n';
  }
}

Scenario read_scenario(std::istream& is) {
  std::string line;
  std::size_t line_no = 0;

  auto next_line = [&](bool required) -> bool {
    while (std::getline(is, line)) {
      ++line_no;
      // Strip comments and skip blank lines.
      if (const auto hash = line.find('#'); hash != std::string::npos) {
        line.erase(hash);
      }
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      return true;
    }
    if (required) parse_fail(line_no, "unexpected end of file");
    return false;
  };

  next_line(true);
  if (line != kHeader) parse_fail(line_no, "missing header '" + std::string(kHeader) + "'");

  // --- machines ---------------------------------------------------------------
  next_line(true);
  std::size_t num_machines = 0;
  {
    std::istringstream ss(line);
    std::string kw;
    if (!(ss >> kw >> num_machines) || kw != "machines" || num_machines == 0) {
      parse_fail(line_no, "expected 'machines <count>'");
    }
  }
  std::vector<sim::MachineSpec> machines;
  for (std::size_t j = 0; j < num_machines; ++j) {
    next_line(true);
    std::istringstream ss(line);
    std::string kw;
    std::string cls;
    sim::MachineSpec spec;
    if (!(ss >> kw >> cls >> spec.battery_capacity >> spec.compute_power >>
          spec.transmit_power >> spec.bandwidth_bps) ||
        kw != "machine") {
      parse_fail(line_no, "expected 'machine <class> <B> <E> <C> <BW>'");
    }
    if (cls == "fast") spec.cls = sim::MachineClass::Fast;
    else if (cls == "slow") spec.cls = sim::MachineClass::Slow;
    else parse_fail(line_no, "machine class must be fast|slow, got '" + cls + "'");
    if (spec.battery_capacity < 0 || spec.compute_power < 0 || spec.transmit_power < 0 ||
        spec.bandwidth_bps <= 0) {
      parse_fail(line_no, "machine parameters out of range");
    }
    machines.push_back(spec);
  }

  // --- sizes / constraints -----------------------------------------------------
  next_line(true);
  std::size_t num_tasks = 0;
  {
    std::istringstream ss(line);
    std::string kw;
    if (!(ss >> kw >> num_tasks) || kw != "tasks" || num_tasks == 0) {
      parse_fail(line_no, "expected 'tasks <count>'");
    }
  }
  next_line(true);
  Cycles tau = 0;
  {
    std::istringstream ss(line);
    std::string kw;
    if (!(ss >> kw >> tau) || kw != "tau" || tau <= 0) {
      parse_fail(line_no, "expected 'tau <cycles>'");
    }
  }
  next_line(true);
  VersionModel versions;
  {
    std::istringstream ss(line);
    std::string kw;
    if (!(ss >> kw >> versions.secondary_time_factor >> versions.secondary_data_factor) ||
        kw != "versions") {
      parse_fail(line_no, "expected 'versions <time_factor> <data_factor>'");
    }
  }

  // --- etc entries and edges ----------------------------------------------------
  EtcMatrix etc(num_tasks, num_machines);
  std::vector<bool> seen(num_tasks * num_machines, false);
  Dag dag(num_tasks);
  DataSizes data;
  std::vector<Cycles> releases;
  std::vector<Scenario::LinkOutage> outages;

  while (next_line(false)) {
    std::istringstream ss(line);
    std::string kw;
    ss >> kw;
    if (kw == "etc") {
      long long task = -1;
      long long machine = -1;
      double secs = 0.0;
      if (!(ss >> task >> machine >> secs)) parse_fail(line_no, "malformed etc line");
      if (task < 0 || static_cast<std::size_t>(task) >= num_tasks ||
          machine < 0 || static_cast<std::size_t>(machine) >= num_machines) {
        parse_fail(line_no, "etc indices out of range");
      }
      if (secs <= 0.0) parse_fail(line_no, "etc seconds must be positive");
      const std::size_t idx =
          static_cast<std::size_t>(task) * num_machines + static_cast<std::size_t>(machine);
      if (seen[idx]) parse_fail(line_no, "duplicate etc entry");
      seen[idx] = true;
      etc.set_seconds(static_cast<TaskId>(task), static_cast<MachineId>(machine), secs);
    } else if (kw == "edge") {
      long long parent = -1;
      long long child = -1;
      double bits = 0.0;
      if (!(ss >> parent >> child >> bits)) parse_fail(line_no, "malformed edge line");
      if (parent < 0 || static_cast<std::size_t>(parent) >= num_tasks ||
          child < 0 || static_cast<std::size_t>(child) >= num_tasks) {
        parse_fail(line_no, "edge indices out of range");
      }
      if (bits < 0.0) parse_fail(line_no, "edge bits must be non-negative");
      if (parent == child || dag.has_edge(static_cast<TaskId>(parent),
                                          static_cast<TaskId>(child))) {
        parse_fail(line_no, "invalid or duplicate edge");
      }
      dag.add_edge(static_cast<TaskId>(parent), static_cast<TaskId>(child));
      data.set_bits(static_cast<TaskId>(parent), static_cast<TaskId>(child), bits);
    } else if (kw == "release") {
      long long task = -1;
      Cycles when = 0;
      if (!(ss >> task >> when)) parse_fail(line_no, "malformed release line");
      if (task < 0 || static_cast<std::size_t>(task) >= num_tasks || when < 0) {
        parse_fail(line_no, "release out of range");
      }
      if (releases.empty()) releases.assign(num_tasks, 0);
      releases[static_cast<std::size_t>(task)] = when;
    } else if (kw == "outage") {
      Scenario::LinkOutage outage;
      long long machine = -1;
      if (!(ss >> machine >> outage.start >> outage.duration)) {
        parse_fail(line_no, "malformed outage line");
      }
      if (machine < 0 || static_cast<std::size_t>(machine) >= num_machines ||
          outage.start < 0 || outage.duration <= 0) {
        parse_fail(line_no, "outage out of range");
      }
      outage.machine = static_cast<MachineId>(machine);
      outages.push_back(outage);
    } else {
      parse_fail(line_no, "unknown keyword '" + kw + "'");
    }
  }

  for (std::size_t idx = 0; idx < seen.size(); ++idx) {
    if (!seen[idx]) {
      parse_fail(line_no, "missing etc entry for task " +
                              std::to_string(idx / num_machines) + ", machine " +
                              std::to_string(idx % num_machines));
    }
  }
  if (!dag.is_acyclic()) parse_fail(line_no, "edge set contains a cycle");

  Scenario scenario{sim::GridConfig(std::move(machines)), std::move(dag),
                    std::move(etc), std::move(data), versions, tau,
                    std::move(releases), std::move(outages)};
  scenario.validate();
  return scenario;
}

void save_scenario(const std::string& path, const Scenario& scenario) {
  std::ofstream file(path);
  AHG_EXPECTS_MSG(file.good(), "cannot open '" + path + "' for writing");
  write_scenario(file, scenario);
  AHG_ENSURES_MSG(file.good(), "write to '" + path + "' failed");
}

Scenario load_scenario(const std::string& path) {
  std::ifstream file(path);
  AHG_EXPECTS_MSG(file.good(), "cannot open '" + path + "' for reading");
  return read_scenario(file);
}

}  // namespace ahg::workload
