#pragma once
// Scenario serialization: a small line-oriented text format so scenarios can
// be exported, archived, and replayed across tools (or fed from external
// workload generators instead of the built-in ones).
//
// Format (all sections required, '#' starts a comment line):
//
//   adhoc-grid-scenario v1
//   machines <count>
//   machine <class:fast|slow> <battery> <compute_power> <transmit_power> <bw_bps>
//   tasks <count>
//   tau <cycles>
//   versions <secondary_time_factor> <secondary_data_factor>
//   etc <task> <machine> <seconds>            (one line per entry)
//   edge <parent> <child> <bits>              (one line per DAG edge)
//
// Numbers are written with enough precision to round-trip doubles exactly.

#include <iosfwd>
#include <string>

#include "workload/scenario.hpp"

namespace ahg::workload {

/// Serialize a scenario (grid, DAG, ETC, data sizes, versions, tau).
void write_scenario(std::ostream& os, const Scenario& scenario);

/// Parse a scenario; throws PreconditionError with a line-numbered message
/// on malformed input. The result passes Scenario::validate().
Scenario read_scenario(std::istream& is);

/// Convenience file wrappers (throw on I/O failure).
void save_scenario(const std::string& path, const Scenario& scenario);
Scenario load_scenario(const std::string& path);

}  // namespace ahg::workload
