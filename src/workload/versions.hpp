#pragma once
// Primary/secondary subtask version scaling (paper §III).
//
// Each subtask has two executable versions. The secondary version uses 10 %
// of the primary's time (and hence, at a fixed machine power draw, 10 % of
// its energy) and transfers 10 % of the output data to child subtasks. It
// provides reduced value but widens the mapper's options under tight energy
// and time constraints.

#include "support/contract.hpp"
#include "support/units.hpp"
#include "support/version.hpp"

namespace ahg::workload {

using ahg::VersionKind;

struct VersionModel {
  /// Secondary execution time as a fraction of primary (paper: 0.1).
  double secondary_time_factor = 0.1;
  /// Secondary output data volume as a fraction of primary (paper: 0.1).
  double secondary_data_factor = 0.1;

  void validate() const {
    AHG_EXPECTS_MSG(secondary_time_factor > 0.0 && secondary_time_factor <= 1.0,
                    "secondary time factor must be in (0, 1]");
    AHG_EXPECTS_MSG(secondary_data_factor >= 0.0 && secondary_data_factor <= 1.0,
                    "secondary data factor must be in [0, 1]");
  }

  /// Execution duration in cycles for a version given the primary duration
  /// in seconds. Ceil rounding keeps durations conservative; every version
  /// occupies at least one cycle.
  Cycles exec_cycles(double primary_seconds, VersionKind kind) const noexcept {
    const double secs = kind == VersionKind::Primary
                            ? primary_seconds
                            : primary_seconds * secondary_time_factor;
    const Cycles c = cycles_from_seconds(secs);
    return c > 0 ? c : 1;
  }

  /// Output data volume in bits for a version given the primary volume.
  double output_bits(double primary_bits, VersionKind kind) const noexcept {
    return kind == VersionKind::Primary ? primary_bits
                                        : primary_bits * secondary_data_factor;
  }
};

}  // namespace ahg::workload
